#!/usr/bin/env bash
# Crash-recovery smoke (docs/DEVELOPING.md, "Fault injection & recovery"):
# kill a checkpointing PageRank run two ways — a deterministic simulated
# crash armed via VERTEXICA_FAULTS, and a raw SIGKILL — then restore from
# the surviving generation and resume to completion. The resumed values
# must be BIT-IDENTICAL (%.17g text diff) to an uninterrupted run, not
# merely converged: recovery is a correctness path, and it gets the same
# contract as every other execution configuration.
#
#   ./scripts/crash_recovery_smoke.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
DEMO="$BUILD_DIR/crash_recovery_demo"

if [ ! -x "$DEMO" ]; then
  echo "crash_recovery_smoke: $DEMO not built" \
       "(configure with -DVERTEXICA_BUILD_EXAMPLES=ON)" >&2
  exit 1
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/vx_crash_smoke.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

# Golden output: the run nobody interrupted.
"$DEMO" full > "$WORK/golden.txt"

# ---- 1. Deterministic simulated crash mid-checkpoint. ---------------------
# The armed fault _Exits(113) on the 4th checkpoint save, after the MANIFEST
# fsync but before the generation is published — the nastiest moment: bytes
# durable, pointer not.
set +e
VERTEXICA_FAULTS="checkpoint.after_manifest=4:crash" \
    "$DEMO" run "$WORK/ckpt_crash" > /dev/null 2>&1
crash_rc=$?
set -e
if [ "$crash_rc" -ne 113 ]; then
  echo "crash_recovery_smoke: expected fault exit 113, got $crash_rc" >&2
  exit 1
fi
"$DEMO" verify "$WORK/ckpt_crash" > "$WORK/resumed_crash.txt"
if ! diff -q "$WORK/golden.txt" "$WORK/resumed_crash.txt" > /dev/null; then
  echo "crash_recovery_smoke: resumed values after simulated crash differ" \
       "from the uninterrupted run" >&2
  diff "$WORK/golden.txt" "$WORK/resumed_crash.txt" | head -20 >&2
  exit 1
fi
echo "crash_recovery_smoke: simulated crash -> restore bit-identical"

# ---- 2. Raw SIGKILL at an arbitrary moment. -------------------------------
# No fault armed, no cooperation from the process. Whatever instant the
# kill lands on — mid-save, between saves, or after the run finished — the
# checkpoint directory must restore and resume to the same bits. Wait for
# the first generation to publish (CURRENT exists) so the kill always finds
# a restorable directory, then land it at an uncontrolled moment.
"$DEMO" run "$WORK/ckpt_kill" > /dev/null 2>&1 &
demo_pid=$!
for _ in $(seq 1 200); do
  [ -e "$WORK/ckpt_kill/CURRENT" ] && break
  sleep 0.01
done
kill -9 "$demo_pid" 2> /dev/null || true
wait "$demo_pid" 2> /dev/null || true
"$DEMO" verify "$WORK/ckpt_kill" > "$WORK/resumed_kill.txt"
if ! diff -q "$WORK/golden.txt" "$WORK/resumed_kill.txt" > /dev/null; then
  echo "crash_recovery_smoke: resumed values after SIGKILL differ from" \
       "the uninterrupted run" >&2
  diff "$WORK/golden.txt" "$WORK/resumed_kill.txt" | head -20 >&2
  exit 1
fi
echo "crash_recovery_smoke: SIGKILL -> restore bit-identical"
echo "crash_recovery_smoke: all green"
