#!/usr/bin/env bash
# Tier-1 verify plus the api parity suite. CI entry point; also the local
# pre-push check:   ./scripts/check.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

# Static tier first — cheapest signal, no build needed. The determinism
# lint guards the bit-identical-results contract (unordered iteration,
# unseeded randomness, bare ambient-knob reads in pool tasks, aborts on
# user-input paths); the format check covers files changed vs origin/main
# and skips gracefully where clang-format isn't installed.
python3 scripts/lint_determinism.py
./scripts/format.sh --check

# Reconfigure with the bench option pinned ON: a cached build dir can carry
# VERTEXICA_BUILD_BENCHES=OFF from a sanitizer configure, and a later
# `--target bench_<name>` then silently no-ops (the output binary in the
# build root shadows the phony target name), leaving stale bench binaries
# behind the BENCH_*.json copy step below. Always full-build for the same
# reason — never per-target.
cmake -B "$BUILD_DIR" -S . -DVERTEXICA_BUILD_BENCHES=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

# Full suite (tier-1) twice: once fully serial (VERTEXICA_THREADS=1) and
# once at default parallelism, so the morsel executor's serial and parallel
# paths are both exercised. Then the backend-parity suite by name so a
# parity regression is unmistakable in the log even when other suites also
# fail.
(cd "$BUILD_DIR" && VERTEXICA_THREADS=1 ctest --output-on-failure -j "$(nproc)")
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")
(cd "$BUILD_DIR" && ctest -R api_ --output-on-failure)

# Storage property suites with the segment-encoding knob forced off and on
# (docs/STORAGE.md): encode/decode and zone-map pruning must be
# value-neutral in both worlds, and the csv/exec/vertexica paths must not
# care how the engine tables are physically stored.
(cd "$BUILD_DIR" && VERTEXICA_ENCODING=off \
    ctest -R 'storage_test|csv_test|exec_test|api_test|vertexica_test' \
    --output-on-failure -j "$(nproc)")
(cd "$BUILD_DIR" && VERTEXICA_ENCODING=force \
    ctest -R 'storage_test|csv_test|exec_test|api_test|vertexica_test' \
    --output-on-failure -j "$(nproc)")

# The exec/vertexica suites once more with the merge-join knob forced off:
# the order-aware join path must be a pure physical-plan swap — results
# bit-identical with it disabled (docs/EXECUTOR.md).
(cd "$BUILD_DIR" && VERTEXICA_MERGE_JOIN=off \
    ctest -R 'exec_test|vertexica_test|api_test' --output-on-failure \
    -j "$(nproc)")

# Same contract for the fused selection-vector σ/π core: pinning the
# interpreter path must leave every expectation bit-identical
# (docs/EXECUTOR.md, "Selection-vector batches").
(cd "$BUILD_DIR" && VERTEXICA_VECTORIZED=off \
    ctest -R 'exec_test|vertexica_test|api_test' --output-on-failure \
    -j "$(nproc)")

# The frontier knob both ways: the active-vertex sparse dataflow must be
# bit-identical to the dense path (docs/EXECUTOR.md), so every expectation
# has to hold with the frontier pinned off and with it forced on wherever
# structurally possible.
(cd "$BUILD_DIR" && VERTEXICA_FRONTIER=off \
    ctest -R 'vertexica_test|api_test|server_test|extensions_test' \
    --output-on-failure -j "$(nproc)")
(cd "$BUILD_DIR" && VERTEXICA_FRONTIER=on \
    ctest -R 'vertexica_test|api_test|server_test|extensions_test' \
    --output-on-failure -j "$(nproc)")

# And with the ambient shard count forced up: the persistent-sharding
# superstep dataflow must be value-neutral too (docs/API.md), so every
# vertexica/api expectation has to hold unchanged when all runs shard.
(cd "$BUILD_DIR" && VERTEXICA_SHARDS=4 \
    ctest -R 'vertexica_test|api_test|storage_test' --output-on-failure \
    -j "$(nproc)")

# The serving subsystem by name (docs/SERVER.md): concurrent clients with
# differing per-request knobs on one EngineServer must stay bit-identical
# to serial runs, sessions must stay pinned across graph updates, and the
# admission controller must never oversubscribe. Run once at default
# parallelism and once with a multi-thread pool so the admission budget is
# exercised above 1 even on single-core runners. Then the vertexica_server
# binary end-to-end: a real mixed workload from 4 client threads must
# complete with zero failures.
(cd "$BUILD_DIR" && ctest -R server_ --output-on-failure)
(cd "$BUILD_DIR" && VERTEXICA_THREADS=4 ctest -R server_ --output-on-failure)
"$BUILD_DIR"/vertexica_server --vertices=500 --edges=2500 --clients=4 \
    --requests=2 > /dev/null

# Fault-injection pass (docs/DEVELOPING.md, "Fault injection & recovery"):
# the in-process arming API is covered by the regular suites above; this
# pass proves the *environment* arming path fires in a fresh process. The
# FaultEnv tests skip unless VERTEXICA_FAULTS names their site, so the
# binary is invoked directly with the filter — ctest registers whole
# binaries and would arm the fault for every unrelated test too.
VERTEXICA_FAULTS="checkpoint.after_manifest=1:error" \
    "$BUILD_DIR"/tests/extensions_test --gtest_filter='FaultEnvTest.*'

# Crash-recovery smoke: kill a checkpointing run mid-save (simulated crash
# via fault injection, then a raw SIGKILL) and require the restored +
# resumed values to be bit-identical to an uninterrupted run.
./scripts/crash_recovery_smoke.sh "$BUILD_DIR"

# Invariant-audit pass (docs/DEVELOPING.md): a Debug build with
# VERTEXICA_DCHECK=ON compiles in the deep structural validators
# (Column/Table/Bitvector/CsrIndex/PartitionSet CheckInvariants, the knob
# round-trip audit) at every dataflow phase boundary, then runs the full
# suite plus the knob-forcing env passes — any table, shard, index, or
# knob scope that lies about its structure aborts with a precise message
# instead of surfacing as a wrong answer. Tests only: the audit tier is
# about correctness claims, not bench numbers.
DCHECK_DIR="${BUILD_DIR}-dcheck"
cmake -B "$DCHECK_DIR" -S . -DCMAKE_BUILD_TYPE=Debug -DVERTEXICA_DCHECK=ON \
    -DVERTEXICA_BUILD_BENCHES=OFF -DVERTEXICA_BUILD_EXAMPLES=OFF
cmake --build "$DCHECK_DIR" -j "$(nproc)"
(cd "$DCHECK_DIR" && ctest --output-on-failure -j "$(nproc)")
(cd "$DCHECK_DIR" && VERTEXICA_SHARDS=4 \
    ctest -R 'vertexica_test|api_test|storage_test' --output-on-failure \
    -j "$(nproc)")
(cd "$DCHECK_DIR" && VERTEXICA_ENCODING=force \
    ctest -R 'storage_test|exec_test|vertexica_test' --output-on-failure \
    -j "$(nproc)")
(cd "$DCHECK_DIR" && VERTEXICA_FRONTIER=on \
    ctest -R 'vertexica_test|api_test' --output-on-failure -j "$(nproc)")

# Perf trajectory: surface bench JSONs at the repo root so they get
# committed / uploaded as artifacts. Bench binaries write BENCH_*.json
# into their cwd (the build dir), which is gitignored — without this copy
# the bench history stays empty. Only newer-than-committed results move
# (never resurrect a stale build-dir JSON over fresher history); run the
# benches unfiltered before check.sh to refresh a figure.
for f in "$BUILD_DIR"/BENCH_*.json; do
  [ -e "$f" ] || continue
  dest="./$(basename "$f")"
  if [ ! -e "$dest" ] || [ "$f" -nt "$dest" ]; then
    cp "$f" "$dest"
  fi
done

echo "check.sh: all green"
