#!/usr/bin/env python3
"""Determinism and error-model lint for the Vertexica sources.

The engine's central claim (docs/API.md) is bit-identical results across
every execution configuration — thread count, shard count, encoding mode,
join path, frontier path. That claim dies quietly: an unordered-container
iteration here, an ambient knob read on a bare pool thread there. This lint
mechanically rejects the known ways nondeterminism (and the wrong error
model) sneak in:

  R1  std::unordered_map / std::unordered_set in src/ must carry an
      `order-insensitive:` justification comment (same line or within the
      three preceding lines) explaining why map-iteration order can never
      reach a result. Plain #include lines are exempt; prefer Int64HashMap
      (common/hash.h) where the key is an int64.

  R2  No rand()/srand()/time()/std::random_device outside src/common/
      random.* — all randomness flows through the seeded SplitMix/Xoshiro
      generators so every run is reproducible from its seed.

  R3  A ParallelFor(...) call whose body reads an ambient knob resolver
      (ExecThreads, ExecShards, AmbientEncodingMode, MergeJoinEnabled,
      AmbientFrontierMode, ExecKnobs::Capture) must install captured knobs
      via ScopedExecKnobs inside that body — pool threads do not inherit
      the submitter's thread-local overrides, so a bare read silently
      resolves process/env defaults instead of the request's knobs.
      Escape hatch for bodies that are knob-free by design: `ambient-ok:`
      with a reason.

  R4  src/server/, src/api/, src/catalog/ are user-input layers: VX_CHECK /
      VX_CHECK_OK there abort the process on conditions a caller can
      trigger, where a Status return is owed instead. A check that guards a
      genuine internal invariant carries an `internal-invariant:`
      justification (same line or within the three preceding lines).

  R5  Every fault-injection site declared in src/ — a string literal inside
      VX_FAULT_POINT("...") or FaultPointHit("...") — must be referenced by
      name somewhere under tests/ or scripts/. An unexercised fault point is
      dead recovery code: the crash/abort path it guards has never been
      driven, so nothing stops it from silently rotting.

  R6  The fused-pipeline stage files (src/exec/batch.*, src/exec/
      vectorized.*) exist to defer materialization to the pipeline's end:
      a raw Table/Column materialization there — Table::Make, .Take(),
      .Slice() — silently reintroduces the table-at-a-time intermediates
      the selection-vector core removes. Each such call must carry a
      `materialize-ok:` justification (same line or within the three
      preceding lines) naming why it is a legitimate pipeline-end copy.

Exit status 0 when clean, 1 with one `file:line: [rule] message` per
violation otherwise. Pure stdlib; runs anywhere python3 exists.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
TESTS = REPO / "tests"
SCRIPTS = REPO / "scripts"

JUSTIFY_WINDOW = 3  # lines above a flagged line searched for a justification

UNORDERED_RE = re.compile(r"\bstd::unordered_(?:map|set)\b")
RANDOM_RE = re.compile(
    r"\bstd::random_device\b|(?<![\w.:>])s?rand\s*\(|(?<![\w.:>])time\s*\(")
AMBIENT_RE = re.compile(
    r"\bExecThreads\s*\(|\bExecShards\s*\(|\bAmbientEncodingMode\s*\(|"
    r"\bMergeJoinEnabled\s*\(|\bAmbientFrontierMode\s*\(|"
    r"\bExecKnobs::Capture\s*\(")
PARALLEL_FOR_RE = re.compile(r"\bParallelFor\s*\(")
VX_CHECK_RE = re.compile(r"\bVX_CHECK(?:_OK)?\b")
FAULT_SITE_RE = re.compile(
    r"\b(?:VX_FAULT_POINT|FaultPointHit)\s*\(\s*\"([^\"]+)\"")
USER_INPUT_LAYERS = ("server", "api", "catalog")
MATERIALIZE_RE = re.compile(r"\bTable::Make\s*\(|(?:\.|->)(?:Take|Slice)\s*\(")
FUSED_STAGE_PREFIXES = ("src/exec/batch", "src/exec/vectorized")


def has_justification(lines, idx, marker):
    """True when `marker` appears on lines[idx] or the few lines above it."""
    lo = max(0, idx - JUSTIFY_WINDOW)
    return any(marker in lines[j] for j in range(lo, idx + 1))


def parallel_for_span(lines, start):
    """Line span (inclusive) of the ParallelFor(...) call opening at
    lines[start], by parenthesis counting from its opening paren."""
    depth = 0
    seen_open = False
    for i in range(start, len(lines)):
        text = lines[i]
        if i == start:
            text = text[PARALLEL_FOR_RE.search(text).end() - 1:]
        for ch in text:
            if ch == "(":
                depth += 1
                seen_open = True
            elif ch == ")":
                depth -= 1
                if seen_open and depth == 0:
                    return start, i
    return start, len(lines) - 1


def lint_file(path, violations):
    rel = path.relative_to(REPO).as_posix()
    lines = path.read_text().splitlines()

    in_common_random = rel.startswith("src/common/random")
    layer = rel.split("/")[1] if rel.count("/") >= 2 else ""

    for idx, line in enumerate(lines):
        code = line.split("//")[0]

        if (UNORDERED_RE.search(line) and not line.lstrip().startswith("#")
                and UNORDERED_RE.search(code)
                and not has_justification(lines, idx, "order-insensitive:")):
            violations.append(
                f"{rel}:{idx + 1}: [R1] std::unordered container without an "
                f"'order-insensitive:' justification (map-iteration order "
                f"must never reach a result; see scripts/"
                f"lint_determinism.py)")

        if RANDOM_RE.search(code) and not in_common_random:
            violations.append(
                f"{rel}:{idx + 1}: [R2] unseeded randomness or wall-clock "
                f"entropy outside src/common/random.* (use the seeded "
                f"generators so runs reproduce from their seed)")

        if (layer in USER_INPUT_LAYERS and VX_CHECK_RE.search(code)
                and not has_justification(lines, idx, "internal-invariant:")):
            violations.append(
                f"{rel}:{idx + 1}: [R4] VX_CHECK in the user-input layer "
                f"'src/{layer}/' — return a Status the caller can handle, "
                f"or justify with 'internal-invariant:'")

        if (rel.startswith(FUSED_STAGE_PREFIXES)
                and MATERIALIZE_RE.search(code)
                and not has_justification(lines, idx, "materialize-ok:")):
            violations.append(
                f"{rel}:{idx + 1}: [R6] raw materialization inside a "
                f"fused-pipeline stage — fused pipelines materialize once, "
                f"at the pipeline's end; justify a legitimate copy with "
                f"'materialize-ok:'")

    # R3 needs call-spanning context rather than single lines.
    for idx, line in enumerate(lines):
        if not PARALLEL_FOR_RE.search(line.split("//")[0]):
            continue
        lo, hi = parallel_for_span(lines, idx)
        body = "\n".join(lines[lo:hi + 1])
        preamble = "\n".join(lines[max(0, lo - JUSTIFY_WINDOW):lo])
        if (AMBIENT_RE.search(body) and "ScopedExecKnobs" not in body
                and "ambient-ok:" not in body
                and "ambient-ok:" not in preamble):
            violations.append(
                f"{rel}:{idx + 1}: [R3] ParallelFor body reads an ambient "
                f"knob without installing ScopedExecKnobs (pool threads "
                f"don't inherit the submitter's thread-locals); capture "
                f"with ExecKnobs::Capture() outside and install inside, or "
                f"justify with 'ambient-ok:'")


def lint_fault_sites(violations):
    """R5: fault sites declared in src/ must be exercised from tests/ or
    scripts/ — an uninjected fault point guards a recovery path no test has
    ever driven."""
    sites = []  # (name, rel, line)
    for path in sorted(SRC.rglob("*")):
        if path.suffix not in (".cc", ".h"):
            continue
        rel = path.relative_to(REPO).as_posix()
        for idx, line in enumerate(path.read_text().splitlines()):
            for m in FAULT_SITE_RE.finditer(line.split("//")[0]):
                sites.append((m.group(1), rel, idx + 1))
    if not sites:
        return
    corpus = []
    for root in (TESTS, SCRIPTS):
        for path in sorted(root.rglob("*")):
            if path.is_file() and path.suffix in (
                    ".cc", ".h", ".py", ".sh", ".cpp"):
                corpus.append(path.read_text())
    haystack = "\n".join(corpus)
    for name, rel, lineno in sites:
        if name not in haystack:
            violations.append(
                f"{rel}:{lineno}: [R5] fault site '{name}' is never "
                f"referenced under tests/ or scripts/ — arm it in a test "
                f"(ArmFault/VERTEXICA_FAULTS) so its recovery path is "
                f"actually driven")


def main():
    violations = []
    for path in sorted(SRC.rglob("*")):
        if path.suffix in (".cc", ".h"):
            lint_file(path, violations)
    lint_fault_sites(violations)
    if violations:
        print(f"lint_determinism: {len(violations)} violation(s)",
              file=sys.stderr)
        for v in violations:
            print(v, file=sys.stderr)
        return 1
    print("lint_determinism: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
