#!/usr/bin/env bash
# clang-format wrapper (style: repo .clang-format).
#
#   ./scripts/format.sh --check [base-ref]   verify, no writes (CI mode)
#   ./scripts/format.sh [base-ref]           rewrite in place
#   ./scripts/format.sh --all [--check]      whole tree instead of a diff
#
# Default scope is the files changed relative to base-ref (default: the
# merge base with origin/main, falling back to HEAD) — the tree predates
# the .clang-format config, so whole-tree enforcement would drown real
# diffs in reformat noise. New/touched files are held to the style; --all
# exists for a deliberate one-shot reformat.
#
# Skips gracefully (exit 0 with a notice) when clang-format is not
# installed, so local runs on minimal containers don't fail check.sh; CI
# installs the tool and gets real enforcement.
set -euo pipefail

cd "$(dirname "$0")/.."

CHECK=0
ALL=0
BASE=""
for arg in "$@"; do
  case "$arg" in
    --check) CHECK=1 ;;
    --all) ALL=1 ;;
    *) BASE="$arg" ;;
  esac
done

if ! command -v clang-format > /dev/null 2>&1; then
  echo "format.sh: clang-format not installed; skipping (CI enforces this)"
  exit 0
fi

if [ "$ALL" -eq 1 ]; then
  mapfile -t files < <(git ls-files 'src/**/*.cc' 'src/**/*.h' \
      'tests/*.cc' 'benches/*.cc' 'examples/*.cc' 2>/dev/null || true)
else
  if [ -z "$BASE" ]; then
    BASE="$(git merge-base HEAD origin/main 2>/dev/null || echo HEAD)"
  fi
  mapfile -t files < <(git diff --name-only --diff-filter=d "$BASE" -- \
      'src/**/*.cc' 'src/**/*.h' 'tests/*.cc' 'benches/*.cc' \
      'examples/*.cc' 2>/dev/null || true)
fi

if [ "${#files[@]}" -eq 0 ]; then
  echo "format.sh: no files in scope"
  exit 0
fi

if [ "$CHECK" -eq 1 ]; then
  # --dry-run -Werror: nonzero exit + a diff-style note per violation.
  clang-format --style=file --dry-run -Werror "${files[@]}"
  echo "format.sh: ${#files[@]} file(s) clean"
else
  clang-format --style=file -i "${files[@]}"
  echo "format.sh: formatted ${#files[@]} file(s)"
fi
