/// \file vertex_program.h
/// \brief The Pregel-style vertex-centric programming interface (§2.1–2.2).
///
/// Programmers "simply provide their vertex compute function, and Vertexica
/// takes care of running it as standard SQL (with UDFs) in an unmodified
/// relational database". A `VertexProgram` is that compute function plus a
/// declaration of its value/message shapes; `VertexContext` exposes the
/// same API surface the paper lists for the worker: getVertexValue(),
/// getMessages(), getOutEdges(), modifyVertexValue(), sendMessage(), and
/// voteToHalt().

#ifndef VERTEXICA_VERTEXICA_VERTEX_PROGRAM_H_
#define VERTEXICA_VERTEXICA_VERTEX_PROGRAM_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace vertexica {

/// \brief Message combining strategies (component-wise over the message
/// payload). Combiners let the engine collapse all messages addressed to
/// one vertex into a single message between supersteps.
enum class MessageCombiner { kNone, kSum, kMin, kMax };

/// \brief Global aggregator kinds (Pregel "aggregators"). Values contributed
/// by vertices in superstep S are visible to all vertices in superstep S+1.
enum class AggregatorKind { kSum, kMin, kMax };

/// \brief Declaration of one named global aggregator.
struct AggregatorSpec {
  std::string name;
  AggregatorKind kind;
};

class VertexRunner;

/// \brief Per-vertex view handed to `VertexProgram::Compute`.
///
/// The context is owned by the worker UDF; all reads are O(1) into the
/// worker's parsed partition and all writes are buffered into the worker's
/// output table.
class VertexContext {
 public:
  /// \name Topology and progress
  /// @{
  int64_t vertex_id() const { return vertex_id_; }
  int superstep() const { return superstep_; }
  int64_t num_vertices() const { return num_vertices_; }
  /// @}

  /// \name Vertex state (getVertexValue / modifyVertexValue)
  /// @{
  /// Current value; `value_arity` doubles.
  const double* GetVertexValue() const { return value_.data(); }
  double GetVertexValue(int component) const {
    return value_[static_cast<size_t>(component)];
  }
  /// Overwrites the vertex value (copied out at end of Compute).
  void ModifyVertexValue(const double* v) {
    std::copy(v, v + value_.size(), value_.begin());
    modified_ = true;
  }
  void ModifyVertexValue(double v) { ModifyVertexValue(&v); }
  /// @}

  /// \name Incoming messages (getMessages)
  /// @{
  int64_t num_messages() const { return num_messages_; }
  /// Payload of message `i`; `message_arity` doubles.
  const double* GetMessage(int64_t i) const {
    return msg_data_.data() + static_cast<size_t>(i) * msg_arity_;
  }
  /// @}

  /// \name Outgoing edges (getOutEdges)
  /// @{
  int64_t num_out_edges() const {
    return static_cast<int64_t>(edge_dst_.size());
  }
  int64_t OutEdgeTarget(int64_t i) const {
    return edge_dst_[static_cast<size_t>(i)];
  }
  double OutEdgeWeight(int64_t i) const {
    return edge_weight_[static_cast<size_t>(i)];
  }
  /// @}

  /// \name Messaging (sendMessage)
  /// @{
  void SendMessage(int64_t dst, const double* payload);
  void SendMessage(int64_t dst, double payload) { SendMessage(dst, &payload); }
  void SendMessageToAllNeighbors(const double* payload);
  void SendMessageToAllNeighbors(double payload) {
    SendMessageToAllNeighbors(&payload);
  }
  /// @}

  /// \name Halting (voteToHalt)
  /// @{
  void VoteToHalt() { halted_ = true; }
  /// @}

  /// \name Global aggregators
  /// @{
  /// \brief Value aggregated during the previous superstep.
  ///
  /// Contract: `name` must be one of the aggregators the program declared
  /// via `VertexProgram::aggregators()`. Before any contribution arrives
  /// (e.g. in superstep 0) the declared kind's identity is returned — 0 for
  /// kSum, +inf for kMin, -inf for kMax. Reading an *undeclared* aggregator
  /// is a programming error and consistently returns quiet NaN (it used to
  /// return 0.0, which is indistinguishable from a legitimate kSum value);
  /// NaN propagates loudly through any arithmetic that consumes it.
  double GetAggregate(const std::string& name) const;
  /// Contributes to a named aggregator for the next superstep.
  void Aggregate(const std::string& name, double v);
  /// @}

 private:
  friend class VertexRunner;
  friend class BspEngine;  // the Giraph comparator drives the same API

  // Populated by the worker before each Compute call.
  int64_t vertex_id_ = 0;
  int superstep_ = 0;
  int64_t num_vertices_ = 0;
  bool halted_ = false;
  bool modified_ = false;
  std::vector<double> value_;
  std::vector<int64_t> edge_dst_;
  std::vector<double> edge_weight_;
  std::vector<double> msg_data_;
  int64_t num_messages_ = 0;
  int msg_arity_ = 1;

  // Output buffers (flushed by the worker).
  std::vector<int64_t> out_msg_dst_;
  std::vector<double> out_msg_data_;

  const std::map<std::string, double>* prev_aggregates_ = nullptr;
  std::map<std::string, double>* local_aggregates_ = nullptr;
  const std::map<std::string, AggregatorKind>* aggregator_kinds_ = nullptr;
};

/// \brief Base class for user graph queries ("the actual compute function
/// provided by the user", Figure 1).
class VertexProgram {
 public:
  virtual ~VertexProgram() = default;

  /// \brief Number of doubles in a vertex value.
  virtual int value_arity() const = 0;
  /// \brief Number of doubles in a message payload.
  virtual int message_arity() const = 0;

  /// \brief Initial vertex value written into the vertex table at load time.
  virtual void InitValue(int64_t vertex_id, int64_t num_vertices,
                         double* value) const = 0;

  /// \brief The vertex computation, run "once per superstep for every vertex
  /// that has at least one incoming message" (§2.2) — plus every non-halted
  /// vertex, per Pregel semantics.
  virtual void Compute(VertexContext* ctx) = 0;

  /// \brief Optional message combiner.
  virtual MessageCombiner combiner() const { return MessageCombiner::kNone; }

  /// \brief Optional global aggregators.
  virtual std::vector<AggregatorSpec> aggregators() const { return {}; }
};

inline double AggregatorIdentity(AggregatorKind kind) {
  switch (kind) {
    case AggregatorKind::kSum:
      return 0.0;
    case AggregatorKind::kMin:
      return std::numeric_limits<double>::infinity();
    case AggregatorKind::kMax:
      return -std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

inline double MergeAggregate(AggregatorKind kind, double a, double b) {
  switch (kind) {
    case AggregatorKind::kSum:
      return a + b;
    case AggregatorKind::kMin:
      return a < b ? a : b;
    case AggregatorKind::kMax:
      return a > b ? a : b;
  }
  return a;
}

inline void VertexContext::SendMessage(int64_t dst, const double* payload) {
  out_msg_dst_.push_back(dst);
  out_msg_data_.insert(out_msg_data_.end(), payload, payload + msg_arity_);
}

inline void VertexContext::SendMessageToAllNeighbors(const double* payload) {
  for (int64_t dst : edge_dst_) SendMessage(dst, payload);
}

inline double VertexContext::GetAggregate(const std::string& name) const {
  if (prev_aggregates_ != nullptr) {
    auto it = prev_aggregates_->find(name);
    if (it != prev_aggregates_->end()) return it->second;
  }
  if (aggregator_kinds_ != nullptr) {
    auto it = aggregator_kinds_->find(name);
    if (it != aggregator_kinds_->end()) return AggregatorIdentity(it->second);
  }
  // Undeclared aggregator (or a context with no aggregator table): NaN, so
  // the misuse cannot masquerade as a real kSum value of 0.
  return std::numeric_limits<double>::quiet_NaN();
}

inline void VertexContext::Aggregate(const std::string& name, double v) {
  if (aggregator_kinds_ == nullptr || local_aggregates_ == nullptr) return;
  auto kind_it = aggregator_kinds_->find(name);
  if (kind_it == aggregator_kinds_->end()) return;
  auto [it, inserted] = local_aggregates_->emplace(name, v);
  if (!inserted) {
    it->second = MergeAggregate(kind_it->second, it->second, v);
  }
}

}  // namespace vertexica

#endif  // VERTEXICA_VERTEXICA_VERTEX_PROGRAM_H_
