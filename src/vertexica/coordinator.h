/// \file coordinator.h
/// \brief The coordinator (§2.2): the stored procedure that drives
/// supersteps — "it runs as long as there is any message for the next
/// superstep".
///
/// Each superstep the coordinator
///  1. assembles the worker input from the vertex/edge/message tables —
///     either as the §2.3 table union or as the traditional 3-way join,
///  2. hash-partitions it on vertex id and sorts each partition (vertex
///     batching), runs parallel worker UDFs,
///  3. splits the worker output into vertex updates, new messages, and
///     global-aggregator partials,
///  4. optionally combines messages per receiver (combiner),
///  5. applies vertex updates in place or by table replacement depending on
///     the update fraction (update vs. replace), and swaps in the new
///     message table.

#ifndef VERTEXICA_VERTEXICA_COORDINATOR_H_
#define VERTEXICA_VERTEXICA_COORDINATOR_H_

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "graphgen/graph.h"
#include "storage/bitvector.h"
#include "storage/csr_index.h"
#include "vertexica/graph_tables.h"
#include "vertexica/options.h"
#include "vertexica/vertex_program.h"

namespace vertexica {

/// \brief Measurements for one superstep (shown in the demo GUI's time
/// monitor and consumed by the benches).
struct SuperstepStats {
  int superstep = 0;
  int64_t input_rows = 0;        ///< worker input size (union or join rows)
  int64_t active_vertices = 0;   ///< vertices whose Compute ran
  int64_t vertex_updates = 0;    ///< vertices whose state changed
  int64_t messages_sent = 0;     ///< messages for the next superstep
  double seconds = 0.0;
  bool used_replace = false;     ///< update-vs-replace decision taken

  /// \name Phase breakdown (sums to ≈ seconds)
  /// @{
  double input_seconds = 0.0;    ///< union/join assembly
  double worker_seconds = 0.0;   ///< partition + sort + Compute
  double split_seconds = 0.0;    ///< output split & combiner
  double apply_seconds = 0.0;    ///< vertex update / table swaps
  /// @}

  /// \name Stored-table footprint (storage/encoding.h)
  /// Sizes of the vertex + message tables as stored at the end of the
  /// superstep: `encoded_bytes` is the actual (possibly compressed)
  /// representation, `decoded_bytes` the plain equivalent; equal when the
  /// encoding knob is off.
  /// @{
  int64_t encoded_bytes = 0;
  int64_t decoded_bytes = 0;
  /// @}

  /// \name Sharded-dataflow accounting (storage/partition.h)
  /// Filled when the coordinator runs the persistent-sharding path
  /// (shards > 1): per-shard worker-input and stored-message row counts
  /// (indexed by shard id), and how many produced messages had to cross a
  /// shard boundary in the between-superstep exchange. Unsharded runs
  /// report shards = 1 with empty vectors. On sharded runs the phase
  /// breakdown attributes the fused per-shard input build + worker compute
  /// to `worker_seconds` (input_seconds stays 0) and the message exchange
  /// to `split_seconds`.
  /// @{
  int shards = 1;
  std::vector<int64_t> shard_input_rows;
  std::vector<int64_t> shard_messages;
  int64_t cross_shard_messages = 0;
  /// @}

  /// \name Frontier-path accounting (exec/frontier.h)
  /// Whether this superstep's worker input was built from the sparse
  /// active-vertex frontier instead of the full tables, and how many
  /// vertices the frontier contained (the active-set popcount; 0 on dense
  /// supersteps). On sharded runs the decision is per shard:
  /// `used_frontier` is true when any shard took the frontier path and
  /// `frontier_vertices` sums the frontier shards' active counts.
  /// @{
  bool used_frontier = false;
  int64_t frontier_vertices = 0;
  /// @}

  /// \name Join-path accounting (exec/merge_join.h)
  /// Joins executed by this superstep's relational plans — the 3-way
  /// input build and the replace-path vertex rebuild — split by physical
  /// path: order-aware merge joins vs hash joins. `join_rows` is rows
  /// emitted, `join_seconds` wall-clock inside the join kernels (part of
  /// input_seconds/apply_seconds, not in addition to them). With
  /// use_merge_join and the join input path, both superstep joins run as
  /// merge joins: zero hash builds per superstep.
  /// @{
  int64_t merge_joins = 0;
  int64_t hash_joins = 0;
  int64_t join_rows = 0;
  double join_seconds = 0.0;
  /// @}
};

/// \brief Whole-run measurements.
struct RunStats {
  std::vector<SuperstepStats> supersteps;
  double total_seconds = 0.0;
  int64_t total_messages = 0;

  /// \name Frontier-vs-dense superstep counts (exec/frontier.h)
  /// How many supersteps took each input-build path; they sum to
  /// `supersteps.size()` when per-step stats are collected.
  /// @{
  int64_t frontier_supersteps = 0;
  int64_t dense_supersteps = 0;
  /// @}

  /// Superstep count for engines that run supersteps without a per-step
  /// phase breakdown (e.g. the BSP comparator behind the Engine facade);
  /// -1 = derive the count from `supersteps`.
  int superstep_count = -1;

  int num_supersteps() const {
    return superstep_count >= 0 ? superstep_count
                                : static_cast<int>(supersteps.size());
  }

  /// \brief Serializes totals and the per-superstep phase breakdown as a
  /// single JSON object, so benches and `RunResult` report uniformly:
  /// {"total_seconds":…,"total_messages":…,"num_supersteps":…,
  ///  "supersteps":[{"superstep":…,"input_rows":…,…},…]}.
  std::string ToJson() const;
};

/// \brief Streams `stats.ToJson()`.
std::ostream& operator<<(std::ostream& os, const RunStats& stats);

/// \brief Drives a vertex program over the graph tables in a catalog.
class Coordinator {
 public:
  Coordinator(Catalog* catalog, VertexProgram* program,
              VertexicaOptions options = {}, GraphTableNames names = {});
  ~Coordinator();

  /// \brief Runs supersteps until no messages remain and all vertices have
  /// voted to halt (or max_supersteps is reached).
  ///
  /// With an effective shard count > 1 (VertexicaOptions::num_shards, else
  /// the ambient ExecShards() knob) the run takes the persistent-sharding
  /// path: vertex and edge tables are partitioned on vertex id once, kept
  /// resident across supersteps, and each superstep runs the per-shard
  /// dataflow shard-wise in parallel, exchanging only cross-shard messages
  /// in between. Results are bit-identical to the unsharded path at any
  /// shard count.
  Status Run(RunStats* stats = nullptr);

  /// \brief Global aggregator values from the final superstep.
  const std::map<std::string, double>& aggregates() const {
    return prev_aggregates_;
  }

 private:
  /// Shared snapshots so the morsel-parallel input build (exec/parallel.h)
  /// can range-scan the catalog tables without copying them.
  using TablePtr = std::shared_ptr<const Table>;

  Result<Table> BuildUnionInput(const TablePtr& vertex, const TablePtr& edge,
                                const TablePtr& message) const;
  Result<Table> BuildJoinInput(const TablePtr& vertex, const TablePtr& edge,
                               const TablePtr& message) const;
  /// Projects/numbers/re-encodes the (esrc, edst, eweight, edge_seq) join
  /// side of an edge table — the per-run cacheable half of BuildJoinInput;
  /// the sharded path builds one per edge shard.
  Result<TablePtr> BuildEdgeJoinSide(const TablePtr& edge) const;
  /// The per-superstep half: vertex ⟕ message ⟕ prebuilt edge side.
  Result<Table> BuildJoinInputWithEdgeSide(const TablePtr& vertex,
                                           const TablePtr& edge_side,
                                           const TablePtr& message) const;

  /// \name Frontier input builders (exec/frontier.h)
  ///
  /// Sparse counterparts of BuildUnionInput / BuildJoinInputWithEdgeSide:
  /// the worker input is gathered from the `frontier` bitvector over
  /// vertex rows — active vertex rows, their CSR edge slices (union path)
  /// or the restricted probe side (join path), and the full message table
  /// (every receiver is in the frontier by construction; receivers absent
  /// from the vertex table are skipped by the worker exactly as on the
  /// dense path). Gathers iterate set bits in ascending row order and the
  /// section order (v → e → m) is unchanged, so after the stable
  /// partition-and-sort the per-vertex tuple streams — and therefore
  /// results, combiner folds, and aggregate FP folds — are bit-identical
  /// to the dense build.
  /// @{
  Result<Table> BuildUnionInputFrontier(const TablePtr& vertex,
                                        const TablePtr& edge,
                                        const TablePtr& message,
                                        const Bitvector& frontier,
                                        const CsrIndex& csr) const;
  Result<Table> BuildJoinInputFrontier(const TablePtr& vertex,
                                       const TablePtr& edge_side,
                                       const TablePtr& message,
                                       const Bitvector& frontier) const;
  /// @}
  /// Applies the program's message combiner (when configured and enabled)
  /// over a message table; otherwise returns it unchanged.
  Result<Table> CombineMessages(Table messages) const;
  /// In-place path of §2.3 "Update Vs Replace": copies the vertex columns
  /// and scatters the updates.
  Result<Table> UpdateVerticesInPlace(const Table& vertex,
                                      const Table& updates) const;
  /// Replace path: anti-join out updated ids, union the new rows.
  Result<Table> RebuildVertices(const Table& vertex,
                                const Table& updates) const;

  /// Re-declares `keys` (ascending) on a stored table when the rows are
  /// verifiably in that order but the declaration is missing — checkpoint
  /// restore (catalog_io) persists no sort-order metadata, and without
  /// this a resumed run would silently pin every superstep join to the
  /// hash path.
  Status RestoreSortedInvariant(const std::string& table_name,
                                const std::vector<std::string>& keys) const;

  /// The persistent-sharding superstep loop (see Run). `num_shards` > 1,
  /// already clamped to the vertex-batching partition count.
  Status RunSharded(RunStats* stats, int num_shards, int base_partitions,
                    int first_superstep);

  /// Writes the resident shards back to the catalog (vertex re-sorted by
  /// id, messages re-sorted by receiver) — run end and checkpoints.
  Status FlushShardsToCatalog() const;

  Catalog* catalog_;
  VertexProgram* program_;
  VertexicaOptions options_;
  GraphTableNames names_;
  std::map<std::string, double> prev_aggregates_;

  /// Structures derived from one edge-table snapshot, cached together and
  /// invalidated together by snapshot identity — the coordinator re-fetches
  /// the stored edge table every superstep, so replacing it (the
  /// dynamic-graph path) changes `source` and rebuilds both members on
  /// first use. `join_side` is the (esrc, edst, eweight, edge_seq)
  /// projection with the esrc column kept RLE-encoded so the merge join
  /// matches whole runs; `csr` is the per-source-vertex row-slice index the
  /// frontier gathers use (csr_failed remembers an unbuildable layout so an
  /// unsorted edge table is probed once per snapshot, not per superstep).
  /// The message/vertex sides change every superstep and are not cacheable.
  struct EdgeDerived {
    TablePtr source;
    TablePtr join_side;                   ///< lazy; join-input path
    std::shared_ptr<const CsrIndex> csr;  ///< lazy; union frontier path
    bool csr_failed = false;
  };
  /// Drops the cache when `edge` is a different snapshot than the one the
  /// cached structures were derived from.
  void SyncEdgeDerived(const TablePtr& edge) const;
  /// The cached join side for `edge`, building it on first use.
  Result<TablePtr> EdgeJoinSideFor(const TablePtr& edge) const;
  /// The cached CSR index for `edge`, building it on first use; nullptr
  /// when the edge table's src column is not grouped (callers fall back to
  /// the dense path).
  const CsrIndex* EdgeCsrFor(const TablePtr& edge) const;

  mutable EdgeDerived edge_derived_;

  /// Resident shard state of the persistent-sharding path (vertex/edge
  /// PartitionSets, per-shard message tables and cached edge join sides);
  /// null on unsharded runs. Defined in coordinator.cc.
  struct ShardedState;
  std::unique_ptr<ShardedState> sharded_;
};

/// \brief Convenience entry point: loads `graph` into `catalog` (vertex,
/// edge and empty message tables) and runs the program to completion.
Status RunVertexProgram(Catalog* catalog, const Graph& graph,
                        VertexProgram* program,
                        VertexicaOptions options = {},
                        GraphTableNames names = {}, RunStats* stats = nullptr);

}  // namespace vertexica

#endif  // VERTEXICA_VERTEXICA_COORDINATOR_H_
