/// \file graph_tables.h
/// \brief Physical graph storage (§2.2): the vertex, edge and message
/// relational tables, their schemas, and the loader.
///
/// - vertex(id INT64, halted BOOL, v0..v{a-1} DOUBLE)   — id, value, state
/// - edge(src INT64, dst INT64, weight DOUBLE)
/// - message(src INT64, dst INT64, m0..m{b-1} DOUBLE)   — sender, receiver,
///   value
///
/// The worker input "common schema" (§2.3 Table Unions) is
/// (id INT64, kind INT64, other INT64, halted BOOL, p0..p{m-1} DOUBLE)
/// where m = max(a, b, 1). `kind` tags the originating table; `other`
/// carries the edge destination / message sender; payload columns carry the
/// vertex value, edge weight, or message value.

#ifndef VERTEXICA_VERTEXICA_GRAPH_TABLES_H_
#define VERTEXICA_VERTEXICA_GRAPH_TABLES_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "graphgen/graph.h"
#include "storage/table.h"
#include "vertexica/vertex_program.h"

namespace vertexica {

/// \brief Tuple tags in the common schema.
enum TupleKind : int64_t {
  kVertexTuple = 0,
  kEdgeTuple = 1,
  kMessageTuple = 2,
  kAggregateTuple = 3,
};

/// \brief Catalog names of the three graph tables (prefixable so multiple
/// graphs / versions coexist, e.g. for temporal analysis).
struct GraphTableNames {
  std::string vertex = "vertex";
  std::string edge = "edge";
  std::string message = "message";

  static GraphTableNames WithPrefix(const std::string& prefix) {
    return GraphTableNames{prefix + "vertex", prefix + "edge",
                           prefix + "message"};
  }
};

/// \brief vertex(id, halted, v0..v{arity-1}).
Schema MakeVertexSchema(int value_arity);

/// \brief edge(src, dst, weight).
Schema MakeEdgeSchema();

/// \brief message(src, dst, m0..m{arity-1}).
Schema MakeMessageSchema(int message_arity);

/// \brief Common worker-input/-output schema with `payload_arity` payload
/// columns.
Schema MakeUnionSchema(int payload_arity);

/// \brief Payload width for a program: max(value_arity, message_arity, 1).
int PayloadArity(const VertexProgram& program);

/// \brief Materializes the three tables for `graph` into the catalog
/// (replacing existing ones). Vertex values are initialized via
/// `program.InitValue`; the message table starts empty. Equivalent to
/// LoadEdgeTable + LoadProgramTables.
Status LoadGraphTables(Catalog* catalog, const Graph& graph,
                       const VertexProgram& program,
                       const GraphTableNames& names = {});

/// \brief Materializes only the edge table: sorted (src, dst), RLE source
/// column, zone maps. Program-independent, so the serving path builds it
/// once per graph at Prepare time and shares the immutable result across
/// concurrent runs (each run's private catalog references the same table).
Status LoadEdgeTable(Catalog* catalog, const Graph& graph,
                     const GraphTableNames& names = {});

/// \brief Materializes the program-dependent tables — vertex (values via
/// `program.InitValue`) and the empty message table — without touching the
/// edge table.
Status LoadProgramTables(Catalog* catalog, const Graph& graph,
                         const VertexProgram& program,
                         const GraphTableNames& names = {});

/// \brief Reads component `component` of every vertex value into a dense
/// vector indexed by vertex id.
Result<std::vector<double>> ReadVertexValues(const Catalog& catalog,
                                             const GraphTableNames& names,
                                             int component = 0);

/// \brief Copy of `t` with an extra INT64 column `name` = row number.
Table WithRowNumbers(const Table& t, const std::string& name);

}  // namespace vertexica

#endif  // VERTEXICA_VERTEXICA_GRAPH_TABLES_H_
