#include "vertexica/worker.h"

#include <unordered_set>

namespace vertexica {

// ------------------------------------------------------------ UnionRowBuffer

void UnionRowBuffer::AppendRow(int64_t id_v, int64_t kind_v, int64_t other_v,
                               bool halted_v, const double* p, int p_len) {
  id.push_back(id_v);
  kind.push_back(kind_v);
  other.push_back(other_v);
  halted.push_back(halted_v ? 1 : 0);
  for (size_t c = 0; c < payload.size(); ++c) {
    payload[c].push_back(static_cast<int>(c) < p_len ? p[c] : 0.0);
  }
}

Table UnionRowBuffer::ToTable() {
  const int arity = static_cast<int>(payload.size());
  std::vector<Column> cols;
  cols.reserve(static_cast<size_t>(4 + arity));
  cols.push_back(Column::FromInts(std::move(id)));
  cols.push_back(Column::FromInts(std::move(kind)));
  cols.push_back(Column::FromInts(std::move(other)));
  cols.push_back(Column::FromBools(std::move(halted)));
  for (auto& p : payload) cols.push_back(Column::FromDoubles(std::move(p)));
  auto made = Table::Make(MakeUnionSchema(arity), std::move(cols));
  VX_CHECK(made.ok()) << made.status().ToString();
  id = {};
  kind = {};
  other = {};
  halted = {};
  payload.assign(static_cast<size_t>(arity), {});
  return std::move(made).MoveValueUnsafe();
}

// --------------------------------------------------------------- VertexRunner

VertexRunner::VertexRunner(const WorkerSharedState* shared) : shared_(shared) {
  ctx_.superstep_ = shared_->superstep;
  ctx_.num_vertices_ = shared_->num_vertices;
  ctx_.msg_arity_ = shared_->program->message_arity();
  ctx_.value_.resize(static_cast<size_t>(shared_->program->value_arity()));
  ctx_.prev_aggregates_ = shared_->prev_aggregates;
  ctx_.local_aggregates_ = &local_aggregates_;
  ctx_.aggregator_kinds_ = &shared_->aggregator_kinds;
  pad_.resize(static_cast<size_t>(shared_->payload_arity), 0.0);
}

void VertexRunner::BeginVertex(int64_t id, bool halted, const double* value) {
  ctx_.vertex_id_ = id;
  old_halted_ = halted;
  std::copy(value, value + ctx_.value_.size(), ctx_.value_.begin());
  ctx_.edge_dst_.clear();
  ctx_.edge_weight_.clear();
  ctx_.msg_data_.clear();
  ctx_.num_messages_ = 0;
  ctx_.out_msg_dst_.clear();
  ctx_.out_msg_data_.clear();
  ctx_.modified_ = false;
  ctx_.halted_ = false;
}

void VertexRunner::AddEdge(int64_t dst, double weight) {
  ctx_.edge_dst_.push_back(dst);
  ctx_.edge_weight_.push_back(weight);
}

void VertexRunner::AddMessage(const double* payload) {
  ctx_.msg_data_.insert(ctx_.msg_data_.end(), payload,
                        payload + ctx_.msg_arity_);
  ++ctx_.num_messages_;
}

bool VertexRunner::FinishVertex(UnionRowBuffer* out) {
  // §2.2: compute runs for every vertex with at least one incoming message;
  // Pregel additionally keeps non-halted vertices active, and superstep 0
  // computes everywhere.
  const bool active = shared_->superstep == 0 || !old_halted_ ||
                      ctx_.num_messages_ > 0;
  if (!active) return false;

  shared_->program->Compute(&ctx_);

  // Vertex-state row. `other`=1 marks a real state change (used both to
  // count updates for the update-vs-replace decision and to filter the rows
  // actually applied).
  const bool changed = ctx_.modified_ || (ctx_.halted_ != old_halted_);
  out->AppendRow(ctx_.vertex_id_, kVertexTuple, changed ? 1 : 0, ctx_.halted_,
                 ctx_.value_.data(), static_cast<int>(ctx_.value_.size()));

  // Message rows: id = receiver, other = sender.
  const int ma = ctx_.msg_arity_;
  for (size_t m = 0; m < ctx_.out_msg_dst_.size(); ++m) {
    out->AppendRow(ctx_.out_msg_dst_[m], kMessageTuple, ctx_.vertex_id_,
                   false, ctx_.out_msg_data_.data() + m * static_cast<size_t>(ma),
                   ma);
  }
  return true;
}

void VertexRunner::EmitAggregates(UnionRowBuffer* out) {
  for (const auto& [name, value] : local_aggregates_) {
    int64_t index = -1;
    for (size_t i = 0; i < shared_->aggregator_names.size(); ++i) {
      if (shared_->aggregator_names[i] == name) {
        index = static_cast<int64_t>(i);
        break;
      }
    }
    if (index < 0) continue;
    const double p0 = value;
    out->AppendRow(-1, kAggregateTuple, index, false, &p0, 1);
  }
  local_aggregates_.clear();
}

// --------------------------------------------------------------------- Worker

Worker::Worker(std::shared_ptr<const WorkerSharedState> shared)
    : shared_(std::move(shared)),
      out_schema_(MakeUnionSchema(shared_->payload_arity)) {}

Status Worker::ProcessPartition(const Table& partition,
                                const std::function<Status(Table)>& emit) {
  const auto& ids = partition.column(0).ints();
  const auto& kinds = partition.column(1).ints();
  const auto& others = partition.column(2).ints();
  const auto& halted = partition.column(3).bools();
  const int arity = shared_->payload_arity;
  std::vector<const std::vector<double>*> pcols(static_cast<size_t>(arity));
  for (int c = 0; c < arity; ++c) {
    pcols[static_cast<size_t>(c)] = &partition.column(4 + c).doubles();
  }

  const int va = shared_->program->value_arity();
  const int ma = shared_->program->message_arity();
  std::vector<double> value(static_cast<size_t>(va));
  std::vector<double> msg(static_cast<size_t>(ma));

  UnionRowBuffer out(arity);
  VertexRunner runner(shared_.get());

  const int64_t n = partition.num_rows();
  int64_t i = 0;
  while (i < n) {
    const int64_t vid = ids[static_cast<size_t>(i)];
    int64_t end = i;
    int64_t vrow = -1;
    while (end < n && ids[static_cast<size_t>(end)] == vid) {
      if (kinds[static_cast<size_t>(end)] == kVertexTuple) vrow = end;
      ++end;
    }
    if (vrow < 0) {
      // Messages/edges for a vertex id absent from the vertex table.
      i = end;
      continue;
    }
    for (int c = 0; c < va; ++c) {
      value[static_cast<size_t>(c)] =
          (*pcols[static_cast<size_t>(c)])[static_cast<size_t>(vrow)];
    }
    runner.BeginVertex(vid, halted[static_cast<size_t>(vrow)] != 0,
                       value.data());
    for (int64_t r = i; r < end; ++r) {
      const auto sr = static_cast<size_t>(r);
      if (kinds[sr] == kEdgeTuple) {
        runner.AddEdge(others[sr], (*pcols[0])[sr]);
      } else if (kinds[sr] == kMessageTuple) {
        for (int c = 0; c < ma; ++c) {
          msg[static_cast<size_t>(c)] = (*pcols[static_cast<size_t>(c)])[sr];
        }
        runner.AddMessage(msg.data());
      }
    }
    runner.FinishVertex(&out);
    i = end;
  }
  runner.EmitAggregates(&out);
  return emit(out.ToTable());
}

// ----------------------------------------------------------------- JoinWorker

JoinWorker::JoinWorker(std::shared_ptr<const WorkerSharedState> shared)
    : shared_(std::move(shared)),
      out_schema_(MakeUnionSchema(shared_->payload_arity)) {}

Status JoinWorker::ProcessPartition(const Table& partition,
                                    const std::function<Status(Table)>& emit) {
  const Schema& s = partition.schema();
  const int va = shared_->program->value_arity();
  const int ma = shared_->program->message_arity();

  auto Idx = [&s](const std::string& name) { return s.FieldIndex(name); };
  const int id_c = Idx("id");
  const int halted_c = Idx("halted");
  const int msg_seq_c = Idx("msg_seq");
  const int edge_seq_c = Idx("edge_seq");
  const int edst_c = Idx("edst");
  const int eweight_c = Idx("eweight");
  if (id_c < 0 || halted_c < 0 || msg_seq_c < 0 || edge_seq_c < 0 ||
      edst_c < 0 || eweight_c < 0) {
    return Status::Internal("JoinWorker: unexpected input schema " +
                            s.ToString());
  }
  std::vector<int> v_cols(static_cast<size_t>(va));
  for (int c = 0; c < va; ++c) {
    v_cols[static_cast<size_t>(c)] = Idx("v" + std::to_string(c));
  }
  std::vector<int> m_cols(static_cast<size_t>(ma));
  for (int c = 0; c < ma; ++c) {
    m_cols[static_cast<size_t>(c)] = Idx("mm" + std::to_string(c));
  }

  const auto& ids = partition.column(id_c).ints();
  const Column& msg_seq = partition.column(msg_seq_c);
  const Column& edge_seq = partition.column(edge_seq_c);

  std::vector<double> value(static_cast<size_t>(va));
  std::vector<double> msg(static_cast<size_t>(ma));

  UnionRowBuffer out(shared_->payload_arity);
  VertexRunner runner(shared_.get());
  // order-insensitive: membership tests only (dedup within one vertex's
  // tuple group); rows stream through in partition order.
  std::unordered_set<int64_t> seen_msgs;
  std::unordered_set<int64_t> seen_edges;

  const int64_t n = partition.num_rows();
  int64_t i = 0;
  while (i < n) {
    const int64_t vid = ids[static_cast<size_t>(i)];
    int64_t end = i;
    while (end < n && ids[static_cast<size_t>(end)] == vid) ++end;

    for (int c = 0; c < va; ++c) {
      value[static_cast<size_t>(c)] =
          partition.column(v_cols[static_cast<size_t>(c)]).GetDouble(i);
    }
    runner.BeginVertex(vid, partition.column(halted_c).GetBool(i),
                       value.data());
    seen_msgs.clear();
    seen_edges.clear();
    for (int64_t r = i; r < end; ++r) {
      if (!msg_seq.IsNull(r)) {
        const int64_t seq = msg_seq.GetInt64(r);
        if (seen_msgs.insert(seq).second) {
          for (int c = 0; c < ma; ++c) {
            msg[static_cast<size_t>(c)] =
                partition.column(m_cols[static_cast<size_t>(c)]).GetDouble(r);
          }
          runner.AddMessage(msg.data());
        }
      }
      if (!edge_seq.IsNull(r)) {
        const int64_t seq = edge_seq.GetInt64(r);
        if (seen_edges.insert(seq).second) {
          runner.AddEdge(partition.column(edst_c).GetInt64(r),
                         partition.column(eweight_c).GetDouble(r));
        }
      }
    }
    runner.FinishVertex(&out);
    i = end;
  }
  runner.EmitAggregates(&out);
  return emit(out.ToTable());
}

}  // namespace vertexica
