#include "vertexica/coordinator.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <ostream>
#include <sstream>

#include "catalog/catalog_io.h"
#include "common/cancel.h"
#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/string_util.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "exec/exec_knobs.h"
#include "exec/frontier.h"
#include "exec/merge_join.h"
#include "exec/parallel.h"
#include "exec/plan_builder.h"
#include "storage/compression.h"
#include "storage/partition.h"
#include "storage/sort.h"
#include "udf/transform.h"
#include "vertexica/worker.h"

namespace vertexica {

// storage/ cannot see udf/, so the default ShardingSpec hard-codes the
// vertex-batching partition count; pin the two constants together here,
// where both headers are visible — the shard/batch alignment invariant
// (shards = contiguous blocks of the batching partitions) depends on it.
static_assert(ShardingSpec{}.base_partitions == kDefaultTransformPartitions,
              "ShardingSpec::base_partitions must default to the "
              "vertex-batching partition count");

namespace {

/// True when every vertex has voted to halt. With `halted_count` the scan
/// also counts the halted vertices (one full pass — the frontier path's
/// threshold decision reuses this instead of a second traversal); without
/// it the scan exits at the first non-halted vertex.
bool AllHalted(const Table& vertex, int64_t* halted_count = nullptr) {
  const Column* halted = vertex.ColumnByName("halted");
  if (halted == nullptr) {
    if (halted_count != nullptr) *halted_count = 0;
    return false;
  }
  // Stored encoded between supersteps: one comparison per run instead of
  // per vertex (an all-halted column is a single run).
  if (const auto* runs = halted->rle_runs()) {
    int64_t count = 0;
    for (const RleRun& run : *runs) {
      if (run.value != 0) {
        count += run.length;
      } else if (halted_count == nullptr) {
        return false;
      }
    }
    if (halted_count != nullptr) *halted_count = count;
    return count == vertex.num_rows();
  }
  // Plain path, word-at-a-time: AppendBool stores canonical 0/1 bytes, so
  // an all-halted word compares equal to kAllHalted and the per-word halted
  // count is just its popcount.
  constexpr uint64_t kAllHalted = 0x0101010101010101ull;
  const std::vector<uint8_t>& bytes = halted->bools();
  const size_t n = bytes.size();
  int64_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t word;
    std::memcpy(&word, bytes.data() + i, sizeof(word));
    if (halted_count == nullptr) {
      if (word != kAllHalted) return false;
    } else {
      count += __builtin_popcountll(word);
    }
  }
  for (; i < n; ++i) {
    if (bytes[i] != 0) {
      ++count;
    } else if (halted_count == nullptr) {
      return false;
    }
  }
  if (halted_count != nullptr) *halted_count = count;
  return halted_count == nullptr || count == static_cast<int64_t>(n);
}

/// Actual vs. plain footprint of a stored table (SuperstepStats counters).
void AccountTableBytes(const Table& t, int64_t* encoded, int64_t* decoded) {
  for (int c = 0; c < t.num_columns(); ++c) {
    *encoded += EncodedByteSize(t.column(c));
    *decoded += UncompressedByteSize(t.column(c));
  }
}

/// Catalog name of the checkpoint superstep marker.
std::string MarkerName(const GraphTableNames& names) {
  return names.vertex + "__vx_next_superstep";
}

/// True when `t`'s declared sort order starts with the column named
/// `name`, ascending — the check behind propagating the stored tables'
/// sorted invariants into the superstep join inputs.
bool OrderedByColumn(const Table& t, const std::string& name) {
  if (t.sort_order().empty()) return false;
  const SortKey& k = t.sort_order()[0];
  return k.ascending && t.schema().field(k.column).name == name;
}

/// Debug-audit helper (the VX_DCHECK tier): every row of `t` must be owned
/// by shard `shard` under `spec` — the scatter contract a table routed to a
/// shard carries (NULL keys belong to shard 0). Mirrors
/// PartitionSet::CheckInvariants for tables held outside a PartitionSet
/// (the per-shard message tables).
[[maybe_unused]] Status AuditShardPlacement(const Table& t, int key_column,
                                            const ShardingSpec& spec,
                                            int shard) {
  const Column& keys = t.column(key_column);
  for (int64_t r = 0; r < keys.length(); ++r) {
    const int want = keys.IsNull(r) ? spec.ShardOfNull()
                                    : spec.ShardOfKey(keys.GetInt64(r));
    if (want != shard) {
      return Status::Internal(StringFormat(
          "shard placement violated: row %lld routed to shard %d but its "
          "key is owned by shard %d",
          static_cast<long long>(r), shard, want));
    }
  }
  return Status::OK();
}

/// The active set of one superstep over one vertex/message (shard) pair:
/// one bit per vertex row, plus its popcount.
struct Frontier {
  Bitvector bits;
  int64_t active = 0;
};

/// Decides whether a superstep should take the sparse frontier path and, if
/// so, derives the active set: non-halted vertices ∪ message receivers —
/// exactly the vertices whose Compute the worker would run (worker.cc's
/// activity rule), so restricting the input to them cannot change any
/// output row.
///
/// Gates, cheapest first: the knob (`mode` off), superstep 0 (everything is
/// active by definition), and the structural precondition that the vertex
/// table is declared sorted by id — receiver lookup is then a binary search
/// per message destination, and the regimes line up: the in-place update
/// path (the sparse regime this path targets) preserves that declared
/// order, while the union-path replace rebuild (the dense regime) drops it.
/// Under `auto` the halted scan short-circuits the build: active ≥
/// non-halted, so a non-halted fraction above `threshold` is already a
/// dense verdict before any bit is set.
bool ComputeFrontier(const Table& vertex, const Table& message,
                     FrontierMode mode, int superstep, double threshold,
                     Frontier* out) {
  if (mode == FrontierMode::kOff || superstep == 0) return false;
  if (!OrderedByColumn(vertex, "id")) return false;
  const int64_t num_vertices = vertex.num_rows();
  if (num_vertices == 0) return false;
  const double budget =
      threshold * static_cast<double>(num_vertices);  // auto-mode bound

  int64_t halted_rows = 0;
  AllHalted(vertex, &halted_rows);
  const int64_t non_halted = num_vertices - halted_rows;
  if (mode == FrontierMode::kAuto &&
      static_cast<double>(non_halted) > budget) {
    return false;
  }

  Bitvector bits(num_vertices);
  // Non-halted vertices, straight from the stored halted column (RLE runs
  // when encoded — a mostly-halted column is a handful of runs).
  const Column* halted = vertex.ColumnByName("halted");
  if (halted != nullptr) {
    if (const auto* runs = halted->rle_runs()) {
      const auto& starts = *halted->rle_run_starts();
      for (size_t k = 0; k < runs->size(); ++k) {
        if ((*runs)[k].value != 0) continue;
        const int64_t end = starts[k] + (*runs)[k].length;
        for (int64_t r = starts[k]; r < end; ++r) bits.Set(r);
      }
    } else {
      const auto& bytes = halted->bools();
      for (int64_t r = 0; r < num_vertices; ++r) {
        if (bytes[static_cast<size_t>(r)] == 0) bits.Set(r);
      }
    }
  }

  // Message receivers, binary-searched against the sorted id column.
  // Destinations outside the vertex table (orphan messages) set no bit;
  // the full message table is passed through either way and the worker
  // skips those groups identically on both paths. One search per RLE run
  // when the dst column is encoded; consecutive-duplicate skip otherwise
  // (the join path keeps messages sorted by receiver).
  const Column* dst = message.ColumnByName("dst");
  if (dst != nullptr && message.num_rows() > 0) {
    const auto& ids = vertex.ColumnByName("id")->ints();
    const auto set_receiver = [&](int64_t d) {
      const auto it = std::lower_bound(ids.begin(), ids.end(), d);
      if (it != ids.end() && *it == d) bits.Set(it - ids.begin());
    };
    if (const auto* runs = dst->rle_runs()) {
      for (const RleRun& run : *runs) set_receiver(run.value);
    } else {
      const auto& dsts = dst->ints();
      for (size_t r = 0; r < dsts.size(); ++r) {
        if (r > 0 && dsts[r] == dsts[r - 1]) continue;
        set_receiver(dsts[r]);
      }
    }
  }

  const int64_t active = bits.CountOnes();
  if (mode == FrontierMode::kAuto && static_cast<double>(active) > budget) {
    return false;
  }
  out->bits = std::move(bits);
  out->active = active;
  return true;
}

/// Fused-split projection of the worker output onto vertex updates:
/// (id, halted, v0..v{va-1}).
std::vector<ProjectionSpec> UpdateProjection(int va) {
  std::vector<ProjectionSpec> proj = {{"id", Col("id")},
                                      {"halted", Col("halted")}};
  for (int i = 0; i < va; ++i) {
    proj.push_back({StringFormat("v%d", i), Col(StringFormat("p%d", i))});
  }
  return proj;
}

/// Fused-split projection of the worker output onto new messages:
/// (src, dst, m0..m{ma-1}); sender is `other`, receiver is `id`.
std::vector<ProjectionSpec> MessageProjection(int ma) {
  std::vector<ProjectionSpec> proj = {{"src", Col("other")},
                                      {"dst", Col("id")}};
  for (int i = 0; i < ma; ++i) {
    proj.push_back({StringFormat("m%d", i), Col(StringFormat("p%d", i))});
  }
  return proj;
}

/// One pass over a worker-output table: the active-vertex count plus the
/// kind-3 aggregator partial rows as (aggregator index, partial) pairs in
/// row order. Collected rather than merged so the sharded path can replay
/// the merges across shards in global row order — the exact fold sequence
/// of the unsharded loop.
struct WorkerOutputScan {
  int64_t active = 0;
  std::vector<std::pair<int64_t, double>> aggregate_rows;
};

WorkerOutputScan ScanWorkerOutput(const Table& out) {
  WorkerOutputScan scan;
  const auto& kinds = out.column(1).ints();
  const auto& others = out.column(2).ints();
  const auto& p0 = out.column(4).doubles();
  for (int64_t r = 0; r < out.num_rows(); ++r) {
    const auto sr = static_cast<size_t>(r);
    if (kinds[sr] == kVertexTuple) {
      ++scan.active;
    } else if (kinds[sr] == kAggregateTuple) {
      scan.aggregate_rows.emplace_back(others[sr], p0[sr]);
    }
  }
  return scan;
}

/// The fused σ→π worker-output split (updates, new messages, aggregate
/// scan) — one definition shared by the sharded and unsharded superstep
/// loops, so the two paths cannot drift apart and break their documented
/// bit-identity contract.
struct SplitOutputs {
  Table updates;
  Table messages;
  WorkerOutputScan scan;
};

Result<SplitOutputs> SplitWorkerOutput(const std::shared_ptr<const Table>& out,
                                       int va, int ma) {
  SplitOutputs split;
  // Vertex updates: kind=0 rows with other=1 (state actually changed).
  VX_ASSIGN_OR_RETURN(
      split.updates,
      ParallelFilterProject(
          out,
          And(Eq(Col("kind"), Lit(static_cast<int64_t>(kVertexTuple))),
              Eq(Col("other"), Lit(int64_t{1}))),
          UpdateProjection(va)));
  // New messages: kind=2 rows; sender is `other`, receiver is `id`.
  VX_ASSIGN_OR_RETURN(
      split.messages,
      ParallelFilterProject(
          out, Eq(Col("kind"), Lit(static_cast<int64_t>(kMessageTuple))),
          MessageProjection(ma)));
  split.scan = ScanWorkerOutput(*out);
  return split;
}

/// Folds collected aggregator partials into `aggregates` in the order
/// given — callers pass rows in global worker-output row order.
void MergeAggregateRows(const std::vector<AggregatorSpec>& agg_specs,
                        const std::vector<std::pair<int64_t, double>>& rows,
                        std::map<std::string, double>* aggregates) {
  for (const auto& [index, partial] : rows) {
    const auto idx = static_cast<size_t>(index);
    if (idx < agg_specs.size()) {
      const auto& spec = agg_specs[idx];
      double& slot = (*aggregates)[spec.name];
      slot = MergeAggregate(spec.kind, slot, partial);
    }
  }
}

AggOp CombinerToAggOp(MessageCombiner c) {
  switch (c) {
    case MessageCombiner::kSum:
      return AggOp::kSum;
    case MessageCombiner::kMin:
      return AggOp::kMin;
    case MessageCombiner::kMax:
      return AggOp::kMax;
    case MessageCombiner::kNone:
      break;
  }
  return AggOp::kSum;
}

}  // namespace

/// Resident state of the persistent-sharding path, built once per run:
/// vertex shards (replaced in place as supersteps apply updates), immutable
/// edge shards with their cached join sides, and the per-shard message
/// tables swapped by the between-superstep exchange.
struct Coordinator::ShardedState {
  ShardingSpec spec;
  PartitionSet vertex;
  PartitionSet edge;
  std::vector<TablePtr> message;
  std::vector<TablePtr> edge_join_side;  // empty on the union-input path
  /// Per-shard CSR edge indexes of the union-path frontier gathers, built
  /// lazily the first superstep a shard takes the frontier path (a dense
  /// run never pays for them). Race-free without locks: each shard's slot
  /// is touched only by the one ParallelFor task that owns that shard in a
  /// superstep, and cross-superstep visibility rides the pool's
  /// submit/join synchronization. `edge_csr_failed[s]` remembers an
  /// unbuildable shard layout so it is probed once, not every superstep.
  std::vector<std::shared_ptr<const CsrIndex>> edge_csr;
  std::vector<uint8_t> edge_csr_failed;
};

Coordinator::Coordinator(Catalog* catalog, VertexProgram* program,
                         VertexicaOptions options, GraphTableNames names)
    : catalog_(catalog),
      program_(program),
      options_(options),
      names_(std::move(names)) {}

Coordinator::~Coordinator() = default;

Result<Table> Coordinator::BuildUnionInput(const TablePtr& vertex,
                                           const TablePtr& edge,
                                           const TablePtr& message) const {
  const int va = program_->value_arity();
  const int ma = program_->message_arity();
  const int arity = PayloadArity(*program_);

  // §2.3 "Table Unions": the three inputs are renamed to a common schema
  // and unioned instead of joined. Each section is projected
  // morsel-parallel; UNION ALL is then just ordered concatenation.
  std::vector<ProjectionSpec> vproj = {
      {"id", Col("id")},
      {"kind", Lit(static_cast<int64_t>(kVertexTuple))},
      {"other", Lit(int64_t{-1})},
      {"halted", Col("halted")}};
  for (int i = 0; i < arity; ++i) {
    vproj.push_back({StringFormat("p%d", i),
                     i < va ? Col(StringFormat("v%d", i)) : Lit(0.0)});
  }
  std::vector<ProjectionSpec> eproj = {
      {"id", Col("src")},
      {"kind", Lit(static_cast<int64_t>(kEdgeTuple))},
      {"other", Col("dst")},
      {"halted", Lit(false)}};
  for (int i = 0; i < arity; ++i) {
    eproj.push_back({StringFormat("p%d", i),
                     i == 0 ? Col("weight") : Lit(0.0)});
  }
  std::vector<ProjectionSpec> mproj = {
      {"id", Col("dst")},
      {"kind", Lit(static_cast<int64_t>(kMessageTuple))},
      {"other", Col("src")},
      {"halted", Lit(false)}};
  for (int i = 0; i < arity; ++i) {
    mproj.push_back({StringFormat("p%d", i),
                     i < ma ? Col(StringFormat("m%d", i)) : Lit(0.0)});
  }

  VX_ASSIGN_OR_RETURN(Table input, ParallelProject(vertex, vproj));
  VX_ASSIGN_OR_RETURN(Table edge_part, ParallelProject(edge, eproj));
  VX_ASSIGN_OR_RETURN(Table msg_part, ParallelProject(message, mproj));
  VX_RETURN_NOT_OK(input.Append(edge_part));
  VX_RETURN_NOT_OK(input.Append(msg_part));
  return input;
}

Result<Coordinator::TablePtr> Coordinator::BuildEdgeJoinSide(
    const TablePtr& edge) const {
  // The edge side is identical every superstep (the coordinator never
  // rewrites the edge table): project/number/declare it once per run and
  // reuse the shared snapshot. The esrc key column is re-encoded RLE —
  // one run per source vertex on the (src, dst)-sorted layout — so the
  // merge join matches whole runs without decoding it.
  VX_ASSIGN_OR_RETURN(Table edges,
                      ParallelProject(edge, {{"esrc", Col("src")},
                                             {"edst", Col("dst")},
                                             {"eweight", Col("weight")}}));
  edges = WithRowNumbers(edges, "edge_seq");
  if (AmbientEncodingMode() != EncodingMode::kOff) {
    edges.mutable_column(0)->Encode(AmbientEncodingMode());
  }
  if (edge->OrderCoversKeys({0, 1})) {
    edges.SetSortOrder({{0, true}, {1, true}});
  } else if (OrderedByColumn(*edge, "src")) {
    edges.SetSortOrder({{0, true}});
  }
  return std::make_shared<const Table>(std::move(edges));
}

Result<Table> Coordinator::BuildJoinInputWithEdgeSide(
    const TablePtr& vertex, const TablePtr& edge_side,
    const TablePtr& message) const {
  const int ma = program_->message_arity();

  // The "traditional database wisdom" plan §2.3 argues against: a 3-way
  // join of vertex ⟕ message ⟕ edge. Sequence-number columns let the worker
  // undo the |messages| × |edges| fan-out per vertex. The projections run
  // morsel-parallel and the left joins are the parallel hash joins behind
  // PlanBuilder::Join.
  std::vector<ProjectionSpec> mproj = {{"mdst", Col("dst")},
                                       {"msender", Col("src")}};
  for (int i = 0; i < ma; ++i) {
    mproj.push_back({StringFormat("mm%d", i), Col(StringFormat("m%d", i))});
  }
  VX_ASSIGN_OR_RETURN(Table msgs, ParallelProject(message, mproj));
  msgs = WithRowNumbers(msgs, "msg_seq");

  // Propagate the stored message table's sorted invariant onto the
  // projected side (projection and row-numbering preserve row order):
  // message is kept sorted by receiver. With the vertex table sorted by
  // id and the cached edge side, the planner turns both left joins into
  // merge joins — zero hash builds per superstep (exec/merge_join.h).
  if (OrderedByColumn(*message, "dst")) msgs.SetSortOrder({{0, true}});

  // vertex columns: id, halted, v0..v{va-1}; the JoinWorker resolves them
  // by name.
  return PlanBuilder::Scan(vertex)
      .Join(PlanBuilder::Scan(std::move(msgs)), {"id"}, {"mdst"},
            JoinType::kLeft)
      .Join(PlanBuilder::Scan(edge_side), {"id"}, {"esrc"},
            JoinType::kLeft)
      .Execute();
}

void Coordinator::SyncEdgeDerived(const TablePtr& edge) const {
  if (edge_derived_.source == edge) return;
  // A different snapshot — including an edge table replaced mid-run (the
  // dynamic-graph path): drop every derived structure together so nothing
  // stale can pair with the new rows.
  edge_derived_ = EdgeDerived{};
  edge_derived_.source = edge;
}

Result<Coordinator::TablePtr> Coordinator::EdgeJoinSideFor(
    const TablePtr& edge) const {
  SyncEdgeDerived(edge);
  if (edge_derived_.join_side == nullptr) {
    VX_ASSIGN_OR_RETURN(edge_derived_.join_side, BuildEdgeJoinSide(edge));
  }
  return edge_derived_.join_side;
}

const CsrIndex* Coordinator::EdgeCsrFor(const TablePtr& edge) const {
  SyncEdgeDerived(edge);
  if (edge_derived_.csr == nullptr && !edge_derived_.csr_failed) {
    const Column* src = edge->ColumnByName("src");
    if (src != nullptr) edge_derived_.csr = CsrIndex::Build(*src);
    edge_derived_.csr_failed = edge_derived_.csr == nullptr;
    if (edge_derived_.csr != nullptr) {
      // The index is cached across supersteps keyed on this snapshot; prove
      // once that it describes exactly this key column.
      VX_DCHECK_OK(edge_derived_.csr->CheckInvariants(*src));
    }
  }
  return edge_derived_.csr.get();
}

Result<Table> Coordinator::BuildJoinInput(const TablePtr& vertex,
                                          const TablePtr& edge,
                                          const TablePtr& message) const {
  VX_ASSIGN_OR_RETURN(TablePtr edge_side, EdgeJoinSideFor(edge));
  return BuildJoinInputWithEdgeSide(vertex, edge_side, message);
}

Result<Table> Coordinator::BuildUnionInputFrontier(
    const TablePtr& vertex, const TablePtr& edge, const TablePtr& message,
    const Bitvector& frontier, const CsrIndex& csr) const {
  // Restrict the vertex section to the active rows and the edge section to
  // their CSR slices, then reuse the dense union builder over the small
  // tables. Both gathers iterate the frontier in ascending row order over
  // id-sorted tables, so the restricted sections keep the full tables'
  // relative row order — after the stable partition-and-sort the surviving
  // per-vertex tuple streams are exactly the dense build's (inactive
  // vertices contribute no worker output, so dropping their rows is
  // unobservable). The message section is passed through whole: every
  // in-table receiver is in the frontier by construction, and orphan
  // receivers are skipped by the worker on both paths.
  const std::vector<int64_t> active_rows = frontier.SetIndices();
  Table active_vertex = vertex->Take(active_rows);

  const auto& ids = vertex->ColumnByName("id")->ints();
  std::vector<int64_t> edge_rows;
  for (int64_t r : active_rows) {
    const CsrIndex::Slice s = csr.NeighborSlice(ids[static_cast<size_t>(r)]);
    for (int64_t e = s.begin; e < s.end; ++e) edge_rows.push_back(e);
  }
  Table active_edge = edge->Take(edge_rows);

  return BuildUnionInput(
      std::make_shared<const Table>(std::move(active_vertex)),
      std::make_shared<const Table>(std::move(active_edge)), message);
}

Result<Table> Coordinator::BuildJoinInputFrontier(
    const TablePtr& vertex, const TablePtr& edge_side,
    const TablePtr& message, const Bitvector& frontier) const {
  // Only the probe (vertex) side is restricted; the message and edge build
  // sides stay whole, so their msg_seq/edge_seq numbering — what the worker
  // uses to undo the join fan-out — is untouched. Join output is
  // probe-row-major, so dropping probe rows that produce no worker output
  // leaves the surviving rows' relative order (and the per-vertex streams)
  // bit-identical to the dense plan's.
  Table active = vertex->Take(frontier.SetIndices());
  // Take conservatively drops the declared order, but the gather indices
  // are ascending over an id-sorted table (a frontier precondition) — the
  // restriction is still id-sorted; re-declare it so the superstep joins
  // keep merging.
  VX_ASSIGN_OR_RETURN(int id_c, active.ColumnIndex("id"));
  active.SetSortOrder({{id_c, true}});
  return BuildJoinInputWithEdgeSide(
      std::make_shared<const Table>(std::move(active)), edge_side, message);
}

Result<Table> Coordinator::UpdateVerticesInPlace(const Table& vertex,
                                                 const Table& updates) const {
  const int va = program_->value_arity();
  Table out = vertex;  // copy-on-write of the stored version
  VX_ASSIGN_OR_RETURN(int id_c, out.ColumnIndex("id"));
  VX_ASSIGN_OR_RETURN(int halted_c, out.ColumnIndex("halted"));
  // The scatter rewrites halted/value cells in place but never moves rows
  // and never touches ids, so a declared sorted-by-id order survives;
  // remember it and re-declare after the mutable_column accesses below
  // conservatively drop it. (Only the id key is safe to re-declare — the
  // other columns are exactly the ones being rewritten.)
  const bool ordered_by_id = OrderedByColumn(out, "id");

  Int64HashMap<int64_t> row_of(static_cast<size_t>(out.num_rows()));
  const auto& ids = out.column(id_c).ints();
  for (int64_t r = 0; r < out.num_rows(); ++r) {
    row_of.GetOrInsert(ids[static_cast<size_t>(r)], r);
  }

  auto& halted = *out.mutable_column(halted_c)->mutable_bools();
  std::vector<std::vector<double>*> vcols(static_cast<size_t>(va));
  for (int i = 0; i < va; ++i) {
    VX_ASSIGN_OR_RETURN(int c, out.ColumnIndex(StringFormat("v%d", i)));
    vcols[static_cast<size_t>(i)] = out.mutable_column(c)->mutable_doubles();
  }

  VX_ASSIGN_OR_RETURN(int uid_c, updates.ColumnIndex("id"));
  VX_ASSIGN_OR_RETURN(int uhalted_c, updates.ColumnIndex("halted"));
  std::vector<const std::vector<double>*> ucols(static_cast<size_t>(va));
  for (int i = 0; i < va; ++i) {
    VX_ASSIGN_OR_RETURN(int c, updates.ColumnIndex(StringFormat("v%d", i)));
    ucols[static_cast<size_t>(i)] = &updates.column(c).doubles();
  }

  // Morsel-parallel scatter: worker output contains at most one update row
  // per vertex, so every target row is written by exactly one morsel.
  const auto& uids = updates.column(uid_c).ints();
  const auto& uhalted = updates.column(uhalted_c).bools();
  // ambient-ok: the lambda reads no knobs; ExecThreads() below is the
  // thread-count argument, evaluated on the submitting thread.
  VX_RETURN_NOT_OK(ThreadPool::Default()->ParallelFor(
      0, static_cast<size_t>(updates.num_rows()),
      static_cast<size_t>(kDefaultMorselRows),
      [&](size_t begin, size_t end) {
        for (size_t su = begin; su < end; ++su) {
          const int64_t* row = row_of.Find(uids[su]);
          if (row == nullptr) continue;
          const auto sr = static_cast<size_t>(*row);
          halted[sr] = uhalted[su];
          for (int i = 0; i < va; ++i) {
            (*vcols[static_cast<size_t>(i)])[sr] =
                (*ucols[static_cast<size_t>(i)])[su];
          }
        }
        return Status::OK();
      },
      ExecThreads()));
  if (ordered_by_id) out.SetSortOrder({{id_c, true}});
  return out;
}

Result<Table> Coordinator::CombineMessages(Table messages) const {
  if (!options_.use_combiner ||
      program_->combiner() == MessageCombiner::kNone ||
      messages.num_rows() == 0) {
    return messages;
  }
  const int ma = program_->message_arity();
  const AggOp op = CombinerToAggOp(program_->combiner());
  std::vector<AggSpec> specs;
  for (int i = 0; i < ma; ++i) {
    specs.push_back({op, StringFormat("m%d", i), StringFormat("m%d", i)});
  }
  std::vector<ProjectionSpec> cproj = {{"src", Lit(int64_t{-1})},
                                       {"dst", Col("dst")}};
  for (int i = 0; i < ma; ++i) {
    cproj.push_back({StringFormat("m%d", i), Col(StringFormat("m%d", i))});
  }
  return PlanBuilder::Scan(std::move(messages))
      .Aggregate({"dst"}, std::move(specs))
      .Project(std::move(cproj))
      .Execute();
}

Result<Table> Coordinator::RebuildVertices(const Table& vertex,
                                           const Table& updates) const {
  // §2.3 replace path: new_vertex = (vertex ANTI JOIN updates) ∪ updates,
  // i.e. a bulk rebuild instead of row updates.
  return PlanBuilder::Scan(vertex)
      .Join(PlanBuilder::Scan(updates).Select({"id"}), {"id"}, {"id"},
            JoinType::kAnti)
      .Union(PlanBuilder::Scan(updates))
      .Execute();
}

Status Coordinator::RestoreSortedInvariant(
    const std::string& table_name, const std::vector<std::string>& keys) const {
  if (!catalog_->HasTable(table_name)) return Status::OK();
  VX_ASSIGN_OR_RETURN(auto table, catalog_->GetTable(table_name));
  std::vector<SortKey> order;
  std::vector<int> cols;
  for (const std::string& k : keys) {
    VX_ASSIGN_OR_RETURN(int c, table->ColumnIndex(k));
    cols.push_back(c);
    order.push_back({c, true});
  }
  if (table->OrderCoversKeys(cols)) return Status::OK();  // already declared
  // Not verifiably sorted (e.g. restored from a union-path checkpoint):
  // leave it — the per-superstep maintenance re-sorts what it needs.
  if (!TableSortedOnKeys(*table, cols)) return Status::OK();
  // ReplaceTable needs a value, so attaching the declaration costs one
  // table copy — paid once per run, and only when the declaration is
  // missing (i.e. a checkpoint-restored catalog), never on a fresh load.
  Table declared = *table;
  declared.SetSortOrder(std::move(order));
  return catalog_->ReplaceTable(table_name, std::move(declared));
}

Status Coordinator::Run(RunStats* stats) {
  const int va = program_->value_arity();
  const int ma = program_->message_arity();
  const int arity = PayloadArity(*program_);
  if (va <= 0 || ma <= 0) {
    return Status::InvalidArgument("vertex program arities must be positive");
  }

  const auto agg_specs = program_->aggregators();
  prev_aggregates_.clear();

  // The ablation switch: use_merge_join=false pins the hash joins for the
  // whole run (and skips the sorted-invariant maintenance below); when
  // true, the ambient knob (VERTEXICA_MERGE_JOIN / ScopedMergeJoin)
  // still governs, like the encoding mode.
  std::optional<ScopedMergeJoin> scoped_merge;
  if (!options_.use_merge_join) scoped_merge.emplace(false);

  // The sorted-invariant maintenance below is gated on the join-input
  // path only — NOT on the merge-join knob — so toggling use_merge_join
  // (or VERTEXICA_MERGE_JOIN) swaps exactly one thing: the physical join
  // operator. Table row orders, worker inputs, and therefore results are
  // bit-identical by construction between the two paths.

  // A restored checkpoint carries the rows but not the sort-order
  // declarations (catalog_io persists none); re-establish them up front
  // (one verification pass per table) so a resumed run merges like a
  // fresh one instead of silently hashing to the end.
  if (!options_.use_union_input) {
    VX_RETURN_NOT_OK(RestoreSortedInvariant(names_.vertex, {"id"}));
    VX_RETURN_NOT_OK(RestoreSortedInvariant(names_.edge, {"src", "dst"}));
    VX_RETURN_NOT_OK(RestoreSortedInvariant(names_.message, {"dst"}));
  }

  // §1 durability: resume from a checkpoint marker restored by LoadCatalog.
  int first_superstep = 0;
  if (options_.resume_from_checkpoint &&
      catalog_->HasTable(MarkerName(names_))) {
    VX_ASSIGN_OR_RETURN(auto marker, catalog_->GetTable(MarkerName(names_)));
    if (marker->num_rows() == 1) {
      first_superstep =
          static_cast<int>(marker->column(0).GetInt64(0));
    }
  }

  // Persistent sharding (§2.3 vertex batching made resident): with an
  // effective shard count > 1 the run partitions the graph tables once and
  // loops shard-wise. The shard count is capped at the vertex-batching
  // partition count — shards are contiguous blocks of those partitions,
  // which is what makes the two paths bit-identical (storage/partition.h).
  const int base_partitions = options_.num_partitions > 0
                                  ? options_.num_partitions
                                  : kDefaultTransformPartitions;
  const int num_shards = std::min(
      options_.num_shards > 0 ? options_.num_shards : ExecShards(),
      base_partitions);
  if (num_shards > 1) {
    return RunSharded(stats, num_shards, base_partitions, first_superstep);
  }

  WallTimer total_timer;
  for (int superstep = first_superstep;
       superstep < options_.max_supersteps; ++superstep) {
    // Superstep boundary: the natural stopping point of a cancelled or
    // past-deadline run — the catalog still holds the last completed
    // superstep's consistent state.
    VX_RETURN_NOT_OK(CheckAmbientCancel());
    VX_FAULT_POINT("coordinator.superstep");
    WallTimer step_timer;
    // Which physical join path this superstep's plans take (input build +
    // replace-path rebuild), published via SuperstepStats.
    JoinPathStats join_stats;
    ScopedJoinStatsCollector join_collector(&join_stats);
    VX_ASSIGN_OR_RETURN(auto vertex, catalog_->GetTable(names_.vertex));
    VX_ASSIGN_OR_RETURN(auto edge, catalog_->GetTable(names_.edge));
    VX_ASSIGN_OR_RETURN(auto message, catalog_->GetTable(names_.message));

    // Stored-procedure loop condition: "it runs as long as there is any
    // message for the next superstep" (plus Pregel's not-yet-halted rule).
    if (superstep > 0 && message->num_rows() == 0 && AllHalted(*vertex)) {
      break;
    }

    auto shared = std::make_shared<WorkerSharedState>();
    shared->program = program_;
    shared->superstep = superstep;
    shared->num_vertices = vertex->num_rows();
    shared->payload_arity = arity;
    shared->prev_aggregates = &prev_aggregates_;
    for (const auto& spec : agg_specs) {
      shared->aggregator_kinds[spec.name] = spec.kind;
      shared->aggregator_names.push_back(spec.name);
    }

    // ---- Worker input: frontier (sparse) or dense build. ---------------
    // The frontier decision is part of the measured input phase — deriving
    // the active set is a cost the sparse path pays, so input_seconds must
    // charge for it.
    WallTimer phase_timer;
    Frontier frontier;
    bool used_frontier =
        ComputeFrontier(*vertex, *message, AmbientFrontierMode(), superstep,
                        options_.frontier_threshold, &frontier);
    // The frontier bitvector gates which vertices compute this superstep;
    // its word-tail hygiene is what the popcount/AND/OR shortcuts assume.
    if (used_frontier) VX_DCHECK_OK(frontier.bits.CheckInvariants());
    Table input;
    if (options_.use_union_input) {
      const CsrIndex* csr = used_frontier ? EdgeCsrFor(edge) : nullptr;
      used_frontier = used_frontier && csr != nullptr;
      if (used_frontier) {
        VX_ASSIGN_OR_RETURN(input, BuildUnionInputFrontier(
                                       vertex, edge, message, frontier.bits,
                                       *csr));
      } else {
        VX_ASSIGN_OR_RETURN(input, BuildUnionInput(vertex, edge, message));
      }
    } else {
      VX_ASSIGN_OR_RETURN(TablePtr edge_side, EdgeJoinSideFor(edge));
      if (used_frontier) {
        VX_ASSIGN_OR_RETURN(input, BuildJoinInputFrontier(
                                       vertex, edge_side, message,
                                       frontier.bits));
      } else {
        VX_ASSIGN_OR_RETURN(
            input, BuildJoinInputWithEdgeSide(vertex, edge_side, message));
      }
    }
    const double input_seconds = phase_timer.ElapsedSeconds();

    // Vertex batching (§2.3): hash partition on vertex id (column 0), sort
    // each partition on id, and run the worker UDFs in parallel.
    TransformOptions topts;
    topts.num_workers = options_.num_workers;
    topts.num_partitions = options_.num_partitions;
    topts.sort_columns = {0};
    TransformUdfFactory factory;
    if (options_.use_union_input) {
      factory = [shared]() -> std::unique_ptr<TransformUdf> {
        return std::make_unique<Worker>(shared);
      };
    } else {
      factory = [shared]() -> std::unique_ptr<TransformUdf> {
        return std::make_unique<JoinWorker>(shared);
      };
    }
    phase_timer.Restart();
    VX_ASSIGN_OR_RETURN(Table out_table,
                        ApplyTransform(input, 0, factory, topts));
    const double worker_seconds = phase_timer.ElapsedSeconds();
    phase_timer.Restart();

    // Shared snapshot so the two split scans below range-scan it in
    // parallel without copying.
    const auto out = std::make_shared<const Table>(std::move(out_table));

    // ---- Split the worker output (fused σ→π, morsel-parallel). --------
    VX_ASSIGN_OR_RETURN(SplitOutputs split, SplitWorkerOutput(out, va, ma));
    Table updates = std::move(split.updates);
    Table new_messages = std::move(split.messages);
    const int64_t active = split.scan.active;
    std::map<std::string, double> new_aggregates;
    for (const auto& spec : agg_specs) {
      new_aggregates[spec.name] = AggregatorIdentity(spec.kind);
    }
    MergeAggregateRows(agg_specs, split.scan.aggregate_rows,
                       &new_aggregates);

    // ---- Message combining. -------------------------------------------
    VX_ASSIGN_OR_RETURN(new_messages,
                        CombineMessages(std::move(new_messages)));

    // ---- Sorted-message invariant (order-aware joins). ----------------
    // Keep the stored message table sorted by receiver so the next
    // superstep's vertex ⟕ message join merges instead of hashing. The
    // sort is stable, so each receiver's messages keep their arrival
    // order — worker-visible message streams (and results) are unchanged.
    // Only the join-input path benefits, so only it pays; not gated on
    // the merge knob (see the bit-identity note at the top of Run).
    if (!options_.use_union_input) {
      VX_ASSIGN_OR_RETURN(int dst_c, new_messages.ColumnIndex("dst"));
      if (new_messages.num_rows() > 0 &&
          !OrderedByColumn(new_messages, "dst")) {
        new_messages = SortTable(new_messages, {{dst_c, true}});
      } else if (new_messages.sort_order().empty()) {
        new_messages.SetSortOrder({{dst_c, true}});  // 0 rows: vacuously so
      }
    }

    const double split_seconds = phase_timer.ElapsedSeconds();
    phase_timer.Restart();

    // ---- Update vs. replace (§2.3). -----------------------------------
    // Both stored tables are (re-)encoded before the swap so they stay
    // compressed between supersteps (storage/encoding.h); the next
    // superstep's scans and projections decode lazily, and whole-table
    // passes like AllHalted read runs directly. Value-neutral: results are
    // bit-identical with the encoding knob off.
    const EncodingMode enc_mode = AmbientEncodingMode();
    int64_t encoded_bytes = 0;
    int64_t decoded_bytes = 0;
    bool used_replace = false;
    if (updates.num_rows() > 0) {
      Table new_vertex;
      const double frac = static_cast<double>(updates.num_rows()) /
                          static_cast<double>(std::max<int64_t>(
                              1, vertex->num_rows()));
      if (frac < options_.update_threshold) {
        VX_ASSIGN_OR_RETURN(new_vertex,
                            UpdateVerticesInPlace(*vertex, updates));
      } else {
        used_replace = true;
        VX_ASSIGN_OR_RETURN(new_vertex, RebuildVertices(*vertex, updates));
        // The anti-join ∪ union rebuild breaks the sorted-by-id invariant
        // (updated rows land at the tail); restore it on both input paths —
        // the join path's merge joins and the frontier's receiver binary
        // search both key on it. Stable and id-keyed, so results are
        // unchanged: every id owns exactly one vertex row and the worker
        // input is stable-sorted by id per partition, so vertex-table row
        // order never reaches a per-vertex tuple stream. Not gated on the
        // merge or frontier knobs (see the bit-identity note at the top
        // of Run).
        if (!OrderedByColumn(new_vertex, "id")) {
          VX_ASSIGN_OR_RETURN(int id_c, new_vertex.ColumnIndex("id"));
          new_vertex = SortTable(new_vertex, {{id_c, true}});
        }
      }
      if (enc_mode != EncodingMode::kOff) new_vertex.EncodeColumns(enc_mode);
      // Post-apply audit: the table about to be published must honor every
      // structural claim it carries (sorted-by-id declaration, encodings,
      // zone maps) — downstream supersteps trust them blindly.
      VX_DCHECK_OK(new_vertex.CheckInvariants());
      AccountTableBytes(new_vertex, &encoded_bytes, &decoded_bytes);
      VX_RETURN_NOT_OK(
          catalog_->ReplaceTable(names_.vertex, std::move(new_vertex)));
    } else {
      AccountTableBytes(*vertex, &encoded_bytes, &decoded_bytes);
    }

    if (enc_mode != EncodingMode::kOff) new_messages.EncodeColumns(enc_mode);
    VX_DCHECK_OK(new_messages.CheckInvariants());
    const int64_t messages_sent = new_messages.num_rows();
    AccountTableBytes(new_messages, &encoded_bytes, &decoded_bytes);
    VX_RETURN_NOT_OK(
        catalog_->ReplaceTable(names_.message, std::move(new_messages)));
    prev_aggregates_ = std::move(new_aggregates);

    if (stats != nullptr) {
      SuperstepStats s;
      s.superstep = superstep;
      s.input_rows = input.num_rows();
      s.active_vertices = active;
      s.vertex_updates = updates.num_rows();
      s.messages_sent = messages_sent;
      s.seconds = step_timer.ElapsedSeconds();
      s.used_replace = used_replace;
      s.input_seconds = input_seconds;
      s.worker_seconds = worker_seconds;
      s.split_seconds = split_seconds;
      s.apply_seconds = phase_timer.ElapsedSeconds();
      s.encoded_bytes = encoded_bytes;
      s.decoded_bytes = decoded_bytes;
      s.used_frontier = used_frontier;
      s.frontier_vertices = used_frontier ? frontier.active : 0;
      s.merge_joins = join_stats.merge_joins;
      s.hash_joins = join_stats.hash_joins;
      s.join_rows = join_stats.merge_rows + join_stats.hash_rows;
      s.join_seconds = join_stats.merge_seconds + join_stats.hash_seconds;
      stats->supersteps.push_back(s);
      stats->total_messages += messages_sent;
      ++(used_frontier ? stats->frontier_supersteps
                       : stats->dense_supersteps);
    }

    if (options_.checkpoint_every > 0 &&
        (superstep + 1) % options_.checkpoint_every == 0) {
      Table marker(Schema({{"next_superstep", DataType::kInt64}}));
      VX_RETURN_NOT_OK(
          marker.AppendRow({Value(static_cast<int64_t>(superstep + 1))}));
      VX_RETURN_NOT_OK(
          catalog_->ReplaceTable(MarkerName(names_), std::move(marker)));
      VX_RETURN_NOT_OK(SaveCatalog(*catalog_, options_.checkpoint_dir));
    }

    if (active == 0 && messages_sent == 0) break;
  }
  if (stats != nullptr) stats->total_seconds = total_timer.ElapsedSeconds();
  return Status::OK();
}

Status Coordinator::RunSharded(RunStats* stats, int num_shards,
                               int base_partitions, int first_superstep) {
  const int va = program_->value_arity();
  const int ma = program_->message_arity();
  const int arity = PayloadArity(*program_);
  const auto agg_specs = program_->aggregators();

  // Timer starts before the sharding setup: the once-per-run partitioning
  // below is this path's analogue of the per-superstep partitioning the
  // unsharded loop pays inside its measured loop, so total_seconds must
  // include it for the two paths to be comparable.
  WallTimer total_timer;

  // ---- Shard the graph tables, once per run. --------------------------
  // Vertex shards by id, edge shards by src, message shards by dst: every
  // worker-input tuple's batching key is its owning vertex, so each shard's
  // input hashes into exactly that shard's block of the vertex-batching
  // partitions. PartitionSet::Build retains sort-order declarations and
  // (ambient-mode permitting) encodings + zone maps per shard, so the
  // per-shard join path sees the same physical design the unsharded path
  // maintains on the whole tables.
  {
    VX_ASSIGN_OR_RETURN(auto vertex0, catalog_->GetTable(names_.vertex));
    VX_ASSIGN_OR_RETURN(auto edge0, catalog_->GetTable(names_.edge));
    VX_ASSIGN_OR_RETURN(auto message0, catalog_->GetTable(names_.message));

    sharded_ = std::make_unique<ShardedState>();
    sharded_->spec.num_shards = num_shards;
    sharded_->spec.base_partitions = base_partitions;
    VX_ASSIGN_OR_RETURN(int vid_c, vertex0->ColumnIndex("id"));
    VX_ASSIGN_OR_RETURN(int esrc_c, edge0->ColumnIndex("src"));
    VX_ASSIGN_OR_RETURN(int mdst_c, message0->ColumnIndex("dst"));
    VX_ASSIGN_OR_RETURN(sharded_->vertex,
                        PartitionSet::Build(*vertex0, vid_c, sharded_->spec));
    VX_ASSIGN_OR_RETURN(sharded_->edge,
                        PartitionSet::Build(*edge0, esrc_c, sharded_->spec));
    VX_ASSIGN_OR_RETURN(std::vector<Table> msg_shards,
                        ShardScatter(*message0, mdst_c, sharded_->spec));
    for (Table& t : msg_shards) {
      sharded_->message.push_back(
          std::make_shared<const Table>(std::move(t)));
    }
    if (!options_.use_union_input) {
      for (int s = 0; s < num_shards; ++s) {
        VX_ASSIGN_OR_RETURN(auto side,
                            BuildEdgeJoinSide(sharded_->edge.shard(s)));
        sharded_->edge_join_side.push_back(std::move(side));
      }
    }
    sharded_->edge_csr.resize(static_cast<size_t>(num_shards));
    sharded_->edge_csr_failed.assign(static_cast<size_t>(num_shards), 0);
    // Post-scatter audit: the vertex/edge PartitionSets self-audited inside
    // Build; the message shards scattered here carry the same obligations
    // (structure + every row owned by its shard).
    for (int s = 0; s < num_shards; ++s) {
      const auto& ms = sharded_->message[static_cast<size_t>(s)];
      VX_DCHECK_OK(ms->CheckInvariants());
      VX_DCHECK_OK(AuditShardPlacement(*ms, mdst_c, sharded_->spec, s));
    }
  }
  const int64_t total_vertices = sharded_->vertex.total_rows();

  for (int superstep = first_superstep;
       superstep < options_.max_supersteps; ++superstep) {
    // Superstep boundary: see the unsharded loop — the resident shards
    // hold the last completed superstep's consistent state.
    VX_RETURN_NOT_OK(CheckAmbientCancel());
    VX_FAULT_POINT("coordinator.superstep");
    WallTimer step_timer;

    // Stored-procedure loop condition, over the resident shards.
    int64_t message_rows = 0;
    for (const auto& m : sharded_->message) message_rows += m->num_rows();
    if (superstep > 0 && message_rows == 0) {
      bool all_halted = true;
      for (int s = 0; s < num_shards && all_halted; ++s) {
        all_halted = AllHalted(*sharded_->vertex.shard(s));
      }
      if (all_halted) break;
    }

    auto shared = std::make_shared<WorkerSharedState>();
    shared->program = program_;
    shared->superstep = superstep;
    shared->num_vertices = total_vertices;  // global count, not per shard
    shared->payload_arity = arity;
    shared->prev_aggregates = &prev_aggregates_;
    for (const auto& spec : agg_specs) {
      shared->aggregator_kinds[spec.name] = spec.kind;
      shared->aggregator_names.push_back(spec.name);
    }

    // Vertex batching within each shard uses the *global* partition count:
    // a shard's rows only hash into its own contiguous partition block, so
    // the per-shard batches, their order, and therefore every per-vertex
    // tuple stream are exactly those of an unsharded pass.
    TransformOptions topts;
    topts.num_workers = options_.num_workers;
    topts.num_partitions = base_partitions;
    topts.sort_columns = {0};
    TransformUdfFactory factory;
    if (options_.use_union_input) {
      factory = [shared]() -> std::unique_ptr<TransformUdf> {
        return std::make_unique<Worker>(shared);
      };
    } else {
      factory = [shared]() -> std::unique_ptr<TransformUdf> {
        return std::make_unique<JoinWorker>(shared);
      };
    }

    // ---- Per-shard dataflow: input → worker → split, shard-parallel. ---
    struct ShardStep {
      int64_t input_rows = 0;
      bool used_frontier = false;
      int64_t frontier_vertices = 0;
      Table updates;
      Table messages;
      WorkerOutputScan scan;
      JoinPathStats join_stats;
    };
    std::vector<ShardStep> step(static_cast<size_t>(num_shards));

    const ExecKnobs knobs = ExecKnobs::Capture();

    WallTimer phase_timer;
    VX_RETURN_NOT_OK(ThreadPool::Default()->ParallelFor(
        0, static_cast<size_t>(num_shards), /*grain=*/1,
        [&](size_t begin, size_t end) -> Status {
          // Pool threads don't inherit the caller's thread-local knobs;
          // reinstall them so the per-shard plans behave exactly like the
          // unsharded loop's, and give each shard its own join-path
          // collector (the ambient one is thread-local too).
          ScopedExecKnobs scoped_knobs(knobs);
          for (size_t s = begin; s < end; ++s) {
            ShardStep& st = step[s];
            ScopedJoinStatsCollector collector(&st.join_stats);
            const auto& vs = sharded_->vertex.shard(static_cast<int>(s));
            const auto& es = sharded_->edge.shard(static_cast<int>(s));
            const auto& ms = sharded_->message[s];
            // Frontier decision per shard: a shard's active fraction is
            // its own (one dense hub shard doesn't force the whole
            // superstep dense). Value-neutral either way — the per-shard
            // frontier build is the unsharded construction applied to the
            // shard's slice of the partition blocks.
            Frontier frontier;
            bool frontier_shard = ComputeFrontier(
                *vs, *ms, knobs.frontier, superstep,
                options_.frontier_threshold, &frontier);
            if (frontier_shard) {
              VX_DCHECK_OK(frontier.bits.CheckInvariants());
            }
            Table input;
            if (options_.use_union_input) {
              const CsrIndex* csr = nullptr;
              if (frontier_shard && !sharded_->edge_csr_failed[s]) {
                if (sharded_->edge_csr[s] == nullptr) {
                  const Column* src = es->ColumnByName("src");
                  if (src != nullptr) {
                    sharded_->edge_csr[s] = CsrIndex::Build(*src);
                    if (sharded_->edge_csr[s] != nullptr) {
                      VX_DCHECK_OK(
                          sharded_->edge_csr[s]->CheckInvariants(*src));
                    }
                  }
                  sharded_->edge_csr_failed[s] =
                      sharded_->edge_csr[s] == nullptr ? 1 : 0;
                }
                csr = sharded_->edge_csr[s].get();
              }
              frontier_shard = frontier_shard && csr != nullptr;
              if (frontier_shard) {
                VX_ASSIGN_OR_RETURN(
                    input, BuildUnionInputFrontier(vs, es, ms, frontier.bits,
                                                   *csr));
              } else {
                VX_ASSIGN_OR_RETURN(input, BuildUnionInput(vs, es, ms));
              }
            } else {
              if (frontier_shard) {
                VX_ASSIGN_OR_RETURN(
                    input, BuildJoinInputFrontier(
                               vs, sharded_->edge_join_side[s], ms,
                               frontier.bits));
              } else {
                VX_ASSIGN_OR_RETURN(
                    input, BuildJoinInputWithEdgeSide(
                               vs, sharded_->edge_join_side[s], ms));
              }
            }
            st.used_frontier = frontier_shard;
            st.frontier_vertices = frontier_shard ? frontier.active : 0;
            st.input_rows = input.num_rows();
            VX_ASSIGN_OR_RETURN(Table out_table,
                                ApplyTransform(input, 0, factory, topts));
            const auto out =
                std::make_shared<const Table>(std::move(out_table));
            VX_ASSIGN_OR_RETURN(SplitOutputs split,
                                SplitWorkerOutput(out, va, ma));
            st.updates = std::move(split.updates);
            st.messages = std::move(split.messages);
            st.scan = std::move(split.scan);
          }
          return Status::OK();
        },
        knobs.threads));
    const double worker_seconds = phase_timer.ElapsedSeconds();
    phase_timer.Restart();

    // ---- Merge shard results in shard order. ---------------------------
    // Shards are contiguous partition blocks, so concatenation in shard
    // order *is* the unsharded worker-output row order — the aggregate
    // fold below replays exactly the unsharded merge sequence.
    int64_t input_rows = 0;
    int64_t active = 0;
    int64_t total_updates = 0;
    std::map<std::string, double> new_aggregates;
    for (const auto& spec : agg_specs) {
      new_aggregates[spec.name] = AggregatorIdentity(spec.kind);
    }
    for (const ShardStep& st : step) {
      input_rows += st.input_rows;
      active += st.scan.active;
      total_updates += st.updates.num_rows();
      MergeAggregateRows(agg_specs, st.scan.aggregate_rows, &new_aggregates);
    }

    // ---- Message exchange (the only cross-shard traffic). --------------
    // Phase boundary: a worker failure surfaces here in a distributed
    // deployment (ROADMAP #1), so the exchange carries a fault site.
    VX_FAULT_POINT("coordinator.exchange");
    // Concatenate the per-shard outputs in shard order (again the global
    // row order), combine globally — identical combiner input, identical
    // FP fold — then scatter on receiver back to the shards. The scatter
    // preserves per-receiver order, and a per-shard stable sort by dst
    // equals the global sort restricted to the shard, so next superstep's
    // message streams are bit-identical to the unsharded path's.
    int64_t cross_shard = 0;
    Table global_messages(step[0].messages.schema());
    for (int s = 0; s < num_shards; ++s) {
      const Table& msgs = step[static_cast<size_t>(s)].messages;
      if (stats != nullptr) {
        // Boundary-crossing counter only: one hash per produced message,
        // skipped entirely when nobody collects stats.
        VX_ASSIGN_OR_RETURN(int pdst_c, msgs.ColumnIndex("dst"));
        const auto& dsts = msgs.column(pdst_c).ints();
        for (int64_t r = 0; r < msgs.num_rows(); ++r) {
          if (sharded_->spec.ShardOfKey(dsts[static_cast<size_t>(r)]) != s) {
            ++cross_shard;
          }
        }
      }
      VX_RETURN_NOT_OK(global_messages.Append(msgs));
    }
    VX_ASSIGN_OR_RETURN(global_messages,
                        CombineMessages(std::move(global_messages)));
    const int64_t messages_sent = global_messages.num_rows();
    VX_ASSIGN_OR_RETURN(int dst_c, global_messages.ColumnIndex("dst"));
    VX_ASSIGN_OR_RETURN(
        std::vector<Table> routed,
        ShardScatter(global_messages, dst_c, sharded_->spec));
    std::vector<int64_t> shard_message_rows(static_cast<size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      Table inbound = std::move(routed[static_cast<size_t>(s)]);
      // Sorted-message invariant (order-aware joins), per shard; mirrors
      // the unsharded loop and is likewise not gated on the merge knob.
      if (!options_.use_union_input) {
        VX_ASSIGN_OR_RETURN(int dc, inbound.ColumnIndex("dst"));
        if (inbound.num_rows() > 0 && !OrderedByColumn(inbound, "dst")) {
          inbound = SortTable(inbound, {{dc, true}});
        } else if (inbound.sort_order().empty()) {
          inbound.SetSortOrder({{dc, true}});
        }
      }
      if (knobs.encoding != EncodingMode::kOff) {
        inbound.EncodeColumns(knobs.encoding);
      }
      shard_message_rows[static_cast<size_t>(s)] = inbound.num_rows();
      sharded_->message[static_cast<size_t>(s)] =
          std::make_shared<const Table>(std::move(inbound));
      // Post-exchange audit: each shard's inbound message table must honor
      // its structural claims (the declared dst order feeds next
      // superstep's merge joins) and hold only messages routed to it.
      const auto& routed_in = sharded_->message[static_cast<size_t>(s)];
      VX_DCHECK_OK(routed_in->CheckInvariants());
      VX_DCHECK_OK(AuditShardPlacement(*routed_in, dst_c, sharded_->spec, s));
    }
    const double split_seconds = phase_timer.ElapsedSeconds();
    phase_timer.Restart();

    // ---- Update vs. replace (§2.3), per shard. -------------------------
    // One global decision from the global update fraction (matching the
    // unsharded path), applied shard-locally — worker updates only ever
    // target vertices of their own shard.
    bool used_replace = false;
    if (total_updates > 0) {
      const double frac =
          static_cast<double>(total_updates) /
          static_cast<double>(std::max<int64_t>(1, total_vertices));
      used_replace = frac >= options_.update_threshold;
      VX_RETURN_NOT_OK(ThreadPool::Default()->ParallelFor(
          0, static_cast<size_t>(num_shards), /*grain=*/1,
          [&](size_t begin, size_t end) -> Status {
            ScopedExecKnobs scoped_knobs(knobs);
            for (size_t s = begin; s < end; ++s) {
              if (step[s].updates.num_rows() == 0) continue;
              // The replace-path rebuild joins report into the shard's
              // collector, like the input-build joins above.
              ScopedJoinStatsCollector collector(&step[s].join_stats);
              const auto& vs = sharded_->vertex.shard(static_cast<int>(s));
              Table new_vertex;
              if (!used_replace) {
                VX_ASSIGN_OR_RETURN(
                    new_vertex, UpdateVerticesInPlace(*vs, step[s].updates));
              } else {
                VX_ASSIGN_OR_RETURN(
                    new_vertex, RebuildVertices(*vs, step[s].updates));
                // Both input paths, like the unsharded loop: the sorted
                // invariant feeds the merge joins and the frontier.
                if (!OrderedByColumn(new_vertex, "id")) {
                  VX_ASSIGN_OR_RETURN(int id_c,
                                      new_vertex.ColumnIndex("id"));
                  new_vertex = SortTable(new_vertex, {{id_c, true}});
                }
              }
              if (knobs.encoding != EncodingMode::kOff) {
                new_vertex.EncodeColumns(knobs.encoding);
              }
              sharded_->vertex.ReplaceShard(static_cast<int>(s),
                                            std::move(new_vertex));
            }
            return Status::OK();
          },
          knobs.threads));
      // Post-apply audit: ReplaceShard trusts callers to keep every row in
      // its owning shard; re-prove it (plus per-shard structure) over the
      // whole set before the next superstep reads it.
      VX_DCHECK_OK(sharded_->vertex.CheckInvariants());
    }

    int64_t encoded_bytes = 0;
    int64_t decoded_bytes = 0;
    for (int s = 0; s < num_shards; ++s) {
      AccountTableBytes(*sharded_->vertex.shard(s), &encoded_bytes,
                        &decoded_bytes);
      AccountTableBytes(*sharded_->message[static_cast<size_t>(s)],
                        &encoded_bytes, &decoded_bytes);
    }
    prev_aggregates_ = std::move(new_aggregates);

    if (stats != nullptr) {
      SuperstepStats s;
      s.superstep = superstep;
      s.input_rows = input_rows;
      s.active_vertices = active;
      s.vertex_updates = total_updates;
      s.messages_sent = messages_sent;
      s.seconds = step_timer.ElapsedSeconds();
      s.used_replace = used_replace;
      s.worker_seconds = worker_seconds;  // fused input build + compute
      s.split_seconds = split_seconds;    // split + message exchange
      s.apply_seconds = phase_timer.ElapsedSeconds();
      s.encoded_bytes = encoded_bytes;
      s.decoded_bytes = decoded_bytes;
      s.shards = num_shards;
      s.cross_shard_messages = cross_shard;
      JoinPathStats join_stats;
      for (const ShardStep& st : step) {
        s.shard_input_rows.push_back(st.input_rows);
        s.used_frontier = s.used_frontier || st.used_frontier;
        s.frontier_vertices += st.frontier_vertices;
        join_stats.merge_joins += st.join_stats.merge_joins;
        join_stats.hash_joins += st.join_stats.hash_joins;
        join_stats.merge_rows += st.join_stats.merge_rows;
        join_stats.hash_rows += st.join_stats.hash_rows;
        join_stats.merge_seconds += st.join_stats.merge_seconds;
        join_stats.hash_seconds += st.join_stats.hash_seconds;
      }
      s.shard_messages = shard_message_rows;
      s.merge_joins = join_stats.merge_joins;
      s.hash_joins = join_stats.hash_joins;
      s.join_rows = join_stats.merge_rows + join_stats.hash_rows;
      s.join_seconds = join_stats.merge_seconds + join_stats.hash_seconds;
      stats->supersteps.push_back(s);
      stats->total_messages += messages_sent;
      ++(s.used_frontier ? stats->frontier_supersteps
                         : stats->dense_supersteps);
    }

    if (options_.checkpoint_every > 0 &&
        (superstep + 1) % options_.checkpoint_every == 0) {
      VX_RETURN_NOT_OK(FlushShardsToCatalog());
      Table marker(Schema({{"next_superstep", DataType::kInt64}}));
      VX_RETURN_NOT_OK(
          marker.AppendRow({Value(static_cast<int64_t>(superstep + 1))}));
      VX_RETURN_NOT_OK(
          catalog_->ReplaceTable(MarkerName(names_), std::move(marker)));
      VX_RETURN_NOT_OK(SaveCatalog(*catalog_, options_.checkpoint_dir));
    }

    if (active == 0 && messages_sent == 0) break;
  }
  // Publish the final shard state so catalog readers (ReadVertexValues,
  // follow-up SQL) see the finished run like an unsharded one.
  VX_RETURN_NOT_OK(FlushShardsToCatalog());
  if (stats != nullptr) stats->total_seconds = total_timer.ElapsedSeconds();
  return Status::OK();
}

Status Coordinator::FlushShardsToCatalog() const {
  if (sharded_ == nullptr) return Status::OK();
  Table vertex(sharded_->vertex.shard(0)->schema());
  for (int s = 0; s < sharded_->vertex.num_shards(); ++s) {
    VX_RETURN_NOT_OK(vertex.Append(*sharded_->vertex.shard(s)));
  }
  // Hash blocks interleave ids, so the concatenation is not id-ordered;
  // re-sort (stable, id-keyed — values unchanged) so the stored table
  // carries the same sorted invariant the unsharded path maintains.
  VX_ASSIGN_OR_RETURN(int id_c, vertex.ColumnIndex("id"));
  vertex = SortTable(vertex, {{id_c, true}});
  Table message(sharded_->message[0]->schema());
  for (const auto& m : sharded_->message) {
    VX_RETURN_NOT_OK(message.Append(*m));
  }
  VX_ASSIGN_OR_RETURN(int dst_c, message.ColumnIndex("dst"));
  message = SortTable(message, {{dst_c, true}});
  const EncodingMode mode = AmbientEncodingMode();
  if (mode != EncodingMode::kOff) {
    vertex.EncodeColumns(mode);
    message.EncodeColumns(mode);
  }
  // Post-flush audit: the concatenated, re-sorted, re-encoded tables are
  // what catalog readers will trust from here on.
  VX_DCHECK_OK(vertex.CheckInvariants());
  VX_DCHECK_OK(message.CheckInvariants());
  VX_RETURN_NOT_OK(catalog_->ReplaceTable(names_.vertex, std::move(vertex)));
  return catalog_->ReplaceTable(names_.message, std::move(message));
}

Status RunVertexProgram(Catalog* catalog, const Graph& graph,
                        VertexProgram* program, VertexicaOptions options,
                        GraphTableNames names, RunStats* stats) {
  VX_RETURN_NOT_OK(LoadGraphTables(catalog, graph, *program, names));
  Coordinator coordinator(catalog, program, options, names);
  return coordinator.Run(stats);
}

std::string RunStats::ToJson() const {
  std::ostringstream os;
  os << "{\"total_seconds\":" << total_seconds
     << ",\"total_messages\":" << total_messages
     << ",\"num_supersteps\":" << num_supersteps()
     << ",\"frontier_supersteps\":" << frontier_supersteps
     << ",\"dense_supersteps\":" << dense_supersteps << ",\"supersteps\":[";
  for (size_t i = 0; i < supersteps.size(); ++i) {
    const SuperstepStats& s = supersteps[i];
    if (i > 0) os << ",";
    os << "{\"superstep\":" << s.superstep
       << ",\"input_rows\":" << s.input_rows
       << ",\"active_vertices\":" << s.active_vertices
       << ",\"vertex_updates\":" << s.vertex_updates
       << ",\"messages_sent\":" << s.messages_sent
       << ",\"seconds\":" << s.seconds
       << ",\"used_replace\":" << (s.used_replace ? "true" : "false")
       << ",\"input_seconds\":" << s.input_seconds
       << ",\"worker_seconds\":" << s.worker_seconds
       << ",\"split_seconds\":" << s.split_seconds
       << ",\"apply_seconds\":" << s.apply_seconds
       << ",\"encoded_bytes\":" << s.encoded_bytes
       << ",\"decoded_bytes\":" << s.decoded_bytes
       << ",\"shards\":" << s.shards
       << ",\"cross_shard_messages\":" << s.cross_shard_messages
       << ",\"shard_input_rows\":[";
    for (size_t j = 0; j < s.shard_input_rows.size(); ++j) {
      if (j > 0) os << ",";
      os << s.shard_input_rows[j];
    }
    os << "],\"shard_messages\":[";
    for (size_t j = 0; j < s.shard_messages.size(); ++j) {
      if (j > 0) os << ",";
      os << s.shard_messages[j];
    }
    os << "]"
       << ",\"used_frontier\":" << (s.used_frontier ? "true" : "false")
       << ",\"frontier_vertices\":" << s.frontier_vertices
       << ",\"merge_joins\":" << s.merge_joins
       << ",\"hash_joins\":" << s.hash_joins
       << ",\"join_rows\":" << s.join_rows
       << ",\"join_seconds\":" << s.join_seconds << "}";
  }
  os << "]}";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const RunStats& stats) {
  return os << stats.ToJson();
}

}  // namespace vertexica
