/// \file worker.h
/// \brief The worker UDF (§2.2): container for the vertex-compute function.
///
/// A worker receives one hash partition of the common-schema input (sorted
/// on vertex id — "vertex batching", §2.3), identifies the vertex, edge and
/// message tuples of each vertex, and runs the user's Compute serially over
/// the vertices of its batch. Its output reuses the common schema:
/// kind=0 rows are vertex-state updates (`other`=1 when the state changed),
/// kind=2 rows are outgoing messages (`id`=receiver, `other`=sender), and
/// kind=3 rows carry partial global-aggregator values.

#ifndef VERTEXICA_VERTEXICA_WORKER_H_
#define VERTEXICA_VERTEXICA_WORKER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "udf/transform.h"
#include "vertexica/graph_tables.h"
#include "vertexica/vertex_program.h"

namespace vertexica {

/// \brief Immutable per-superstep state shared by all worker instances.
struct WorkerSharedState {
  VertexProgram* program = nullptr;
  int superstep = 0;
  int64_t num_vertices = 0;
  int payload_arity = 1;
  /// Aggregator values produced in the previous superstep.
  const std::map<std::string, double>* prev_aggregates = nullptr;
  /// Kind of each declared aggregator (for identity/merge).
  std::map<std::string, AggregatorKind> aggregator_kinds;
  /// Ordered aggregator names; kind-3 output rows use `other` as the index
  /// into this list.
  std::vector<std::string> aggregator_names;
};

/// \brief Columnar accumulation buffer for common-schema output rows.
/// Cheaper than Table::AppendRow in the message-heavy hot path.
struct UnionRowBuffer {
  explicit UnionRowBuffer(int payload_arity)
      : payload(static_cast<size_t>(payload_arity)) {}

  std::vector<int64_t> id;
  std::vector<int64_t> kind;
  std::vector<int64_t> other;
  std::vector<uint8_t> halted;
  std::vector<std::vector<double>> payload;  // one vector per payload column

  void AppendRow(int64_t id_v, int64_t kind_v, int64_t other_v, bool halted_v,
                 const double* p, int p_len);

  /// \brief Converts to a common-schema table; leaves the buffer empty.
  Table ToTable();
};

/// \brief Shared implementation of the per-vertex Compute invocation.
///
/// The two workers (union input / join input) parse their partition format
/// and feed this runner; the runner owns the VertexContext, activity rules
/// and output buffering. Exposed publicly for white-box tests.
class VertexRunner {
 public:
  explicit VertexRunner(const WorkerSharedState* shared);

  /// Begins a vertex. `value` must hold value_arity doubles.
  void BeginVertex(int64_t id, bool halted, const double* value);
  void AddEdge(int64_t dst, double weight);
  void AddMessage(const double* payload);

  /// Runs Compute if the vertex is active (superstep 0, not halted, or has
  /// messages) and appends output rows to `out`. Returns true if computed.
  bool FinishVertex(UnionRowBuffer* out);

  /// Appends kind-3 partial-aggregate rows (call once per partition).
  void EmitAggregates(UnionRowBuffer* out);

 private:
  const WorkerSharedState* shared_;
  VertexContext ctx_;
  std::map<std::string, double> local_aggregates_;
  std::vector<double> pad_;  // scratch payload row, payload_arity wide
  bool old_halted_ = false;
};

/// \brief Worker over the §2.3 *union* input (vertex+edge+message tuples in
/// the common schema).
class Worker : public TransformUdf {
 public:
  explicit Worker(std::shared_ptr<const WorkerSharedState> shared);

  const Schema& output_schema() const override { return out_schema_; }
  Status ProcessPartition(const Table& partition,
                          const std::function<Status(Table)>& emit) override;

 private:
  std::shared_ptr<const WorkerSharedState> shared_;
  Schema out_schema_;
};

/// \brief Worker over the traditional *3-way join* input (the §2.3
/// strawman): wide rows vertex ⟕ message ⟕ edge, with `msg_seq`/`edge_seq`
/// columns to undo the join fan-out.
///
/// Expected input columns: id, halted, v0.., msender, mm0.., msg_seq,
/// edst, eweight, edge_seq (seq columns nullable).
class JoinWorker : public TransformUdf {
 public:
  explicit JoinWorker(std::shared_ptr<const WorkerSharedState> shared);

  const Schema& output_schema() const override { return out_schema_; }
  Status ProcessPartition(const Table& partition,
                          const std::function<Status(Table)>& emit) override;

 private:
  std::shared_ptr<const WorkerSharedState> shared_;
  Schema out_schema_;
};

}  // namespace vertexica

#endif  // VERTEXICA_VERTEXICA_WORKER_H_
