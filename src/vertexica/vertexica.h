/// \file vertexica.h
/// \brief Umbrella header: everything a Vertexica application needs.
///
/// The front door is the backend-agnostic `Engine` facade — the same
/// request runs on any of the four engines the paper compares:
///
/// \code
///   #include "vertexica/vertexica.h"
///
///   vertexica::Engine engine;
///   engine.LoadGraph(vertexica::GenerateRmat(2000, 16000, 7));
///   auto result = engine.Run("pagerank");            // relational engine
///   auto giraph = engine.Run("pagerank", "giraph");  // BSP comparator
/// \endcode
///
/// Layering (bottom to top):
///   storage → expr/exec/catalog/udf                 relational substrate
///   → vertexica core (coordinator/worker/tables)    vertex programs as SQL
///   → algorithms / sqlgraph / giraph / graphdb      the four executions
///   → api (Engine / GraphBackend / AlgorithmRegistry)  one facade over all
///   → pipeline / temporal                           composition layers
///
/// The comparator systems (giraph/, graphdb/) are first-class backends of
/// the facade and therefore exported here. The per-algorithm entry points
/// (`RunPageRank`, `SqlPageRank`, ...) remain as thin deprecated wrappers;
/// see docs/API.md for the migration table.

#ifndef VERTEXICA_VERTEXICA_VERTEXICA_H_
#define VERTEXICA_VERTEXICA_VERTEXICA_H_

// Core engine.
#include "catalog/catalog.h"        // IWYU pragma: export
#include "common/result.h"          // IWYU pragma: export
#include "common/status.h"          // IWYU pragma: export
#include "exec/plan_builder.h"      // IWYU pragma: export
#include "expr/expression.h"        // IWYU pragma: export
#include "storage/csv.h"            // IWYU pragma: export
#include "storage/table.h"          // IWYU pragma: export

// Vertex-centric layer.
#include "vertexica/coordinator.h"     // IWYU pragma: export
#include "vertexica/graph_tables.h"    // IWYU pragma: export
#include "vertexica/options.h"         // IWYU pragma: export
#include "vertexica/vertex_program.h"  // IWYU pragma: export

// Graph data.
#include "graphgen/datasets.h"    // IWYU pragma: export
#include "graphgen/generators.h"  // IWYU pragma: export
#include "graphgen/graph.h"       // IWYU pragma: export
#include "graphgen/metadata.h"    // IWYU pragma: export
#include "graphgen/snap_io.h"     // IWYU pragma: export

// Algorithm library.
#include "algorithms/collaborative_filtering.h"  // IWYU pragma: export
#include "algorithms/connected_components.h"     // IWYU pragma: export
#include "algorithms/label_propagation.h"        // IWYU pragma: export
#include "algorithms/pagerank.h"                 // IWYU pragma: export
#include "algorithms/random_walk.h"              // IWYU pragma: export
#include "algorithms/sssp.h"                     // IWYU pragma: export
#include "algorithms/triangle_program.h"         // IWYU pragma: export

// SQL graph algorithms.
#include "sqlgraph/clustering_coefficient.h"      // IWYU pragma: export
#include "sqlgraph/graph_extraction.h"            // IWYU pragma: export
#include "sqlgraph/sql_connected_components.h"    // IWYU pragma: export
#include "sqlgraph/sql_pagerank.h"                // IWYU pragma: export
#include "sqlgraph/sql_random_walk.h"             // IWYU pragma: export
#include "sqlgraph/sql_shortest_paths.h"          // IWYU pragma: export
#include "sqlgraph/strong_overlap.h"              // IWYU pragma: export
#include "sqlgraph/triangle_count.h"              // IWYU pragma: export
#include "sqlgraph/weak_ties.h"                   // IWYU pragma: export

// The unified facade over all four backends (vertexica, sqlgraph, giraph,
// graphdb).
#include "api/algorithm_registry.h"  // IWYU pragma: export
#include "api/backends.h"            // IWYU pragma: export
#include "api/engine.h"              // IWYU pragma: export
#include "api/graph_backend.h"       // IWYU pragma: export
#include "api/run_types.h"           // IWYU pragma: export

// Durability.
#include "catalog/catalog_io.h"  // IWYU pragma: export

// Composition.
#include "pipeline/dataflow.h"         // IWYU pragma: export
#include "pipeline/nodes.h"            // IWYU pragma: export
#include "temporal/continuous.h"       // IWYU pragma: export
#include "temporal/versioned_graph.h"  // IWYU pragma: export

#endif  // VERTEXICA_VERTEXICA_VERTEXICA_H_
