/// \file options.h
/// \brief Tuning knobs for the Vertexica engine, mirroring §2.3.

#ifndef VERTEXICA_VERTEXICA_OPTIONS_H_
#define VERTEXICA_VERTEXICA_OPTIONS_H_

#include <cstdint>
#include <string>

namespace vertexica {

/// \brief Execution options of the vertex-centric engine.
///
/// Every §2.3 optimization has a switch here so ablation benches can turn
/// it off: table unions (vs. 3-way join), parallel workers, vertex batching
/// (partition count), update-vs-replace threshold, and message combining.
struct VertexicaOptions {
  /// Parallel worker UDF instances; 0 = the ambient executor thread count
  /// (RunRequest::threads / VERTEXICA_THREADS / hardware cores — "in
  /// practice, we have as many workers as the number of cores").
  int num_workers = 0;

  /// Hash partitions of the worker input ("vertex batching"); 0 = a fixed
  /// default (kDefaultTransformPartitions) that is independent of the
  /// worker count, so results do not vary with parallelism. More
  /// partitions = smaller batches. See TransformOptions in udf/transform.h
  /// for the full contract.
  int num_partitions = 0;

  /// Persistent vertex-id sharding of the superstep dataflow
  /// (storage/partition.h): partition the vertex and edge tables into this
  /// many resident shards once per run, run the per-shard
  /// input→worker→split dataflow shard-wise in parallel every superstep,
  /// and exchange only cross-shard messages (shuffled on receiver) between
  /// supersteps. Shards are contiguous blocks of the vertex-batching
  /// partitions, so results are bit-identical at any shard count.
  /// 0 = the ambient ExecShards() (RunRequest::shards / VERTEXICA_SHARDS,
  /// default 1); 1 = the unsharded per-superstep partitioning path.
  int num_shards = 0;

  /// §2.3 "Table Unions": feed workers the renamed union of the vertex,
  /// edge, and message tables. When false, uses the traditional 3-way-join
  /// plan instead (the paper's strawman).
  bool use_union_input = true;

  /// Apply the program's message combiner (when it declares one) as an
  /// aggregation over the message table between supersteps.
  bool use_combiner = true;

  /// Order-aware superstep joins (exec/merge_join.h): with the join-input
  /// plan, the maintained sorted invariants — vertex table sorted by id,
  /// message table sorted by dst — let the vertex ⟕ message ⟕ edge joins
  /// run as merge joins with zero hash builds. When false, the
  /// coordinator pins the hash joins regardless of the ambient merge-join
  /// knob — the ablation switch. The invariant maintenance itself is not
  /// gated on this flag, so toggling it swaps exactly the physical join
  /// operator and results are bit-identical by construction.
  bool use_merge_join = true;

  /// §2.3 "Update Vs Replace": if the fraction of updated vertices is below
  /// this threshold, update the existing vertex table in place; otherwise
  /// rebuild it via left join + table replace.
  double update_threshold = 0.1;

  /// Activation threshold of the sparse frontier superstep path
  /// (exec/frontier.h): under the `auto` frontier mode a superstep takes
  /// the frontier path when its active-vertex fraction (non-halted
  /// vertices plus message receivers) is at most this value. Ignored when
  /// the ambient frontier mode is `on` (always frontier where structurally
  /// possible) or `off` (always dense). Value-neutral either way: the two
  /// paths are bit-identical by construction.
  double frontier_threshold = 0.25;

  /// Safety bound on the superstep loop.
  int max_supersteps = 500;

  /// §1 durability: checkpoint the graph tables (and the superstep marker)
  /// into `checkpoint_dir` every N supersteps. 0 disables checkpointing.
  int checkpoint_every = 0;
  std::string checkpoint_dir;

  /// Resume from the superstep marker found in the catalog (written by a
  /// previous checkpointed run and restored via LoadCatalog). When false,
  /// execution always starts at superstep 0.
  bool resume_from_checkpoint = false;
};

}  // namespace vertexica

#endif  // VERTEXICA_VERTEXICA_OPTIONS_H_
