#include "vertexica/graph_tables.h"

#include <algorithm>

#include "common/string_util.h"
#include "storage/sort.h"

namespace vertexica {

Schema MakeVertexSchema(int value_arity) {
  Schema s({{"id", DataType::kInt64}, {"halted", DataType::kBool}});
  for (int i = 0; i < value_arity; ++i) {
    s.AddField({StringFormat("v%d", i), DataType::kDouble});
  }
  return s;
}

Schema MakeEdgeSchema() {
  return Schema({{"src", DataType::kInt64},
                 {"dst", DataType::kInt64},
                 {"weight", DataType::kDouble}});
}

Schema MakeMessageSchema(int message_arity) {
  Schema s({{"src", DataType::kInt64}, {"dst", DataType::kInt64}});
  for (int i = 0; i < message_arity; ++i) {
    s.AddField({StringFormat("m%d", i), DataType::kDouble});
  }
  return s;
}

Schema MakeUnionSchema(int payload_arity) {
  Schema s({{"id", DataType::kInt64},
            {"kind", DataType::kInt64},
            {"other", DataType::kInt64},
            {"halted", DataType::kBool}});
  for (int i = 0; i < payload_arity; ++i) {
    s.AddField({StringFormat("p%d", i), DataType::kDouble});
  }
  return s;
}

int PayloadArity(const VertexProgram& program) {
  return std::max({program.value_arity(), program.message_arity(), 1});
}

Status LoadGraphTables(Catalog* catalog, const Graph& graph,
                       const VertexProgram& program,
                       const GraphTableNames& names) {
  VX_RETURN_NOT_OK(LoadEdgeTable(catalog, graph, names));
  return LoadProgramTables(catalog, graph, program, names);
}

Status LoadEdgeTable(Catalog* catalog, const Graph& graph,
                     const GraphTableNames& names) {
  const Graph directed = graph.AsDirected();

  // Edge table, stored sorted on (src, dst) — the column-store layout the
  // paper assumes: each vertex's out-edges are contiguous and the source-id
  // column becomes one run per vertex, so it RLE-compresses to O(V) runs
  // instead of O(E) values and its zone map makes per-vertex range scans
  // prunable. Sorting is unconditional (layout must not depend on the
  // encoding knob, or results could differ between encoding on and off);
  // only the encoding step consults the ambient mode.
  {
    std::vector<Column> cols;
    cols.push_back(Column::FromInts(directed.src));
    cols.push_back(Column::FromInts(directed.dst));
    if (directed.weight.empty()) {
      cols.push_back(Column::FromDoubles(
          std::vector<double>(directed.src.size(), 1.0)));
    } else {
      cols.push_back(Column::FromDoubles(directed.weight));
    }
    VX_ASSIGN_OR_RETURN(Table t, Table::Make(MakeEdgeSchema(), std::move(cols)));
    t = SortTable(t, {{0, true}, {1, true}});
    if (AmbientEncodingMode() != EncodingMode::kOff) {
      t.BuildZoneMaps();
      t.mutable_column(0)->Encode(AmbientEncodingMode());
    }
    // Re-declare after the encode step (mutable_column conservatively
    // drops the declaration SortTable made; encoding is value-neutral, so
    // the (src, dst) order still holds).
    t.SetSortOrder({{0, true}, {1, true}});
    VX_RETURN_NOT_OK(catalog->ReplaceTable(names.edge, std::move(t)));
  }
  return Status::OK();
}

Status LoadProgramTables(Catalog* catalog, const Graph& graph,
                         const VertexProgram& program,
                         const GraphTableNames& names) {
  // Only the vertex set matters here, and AsDirected preserves it — no
  // need for the directed edge-list copy LoadEdgeTable makes.
  const int64_t num_vertices = graph.num_vertices;
  const int arity = program.value_arity();

  // Vertex table.
  {
    Schema schema = MakeVertexSchema(arity);
    std::vector<Column> cols;
    std::vector<int64_t> ids(static_cast<size_t>(num_vertices));
    for (int64_t v = 0; v < num_vertices; ++v) {
      ids[static_cast<size_t>(v)] = v;
    }
    cols.push_back(Column::FromInts(std::move(ids)));
    cols.push_back(Column::FromBools(
        std::vector<uint8_t>(static_cast<size_t>(num_vertices), 0)));
    std::vector<std::vector<double>> values(
        static_cast<size_t>(arity),
        std::vector<double>(static_cast<size_t>(num_vertices)));
    std::vector<double> tmp(static_cast<size_t>(arity));
    for (int64_t v = 0; v < num_vertices; ++v) {
      program.InitValue(v, num_vertices, tmp.data());
      for (int i = 0; i < arity; ++i) {
        values[static_cast<size_t>(i)][static_cast<size_t>(v)] =
            tmp[static_cast<size_t>(i)];
      }
    }
    for (int i = 0; i < arity; ++i) {
      cols.push_back(
          Column::FromDoubles(std::move(values[static_cast<size_t>(i)])));
    }
    VX_ASSIGN_OR_RETURN(Table t, Table::Make(schema, std::move(cols)));
    // The halted column is a single all-false run — RLE collapses it to 16
    // bytes; the ascending id column stays plain under kAuto (all-distinct
    // ids don't RLE). Value-neutral either way.
    if (AmbientEncodingMode() != EncodingMode::kOff) {
      t.EncodeColumns(AmbientEncodingMode());
    }
    // Ids were written 0..V-1: declare the sorted-by-id invariant the
    // coordinator maintains, so the superstep vertex joins can merge.
    t.SetSortOrder({{0, true}});
    VX_RETURN_NOT_OK(catalog->ReplaceTable(names.vertex, std::move(t)));
  }

  // Message table (empty — and vacuously sorted by receiver, the invariant
  // the coordinator maintains superstep to superstep).
  Table messages(MakeMessageSchema(program.message_arity()));
  messages.SetSortOrder({{1, true}});
  VX_RETURN_NOT_OK(catalog->ReplaceTable(names.message, std::move(messages)));
  return Status::OK();
}

Result<std::vector<double>> ReadVertexValues(const Catalog& catalog,
                                             const GraphTableNames& names,
                                             int component) {
  VX_ASSIGN_OR_RETURN(auto table, catalog.GetTable(names.vertex));
  VX_ASSIGN_OR_RETURN(
      int vcol, table->ColumnIndex(StringFormat("v%d", component)));
  VX_ASSIGN_OR_RETURN(int idcol, table->ColumnIndex("id"));
  const auto& ids = table->column(idcol).ints();
  const auto& vals = table->column(vcol).doubles();
  int64_t max_id = -1;
  for (int64_t id : ids) max_id = std::max(max_id, id);
  std::vector<double> out(static_cast<size_t>(max_id + 1), 0.0);
  for (size_t i = 0; i < ids.size(); ++i) {
    out[static_cast<size_t>(ids[i])] = vals[i];
  }
  return out;
}

Table WithRowNumbers(const Table& t, const std::string& name) {
  Schema schema = t.schema();
  schema.AddField({name, DataType::kInt64});
  std::vector<Column> cols;
  cols.reserve(static_cast<size_t>(t.num_columns()) + 1);
  for (int c = 0; c < t.num_columns(); ++c) cols.push_back(t.column(c));
  std::vector<int64_t> seq(static_cast<size_t>(t.num_rows()));
  for (int64_t i = 0; i < t.num_rows(); ++i) seq[static_cast<size_t>(i)] = i;
  cols.push_back(Column::FromInts(std::move(seq)));
  auto made = Table::Make(std::move(schema), std::move(cols));
  VX_CHECK(made.ok());
  return std::move(made).MoveValueUnsafe();
}

}  // namespace vertexica
