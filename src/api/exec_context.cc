#include "api/exec_context.h"

namespace vertexica {

ExecContext ExecContext::FromRequest(const RunRequest& request) {
  ExecContext ctx;
  ctx.knobs = ExecKnobs::Capture();
  if (request.threads > 0) ctx.knobs.threads = request.threads;
  if (request.shards > 0) ctx.knobs.shards = request.shards;
  if (!request.encoding.empty()) {
    ctx.knobs.encoding = ParseEncodingMode(request.encoding);
  }
  if (!request.merge_join.empty()) {
    // Same off-vocabulary as the VERTEXICA_MERGE_JOIN env knob.
    ctx.knobs.merge_join =
        request.merge_join != "0" && request.merge_join != "off" &&
        request.merge_join != "OFF" && request.merge_join != "false";
  }
  if (!request.frontier.empty()) {
    ctx.knobs.frontier = ParseFrontierMode(request.frontier);
  }
  if (!request.vectorized.empty()) {
    // Same off-vocabulary as the VERTEXICA_VECTORIZED env knob.
    ctx.knobs.vectorized =
        request.vectorized != "0" && request.vectorized != "off" &&
        request.vectorized != "OFF" && request.vectorized != "false";
  }
  if (request.deadline_ms > 0) {
    // Derive rather than replace: the child token enforces the request
    // deadline while still observing an ambient (e.g. session-level)
    // cancellation installed by the serving layer.
    ctx.knobs.cancel =
        ctx.knobs.cancel.WithDeadlineAfter(request.deadline_ms / 1e3);
  }
  // Resolution audit: the contract above — "installing it on any thread
  // reproduces the configuration" — needs strictly positive counts, since
  // the scoped installers treat <= 0 as a no-op scope and would silently
  // fall through to that thread's ambient values instead.
  VX_DCHECK(ctx.knobs.threads >= 1 && ctx.knobs.shards >= 1)
      << "ExecContext resolved non-installable knobs: threads="
      << ctx.knobs.threads << " shards=" << ctx.knobs.shards;
  return ctx;
}

}  // namespace vertexica
