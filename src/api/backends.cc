#include "api/backends.h"

#include <limits>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "algorithms/connected_components.h"
#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "algorithms/triangle_program.h"
#include "api/exec_context.h"
#include "common/timer.h"
#include "exec/parallel.h"
#include "giraph/bsp_engine.h"
#include "graphdb/gdb_algorithms.h"
#include "sqlgraph/sql_common.h"
#include "storage/partition.h"
#include "sqlgraph/sql_connected_components.h"
#include "sqlgraph/sql_pagerank.h"
#include "sqlgraph/sql_shortest_paths.h"
#include "sqlgraph/triangle_count.h"
#include "vertexica/coordinator.h"
#include "vertexica/graph_tables.h"

namespace vertexica {

Result<RunResult> RegistryBackend::Run(const RunRequest& request) {
  if (!prepared()) {
    return Status::InvalidArgument("backend '" + id_ +
                                   "' has no prepared graph — call Prepare "
                                   "(or Engine::LoadGraph) first");
  }
  VX_ASSIGN_OR_RETURN(
      AlgorithmRegistry::Factory factory,
      AlgorithmRegistry::Global()->Find(request.algorithm, id_));
  // Resolve the request's knob overrides (threads, shards, encoding,
  // merge-join, vectorized) against the ambient defaults into one explicit
  // context, then install it around the dispatch so every layer that
  // resolves a knob (exec kernels, the graph-table loader, the superstep
  // coordinator, BSP compute threads) inherits this request's
  // configuration. Backends that never consult a knob simply ignore it.
  ExecContext ctx = ExecContext::FromRequest(request);
  // Per-run counter blocks (not process-wide atomics): concurrent runs on
  // one server never interleave their counters. The KernelStats block is
  // relaxed atomics and rides ExecKnobs into every pool task; the
  // JoinPathStats block has plain fields, so it is installed on this
  // dispatching thread only (the coordinator layers its own per-superstep
  // collectors innermost).
  KernelStats kernel_stats;
  ctx.knobs.kernel_stats = &kernel_stats;
  ExecContext::Scope scoped_knobs(ctx.knobs);
  JoinPathStats join_stats;
  ScopedJoinStatsCollector join_scope(&join_stats);
  VX_ASSIGN_OR_RETURN(RunResult result, factory(this, request));
  result.backend = id_;
  result.algorithm = request.algorithm;
  const KernelStatsSnapshot kernels = Snapshot(kernel_stats);
  if (kernels.bytes_materialized > 0 || kernels.fused_batches > 0 ||
      kernels.legacy_batches > 0 || kernels.batch_hash_rows > 0) {
    result.backend_metrics["bytes_materialized"] =
        static_cast<double>(kernels.bytes_materialized);
    result.backend_metrics["fused_batches"] =
        static_cast<double>(kernels.fused_batches);
    result.backend_metrics["legacy_batches"] =
        static_cast<double>(kernels.legacy_batches);
    result.backend_metrics["batch_hash_rows"] =
        static_cast<double>(kernels.batch_hash_rows);
  }
  if (join_stats.hash_joins > 0 || join_stats.merge_joins > 0) {
    result.backend_metrics["hash_joins"] =
        static_cast<double>(join_stats.hash_joins);
    result.backend_metrics["merge_joins"] =
        static_cast<double>(join_stats.merge_joins);
  }
  return result;
}

Status VertexicaBackend::Prepare(std::shared_ptr<const Graph> graph) {
  // The vertex/message tables are (re)materialized per run because initial
  // vertex values depend on the program; the edge table is program-
  // independent, so it is built (sorted, encoded, zone-mapped) exactly once
  // here and shared immutably by every run's private catalog.
  VX_RETURN_NOT_OK(SetGraph(std::move(graph)));
  VX_RETURN_NOT_OK(LoadEdgeTable(&base_catalog_, *graph_));
  return Status::OK();
}

Status SqlGraphBackend::Prepare(std::shared_ptr<const Graph> graph) {
  VX_RETURN_NOT_OK(SetGraph(std::move(graph)));
  vertices_ = MakeVertexListTable(*graph_);
  edges_ = MakeEdgeListTable(*graph_);
  return Status::OK();
}

Status GiraphBackend::Prepare(std::shared_ptr<const Graph> graph) {
  VX_RETURN_NOT_OK(SetGraph(std::move(graph)));
  return Status::OK();
}

Status GraphDbBackend::Prepare(std::shared_ptr<const Graph> graph) {
  VX_RETURN_NOT_OK(SetGraph(std::move(graph)));
  db_ = std::make_unique<graphdb::GraphDb>();
  VX_RETURN_NOT_OK(db_->LoadGraph(*graph_));
  return Status::OK();
}

Result<RunResult> GraphDbBackend::Run(const RunRequest& request) {
  // One run at a time: even "read-only" gdb algorithms bump record access
  // counters and commit results as node properties (see backends.h).
  std::lock_guard<std::mutex> lock(run_mutex_);
  return RegistryBackend::Run(request);
}

namespace {

Status ValidateSource(const Graph& graph, int64_t source) {
  if (source < 0 || source >= graph.num_vertices) {
    return Status::InvalidArgument(
        "source vertex " + std::to_string(source) + " outside [0, " +
        std::to_string(graph.num_vertices) + ")");
  }
  return Status::OK();
}

/// Scatters an (id, <value_col>) result table into a dense vector indexed
/// by vertex id; ids absent from the table keep `fill`.
Result<std::vector<double>> DenseFromTable(const Table& t,
                                           const std::string& value_col,
                                           int64_t num_vertices, double fill) {
  const Column* ids = t.ColumnByName("id");
  const Column* vals = t.ColumnByName(value_col);
  if (ids == nullptr || vals == nullptr) {
    return Status::Internal("result table lacks (id, " + value_col +
                            ") columns");
  }
  std::vector<double> out(static_cast<size_t>(num_vertices), fill);
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    const int64_t id = ids->GetInt64(r);
    if (id < 0 || id >= num_vertices) {
      return Status::OutOfRange("vertex id " + std::to_string(id) +
                                " outside the prepared graph");
    }
    out[static_cast<size_t>(id)] = vals->GetNumeric(r);
  }
  return out;
}

/// Runs `program` on the Vertexica coordinator over `graph`, filling the
/// unified result (values, aggregates, full superstep stats). Pass
/// `extract_values` = false for aggregate-only algorithms to skip the
/// full vertex-table scan.
Result<RunResult> RunOnCoordinator(VertexicaBackend* backend,
                                   const Graph& graph, VertexProgram* program,
                                   const RunRequest& request,
                                   bool extract_values = true) {
  RunResult result;
  // Each run gets a private catalog — the coordinator replaces the vertex
  // and message tables every superstep, which must stay run-local so
  // concurrent runs on one backend don't see each other's supersteps.
  // Runs on the prepared base graph seed it copy-on-write from the
  // backend's snapshot and reuse the shared immutable edge table;
  // algorithms that run on a transformed temporary graph (cc's
  // WithReverseEdges, triangle's CanonicallyOriented) load a full private
  // table set instead.
  const bool on_base_graph = (&graph == &backend->graph());
  Catalog catalog(on_base_graph ? backend->base_snapshot()
                                : CatalogSnapshot());
  if (on_base_graph) {
    VX_RETURN_NOT_OK(LoadProgramTables(&catalog, graph, *program));
  } else {
    VX_RETURN_NOT_OK(LoadGraphTables(&catalog, graph, *program));
  }
  Coordinator coordinator(&catalog, program, request.vertexica);
  VX_RETURN_NOT_OK(coordinator.Run(&result.stats));
  if (extract_values) {
    VX_ASSIGN_OR_RETURN(result.values, ReadVertexValues(catalog, {}));
  }
  result.aggregates = coordinator.aggregates();
  return result;
}

/// Runs `program` on the BSP comparator over `graph`, mapping GiraphStats
/// onto the unified stats + backend_metrics.
Result<RunResult> RunOnBsp(const Graph& graph, VertexProgram* program,
                           const RunRequest& request,
                           bool extract_values = true) {
  RunResult result;
  BspEngine engine(graph, program, request.giraph);
  GiraphStats stats;
  VX_RETURN_NOT_OK(engine.Run(&stats));
  if (extract_values) result.values = engine.values(0);
  result.aggregates = engine.aggregates();
  result.stats.total_seconds = stats.total_seconds;
  result.stats.total_messages = stats.total_messages;
  result.stats.superstep_count = stats.supersteps;
  result.backend_metrics["compute_seconds"] = stats.compute_seconds;
  result.backend_metrics["startup_seconds"] = stats.startup_seconds;
  result.backend_metrics["message_seconds"] = stats.message_seconds;
  return result;
}

/// Copies the GraphDb logical-I/O report onto the unified stats.
void FillGdbMetrics(const graphdb::GdbRunStats& stats, RunResult* result) {
  result->stats.total_seconds = stats.total_seconds;
  result->backend_metrics["measured_seconds"] = stats.seconds;
  result->backend_metrics["modeled_io_seconds"] = stats.modeled_io_seconds;
  result->backend_metrics["record_accesses"] =
      static_cast<double>(stats.TotalAccesses());
}

void RegisterVertexicaAlgorithms(AlgorithmRegistry* registry) {
  registry->Register(kPageRank, kVertexicaBackendId,
                     [](GraphBackend* b, const RunRequest& req) -> Result<RunResult> {
    auto* backend = static_cast<VertexicaBackend*>(b);
    PageRankProgram program(req.iterations, req.damping);
    VX_ASSIGN_OR_RETURN(
        RunResult result,
        RunOnCoordinator(backend, backend->graph(), &program, req));
    result.value_name = "rank";
    return result;
  });
  registry->Register(kSssp, kVertexicaBackendId,
                     [](GraphBackend* b, const RunRequest& req) -> Result<RunResult> {
    auto* backend = static_cast<VertexicaBackend*>(b);
    VX_RETURN_NOT_OK(ValidateSource(backend->graph(), req.source));
    ShortestPathProgram program(req.source);
    VX_ASSIGN_OR_RETURN(
        RunResult result,
        RunOnCoordinator(backend, backend->graph(), &program, req));
    result.value_name = "dist";
    return result;
  });
  registry->Register(kConnectedComponents, kVertexicaBackendId,
                     [](GraphBackend* b, const RunRequest& req) -> Result<RunResult> {
    auto* backend = static_cast<VertexicaBackend*>(b);
    ConnectedComponentsProgram program;
    VX_ASSIGN_OR_RETURN(
        RunResult result,
        RunOnCoordinator(backend, backend->graph().WithReverseEdges(),
                         &program, req));
    result.value_name = "label";
    return result;
  });
  registry->Register(kTriangleCount, kVertexicaBackendId,
                     [](GraphBackend* b, const RunRequest& req) -> Result<RunResult> {
    auto* backend = static_cast<VertexicaBackend*>(b);
    TriangleCountProgram program;
    VX_ASSIGN_OR_RETURN(
        RunResult result,
        RunOnCoordinator(backend, CanonicallyOriented(backend->graph()),
                         &program, req, /*extract_values=*/false));
    if (result.aggregates.find("triangles") == result.aggregates.end()) {
      result.aggregates["triangles"] = 0.0;
    }
    return result;
  });
}

void RegisterSqlGraphAlgorithms(AlgorithmRegistry* registry) {
  registry->Register(kPageRank, kSqlGraphBackendId,
                     [](GraphBackend* b, const RunRequest& req) -> Result<RunResult> {
    auto* backend = static_cast<SqlGraphBackend*>(b);
    RunResult result;
    WallTimer timer;
    VX_ASSIGN_OR_RETURN(Table ranks,
                        SqlPageRank(backend->vertices(), backend->edges(),
                                    req.iterations, req.damping));
    result.stats.total_seconds = timer.ElapsedSeconds();
    VX_ASSIGN_OR_RETURN(
        result.values,
        DenseFromTable(ranks, "rank", backend->graph().num_vertices, 0.0));
    result.value_name = "rank";
    return result;
  });
  registry->Register(kSssp, kSqlGraphBackendId,
                     [](GraphBackend* b, const RunRequest& req) -> Result<RunResult> {
    auto* backend = static_cast<SqlGraphBackend*>(b);
    VX_RETURN_NOT_OK(ValidateSource(backend->graph(), req.source));
    RunResult result;
    WallTimer timer;
    VX_ASSIGN_OR_RETURN(Table dist,
                        SqlShortestPaths(backend->vertices(),
                                         backend->edges(), req.source));
    result.stats.total_seconds = timer.ElapsedSeconds();
    VX_ASSIGN_OR_RETURN(
        result.values,
        DenseFromTable(dist, "dist", backend->graph().num_vertices,
                       std::numeric_limits<double>::infinity()));
    result.value_name = "dist";
    return result;
  });
  registry->Register(kConnectedComponents, kSqlGraphBackendId,
                     [](GraphBackend* b, const RunRequest&) -> Result<RunResult> {
    auto* backend = static_cast<SqlGraphBackend*>(b);
    RunResult result;
    WallTimer timer;
    VX_ASSIGN_OR_RETURN(
        Table labels,
        SqlConnectedComponents(backend->vertices(), backend->edges()));
    result.stats.total_seconds = timer.ElapsedSeconds();
    VX_ASSIGN_OR_RETURN(
        result.values,
        DenseFromTable(labels, "label", backend->graph().num_vertices, 0.0));
    result.value_name = "label";
    return result;
  });
  registry->Register(kTriangleCount, kSqlGraphBackendId,
                     [](GraphBackend* b, const RunRequest&) -> Result<RunResult> {
    auto* backend = static_cast<SqlGraphBackend*>(b);
    RunResult result;
    WallTimer timer;
    VX_ASSIGN_OR_RETURN(int64_t count, SqlTriangleCount(backend->edges()));
    result.stats.total_seconds = timer.ElapsedSeconds();
    result.aggregates["triangles"] = static_cast<double>(count);
    return result;
  });
}

void RegisterGiraphAlgorithms(AlgorithmRegistry* registry) {
  registry->Register(kPageRank, kGiraphBackendId,
                     [](GraphBackend* b, const RunRequest& req) -> Result<RunResult> {
    auto* backend = static_cast<GiraphBackend*>(b);
    PageRankProgram program(req.iterations, req.damping);
    VX_ASSIGN_OR_RETURN(RunResult result,
                        RunOnBsp(backend->graph(), &program, req));
    result.value_name = "rank";
    return result;
  });
  registry->Register(kSssp, kGiraphBackendId,
                     [](GraphBackend* b, const RunRequest& req) -> Result<RunResult> {
    auto* backend = static_cast<GiraphBackend*>(b);
    VX_RETURN_NOT_OK(ValidateSource(backend->graph(), req.source));
    ShortestPathProgram program(req.source);
    VX_ASSIGN_OR_RETURN(RunResult result,
                        RunOnBsp(backend->graph(), &program, req));
    result.value_name = "dist";
    return result;
  });
  registry->Register(kConnectedComponents, kGiraphBackendId,
                     [](GraphBackend* b, const RunRequest& req) -> Result<RunResult> {
    auto* backend = static_cast<GiraphBackend*>(b);
    ConnectedComponentsProgram program;
    VX_ASSIGN_OR_RETURN(
        RunResult result,
        RunOnBsp(backend->graph().WithReverseEdges(), &program, req));
    result.value_name = "label";
    return result;
  });
  registry->Register(kTriangleCount, kGiraphBackendId,
                     [](GraphBackend* b, const RunRequest& req) -> Result<RunResult> {
    auto* backend = static_cast<GiraphBackend*>(b);
    TriangleCountProgram program;
    VX_ASSIGN_OR_RETURN(
        RunResult result,
        RunOnBsp(CanonicallyOriented(backend->graph()), &program, req,
                 /*extract_values=*/false));
    if (result.aggregates.find("triangles") == result.aggregates.end()) {
      result.aggregates["triangles"] = 0.0;
    }
    return result;
  });
}

void RegisterGraphDbAlgorithms(AlgorithmRegistry* registry) {
  registry->Register(kPageRank, kGraphDbBackendId,
                     [](GraphBackend* b, const RunRequest& req) -> Result<RunResult> {
    auto* backend = static_cast<GraphDbBackend*>(b);
    RunResult result;
    graphdb::GdbRunStats stats;
    stats.access_latency_ns = req.gdb_access_latency_ns;
    VX_ASSIGN_OR_RETURN(result.values,
                        graphdb::GdbPageRank(backend->db(), req.iterations,
                                             req.damping, &stats));
    FillGdbMetrics(stats, &result);
    result.value_name = "rank";
    return result;
  });
  registry->Register(kSssp, kGraphDbBackendId,
                     [](GraphBackend* b, const RunRequest& req) -> Result<RunResult> {
    auto* backend = static_cast<GraphDbBackend*>(b);
    VX_RETURN_NOT_OK(ValidateSource(backend->graph(), req.source));
    RunResult result;
    graphdb::GdbRunStats stats;
    stats.access_latency_ns = req.gdb_access_latency_ns;
    VX_ASSIGN_OR_RETURN(
        result.values,
        graphdb::GdbShortestPaths(backend->db(), req.source, &stats));
    FillGdbMetrics(stats, &result);
    result.value_name = "dist";
    return result;
  });
  registry->Register(kConnectedComponents, kGraphDbBackendId,
                     [](GraphBackend* b, const RunRequest& req) -> Result<RunResult> {
    auto* backend = static_cast<GraphDbBackend*>(b);
    RunResult result;
    graphdb::GdbRunStats stats;
    stats.access_latency_ns = req.gdb_access_latency_ns;
    VX_ASSIGN_OR_RETURN(std::vector<int64_t> labels,
                        graphdb::GdbConnectedComponents(backend->db(),
                                                        &stats));
    result.values.assign(labels.begin(), labels.end());
    FillGdbMetrics(stats, &result);
    result.value_name = "label";
    return result;
  });
}

}  // namespace

void EnsureBuiltinAlgorithms() {
  static std::once_flag once;
  std::call_once(once, [] {
    AlgorithmRegistry* registry = AlgorithmRegistry::Global();
    RegisterVertexicaAlgorithms(registry);
    RegisterSqlGraphAlgorithms(registry);
    RegisterGiraphAlgorithms(registry);
    RegisterGraphDbAlgorithms(registry);
  });
}

}  // namespace vertexica
