/// \file backends.h
/// \brief The four built-in backends behind the `Engine` facade, one per
/// system compared in the paper:
///
///  - VertexicaBackend — vertex-centric programs compiled to relational
///    plans (the paper's system): graph tables in a Catalog, driven by the
///    Coordinator.
///  - SqlGraphBackend — the hand-written SQL formulations ("Vertexica
///    (SQL)" in Figure 2): materialized vertex/edge tables.
///  - GiraphBackend — the in-memory BSP comparator (CSR adjacency, modeled
///    JVM/job-launch costs via RunRequest::giraph).
///  - GraphDbBackend — the transactional record-store graph database
///    (modeled record I/O via RunRequest::gdb_access_latency_ns).
///
/// Each backend resolves algorithms through the `AlgorithmRegistry`, so the
/// set of algorithms a backend supports is open-ended.

#ifndef VERTEXICA_API_BACKENDS_H_
#define VERTEXICA_API_BACKENDS_H_

#include <memory>
#include <mutex>
#include <string>

#include "api/algorithm_registry.h"
#include "api/graph_backend.h"
#include "catalog/catalog.h"
#include "graphdb/graph_db.h"
#include "graphgen/graph.h"
#include "storage/table.h"

namespace vertexica {

/// \brief Shared plumbing: id, prepared flag, and a Run that dispatches
/// through the global AlgorithmRegistry.
class RegistryBackend : public GraphBackend {
 public:
  explicit RegistryBackend(std::string id) : id_(std::move(id)) {}

  const std::string& id() const override { return id_; }
  bool prepared() const override { return graph_ != nullptr; }
  Result<RunResult> Run(const RunRequest& request) override;

  /// \brief The graph most recently passed to Prepare. Requires prepared().
  const Graph& graph() const { return *graph_; }

 protected:
  /// Rejects null and stores the shared graph; Prepare implementations
  /// call this first.
  Status SetGraph(std::shared_ptr<const Graph> graph) {
    if (graph == nullptr) {
      return Status::InvalidArgument("null graph passed to Prepare");
    }
    graph_ = std::move(graph);
    return Status::OK();
  }

  std::string id_;
  std::shared_ptr<const Graph> graph_;
};

/// \brief The paper's system: vertex programs on the relational engine.
///
/// Concurrency model: Prepare materializes the program-independent edge
/// table (sorted, encoded, zone-mapped) into a base catalog and publishes
/// an immutable snapshot of it. Every run then builds a *private* catalog
/// seeded copy-on-write from that snapshot — the coordinator's per-
/// superstep ReplaceTable churn stays run-local while all concurrent runs
/// share the one edge table. This is what lets an EngineServer (see
/// src/server/) execute many vertexica requests on one backend at once.
class VertexicaBackend : public RegistryBackend {
 public:
  VertexicaBackend() : RegistryBackend(kVertexicaBackendId) {}
  Status Prepare(std::shared_ptr<const Graph> graph) override;

  /// \brief Immutable view of the prepared base tables (currently just the
  /// edge table). Cheap: shares table handles, copies no data.
  CatalogSnapshot base_snapshot() const { return base_catalog_.Snapshot(); }

 private:
  Catalog base_catalog_;
};

/// \brief Hand-written SQL graph algorithms over materialized tables.
class SqlGraphBackend : public RegistryBackend {
 public:
  SqlGraphBackend() : RegistryBackend(kSqlGraphBackendId) {}
  Status Prepare(std::shared_ptr<const Graph> graph) override;

  const Table& vertices() const { return vertices_; }
  const Table& edges() const { return edges_; }

 private:
  Table vertices_;
  Table edges_;
};

/// \brief The in-memory BSP (Giraph) comparator.
class GiraphBackend : public RegistryBackend {
 public:
  GiraphBackend() : RegistryBackend(kGiraphBackendId) {}
  Status Prepare(std::shared_ptr<const Graph> graph) override;
};

/// \brief The transactional record-store graph database comparator.
///
/// GraphDb runs are serialized: the record store mutates shared state even
/// on reads (access counters, and GdbPageRank commits ranks back as node
/// properties), so concurrent runs would race. The run mutex keeps the
/// backend safe under a concurrent server at the cost of no intra-backend
/// parallelism — faithful to the paper's single-writer graph database.
class GraphDbBackend : public RegistryBackend {
 public:
  GraphDbBackend() : RegistryBackend(kGraphDbBackendId) {}
  Status Prepare(std::shared_ptr<const Graph> graph) override;
  Result<RunResult> Run(const RunRequest& request) override;

  graphdb::GraphDb* db() { return db_.get(); }

 private:
  std::mutex run_mutex_;
  std::unique_ptr<graphdb::GraphDb> db_;
};

}  // namespace vertexica

#endif  // VERTEXICA_API_BACKENDS_H_
