#include "api/algorithm_registry.h"

namespace vertexica {

AlgorithmRegistry* AlgorithmRegistry::Global() {
  static AlgorithmRegistry* registry = new AlgorithmRegistry();
  return registry;
}

void AlgorithmRegistry::Register(const std::string& algorithm,
                                 const std::string& backend, Factory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  factories_[algorithm][backend] = std::move(factory);
}

Result<AlgorithmRegistry::Factory> AlgorithmRegistry::Find(
    const std::string& algorithm, const std::string& backend) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto algo_it = factories_.find(algorithm);
  if (algo_it == factories_.end()) {
    return Status::NotFound("unknown algorithm '" + algorithm + "'");
  }
  auto backend_it = algo_it->second.find(backend);
  if (backend_it == algo_it->second.end()) {
    return Status::NotFound("algorithm '" + algorithm +
                            "' has no implementation on backend '" + backend +
                            "'");
  }
  return backend_it->second;
}

bool AlgorithmRegistry::Supports(const std::string& algorithm,
                                 const std::string& backend) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto algo_it = factories_.find(algorithm);
  return algo_it != factories_.end() &&
         algo_it->second.find(backend) != algo_it->second.end();
}

std::vector<std::string> AlgorithmRegistry::Algorithms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [algorithm, backends] : factories_) {
    out.push_back(algorithm);
  }
  return out;
}

std::vector<std::string> AlgorithmRegistry::AlgorithmsFor(
    const std::string& backend) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [algorithm, backends] : factories_) {
    if (backends.find(backend) != backends.end()) out.push_back(algorithm);
  }
  return out;
}

std::vector<std::string> AlgorithmRegistry::BackendsFor(
    const std::string& algorithm) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  auto algo_it = factories_.find(algorithm);
  if (algo_it == factories_.end()) return out;
  for (const auto& [backend, factory] : algo_it->second) {
    out.push_back(backend);
  }
  return out;
}

}  // namespace vertexica
