/// \file engine.h
/// \brief The top-level facade: one backend-agnostic run API over the
/// vertexica / sqlgraph / giraph / graphdb engines.
///
/// \code
///   vertexica::Engine engine;
///   engine.LoadGraph(vertexica::GenerateRmat(2000, 16000, 7));
///
///   vertexica::RunRequest request;
///   request.algorithm = "pagerank";
///   for (const std::string& backend : engine.backends()) {
///     request.backend = backend;
///     auto result = engine.Run(request);
///     if (result.ok()) {
///       std::printf("%s: %.3f s\n", backend.c_str(),
///                   result->stats.total_seconds);
///     }
///   }
/// \endcode
///
/// Backends are prepared lazily: LoadGraph only records the graph, and each
/// backend pays its load cost (table materialization, record-store bulk
/// load, ...) the first time a request targets it.

#ifndef VERTEXICA_API_ENGINE_H_
#define VERTEXICA_API_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/algorithm_registry.h"
#include "api/backends.h"
#include "api/graph_backend.h"
#include "api/run_types.h"
#include "common/result.h"
#include "common/status.h"
#include "graphgen/graph.h"

namespace vertexica {

/// \brief The unified entry point for running graph algorithms.
class Engine {
 public:
  /// \brief Constructs an engine with the four built-in backends
  /// (vertexica, sqlgraph, giraph, graphdb) and the built-in algorithms
  /// registered.
  Engine();

  /// \brief Sets (or replaces) the graph all subsequent runs operate on.
  /// Taken by value (move in to avoid the copy) and shared with every
  /// backend, so the engine holds exactly one instance regardless of how
  /// many backends prepare. Backend preparation is deferred to the first
  /// run on each backend.
  Status LoadGraph(Graph graph);

  /// \brief Zero-copy overload: shares an already-owned graph (e.g. a
  /// bench's dataset cache) instead of copying it into the engine.
  Status LoadGraph(std::shared_ptr<const Graph> graph);

  /// \brief Eagerly prepares one backend for the loaded graph. Run does
  /// this lazily; explicit preparation keeps the one-time load cost out of
  /// externally timed windows.
  Status PrepareBackend(const std::string& id);

  /// \brief True once LoadGraph has been called.
  bool has_graph() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return graph_ != nullptr;
  }

  /// \brief The currently loaded graph. Requires has_graph(); the reference
  /// is only stable while no concurrent LoadGraph replaces the graph.
  const Graph& graph() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return *graph_;
  }

  /// \brief Runs one algorithm on one backend (empty backend id selects
  /// `default_backend()`), preparing the backend first if needed.
  Result<RunResult> Run(const RunRequest& request);

  /// \brief Shorthand for the common case.
  Result<RunResult> Run(const std::string& algorithm,
                        const std::string& backend = "");

  /// \brief Backend ids in registration order — `for (const auto& b :
  /// engine.backends())` is the cross-backend comparison loop.
  std::vector<std::string> backends() const;

  /// \brief All algorithm names known to the registry.
  std::vector<std::string> algorithms() const;

  /// \brief True iff `algorithm` can run on `backend`.
  bool Supports(const std::string& algorithm,
                const std::string& backend) const;

  /// \brief Direct access to a backend (nullptr when unknown).
  GraphBackend* backend(const std::string& id);

  /// \brief Adds a custom backend; fails on a duplicate id.
  Status RegisterBackend(std::unique_ptr<GraphBackend> backend);

  /// \brief The backend used when a request leaves `backend` empty
  /// ("vertexica" initially).
  const std::string& default_backend() const { return default_backend_; }
  Status set_default_backend(const std::string& id);

 private:
  /// Guards graph_/graph_generation_/prepared_generation_ so concurrent
  /// Run calls (the EngineServer serving path) race neither on lazy
  /// preparation nor on a LoadGraph installing a new graph. Held across
  /// Prepare itself: two first-touch requests must not both prepare one
  /// backend. Backend registration is setup-time and stays unguarded.
  mutable std::mutex mutex_;

  std::shared_ptr<const Graph> graph_;
  uint64_t graph_generation_ = 0;

  std::vector<std::unique_ptr<GraphBackend>> backends_;  // registration order
  std::map<std::string, uint64_t> prepared_generation_;  // backend id -> gen
  std::string default_backend_ = kVertexicaBackendId;
};

}  // namespace vertexica

#endif  // VERTEXICA_API_ENGINE_H_
