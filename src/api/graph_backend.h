/// \file graph_backend.h
/// \brief The backend abstraction of the `Engine` facade: Prepare(graph) →
/// Run(request) → RunResult.
///
/// A backend owns whatever engine-local representation of the graph it
/// needs (relational tables in a catalog, a CSR adjacency, a record store)
/// and executes algorithms looked up in the `AlgorithmRegistry` against it.
/// Prepare is the expensive, once-per-graph step; Run may be called any
/// number of times afterwards.

#ifndef VERTEXICA_API_GRAPH_BACKEND_H_
#define VERTEXICA_API_GRAPH_BACKEND_H_

#include <memory>
#include <string>

#include "api/run_types.h"
#include "common/result.h"
#include "common/status.h"
#include "graphgen/graph.h"

namespace vertexica {

/// \brief One pluggable execution engine behind the facade.
class GraphBackend {
 public:
  virtual ~GraphBackend() = default;

  /// \brief Stable identifier ("vertexica", "sqlgraph", "giraph",
  /// "graphdb", or an application-registered name).
  virtual const std::string& id() const = 0;

  /// \brief Builds the backend-local representation of `graph`, replacing
  /// any previously prepared one. The pointer is shared, not copied: every
  /// backend of an Engine references the same immutable graph instance.
  virtual Status Prepare(std::shared_ptr<const Graph> graph) = 0;

  /// \brief True once Prepare has succeeded (and until the next Prepare).
  virtual bool prepared() const = 0;

  /// \brief Executes `request.algorithm` on the prepared graph.
  ///
  /// Fails with NotFound if the algorithm has no implementation registered
  /// for this backend, and with FailedPrecondition-style InvalidArgument if
  /// Prepare has not run.
  virtual Result<RunResult> Run(const RunRequest& request) = 0;
};

}  // namespace vertexica

#endif  // VERTEXICA_API_GRAPH_BACKEND_H_
