/// \file run_types.h
/// \brief The typed request/response pair of the `Engine` facade.
///
/// The paper's point is that the *same* vertex-centric query runs on a
/// relational engine and on native graph systems. `RunRequest` is that
/// query, stated once, backend-agnostically; `RunResult` is the uniform
/// answer every backend produces: a dense per-vertex value vector (also
/// materializable as a relational table), scalar aggregates, and unified
/// `RunStats`.

#ifndef VERTEXICA_API_RUN_TYPES_H_
#define VERTEXICA_API_RUN_TYPES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "giraph/bsp_engine.h"
#include "storage/table.h"
#include "vertexica/coordinator.h"
#include "vertexica/options.h"

namespace vertexica {

/// \name Canonical backend ids (registration order of the default Engine)
/// @{
inline constexpr char kVertexicaBackendId[] = "vertexica";
inline constexpr char kSqlGraphBackendId[] = "sqlgraph";
inline constexpr char kGiraphBackendId[] = "giraph";
inline constexpr char kGraphDbBackendId[] = "graphdb";
/// @}

/// \name Built-in algorithm names (AlgorithmRegistry keys)
/// @{
inline constexpr char kPageRank[] = "pagerank";
inline constexpr char kSssp[] = "sssp";
inline constexpr char kConnectedComponents[] = "connected_components";
inline constexpr char kTriangleCount[] = "triangle_count";
/// @}

/// \brief One backend-agnostic algorithm invocation.
///
/// Only `algorithm` is required. Parameters an algorithm does not use are
/// ignored (e.g. `source` by pagerank), so the same request can be replayed
/// across algorithms and backends for comparison runs.
struct RunRequest {
  /// AlgorithmRegistry key: "pagerank", "sssp", "connected_components",
  /// "triangle_count", or any name registered by the application.
  std::string algorithm;

  /// Backend id; empty selects the Engine's default backend.
  std::string backend;

  /// Iteration bound for fixed-iteration algorithms (pagerank).
  int iterations = 10;

  /// PageRank damping factor.
  double damping = 0.85;

  /// Source vertex for single-source algorithms (sssp).
  int64_t source = 0;

  /// End-to-end parallelism: the one knob controlling every layer that
  /// fans out — the morsel-parallel relational executor (scans, joins,
  /// aggregates; see exec/parallel.h), Vertexica worker-UDF instances, and
  /// Giraph BSP compute threads. 0 keeps the ambient default
  /// (VERTEXICA_THREADS env var, else hardware cores). Backend-specific
  /// knobs left at 0 inherit this value; explicitly set ones
  /// (e.g. `vertexica.num_workers`) win. The graphdb backend is
  /// single-threaded by design and ignores it. On the relational backends
  /// (vertexica, sqlgraph) results are bit-identical across `threads`
  /// settings — morsel boundaries never depend on the thread count; the
  /// giraph comparator partitions vertices by worker count, so its
  /// floating-point combine order (and hence low-order bits) may vary with
  /// `threads`.
  int threads = 0;

  /// Persistent sharding of the Vertexica superstep dataflow (see
  /// docs/API.md and storage/partition.h): the vertex and edge tables are
  /// hash-partitioned on vertex id into this many resident shards once per
  /// run, the per-shard dataflow runs shard-wise in parallel, and only
  /// cross-shard messages are exchanged between supersteps. 0 keeps the
  /// ambient setting (VERTEXICA_SHARDS env var, else 1 = unsharded).
  /// Installed as a scoped override around the backend dispatch, like
  /// `threads`; backends without a superstep loop ignore it. Value-neutral
  /// on every backend: shards are contiguous blocks of the vertex-batching
  /// partitions, so results are bit-identical at any shard count (the
  /// SuperstepStats per-shard counters are the only thing that changes).
  int shards = 0;

  /// Storage-encoding policy for the engine-owned tables (see
  /// docs/STORAGE.md): "" keeps the ambient setting (VERTEXICA_ENCODING
  /// env var, else auto); "off" stores everything plain; "auto"/"on"
  /// encodes a column when the encoded footprint is smaller; "force"
  /// encodes every eligible column. Installed as a scoped override around
  /// the backend dispatch, like `threads`. Value-neutral: results are
  /// bit-identical across settings on every backend — only the physical
  /// representation (and SuperstepStats encoded/decoded byte counters)
  /// changes.
  std::string encoding;

  /// Join-operator policy for the relational executor (see docs/EXECUTOR.md):
  /// "" keeps the ambient setting (VERTEXICA_MERGE_JOIN env var, else on);
  /// "off" pins hash joins; "on" allows order-aware merge joins where the
  /// inputs are sorted. Installed as a scoped override around the backend
  /// dispatch, like `threads`. Value-neutral: the physical join operator
  /// never changes results.
  std::string merge_join;

  /// Execution-path policy for the relational σ/π kernels (see
  /// docs/EXECUTOR.md): "" keeps the ambient setting (VERTEXICA_VECTORIZED
  /// env var, else on); "off" pins the table-at-a-time interpreter; "on"
  /// allows the fused selection-vector path for eligible pipelines.
  /// Installed as a scoped override around the backend dispatch, like
  /// `threads`. Value-neutral: the fused path is bit-identical to the
  /// interpreter (only the KernelStats counters change).
  std::string vectorized;

  /// Frontier-path policy for the Vertexica superstep loop (see
  /// docs/EXECUTOR.md): "" keeps the ambient setting (VERTEXICA_FRONTIER
  /// env var, else auto); "auto" takes the sparse active-vertex path when
  /// the active fraction drops below the coordinator's threshold; "on"
  /// forces it whenever structurally possible; "off" always runs the dense
  /// path. Installed as a scoped override around the backend dispatch,
  /// like `threads`; backends without a superstep loop ignore it.
  /// Value-neutral: the frontier path is bit-identical to the dense path
  /// (only SuperstepStats frontier counters change).
  std::string frontier;

  /// End-to-end deadline for this run, in milliseconds; 0 means none.
  /// The budget covers admission queue wait plus execution: a request
  /// still queued when it expires is shed with `DeadlineExceeded`, and a
  /// running one stops cooperatively (ParallelFor grain boundaries,
  /// coordinator superstep boundaries) with the same status. Resolved into
  /// the run's CancelToken by ExecContext::FromRequest; see
  /// docs/DEVELOPING.md ("Fault injection & recovery") for the semantics.
  double deadline_ms = 0;

  /// \name Backend passthroughs
  /// Tuning knobs forwarded verbatim to the backend that understands them;
  /// the others ignore them.
  /// @{
  VertexicaOptions vertexica;          ///< relational-engine knobs (§2.3)
  GiraphOptions giraph;                ///< BSP comparator knobs
  double gdb_access_latency_ns = 0.0;  ///< modeled record I/O of the graph DB
  /// @}
};

/// \brief The uniform answer of every backend.
struct RunResult {
  std::string backend;     ///< id of the backend that produced this result
  std::string algorithm;   ///< registry key that was run

  /// Semantic name of the per-vertex value ("rank", "dist", "label", ...);
  /// used as the value column name by `ToTable`.
  std::string value_name = "value";

  /// Dense per-vertex output indexed by vertex id. Empty for algorithms
  /// whose only output is scalar (e.g. triangle_count).
  std::vector<double> values;

  /// Scalar outputs: global aggregator values ("pagerank_mass",
  /// "triangles") and algorithm-level scalars.
  std::map<std::string, double> aggregates;

  /// Backend-specific measurements that have no slot in RunStats, e.g.
  /// "startup_seconds" (giraph) or "record_accesses" (graphdb).
  std::map<std::string, double> backend_metrics;

  /// Unified run statistics. Backends without a superstep loop fill only
  /// the totals and leave `supersteps` empty.
  RunStats stats;

  /// \brief Materializes `values` as a relational table
  /// (id INT64, <value_name> DOUBLE) — the output is still just a table,
  /// ready for plain SQL over it.
  Table ToTable() const;
};

}  // namespace vertexica

#endif  // VERTEXICA_API_RUN_TYPES_H_
