/// \file algorithm_registry.h
/// \brief Maps algorithm names to per-backend implementations.
///
/// The registry is the piece that makes the facade open: adding a new
/// algorithm (or porting an existing one to another backend) is one
/// `Register` call — no change to `Engine` or to any backend class. The
/// built-in algorithms (pagerank, sssp, connected_components,
/// triangle_count) are installed by `EnsureBuiltinAlgorithms()`, which the
/// default `Engine` constructor calls.

#ifndef VERTEXICA_API_ALGORITHM_REGISTRY_H_
#define VERTEXICA_API_ALGORITHM_REGISTRY_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "api/graph_backend.h"
#include "api/run_types.h"
#include "common/result.h"

namespace vertexica {

/// \brief Name → per-backend factory table.
///
/// Thread-safe; `Global()` is the instance the default backends consult.
class AlgorithmRegistry {
 public:
  /// \brief One algorithm implementation bound to one backend. The backend
  /// passes itself as the first argument; the factory downcasts to the
  /// concrete backend it was registered against (registration site and
  /// backend implementation live together, so the cast is by construction
  /// safe).
  using Factory =
      std::function<Result<RunResult>(GraphBackend*, const RunRequest&)>;

  /// \brief The process-wide registry.
  static AlgorithmRegistry* Global();

  /// \brief Registers (or replaces) the implementation of `algorithm` on
  /// `backend`.
  void Register(const std::string& algorithm, const std::string& backend,
                Factory factory);

  /// \brief Looks up an implementation; kNotFound when the pair is missing.
  Result<Factory> Find(const std::string& algorithm,
                       const std::string& backend) const;

  /// \brief True iff `algorithm` has an implementation on `backend`.
  bool Supports(const std::string& algorithm,
                const std::string& backend) const;

  /// \brief All registered algorithm names, sorted.
  std::vector<std::string> Algorithms() const;

  /// \brief Algorithm names implemented on `backend`, sorted.
  std::vector<std::string> AlgorithmsFor(const std::string& backend) const;

  /// \brief Backend ids implementing `algorithm`, sorted.
  std::vector<std::string> BackendsFor(const std::string& algorithm) const;

 private:
  mutable std::mutex mutex_;
  // algorithm -> backend id -> factory
  std::map<std::string, std::map<std::string, Factory>> factories_;
};

/// \brief Installs the built-in algorithm implementations into the global
/// registry (idempotent; defined in backends.cc next to the backends).
void EnsureBuiltinAlgorithms();

}  // namespace vertexica

#endif  // VERTEXICA_API_ALGORITHM_REGISTRY_H_
