/// \file exec_context.h
/// \brief Per-request execution context: the resolved knob set one run
/// carries, replacing ambient thread-local installation at the API layer.
///
/// Historically `RegistryBackend::Run` installed each RunRequest knob as a
/// separate thread-local scope and every layer re-resolved the ambient
/// value on demand. That works for one run at a time but leaves "what is
/// this run's configuration?" implicit — nothing a server can inspect for
/// admission control, log per request, or hand to a remote worker
/// (ROADMAP #2). ExecContext makes it explicit: `FromRequest` resolves the
/// request's overrides against the ambient defaults *once*, producing a
/// plain value (an ExecKnobs) that can be inspected, queued, shipped, and
/// finally installed around the dispatch via `Scope`.

#ifndef VERTEXICA_API_EXEC_CONTEXT_H_
#define VERTEXICA_API_EXEC_CONTEXT_H_

#include "api/run_types.h"
#include "exec/exec_knobs.h"

namespace vertexica {

/// \brief The fully-resolved execution configuration of one run.
struct ExecContext {
  ExecKnobs knobs;

  /// \brief Resolves `request`'s explicit overrides (threads/shards > 0,
  /// non-empty encoding/merge_join/frontier/vectorized) against the calling thread's
  /// ambient defaults. The result is self-contained: installing it on any thread
  /// reproduces the configuration the request would have seen here.
  static ExecContext FromRequest(const RunRequest& request);

  /// \brief Worker threads this run will occupy at peak — what admission
  /// control charges against the global pool budget. The coordinator caps
  /// shard fan-out at the thread knob, so shards never raise the demand.
  int DemandThreads() const { return knobs.threads; }

  /// \brief RAII: installs the context on the current thread for the
  /// lifetime of the scope (the ExecKnobs installer, named for call sites
  /// that think in terms of contexts rather than knobs).
  using Scope = ScopedExecKnobs;
};

}  // namespace vertexica

#endif  // VERTEXICA_API_EXEC_CONTEXT_H_
