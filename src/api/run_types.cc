#include "api/run_types.h"

#include "common/logging.h"
#include "storage/schema.h"

namespace vertexica {

Table RunResult::ToTable() const {
  Table out(Schema({{"id", DataType::kInt64},
                    {value_name.empty() ? "value" : value_name,
                     DataType::kDouble}}));
  for (size_t v = 0; v < values.size(); ++v) {
    // internal-invariant: the schema two lines up matches this row shape by
    // construction — no user input can make AppendRow fail here.
    VX_CHECK_OK(out.AppendRow(
        {Value(static_cast<int64_t>(v)), Value(values[v])}));
  }
  return out;
}

}  // namespace vertexica
