#include "api/engine.h"

#include <utility>

namespace vertexica {

Engine::Engine() {
  EnsureBuiltinAlgorithms();
  backends_.push_back(std::make_unique<VertexicaBackend>());
  backends_.push_back(std::make_unique<SqlGraphBackend>());
  backends_.push_back(std::make_unique<GiraphBackend>());
  backends_.push_back(std::make_unique<GraphDbBackend>());
}

Status Engine::LoadGraph(Graph graph) {
  return LoadGraph(std::make_shared<const Graph>(std::move(graph)));
}

Status Engine::LoadGraph(std::shared_ptr<const Graph> graph) {
  if (graph == nullptr) {
    return Status::InvalidArgument("null graph");
  }
  if (graph->num_vertices < 0) {
    return Status::InvalidArgument("negative vertex count");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  graph_ = std::move(graph);
  ++graph_generation_;  // invalidates every backend's prepared state
  return Status::OK();
}

Status Engine::PrepareBackend(const std::string& id) {
  GraphBackend* target = backend(id);
  if (target == nullptr) {
    return Status::NotFound("unknown backend '" + id + "'");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (graph_ == nullptr) {
    return Status::InvalidArgument(
        "no graph loaded — call Engine::LoadGraph first");
  }
  auto gen_it = prepared_generation_.find(id);
  if (gen_it != prepared_generation_.end() &&
      gen_it->second == graph_generation_) {
    return Status::OK();
  }
  // Prepare runs under the lock: when several first-touch requests arrive
  // at once, exactly one pays the backend's load cost and the others wait
  // for (and then reuse) the prepared state.
  VX_RETURN_NOT_OK(target->Prepare(graph_));
  prepared_generation_[id] = graph_generation_;
  return Status::OK();
}

Result<RunResult> Engine::Run(const RunRequest& request) {
  if (request.algorithm.empty()) {
    return Status::InvalidArgument("RunRequest.algorithm is empty");
  }
  const std::string& id =
      request.backend.empty() ? default_backend_ : request.backend;
  VX_RETURN_NOT_OK(PrepareBackend(id));
  return backend(id)->Run(request);
}

Result<RunResult> Engine::Run(const std::string& algorithm,
                              const std::string& backend) {
  RunRequest request;
  request.algorithm = algorithm;
  request.backend = backend;
  return Run(request);
}

std::vector<std::string> Engine::backends() const {
  std::vector<std::string> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b->id());
  return out;
}

std::vector<std::string> Engine::algorithms() const {
  return AlgorithmRegistry::Global()->Algorithms();
}

bool Engine::Supports(const std::string& algorithm,
                      const std::string& backend) const {
  return AlgorithmRegistry::Global()->Supports(algorithm, backend);
}

GraphBackend* Engine::backend(const std::string& id) {
  for (const auto& b : backends_) {
    if (b->id() == id) return b.get();
  }
  return nullptr;
}

Status Engine::RegisterBackend(std::unique_ptr<GraphBackend> backend) {
  if (backend == nullptr) {
    return Status::InvalidArgument("null backend");
  }
  for (const auto& b : backends_) {
    if (b->id() == backend->id()) {
      return Status::AlreadyExists("backend '" + backend->id() +
                                   "' already registered");
    }
  }
  backends_.push_back(std::move(backend));
  return Status::OK();
}

Status Engine::set_default_backend(const std::string& id) {
  if (backend(id) == nullptr) {
    return Status::NotFound("unknown backend '" + id + "'");
  }
  default_backend_ = id;
  return Status::OK();
}

}  // namespace vertexica
