/// \file wal.h
/// \brief Write-ahead log for the graph database baseline.
///
/// Every mutation appends a logical log entry before touching the store;
/// commit/abort markers bound transactions. The log is held in memory (the
/// benchmark machine's "disk"), giving the baseline the WAL write
/// amplification a transactional store pays on every update — one of the
/// §3.3 features relational engines give for free.

#ifndef VERTEXICA_GRAPHDB_WAL_H_
#define VERTEXICA_GRAPHDB_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace vertexica {
namespace graphdb {

/// \brief Kinds of logical log entries.
enum class WalOp : uint8_t {
  kBegin,
  kCommit,
  kAbort,
  kCreateNode,
  kCreateRelationship,
  kDeleteRelationship,
  kDeleteNode,
  kSetProperty,
};

/// \brief One WAL entry.
struct WalEntry {
  int64_t txid = 0;
  WalOp op = WalOp::kBegin;
  int64_t entity = -1;   // node or relationship id
  int32_t key = -1;      // property key (kSetProperty)
  double payload = 0.0;  // numeric payload where applicable
};

/// \brief Append-only in-memory log.
class Wal {
 public:
  void Append(WalEntry entry) { entries_.push_back(entry); }

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  const std::vector<WalEntry>& entries() const { return entries_; }

  /// \brief Number of committed transactions recorded.
  int64_t committed_count() const;

  /// \brief Drops everything (checkpoint).
  void Truncate() { entries_.clear(); }

 private:
  std::vector<WalEntry> entries_;
};

}  // namespace graphdb
}  // namespace vertexica

#endif  // VERTEXICA_GRAPHDB_WAL_H_
