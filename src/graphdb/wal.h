/// \file wal.h
/// \brief Write-ahead log for the graph database baseline.
///
/// Every mutation appends a logical log entry before touching the store;
/// commit/abort markers bound transactions. The log is held in memory (the
/// benchmark machine's "disk"), giving the baseline the WAL write
/// amplification a transactional store pays on every update — one of the
/// §3.3 features relational engines give for free.
///
/// The on-disk image (`Serialize`/`Replay`) carries a CRC32 per record
/// (docs/DEVELOPING.md, "Fault injection & recovery"): a torn *last*
/// record — the signature of a crash mid-append — is dropped on replay
/// with a warning, exactly as a real WAL recovers to its last complete
/// record; corruption anywhere earlier is an error, because nothing after
/// a damaged record can be trusted.

#ifndef VERTEXICA_GRAPHDB_WAL_H_
#define VERTEXICA_GRAPHDB_WAL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace vertexica {
namespace graphdb {

/// \brief Kinds of logical log entries.
enum class WalOp : uint8_t {
  kBegin,
  kCommit,
  kAbort,
  kCreateNode,
  kCreateRelationship,
  kDeleteRelationship,
  kDeleteNode,
  kSetProperty,
};

/// \brief One WAL entry.
struct WalEntry {
  int64_t txid = 0;
  WalOp op = WalOp::kBegin;
  int64_t entity = -1;   // node or relationship id
  int32_t key = -1;      // property key (kSetProperty)
  double payload = 0.0;  // numeric payload where applicable
};

/// Serialized size of one WAL record: the fixed little-endian fields
/// (txid 8, op 1, entity 8, key 4, payload 8) plus a CRC32 over them.
inline constexpr std::size_t kWalRecordBytes = 33;

/// \brief Append-only in-memory log.
class Wal {
 public:
  void Append(WalEntry entry) { entries_.push_back(entry); }

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  const std::vector<WalEntry>& entries() const { return entries_; }

  /// \brief Number of committed transactions recorded.
  int64_t committed_count() const;

  /// \brief Drops everything (checkpoint).
  void Truncate() { entries_.clear(); }

  /// \brief The log as `kWalRecordBytes`-sized records, each ending in a
  /// CRC32 of its payload bytes.
  std::string Serialize() const;

  /// \brief Rebuilds a log from `bytes`. A truncated or checksum-damaged
  /// *final* record is dropped with a warning (`dropped_tail`, when
  /// non-null, reports how many bytes were discarded — a crash mid-append
  /// tore it); a damaged record anywhere earlier is an IoError with the
  /// record index, since the tail beyond it cannot be trusted.
  static Result<Wal> Replay(std::string_view bytes,
                            int64_t* dropped_tail = nullptr);

 private:
  std::vector<WalEntry> entries_;
};

}  // namespace graphdb
}  // namespace vertexica

#endif  // VERTEXICA_GRAPHDB_WAL_H_
