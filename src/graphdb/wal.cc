#include "graphdb/wal.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace vertexica {
namespace graphdb {

namespace {

constexpr std::size_t kPayloadBytes = kWalRecordBytes - 4;  // sans CRC

// Fixed-width little-endian packing: the image must be byte-identical
// across platforms so recorded CRCs verify anywhere.
void PutU64(unsigned char* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<unsigned char>(v >> (8 * i));
}

uint64_t GetU64(const unsigned char* in) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}

void PutU32(unsigned char* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<unsigned char>(v >> (8 * i));
}

uint32_t GetU32(const unsigned char* in) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}

}  // namespace

int64_t Wal::committed_count() const {
  return std::count_if(entries_.begin(), entries_.end(),
                       [](const WalEntry& e) {
                         return e.op == WalOp::kCommit;
                       });
}

std::string Wal::Serialize() const {
  std::string out;
  out.resize(entries_.size() * kWalRecordBytes);
  auto* cursor = reinterpret_cast<unsigned char*>(out.data());
  for (const WalEntry& e : entries_) {
    PutU64(cursor, static_cast<uint64_t>(e.txid));
    cursor[8] = static_cast<unsigned char>(e.op);
    PutU64(cursor + 9, static_cast<uint64_t>(e.entity));
    PutU32(cursor + 17, static_cast<uint32_t>(e.key));
    uint64_t payload_bits = 0;
    static_assert(sizeof(payload_bits) == sizeof(e.payload));
    std::memcpy(&payload_bits, &e.payload, sizeof(payload_bits));
    PutU64(cursor + 21, payload_bits);
    PutU32(cursor + kPayloadBytes, Crc32(cursor, kPayloadBytes));
    cursor += kWalRecordBytes;
  }
  return out;
}

Result<Wal> Wal::Replay(std::string_view bytes, int64_t* dropped_tail) {
  if (dropped_tail != nullptr) *dropped_tail = 0;
  Wal wal;
  const auto* data = reinterpret_cast<const unsigned char*>(bytes.data());
  const std::size_t whole_records = bytes.size() / kWalRecordBytes;
  const std::size_t tail_bytes = bytes.size() % kWalRecordBytes;
  wal.entries_.reserve(whole_records);

  for (std::size_t r = 0; r < whole_records; ++r) {
    const unsigned char* rec = data + r * kWalRecordBytes;
    const uint32_t expect_crc = GetU32(rec + kPayloadBytes);
    const uint32_t got_crc = Crc32(rec, kPayloadBytes);
    if (got_crc != expect_crc) {
      const bool is_last = (r + 1 == whole_records) && tail_bytes == 0;
      if (is_last) {
        // A torn final record is the expected crash-mid-append signature:
        // drop it and recover to the last complete record.
        VX_LOG(kWarn)
            << "wal replay: dropping torn final record " << r
            << " (checksum mismatch; crash mid-append)";
        if (dropped_tail != nullptr) {
          *dropped_tail = static_cast<int64_t>(kWalRecordBytes);
        }
        return wal;
      }
      return Status::IoError(StringFormat(
          "wal replay: record %zu is corrupt (crc32 %08x recorded, %08x "
          "computed) and is not the final record — the log tail cannot be "
          "trusted",
          r, expect_crc, got_crc));
    }
    WalEntry e;
    e.txid = static_cast<int64_t>(GetU64(rec));
    e.op = static_cast<WalOp>(rec[8]);
    e.entity = static_cast<int64_t>(GetU64(rec + 9));
    e.key = static_cast<int32_t>(GetU32(rec + 17));
    const uint64_t payload_bits = GetU64(rec + 21);
    std::memcpy(&e.payload, &payload_bits, sizeof(e.payload));
    wal.entries_.push_back(e);
  }

  if (tail_bytes != 0) {
    VX_LOG(kWarn)
        << "wal replay: dropping " << tail_bytes
        << " trailing byte(s) of a truncated record (crash mid-append)";
    if (dropped_tail != nullptr) {
      *dropped_tail = static_cast<int64_t>(tail_bytes);
    }
  }
  return wal;
}

}  // namespace graphdb
}  // namespace vertexica
