#include "graphdb/wal.h"

#include <algorithm>

namespace vertexica {
namespace graphdb {

int64_t Wal::committed_count() const {
  return std::count_if(entries_.begin(), entries_.end(),
                       [](const WalEntry& e) {
                         return e.op == WalOp::kCommit;
                       });
}

}  // namespace graphdb
}  // namespace vertexica
