#include "graphdb/record_store.h"

namespace vertexica {
namespace graphdb {

int64_t RecordStore::AllocNode() {
  nodes_.emplace_back();
  nodes_.back().in_use = true;
  return static_cast<int64_t>(nodes_.size()) - 1;
}

int64_t RecordStore::AllocRelationship() {
  rels_.emplace_back();
  rels_.back().in_use = true;
  return static_cast<int64_t>(rels_.size()) - 1;
}

int64_t RecordStore::AllocProperty() {
  props_.emplace_back();
  props_.back().in_use = true;
  return static_cast<int64_t>(props_.size()) - 1;
}

int64_t RecordStore::InternString(std::string s) {
  strings_.push_back(std::move(s));
  return static_cast<int64_t>(strings_.size()) - 1;
}

void RecordStore::ResetAccessCounters() {
  node_accesses_ = 0;
  rel_accesses_ = 0;
  prop_accesses_ = 0;
}

}  // namespace graphdb
}  // namespace vertexica
