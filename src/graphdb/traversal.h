/// \file traversal.h
/// \brief A Neo4j-style traversal framework over the record store:
/// depth-bounded breadth/depth-first expansion with direction and
/// relationship-type filters. This is the API a 2014 graph-database
/// application programs against (the paper's baseline executes its
/// algorithms through exactly this kind of interface).

#ifndef VERTEXICA_GRAPHDB_TRAVERSAL_H_
#define VERTEXICA_GRAPHDB_TRAVERSAL_H_

#include <limits>
#include <string>
#include <vector>

#include "graphdb/graph_db.h"

namespace vertexica {
namespace graphdb {

/// \brief Expansion rules for Traverse.
struct TraversalOptions {
  enum class Direction { kOutgoing, kIncoming, kBoth };

  int max_depth = std::numeric_limits<int>::max();
  Direction direction = Direction::kBoth;
  /// Only follow relationships of this type (empty = all types).
  std::string type_filter;
  /// Breadth-first (true) or depth-first (false) expansion order.
  bool breadth_first = true;
};

/// \brief One visited node.
struct Visit {
  int64_t node;
  int depth;  // hops from the start node (start itself is depth 0)
};

/// \brief Expands from `start`, visiting every node at most once, within
/// `max_depth` hops. Visits are returned in expansion order (BFS: depth
/// non-decreasing).
Result<std::vector<Visit>> Traverse(const GraphDb& db, int64_t start,
                                    const TraversalOptions& options = {});

/// \brief Nodes within exactly or up to `k` hops of `start` (both
/// directions, any type), excluding `start`.
Result<std::vector<int64_t>> KHopNeighborhood(const GraphDb& db,
                                              int64_t start, int k);

}  // namespace graphdb
}  // namespace vertexica

#endif  // VERTEXICA_GRAPHDB_TRAVERSAL_H_
