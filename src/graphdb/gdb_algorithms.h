/// \file gdb_algorithms.h
/// \brief Graph algorithms over the GraphDb traversal API — the "Graph
/// Database" series of Figure 2.
///
/// These implementations read/write node and relationship *properties* on
/// every hop, inside transactions, exactly the way an embedded graph
/// database application would. The per-hop record chasing and property
/// chain walks are the point: this is the cost profile the paper's graph
/// database baseline pays.

#ifndef VERTEXICA_GRAPHDB_GDB_ALGORITHMS_H_
#define VERTEXICA_GRAPHDB_GDB_ALGORITHMS_H_

#include <vector>

#include "graphdb/graph_db.h"

namespace vertexica {
namespace graphdb {

/// \brief Logical-I/O report for one algorithm run.
///
/// `modeled_io_seconds` converts the logical record accesses into the
/// page-cache/disk time a 2014-era disk-backed store would pay:
/// accesses × `access_latency_ns` (a bench-supplied constant, 0 by
/// default). `total_seconds` = measured + modeled. See DESIGN.md §2.
struct GdbRunStats {
  double seconds = 0.0;
  int64_t node_accesses = 0;
  int64_t rel_accesses = 0;
  int64_t prop_accesses = 0;
  double access_latency_ns = 0.0;
  double modeled_io_seconds = 0.0;
  double total_seconds = 0.0;

  int64_t TotalAccesses() const {
    return node_accesses + rel_accesses + prop_accesses;
  }
};

/// \brief PageRank: ranks live in the "rank" node property; each iteration
/// pulls contributions over incoming relationships and commits the new
/// ranks in one transaction.
Result<std::vector<double>> GdbPageRank(GraphDb* db, int iterations = 10,
                                        double damping = 0.85,
                                        GdbRunStats* stats = nullptr);

/// \brief Dijkstra over the traversal API, reading the "weight"
/// relationship property on every hop. Returns distances indexed by node
/// id (+inf when unreachable).
Result<std::vector<double>> GdbShortestPaths(GraphDb* db, int64_t source,
                                             GdbRunStats* stats = nullptr);

/// \brief Connected components by repeated traversal (BFS per unvisited
/// node over both relationship directions). Labels are minimum member ids.
Result<std::vector<int64_t>> GdbConnectedComponents(
    GraphDb* db, GdbRunStats* stats = nullptr);

}  // namespace graphdb
}  // namespace vertexica

#endif  // VERTEXICA_GRAPHDB_GDB_ALGORITHMS_H_
