#include "graphdb/traversal.h"

#include <deque>

namespace vertexica {
namespace graphdb {

Result<std::vector<Visit>> Traverse(const GraphDb& db, int64_t start,
                                    const TraversalOptions& options) {
  if (!db.store().ValidNode(start)) {
    return Status::InvalidArgument("Traverse: no such start node");
  }
  const int32_t type_id =
      options.type_filter.empty() ? -1 : db.LookupType(options.type_filter);

  std::vector<Visit> visits;
  std::vector<uint8_t> seen(static_cast<size_t>(db.node_count()), 0);
  std::deque<Visit> frontier;
  frontier.push_back({start, 0});
  seen[static_cast<size_t>(start)] = 1;

  while (!frontier.empty()) {
    Visit current;
    if (options.breadth_first) {
      current = frontier.front();
      frontier.pop_front();
    } else {
      current = frontier.back();
      frontier.pop_back();
    }
    visits.push_back(current);
    if (current.depth >= options.max_depth) continue;

    VX_RETURN_NOT_OK(db.ForEachRelationship(
        current.node,
        [&](int64_t rel, int64_t other, bool outgoing) {
          const bool direction_ok =
              options.direction == TraversalOptions::Direction::kBoth ||
              (outgoing &&
               options.direction == TraversalOptions::Direction::kOutgoing) ||
              (!outgoing &&
               options.direction == TraversalOptions::Direction::kIncoming);
          if (!direction_ok) return true;
          if (type_id >= 0 && db.store().rel(rel).type != type_id) {
            return true;
          }
          if (seen[static_cast<size_t>(other)] == 0) {
            seen[static_cast<size_t>(other)] = 1;
            frontier.push_back({other, current.depth + 1});
          }
          return true;
        }));
  }
  return visits;
}

Result<std::vector<int64_t>> KHopNeighborhood(const GraphDb& db,
                                              int64_t start, int k) {
  TraversalOptions options;
  options.max_depth = k;
  VX_ASSIGN_OR_RETURN(auto visits, Traverse(db, start, options));
  std::vector<int64_t> nodes;
  nodes.reserve(visits.size());
  for (const auto& visit : visits) {
    if (visit.node != start) nodes.push_back(visit.node);
  }
  return nodes;
}

}  // namespace graphdb
}  // namespace vertexica
