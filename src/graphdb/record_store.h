/// \file record_store.h
/// \brief Fixed-size record stores in the style of Neo4j's native storage:
/// node records heading doubly-linked relationship chains, relationship
/// records threaded through both endpoints' chains, and a linked property
/// store.
///
/// This is the substrate of the "transactional graph database" baseline of
/// Figure 2 (see DESIGN.md §2). Its cost profile — pointer-chasing record
/// lookups and per-property chain walks instead of bulk columnar scans —
/// is what makes the graph-database baseline slow, exactly as in the paper.

#ifndef VERTEXICA_GRAPHDB_RECORD_STORE_H_
#define VERTEXICA_GRAPHDB_RECORD_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace vertexica {
namespace graphdb {

inline constexpr int64_t kNil = -1;

/// \brief One node record: head pointers of its relationship and property
/// chains.
struct NodeRecord {
  bool in_use = false;
  int64_t first_rel = kNil;   // head of this node's relationship chain
  int64_t first_prop = kNil;  // head of its property chain
};

/// \brief One relationship record, a member of *two* chains (source's and
/// destination's), exactly like Neo4j's store format.
struct RelationshipRecord {
  bool in_use = false;
  int64_t src = kNil;
  int64_t dst = kNil;
  int32_t type = 0;
  int64_t src_prev = kNil;
  int64_t src_next = kNil;
  int64_t dst_prev = kNil;
  int64_t dst_next = kNil;
  int64_t first_prop = kNil;
};

/// \brief Property value: a small tagged union (strings interned in the
/// store's string pool).
struct PropertyValue {
  enum class Kind : uint8_t { kInt, kDouble, kString } kind = Kind::kInt;
  int64_t i = 0;
  double d = 0.0;
  int64_t string_ref = kNil;

  static PropertyValue Int(int64_t v) {
    PropertyValue p;
    p.kind = Kind::kInt;
    p.i = v;
    return p;
  }
  static PropertyValue Double(double v) {
    PropertyValue p;
    p.kind = Kind::kDouble;
    p.d = v;
    return p;
  }
};

/// \brief One property record in a chain.
struct PropertyRecord {
  bool in_use = false;
  int32_t key = 0;  // interned key id
  PropertyValue value;
  int64_t next = kNil;
};

/// \brief The backing arrays plus page-cache-style access accounting.
///
/// Every record access goes through an accessor that bumps a counter, so
/// benches can report logical I/O (the analogue of Neo4j page-cache hits).
class RecordStore {
 public:
  /// \name Allocation
  /// @{
  int64_t AllocNode();
  int64_t AllocRelationship();
  int64_t AllocProperty();
  int64_t InternString(std::string s);
  /// @}

  /// \name Record access (counted)
  /// @{
  NodeRecord& node(int64_t id) {
    ++node_accesses_;
    return nodes_[static_cast<size_t>(id)];
  }
  const NodeRecord& node(int64_t id) const {
    ++node_accesses_;
    return nodes_[static_cast<size_t>(id)];
  }
  RelationshipRecord& rel(int64_t id) {
    ++rel_accesses_;
    return rels_[static_cast<size_t>(id)];
  }
  const RelationshipRecord& rel(int64_t id) const {
    ++rel_accesses_;
    return rels_[static_cast<size_t>(id)];
  }
  PropertyRecord& prop(int64_t id) {
    ++prop_accesses_;
    return props_[static_cast<size_t>(id)];
  }
  const PropertyRecord& prop(int64_t id) const {
    ++prop_accesses_;
    return props_[static_cast<size_t>(id)];
  }
  const std::string& string(int64_t ref) const {
    return strings_[static_cast<size_t>(ref)];
  }
  /// @}

  int64_t node_count() const { return static_cast<int64_t>(nodes_.size()); }
  int64_t rel_count() const { return static_cast<int64_t>(rels_.size()); }

  bool ValidNode(int64_t id) const {
    return id >= 0 && id < node_count() &&
           nodes_[static_cast<size_t>(id)].in_use;
  }
  bool ValidRel(int64_t id) const {
    return id >= 0 && id < rel_count() &&
           rels_[static_cast<size_t>(id)].in_use;
  }

  /// \name Logical-I/O accounting
  /// @{
  int64_t node_accesses() const { return node_accesses_; }
  int64_t rel_accesses() const { return rel_accesses_; }
  int64_t prop_accesses() const { return prop_accesses_; }
  void ResetAccessCounters();
  /// @}

 private:
  std::vector<NodeRecord> nodes_;
  std::vector<RelationshipRecord> rels_;
  std::vector<PropertyRecord> props_;
  std::vector<std::string> strings_;
  mutable int64_t node_accesses_ = 0;
  mutable int64_t rel_accesses_ = 0;
  mutable int64_t prop_accesses_ = 0;
};

}  // namespace graphdb
}  // namespace vertexica

#endif  // VERTEXICA_GRAPHDB_RECORD_STORE_H_
