/// \file graph_db.h
/// \brief The transactional property-graph database baseline (Figure 2's
/// "Graph Database"): record stores + WAL + lock-based transactions + a
/// traversal API.
///
/// Deliberately faithful to a 2014-era embedded graph database: exclusive
/// write transactions guarded by a store lock, per-hop record chasing, and
/// property access through linked chains. Algorithms run via the traversal
/// API (see gdb_algorithms.h) and therefore pay these costs on every hop —
/// which is why this system loses to both Giraph and Vertexica.

#ifndef VERTEXICA_GRAPHDB_GRAPH_DB_H_
#define VERTEXICA_GRAPHDB_GRAPH_DB_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "graphdb/record_store.h"
#include "graphdb/wal.h"
#include "graphgen/graph.h"

namespace vertexica {
namespace graphdb {

/// \brief Undo record for rollback.
struct UndoEntry {
  enum class Kind : uint8_t {
    kUnallocNode,
    kUnallocRel,
    kRestoreProperty,  // property existed with old value
    kRemoveProperty,   // property was created by this tx
    kRelinkRel,        // relationship was deleted; restore the snapshot
    kReviveNode,       // node was deleted; mark in_use again
  } kind;
  int64_t entity = -1;
  bool entity_is_node = true;
  int32_t key = -1;
  PropertyValue old_value;
  RelationshipRecord rel_snapshot;  // kRelinkRel only
};

class GraphDb;

/// \brief An exclusive read-write transaction. Commit or Rollback exactly
/// once; destruction without commit rolls back (RAII).
class Transaction {
 public:
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;
  Transaction(Transaction&& other) noexcept;

  /// \name Mutations
  /// @{
  int64_t CreateNode();
  Result<int64_t> CreateRelationship(int64_t src, int64_t dst,
                                     const std::string& type);
  Status DeleteRelationship(int64_t rel_id);
  /// Deletes a node and (cascade) every relationship attached to it.
  Status DeleteNode(int64_t node_id);
  Status SetNodeProperty(int64_t node, const std::string& key,
                         PropertyValue value);
  Status SetRelationshipProperty(int64_t rel, const std::string& key,
                                 PropertyValue value);
  /// @}

  Status Commit();
  void Rollback();

  int64_t id() const { return txid_; }

 private:
  friend class GraphDb;
  Transaction(GraphDb* db, int64_t txid);

  GraphDb* db_;
  int64_t txid_;
  bool finished_ = false;
  std::vector<UndoEntry> undo_;
};

/// \brief The embedded graph database.
class GraphDb {
 public:
  GraphDb() = default;

  /// \brief Starts an exclusive write transaction (blocks other writers).
  Transaction Begin();

  /// \name Read API (no transaction required; snapshot-free reads as in an
  /// embedded 2014-era store)
  /// @{
  int64_t node_count() const { return store_.node_count(); }
  int64_t relationship_count() const { return store_.rel_count(); }

  Result<PropertyValue> GetNodeProperty(int64_t node,
                                        const std::string& key) const;
  Result<PropertyValue> GetRelationshipProperty(int64_t rel,
                                                const std::string& key) const;

  /// \brief Walks `node`'s relationship chain; fn(rel_id, other_end,
  /// is_outgoing). Stops early if fn returns false.
  Status ForEachRelationship(
      int64_t node,
      const std::function<bool(int64_t rel, int64_t other, bool outgoing)>& fn)
      const;

  /// \brief Out-degree of a node (chain walk — O(degree), like Neo4j
  /// pre-dense-node optimization).
  Result<int64_t> OutDegree(int64_t node) const;

  /// \brief Interned id for a relationship type / property key.
  int32_t InternType(const std::string& type);
  int32_t InternKey(const std::string& key);

  /// \brief Id of an already-interned relationship type, or -1.
  int32_t LookupType(const std::string& type) const;

  /// \brief Type name of a relationship.
  Result<std::string> RelationshipType(int64_t rel) const;
  /// @}

  /// \brief Bulk-loads a graph: one node per vertex, one relationship per
  /// edge with `weight` property, all inside a single transaction.
  Status LoadGraph(const Graph& graph, const std::string& rel_type = "edge");

  const Wal& wal() const { return wal_; }
  RecordStore* mutable_store() { return &store_; }
  const RecordStore& store() const { return store_; }

 private:
  friend class Transaction;

  Result<int64_t> FindProperty(int64_t first_prop, int32_t key) const;
  Status SetPropertyImpl(int64_t entity, bool is_node, int32_t key,
                         PropertyValue value, std::vector<UndoEntry>* undo);

  RecordStore store_;
  Wal wal_;
  std::mutex write_mutex_;
  int64_t next_txid_ = 1;
  std::map<std::string, int32_t> type_ids_;
  std::map<std::string, int32_t> key_ids_;
};

}  // namespace graphdb
}  // namespace vertexica

#endif  // VERTEXICA_GRAPHDB_GRAPH_DB_H_
