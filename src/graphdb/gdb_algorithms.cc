#include "graphdb/gdb_algorithms.h"

#include <limits>
#include <queue>

#include "common/timer.h"

namespace vertexica {
namespace graphdb {

namespace {

void FillStats(const GraphDb& db, const WallTimer& timer, GdbRunStats* stats) {
  if (stats == nullptr) return;
  stats->seconds = timer.ElapsedSeconds();
  stats->node_accesses = db.store().node_accesses();
  stats->rel_accesses = db.store().rel_accesses();
  stats->prop_accesses = db.store().prop_accesses();
  stats->modeled_io_seconds = static_cast<double>(stats->TotalAccesses()) *
                              stats->access_latency_ns * 1e-9;
  stats->total_seconds = stats->seconds + stats->modeled_io_seconds;
}

}  // namespace

Result<std::vector<double>> GdbPageRank(GraphDb* db, int iterations,
                                        double damping, GdbRunStats* stats) {
  WallTimer timer;
  db->mutable_store()->ResetAccessCounters();
  const int64_t n = db->node_count();
  if (n == 0) return std::vector<double>{};

  // Seed rank and cache out-degrees as node properties (one transaction),
  // the way an application would prepare a PageRank run.
  {
    Transaction tx = db->Begin();
    for (int64_t v = 0; v < n; ++v) {
      VX_RETURN_NOT_OK(tx.SetNodeProperty(
          v, "rank", PropertyValue::Double(1.0 / static_cast<double>(n))));
      VX_ASSIGN_OR_RETURN(int64_t deg, db->OutDegree(v));
      VX_RETURN_NOT_OK(
          tx.SetNodeProperty(v, "outdeg", PropertyValue::Int(deg)));
    }
    VX_RETURN_NOT_OK(tx.Commit());
  }

  for (int it = 0; it < iterations; ++it) {
    std::vector<double> next(static_cast<size_t>(n));
    for (int64_t v = 0; v < n; ++v) {
      double acc = 0.0;
      VX_RETURN_NOT_OK(db->ForEachRelationship(
          v, [&](int64_t, int64_t other, bool outgoing) {
            if (!outgoing) {
              auto rank = db->GetNodeProperty(other, "rank");
              auto deg = db->GetNodeProperty(other, "outdeg");
              if (rank.ok() && deg.ok() && deg->i > 0) {
                acc += rank->d / static_cast<double>(deg->i);
              }
            }
            return true;
          }));
      next[static_cast<size_t>(v)] =
          (1.0 - damping) / static_cast<double>(n) + damping * acc;
    }
    Transaction tx = db->Begin();
    for (int64_t v = 0; v < n; ++v) {
      VX_RETURN_NOT_OK(tx.SetNodeProperty(
          v, "rank", PropertyValue::Double(next[static_cast<size_t>(v)])));
    }
    VX_RETURN_NOT_OK(tx.Commit());
  }

  std::vector<double> out(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    VX_ASSIGN_OR_RETURN(PropertyValue rank, db->GetNodeProperty(v, "rank"));
    out[static_cast<size_t>(v)] = rank.d;
  }
  FillStats(*db, timer, stats);
  return out;
}

Result<std::vector<double>> GdbShortestPaths(GraphDb* db, int64_t source,
                                             GdbRunStats* stats) {
  WallTimer timer;
  db->mutable_store()->ResetAccessCounters();
  const int64_t n = db->node_count();
  std::vector<double> dist(static_cast<size_t>(n),
                           std::numeric_limits<double>::infinity());
  if (source < 0 || source >= n) {
    return Status::InvalidArgument("bad source node");
  }
  dist[static_cast<size_t>(source)] = 0.0;
  // Label-correcting relaxation sweeps — the way a traversal-API
  // application typically writes SSSP against a transactional store:
  // rescan every node's relationships, reading the weight property per
  // hop, until a whole sweep improves nothing. Converges to the exact
  // distances (Bellman–Ford) in at most |V|-1 sweeps.
  for (int64_t round = 0; round < std::max<int64_t>(1, n - 1); ++round) {
    bool improved = false;
    for (int64_t v = 0; v < n; ++v) {
      const double dv = dist[static_cast<size_t>(v)];
      if (dv == std::numeric_limits<double>::infinity()) continue;
      VX_RETURN_NOT_OK(db->ForEachRelationship(
          v, [&](int64_t rel, int64_t other, bool outgoing) {
            if (!outgoing) return true;
            auto weight = db->GetRelationshipProperty(rel, "weight");
            const double w = weight.ok() ? weight->d : 1.0;
            if (dv + w < dist[static_cast<size_t>(other)]) {
              dist[static_cast<size_t>(other)] = dv + w;
              improved = true;
            }
            return true;
          }));
    }
    if (!improved) break;
  }
  FillStats(*db, timer, stats);
  return dist;
}

Result<std::vector<int64_t>> GdbConnectedComponents(GraphDb* db,
                                                    GdbRunStats* stats) {
  WallTimer timer;
  db->mutable_store()->ResetAccessCounters();
  const int64_t n = db->node_count();
  std::vector<int64_t> label(static_cast<size_t>(n), -1);
  for (int64_t seed = 0; seed < n; ++seed) {
    if (label[static_cast<size_t>(seed)] >= 0) continue;
    // BFS over both directions; the seed is the minimum id of its
    // component because we scan seeds in increasing order.
    std::queue<int64_t> frontier;
    frontier.push(seed);
    label[static_cast<size_t>(seed)] = seed;
    while (!frontier.empty()) {
      const int64_t v = frontier.front();
      frontier.pop();
      VX_RETURN_NOT_OK(db->ForEachRelationship(
          v, [&](int64_t, int64_t other, bool) {
            if (label[static_cast<size_t>(other)] < 0) {
              label[static_cast<size_t>(other)] = seed;
              frontier.push(other);
            }
            return true;
          }));
    }
  }
  FillStats(*db, timer, stats);
  return label;
}

}  // namespace graphdb
}  // namespace vertexica
