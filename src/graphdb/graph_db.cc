#include "graphdb/graph_db.h"

namespace vertexica {
namespace graphdb {

// ----------------------------------------------------------------- GraphDb

Transaction GraphDb::Begin() {
  write_mutex_.lock();  // exclusive writer; released on commit/rollback
  return Transaction(this, next_txid_++);
}

int32_t GraphDb::InternType(const std::string& type) {
  auto [it, _] =
      type_ids_.emplace(type, static_cast<int32_t>(type_ids_.size()));
  return it->second;
}

int32_t GraphDb::InternKey(const std::string& key) {
  auto [it, _] = key_ids_.emplace(key, static_cast<int32_t>(key_ids_.size()));
  return it->second;
}

int32_t GraphDb::LookupType(const std::string& type) const {
  auto it = type_ids_.find(type);
  return it == type_ids_.end() ? -1 : it->second;
}

Result<std::string> GraphDb::RelationshipType(int64_t rel) const {
  if (!store_.ValidRel(rel)) {
    return Status::InvalidArgument("no such relationship");
  }
  const int32_t id = store_.rel(rel).type;
  for (const auto& [name, tid] : type_ids_) {
    if (tid == id) return name;
  }
  return Status::Internal("relationship has unknown type id");
}

Result<int64_t> GraphDb::FindProperty(int64_t first_prop, int32_t key) const {
  int64_t cur = first_prop;
  while (cur != kNil) {
    const PropertyRecord& p = store_.prop(cur);
    if (p.in_use && p.key == key) return cur;
    cur = p.next;
  }
  return Status::NotFound("property not found");
}

Result<PropertyValue> GraphDb::GetNodeProperty(int64_t node,
                                               const std::string& key) const {
  if (!store_.ValidNode(node)) {
    return Status::InvalidArgument("no such node");
  }
  auto key_it = key_ids_.find(key);
  if (key_it == key_ids_.end()) return Status::NotFound("unknown key");
  VX_ASSIGN_OR_RETURN(int64_t pid,
                      FindProperty(store_.node(node).first_prop,
                                   key_it->second));
  return store_.prop(pid).value;
}

Result<PropertyValue> GraphDb::GetRelationshipProperty(
    int64_t rel, const std::string& key) const {
  if (!store_.ValidRel(rel)) {
    return Status::InvalidArgument("no such relationship");
  }
  auto key_it = key_ids_.find(key);
  if (key_it == key_ids_.end()) return Status::NotFound("unknown key");
  VX_ASSIGN_OR_RETURN(
      int64_t pid, FindProperty(store_.rel(rel).first_prop, key_it->second));
  return store_.prop(pid).value;
}

Status GraphDb::ForEachRelationship(
    int64_t node,
    const std::function<bool(int64_t, int64_t, bool)>& fn) const {
  if (!store_.ValidNode(node)) {
    return Status::InvalidArgument("no such node");
  }
  int64_t cur = store_.node(node).first_rel;
  while (cur != kNil) {
    const RelationshipRecord& r = store_.rel(cur);
    const bool outgoing = r.src == node;
    const int64_t other = outgoing ? r.dst : r.src;
    const int64_t next = outgoing ? r.src_next : r.dst_next;
    if (r.in_use && !fn(cur, other, outgoing)) break;
    cur = next;
  }
  return Status::OK();
}

Result<int64_t> GraphDb::OutDegree(int64_t node) const {
  int64_t degree = 0;
  VX_RETURN_NOT_OK(ForEachRelationship(
      node, [&degree](int64_t, int64_t, bool outgoing) {
        if (outgoing) ++degree;
        return true;
      }));
  return degree;
}

Status GraphDb::SetPropertyImpl(int64_t entity, bool is_node, int32_t key,
                                PropertyValue value,
                                std::vector<UndoEntry>* undo) {
  int64_t* head = is_node ? &store_.node(entity).first_prop
                          : &store_.rel(entity).first_prop;
  auto found = FindProperty(*head, key);
  if (found.ok()) {
    PropertyRecord& p = store_.prop(*found);
    UndoEntry u;
    u.kind = UndoEntry::Kind::kRestoreProperty;
    u.entity = *found;
    u.old_value = p.value;
    undo->push_back(u);
    p.value = value;
  } else {
    const int64_t pid = store_.AllocProperty();
    PropertyRecord& p = store_.prop(pid);
    p.key = key;
    p.value = value;
    p.next = *head;
    *head = pid;
    UndoEntry u;
    u.kind = UndoEntry::Kind::kRemoveProperty;
    u.entity = pid;
    u.entity_is_node = is_node;
    u.key = key;
    undo->push_back(u);
    // Remember which chain owns it for rollback unlinking.
    undo->back().old_value =
        PropertyValue::Int(entity);  // chain owner stashed here
  }
  return Status::OK();
}

Status GraphDb::LoadGraph(const Graph& graph, const std::string& rel_type) {
  const Graph g = graph.AsDirected();
  Transaction tx = Begin();
  for (int64_t v = 0; v < g.num_vertices; ++v) tx.CreateNode();
  for (int64_t e = 0; e < g.num_edges(); ++e) {
    VX_ASSIGN_OR_RETURN(
        int64_t rel,
        tx.CreateRelationship(g.src[static_cast<size_t>(e)],
                              g.dst[static_cast<size_t>(e)], rel_type));
    VX_RETURN_NOT_OK(tx.SetRelationshipProperty(
        rel, "weight", PropertyValue::Double(g.EdgeWeight(e))));
  }
  return tx.Commit();
}

// -------------------------------------------------------------- Transaction

Transaction::Transaction(GraphDb* db, int64_t txid) : db_(db), txid_(txid) {
  db_->wal_.Append({txid_, WalOp::kBegin, -1, -1, 0.0});
}

Transaction::Transaction(Transaction&& other) noexcept
    : db_(other.db_),
      txid_(other.txid_),
      finished_(other.finished_),
      undo_(std::move(other.undo_)) {
  other.finished_ = true;
  other.db_ = nullptr;
}

Transaction::~Transaction() {
  if (!finished_) Rollback();
}

int64_t Transaction::CreateNode() {
  const int64_t id = db_->store_.AllocNode();
  db_->wal_.Append({txid_, WalOp::kCreateNode, id, -1, 0.0});
  UndoEntry u;
  u.kind = UndoEntry::Kind::kUnallocNode;
  u.entity = id;
  undo_.push_back(u);
  return id;
}

Result<int64_t> Transaction::CreateRelationship(int64_t src, int64_t dst,
                                                const std::string& type) {
  RecordStore& store = db_->store_;
  if (!store.ValidNode(src) || !store.ValidNode(dst)) {
    return Status::InvalidArgument("CreateRelationship: bad endpoint");
  }
  const int64_t id = store.AllocRelationship();
  RelationshipRecord& r = store.rel(id);
  r.src = src;
  r.dst = dst;
  r.type = db_->InternType(type);

  // Head-insert into the source chain.
  const int64_t src_head = store.node(src).first_rel;
  r.src_next = src_head;
  if (src_head != kNil) {
    RelationshipRecord& o = store.rel(src_head);
    if (o.src == src) {
      o.src_prev = id;
    } else {
      o.dst_prev = id;
    }
  }
  store.node(src).first_rel = id;

  // Head-insert into the destination chain (self-loops live on the source
  // chain only).
  if (dst != src) {
    const int64_t dst_head = store.node(dst).first_rel;
    r.dst_next = dst_head;
    if (dst_head != kNil) {
      RelationshipRecord& o = store.rel(dst_head);
      if (o.src == dst) {
        o.src_prev = id;
      } else {
        o.dst_prev = id;
      }
    }
    store.node(dst).first_rel = id;
  }

  db_->wal_.Append({txid_, WalOp::kCreateRelationship, id, -1, 0.0});
  UndoEntry u;
  u.kind = UndoEntry::Kind::kUnallocRel;
  u.entity = id;
  undo_.push_back(u);
  return id;
}

namespace {

/// Unlinks a relationship from one endpoint's chain given its neighbours.
void UnlinkSide(RecordStore* store, int64_t node_id, int64_t prev,
                int64_t next) {
  if (prev == kNil) {
    store->node(node_id).first_rel = next;
  } else {
    RelationshipRecord& p = store->rel(prev);
    if (p.src == node_id) {
      p.src_next = next;
    } else {
      p.dst_next = next;
    }
  }
  if (next != kNil) {
    RelationshipRecord& nx = store->rel(next);
    if (nx.src == node_id) {
      nx.src_prev = prev;
    } else {
      nx.dst_prev = prev;
    }
  }
}

}  // namespace

Status Transaction::DeleteRelationship(int64_t rel_id) {
  RecordStore& store = db_->store_;
  if (!store.ValidRel(rel_id)) {
    return Status::InvalidArgument("DeleteRelationship: no such relationship");
  }
  RelationshipRecord snapshot = store.rel(rel_id);
  UnlinkSide(&store, snapshot.src, snapshot.src_prev,
             snapshot.src_next);
  if (snapshot.dst != snapshot.src) {
    UnlinkSide(&store, snapshot.dst, snapshot.dst_prev,
               snapshot.dst_next);
  }
  RelationshipRecord& r = store.rel(rel_id);
  r.in_use = false;

  db_->wal_.Append({txid_, WalOp::kDeleteRelationship, rel_id, -1, 0.0});
  UndoEntry u;
  u.kind = UndoEntry::Kind::kRelinkRel;
  u.entity = rel_id;
  u.rel_snapshot = snapshot;
  undo_.push_back(u);
  return Status::OK();
}

Status Transaction::DeleteNode(int64_t node_id) {
  RecordStore& store = db_->store_;
  if (!store.ValidNode(node_id)) {
    return Status::InvalidArgument("DeleteNode: no such node");
  }
  // Cascade: delete every relationship in the node's chain first (each
  // deletion is individually undoable).
  for (;;) {
    const int64_t rel = store.node(node_id).first_rel;
    if (rel == kNil) break;
    VX_RETURN_NOT_OK(DeleteRelationship(rel));
  }
  store.node(node_id).in_use = false;
  db_->wal_.Append({txid_, WalOp::kDeleteNode, node_id, -1, 0.0});
  UndoEntry u;
  u.kind = UndoEntry::Kind::kReviveNode;
  u.entity = node_id;
  undo_.push_back(u);
  return Status::OK();
}

Status Transaction::SetNodeProperty(int64_t node, const std::string& key,
                                    PropertyValue value) {
  if (!db_->store_.ValidNode(node)) {
    return Status::InvalidArgument("SetNodeProperty: no such node");
  }
  const int32_t key_id = db_->InternKey(key);
  db_->wal_.Append({txid_, WalOp::kSetProperty, node, key_id,
                    value.kind == PropertyValue::Kind::kDouble
                        ? value.d
                        : static_cast<double>(value.i)});
  return db_->SetPropertyImpl(node, /*is_node=*/true, key_id, value, &undo_);
}

Status Transaction::SetRelationshipProperty(int64_t rel,
                                            const std::string& key,
                                            PropertyValue value) {
  if (!db_->store_.ValidRel(rel)) {
    return Status::InvalidArgument("SetRelationshipProperty: no such rel");
  }
  const int32_t key_id = db_->InternKey(key);
  db_->wal_.Append({txid_, WalOp::kSetProperty, rel, key_id,
                    value.kind == PropertyValue::Kind::kDouble
                        ? value.d
                        : static_cast<double>(value.i)});
  return db_->SetPropertyImpl(rel, /*is_node=*/false, key_id, value, &undo_);
}

Status Transaction::Commit() {
  if (finished_) return Status::Aborted("transaction already finished");
  db_->wal_.Append({txid_, WalOp::kCommit, -1, -1, 0.0});
  finished_ = true;
  undo_.clear();
  db_->write_mutex_.unlock();
  return Status::OK();
}

void Transaction::Rollback() {
  if (finished_) return;
  RecordStore& store = db_->store_;
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    switch (it->kind) {
      case UndoEntry::Kind::kUnallocNode:
        store.node(it->entity).in_use = false;
        break;
      case UndoEntry::Kind::kUnallocRel: {
        RelationshipRecord& r = store.rel(it->entity);
        if (r.in_use) {
          RelationshipRecord snapshot = r;
          UnlinkSide(&store, snapshot.src, snapshot.src_prev,
                     snapshot.src_next);
          if (snapshot.dst != snapshot.src) {
            UnlinkSide(&store, snapshot.dst, snapshot.dst_prev,
                       snapshot.dst_next);
          }
          r.in_use = false;
        }
        break;
      }
      case UndoEntry::Kind::kRestoreProperty:
        store.prop(it->entity).value = it->old_value;
        break;
      case UndoEntry::Kind::kRemoveProperty: {
        // The chain owner id was stashed in old_value.i.
        const int64_t owner = it->old_value.i;
        int64_t* head = it->entity_is_node
                            ? &store.node(owner).first_prop
                            : &store.rel(owner).first_prop;
        int64_t cur = *head;
        int64_t prev = kNil;
        while (cur != kNil) {
          if (cur == it->entity) {
            if (prev == kNil) {
              *head = store.prop(cur).next;
            } else {
              store.prop(prev).next = store.prop(cur).next;
            }
            store.prop(cur).in_use = false;
            break;
          }
          prev = cur;
          cur = store.prop(cur).next;
        }
        break;
      }
      case UndoEntry::Kind::kRelinkRel: {
        // Restore the snapshot and re-link at its original positions.
        RelationshipRecord& r = store.rel(it->entity);
        r = it->rel_snapshot;
        const auto relink_side = [&](int64_t node_id, int64_t prev,
                                     int64_t next) {
          if (prev == kNil) {
            store.node(node_id).first_rel = it->entity;
          } else {
            RelationshipRecord& p = store.rel(prev);
            if (p.src == node_id) {
              p.src_next = it->entity;
            } else {
              p.dst_next = it->entity;
            }
          }
          if (next != kNil) {
            RelationshipRecord& nx = store.rel(next);
            if (nx.src == node_id) {
              nx.src_prev = it->entity;
            } else {
              nx.dst_prev = it->entity;
            }
          }
        };
        relink_side(r.src, r.src_prev, r.src_next);
        if (r.dst != r.src) relink_side(r.dst, r.dst_prev, r.dst_next);
        break;
      }
      case UndoEntry::Kind::kReviveNode:
        store.node(it->entity).in_use = true;
        break;
    }
  }
  db_->wal_.Append({txid_, WalOp::kAbort, -1, -1, 0.0});
  finished_ = true;
  undo_.clear();
  db_->write_mutex_.unlock();
}

}  // namespace graphdb
}  // namespace vertexica
