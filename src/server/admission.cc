#include "server/admission.h"

#include <algorithm>
#include <utility>

#include "common/threadpool.h"
#include "common/timer.h"

namespace vertexica {

AdmissionController::AdmissionController(int budget_threads)
    : budget_(budget_threads > 0
                  ? budget_threads
                  : static_cast<int>(std::max<std::size_t>(
                        1, ThreadPool::Default()->num_threads()))) {}

AdmissionController::Ticket::Ticket(Ticket&& other) noexcept
    : controller_(other.controller_),
      granted_(other.granted_),
      clamped_(other.clamped_),
      queue_seconds_(other.queue_seconds_) {
  other.controller_ = nullptr;
  other.granted_ = 0;
}

AdmissionController::Ticket& AdmissionController::Ticket::operator=(
    Ticket&& other) noexcept {
  if (this != &other) {
    Release();
    controller_ = other.controller_;
    granted_ = other.granted_;
    clamped_ = other.clamped_;
    queue_seconds_ = other.queue_seconds_;
    other.controller_ = nullptr;
    other.granted_ = 0;
  }
  return *this;
}

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr && granted_ > 0) {
    controller_->ReleaseThreads(granted_);
  }
  controller_ = nullptr;
  granted_ = 0;
}

AdmissionController::Ticket AdmissionController::Admit(int demand_threads) {
  const int demand = std::min(std::max(demand_threads, 1), budget_);
  const bool clamped = demand_threads > budget_;

  Ticket ticket;
  ticket.controller_ = this;
  ticket.granted_ = demand;
  ticket.clamped_ = clamped;

  WallTimer wait_timer;
  std::unique_lock<std::mutex> lock(mutex_);
  const uint64_t serial = next_serial_++;
  // FIFO: wait until every earlier ticket has been admitted AND the
  // budget has room. head_serial_ only advances on admission, so a later
  // (smaller) request cannot slip past a waiting (larger) one.
  bool waited = false;
  while (serial != head_serial_ || in_use_ + demand > budget_) {
    waited = true;
    cv_.wait(lock);
  }
  ++head_serial_;
  in_use_ += demand;

  ticket.queue_seconds_ = waited ? wait_timer.ElapsedSeconds() : 0.0;
  ++stats_.admitted;
  if (waited) ++stats_.queued;
  if (clamped) ++stats_.clamped;
  stats_.total_queue_seconds += ticket.queue_seconds_;
  stats_.max_queue_seconds =
      std::max(stats_.max_queue_seconds, ticket.queue_seconds_);
  stats_.max_in_use = std::max(stats_.max_in_use, in_use_);
  // Wake the next waiter: it may be admissible now that head advanced
  // (e.g. zero remaining budget is still enough for a ticket of its own
  // once threads free up; the wake on release handles that case).
  cv_.notify_all();
  return ticket;
}

void AdmissionController::ReleaseThreads(int n) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    in_use_ -= n;
  }
  cv_.notify_all();
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

int AdmissionController::in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_use_;
}

}  // namespace vertexica
