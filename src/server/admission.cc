#include "server/admission.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/threadpool.h"
#include "common/timer.h"

namespace vertexica {

AdmissionController::AdmissionController(int budget_threads)
    : budget_(budget_threads > 0
                  ? budget_threads
                  : static_cast<int>(std::max<std::size_t>(
                        1, ThreadPool::Default()->num_threads()))) {}

AdmissionController::Ticket::Ticket(Ticket&& other) noexcept
    : controller_(other.controller_),
      granted_(other.granted_),
      clamped_(other.clamped_),
      queue_seconds_(other.queue_seconds_) {
  other.controller_ = nullptr;
  other.granted_ = 0;
}

AdmissionController::Ticket& AdmissionController::Ticket::operator=(
    Ticket&& other) noexcept {
  if (this != &other) {
    Release();
    controller_ = other.controller_;
    granted_ = other.granted_;
    clamped_ = other.clamped_;
    queue_seconds_ = other.queue_seconds_;
    other.controller_ = nullptr;
    other.granted_ = 0;
  }
  return *this;
}

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr && granted_ > 0) {
    controller_->ReleaseThreads(granted_);
  }
  controller_ = nullptr;
  granted_ = 0;
}

AdmissionController::Ticket AdmissionController::Admit(int demand_threads) {
  Result<Ticket> admitted = Admit(demand_threads, CancelToken());
  // internal-invariant: a null token never cancels or expires, so the
  // deadline-aware path below cannot shed this waiter.
  VX_CHECK(admitted.ok()) << admitted.status().ToString();
  return std::move(*admitted);
}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    int demand_threads, const CancelToken& cancel) {
  VX_FAULT_POINT("admission.admit");
  const int demand = std::min(std::max(demand_threads, 1), budget_);
  const bool clamped = demand_threads > budget_;

  // The ticket is only bound to the controller after admission succeeds:
  // a shed return must not run Release() for threads never reserved (and
  // would self-deadlock on mutex_ doing so).
  Ticket ticket;
  ticket.clamped_ = clamped;

  WallTimer wait_timer;
  std::unique_lock<std::mutex> lock(mutex_);
  const uint64_t serial = next_serial_++;
  std::chrono::steady_clock::time_point deadline;
  const bool has_deadline = cancel.deadline(&deadline);
  // FIFO: wait until every earlier ticket has been admitted or shed AND
  // the budget has room. head_serial_ only advances on admission (or past
  // abandoned serials), so a later (smaller) request cannot slip past a
  // waiting (larger) one.
  bool waited = false;
  for (;;) {
    SkipAbandonedLocked();
    if (serial == head_serial_ && in_use_ + demand <= budget_) break;
    const Status stop = cancel.Check();
    if (!stop.ok()) {
      // Shed: give up the place in line. Marking the serial abandoned (and
      // nudging head past it if it is already there) keeps the FIFO chain
      // behind this waiter moving.
      abandoned_.insert(serial);
      SkipAbandonedLocked();
      ++stats_.shed;
      cv_.notify_all();
      return stop;
    }
    waited = true;
    if (has_deadline) {
      // Wake at the deadline to shed precisely; the periodic cap below
      // also catches a Cancel() from another thread (which has no cv).
      cv_.wait_until(lock, std::min(deadline,
                                    std::chrono::steady_clock::now() +
                                        std::chrono::milliseconds(50)));
    } else if (!cancel.null()) {
      cv_.wait_for(lock, std::chrono::milliseconds(50));
    } else {
      cv_.wait(lock);
    }
  }
  ++head_serial_;
  in_use_ += demand;
  ticket.controller_ = this;
  ticket.granted_ = demand;

  ticket.queue_seconds_ = waited ? wait_timer.ElapsedSeconds() : 0.0;
  ++stats_.admitted;
  if (waited) ++stats_.queued;
  if (clamped) ++stats_.clamped;
  stats_.total_queue_seconds += ticket.queue_seconds_;
  stats_.max_queue_seconds =
      std::max(stats_.max_queue_seconds, ticket.queue_seconds_);
  stats_.max_in_use = std::max(stats_.max_in_use, in_use_);
  // Wake the next waiter: it may be admissible now that head advanced
  // (e.g. zero remaining budget is still enough for a ticket of its own
  // once threads free up; the wake on release handles that case).
  cv_.notify_all();
  return ticket;
}

void AdmissionController::SkipAbandonedLocked() {
  auto it = abandoned_.find(head_serial_);
  while (it != abandoned_.end()) {
    abandoned_.erase(it);
    ++head_serial_;
    it = abandoned_.find(head_serial_);
  }
}

void AdmissionController::ReleaseThreads(int n) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    in_use_ -= n;
  }
  cv_.notify_all();
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

int AdmissionController::in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_use_;
}

}  // namespace vertexica
