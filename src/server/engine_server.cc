#include "server/engine_server.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "api/exec_context.h"
#include "common/fault_injection.h"
#include "common/timer.h"

namespace vertexica {

Result<RunResult> Session::Run(const RunRequest& request) {
  if (server_ == nullptr || engine_ == nullptr) {
    return Status::InvalidArgument("session is not open");
  }
  return server_->RunOnEngine(engine_.get(), version_, request, cancel_);
}

Status Session::Refresh() {
  if (server_ == nullptr) {
    return Status::InvalidArgument("session is not open");
  }
  VX_ASSIGN_OR_RETURN(EngineServer::GraphEntry entry,
                      server_->Lookup(graph_));
  engine_ = std::move(entry.engine);
  version_ = entry.version;
  return Status::OK();
}

EngineServer::EngineServer(ServerOptions options)
    : options_(options), admission_(options.admission_budget_threads) {}

Status EngineServer::CreateGraph(const std::string& name, Graph graph) {
  return CreateGraph(name, std::make_shared<const Graph>(std::move(graph)));
}

Status EngineServer::CreateGraph(const std::string& name,
                                 std::shared_ptr<const Graph> graph) {
  return Install(name, std::move(graph), /*allow_replace=*/false);
}

Status EngineServer::UpdateGraph(const std::string& name, Graph graph) {
  return UpdateGraph(name, std::make_shared<const Graph>(std::move(graph)));
}

Status EngineServer::UpdateGraph(const std::string& name,
                                 std::shared_ptr<const Graph> graph) {
  return Install(name, std::move(graph), /*allow_replace=*/true);
}

Status EngineServer::Install(const std::string& name,
                             std::shared_ptr<const Graph> graph,
                             bool allow_replace) {
  // Build the new version entirely outside the lock: an expensive load
  // must not block concurrent Run/OpenSession lookups.
  auto engine = std::make_shared<Engine>();
  VX_RETURN_NOT_OK(engine->LoadGraph(std::move(graph)));

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    graphs_[name] = GraphEntry{std::move(engine), 1};
    return Status::OK();
  }
  if (!allow_replace) {
    return Status::AlreadyExists("graph '" + name + "' already exists");
  }
  // The atomic copy-on-write swap: in-flight runs hold the old engine via
  // shared_ptr and finish on the version they pinned.
  it->second = GraphEntry{std::move(engine), it->second.version + 1};
  return Status::OK();
}

Status EngineServer::DropGraph(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (graphs_.erase(name) == 0) {
    return Status::NotFound("graph '" + name + "' does not exist");
  }
  return Status::OK();
}

Status EngineServer::PrepareGraph(const std::string& name,
                                  const std::string& backend_id) {
  VX_ASSIGN_OR_RETURN(GraphEntry entry, Lookup(name));
  if (!backend_id.empty()) {
    return entry.engine->PrepareBackend(backend_id);
  }
  for (const std::string& id : entry.engine->backends()) {
    VX_RETURN_NOT_OK(entry.engine->PrepareBackend(id));
  }
  return Status::OK();
}

std::vector<std::string> EngineServer::GraphNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(graphs_.size());
  for (const auto& [name, _] : graphs_) names.push_back(name);
  return names;
}

Result<uint64_t> EngineServer::GraphVersion(const std::string& name) const {
  VX_ASSIGN_OR_RETURN(GraphEntry entry, Lookup(name));
  return entry.version;
}

Result<EngineServer::GraphEntry> EngineServer::Lookup(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("graph '" + name + "' does not exist");
  }
  return it->second;
}

Result<RunResult> EngineServer::Run(const std::string& graph,
                                    const RunRequest& request) {
  VX_ASSIGN_OR_RETURN(GraphEntry entry, Lookup(graph));
  // `entry.engine` (a shared_ptr copy) pins this version for the whole
  // run; a concurrent UpdateGraph swaps the map entry without touching it.
  return RunOnEngine(entry.engine.get(), entry.version, request,
                     CancelToken());
}

Result<Session> EngineServer::OpenSession(const std::string& graph) {
  VX_ASSIGN_OR_RETURN(GraphEntry entry, Lookup(graph));
  return Session(this, graph, std::move(entry.engine), entry.version);
}

Result<RunResult> EngineServer::RunOnEngine(
    Engine* engine, uint64_t version, const RunRequest& request,
    const CancelToken& session_cancel) {
  // Resolve the request's execution configuration up front — its thread
  // demand is what admission charges against the budget, and its deadline
  // (resolved against arrival time, layered over the session's stop
  // button) is what admission sheds on. The token covers queue wait plus
  // execution: time spent queued is time the run no longer has.
  const ScopedCancelToken session_scope(session_cancel);
  const ExecContext ctx = ExecContext::FromRequest(request);

  VX_ASSIGN_OR_RETURN(
      AdmissionController::Ticket ticket,
      admission_.Admit(ctx.DemandThreads(), ctx.knobs.cancel));

  // The resolved token is installed ambiently for the engine dispatch, so
  // the request copy drops deadline_ms — re-deriving it after the queue
  // wait would silently grant a fresh budget.
  const ScopedCancelToken run_scope(ctx.knobs.cancel);
  RunRequest run_request = request;
  run_request.deadline_ms = 0;

  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  WallTimer run_timer;
  const int max_attempts = std::max(1, options_.max_run_attempts);
  int attempts = 0;
  Result<RunResult> result = Status::Internal("no run attempt was made");
  for (;;) {
    ++attempts;
    // An injected transient failure ("server.run", FaultAction::kError)
    // surfaces exactly like an engine-reported Aborted — the retry loop
    // below must not be able to tell the difference.
    Status injected = FaultInjectionArmed() ? FaultPointHit("server.run")
                                            : Status::OK();
    result = injected.ok() ? engine->Run(run_request)
                           : Result<RunResult>(injected);
    if (result.ok() || !result.status().IsAborted() ||
        attempts >= max_attempts || ctx.knobs.cancel.ShouldStop()) {
      break;
    }
    retries_.fetch_add(1, std::memory_order_acq_rel);
    const double backoff =
        std::min(options_.retry_backoff_seconds * (1 << (attempts - 1)),
                 0.050);
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
  }
  const double run_seconds = run_timer.ElapsedSeconds();
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);

  const double queue_seconds = ticket.queue_seconds();
  const int granted = ticket.granted_threads();
  ticket.Release();

  if (result.ok()) {
    result->backend_metrics["server_queue_seconds"] = queue_seconds;
    result->backend_metrics["server_run_seconds"] = run_seconds;
    result->backend_metrics["server_granted_threads"] =
        static_cast<double>(granted);
    result->backend_metrics["server_graph_version"] =
        static_cast<double>(version);
    result->backend_metrics["server_attempts"] =
        static_cast<double>(attempts);
  }
  return result;
}

}  // namespace vertexica
