/// \file engine_server.h
/// \brief The in-process serving layer: named graphs, concurrent runs,
/// copy-on-write graph versions, and admission control.
///
/// Everything below the Engine facade is one-shot: load a graph, run an
/// algorithm, exit. The ROADMAP's north star is an always-on analytic
/// engine where many clients share immutable cached storage (shards, zone
/// maps, pre-encoded join sides). EngineServer is that layer:
///
///  - **Named graphs, versioned copy-on-write.** Each name maps to an
///    immutable `(Engine, version)` pair behind a `shared_ptr`. A run pins
///    the pair for its whole duration; `UpdateGraph` builds a fresh Engine
///    and swaps the pointer atomically. In-flight runs keep reading the
///    version they pinned — snapshot isolation without locks on the run
///    path. (Within a version, VertexicaBackend gives each run a private
///    catalog seeded from the shared base snapshot; see api/backends.h.)
///  - **Sessions.** A `Session` pins one graph version at open, so a
///    sequence of runs sees one consistent graph even while the server
///    installs updates; `Refresh()` re-pins the latest.
///  - **Admission control.** Each request's resolved thread demand (its
///    `ExecContext`) is reserved against one global budget before the run
///    starts (server/admission.h): concurrent requests queue in FIFO order
///    instead of oversubscribing the shared ThreadPool.
///
/// Per-request serving metrics are reported in-band via
/// `RunResult::backend_metrics`: `server_queue_seconds`,
/// `server_run_seconds`, `server_granted_threads`, `server_graph_version`.

#ifndef VERTEXICA_SERVER_ENGINE_SERVER_H_
#define VERTEXICA_SERVER_ENGINE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/engine.h"
#include "common/cancel.h"
#include "common/result.h"
#include "server/admission.h"

namespace vertexica {

/// \brief Server construction knobs.
struct ServerOptions {
  /// Global thread budget for admission control; <= 0 uses the shared
  /// ThreadPool's size.
  int admission_budget_threads = 0;

  /// Total attempts per request when the engine reports a *transient*
  /// failure (`Status::Aborted` — the code injected faults and retryable
  /// conditions use). 1 disables retries; other status codes never retry.
  int max_run_attempts = 3;

  /// Base of the bounded exponential backoff between attempts
  /// (base * 2^(attempt-1), capped at 50 ms). Retries also stop early when
  /// the request's deadline or cancellation fires.
  double retry_backoff_seconds = 0.001;
};

class EngineServer;

/// \brief A client handle pinned to one version of one named graph.
///
/// Copyable-by-move, cheap, and safe to use from its owning thread while
/// other sessions/threads run concurrently. All runs through a session see
/// the graph version that was current at OpenSession (or the last
/// Refresh), regardless of server-side updates.
class Session {
 public:
  /// \brief Runs one request against the pinned graph version.
  Result<RunResult> Run(const RunRequest& request);

  /// \brief Cancels this session's in-flight and future runs: the current
  /// Run stops cooperatively (superstep / ParallelFor grain boundaries)
  /// with `Status::Cancelled`, releasing its admission reservation; a
  /// queued Run sheds without ever being admitted. Sticky — a cancelled
  /// session stays cancelled; open a new session to continue. The one
  /// method safe to call from another thread while Run is in flight.
  void Cancel() { cancel_.Cancel(); }

  /// \brief The pinned version (bumped by every server-side update).
  uint64_t graph_version() const { return version_; }

  const std::string& graph_name() const { return graph_; }

  /// \brief Re-pins the latest installed version of the graph.
  Status Refresh();

 private:
  friend class EngineServer;
  Session(EngineServer* server, std::string graph,
          std::shared_ptr<Engine> engine, uint64_t version)
      : server_(server),
        graph_(std::move(graph)),
        engine_(std::move(engine)),
        version_(version) {}

  EngineServer* server_ = nullptr;
  std::string graph_;
  std::shared_ptr<Engine> engine_;  // pins the version
  uint64_t version_ = 0;
  CancelToken cancel_ = CancelToken::Make();  // session-wide stop button
};

/// \brief The long-lived, concurrently-callable serving facade.
///
/// Thread-safe: every public method may be called from any thread at any
/// time. Run calls execute concurrently (subject to admission control);
/// graph management is atomic per name.
class EngineServer {
 public:
  explicit EngineServer(ServerOptions options = {});

  /// \name Graph management (copy-on-write)
  /// @{

  /// \brief Installs a new named graph at version 1; fails if the name
  /// exists. The graph's backends prepare lazily on first use (or call
  /// PrepareGraph).
  Status CreateGraph(const std::string& name, Graph graph);
  Status CreateGraph(const std::string& name,
                     std::shared_ptr<const Graph> graph);

  /// \brief Atomically replaces `name` with a new version (creates at
  /// version 1 if absent). In-flight runs and open sessions continue
  /// reading the version they pinned.
  Status UpdateGraph(const std::string& name, Graph graph);
  Status UpdateGraph(const std::string& name,
                     std::shared_ptr<const Graph> graph);

  /// \brief Removes a name. Pinned sessions keep working on their version.
  Status DropGraph(const std::string& name);

  /// \brief Eagerly prepares one backend (empty id: all backends) of the
  /// current version, keeping the one-time load cost out of serving
  /// latency.
  Status PrepareGraph(const std::string& name,
                      const std::string& backend_id = "");

  std::vector<std::string> GraphNames() const;
  Result<uint64_t> GraphVersion(const std::string& name) const;
  /// @}

  /// \brief Runs one request against the current version of `graph`.
  /// Safe to call concurrently from many threads; queues under admission
  /// control when the aggregate thread demand exceeds the budget.
  Result<RunResult> Run(const std::string& graph, const RunRequest& request);

  /// \brief Opens a session pinned to the current version of `graph`.
  Result<Session> OpenSession(const std::string& graph);

  /// \brief Requests currently executing (admitted, not yet finished).
  int in_flight() const { return in_flight_.load(std::memory_order_acquire); }

  AdmissionController::Stats admission_stats() const {
    return admission_.stats();
  }
  int admission_budget_threads() const {
    return admission_.budget_threads();
  }

  /// \brief Transient-failure retries performed across all requests.
  uint64_t retry_count() const {
    return retries_.load(std::memory_order_acquire);
  }

 private:
  friend class Session;

  struct GraphEntry {
    std::shared_ptr<Engine> engine;
    uint64_t version = 0;
  };

  Result<GraphEntry> Lookup(const std::string& name) const;
  Status Install(const std::string& name, std::shared_ptr<const Graph> graph,
                 bool allow_replace);

  /// The run path shared by EngineServer::Run and Session::Run: deadline
  /// resolution, admission (with queue-wait shedding), execution on the
  /// pinned engine with bounded-backoff retry of transient failures,
  /// serving metrics. `session_cancel` layers a session's stop button
  /// under the request deadline; a null token means no session.
  Result<RunResult> RunOnEngine(Engine* engine, uint64_t version,
                                const RunRequest& request,
                                const CancelToken& session_cancel);

  ServerOptions options_;
  AdmissionController admission_;
  std::atomic<int> in_flight_{0};
  std::atomic<uint64_t> retries_{0};

  mutable std::mutex mutex_;
  std::map<std::string, GraphEntry> graphs_;
};

}  // namespace vertexica

#endif  // VERTEXICA_SERVER_ENGINE_SERVER_H_
