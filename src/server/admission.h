/// \file admission.h
/// \brief Admission control: maps each request's thread demand onto one
/// global worker budget (queue + clamp, no oversubscription).
///
/// The serving problem: every request carries its own `threads` knob, and
/// the executor will happily schedule that much fan-out. With N concurrent
/// requests the aggregate demand is unbounded while the machine (and the
/// shared ThreadPool) is not. The controller makes the budget explicit:
/// a request *reserves* its demand before running and releases it after,
/// waiting in strict FIFO order when the budget is exhausted.
///
/// Two deliberate properties:
///  - The reservation is clamped to the budget; the request's *knob* never
///    is. Clamping the knob would change the giraph comparator's worker
///    partitioning (its floating-point combine order varies with worker
///    count), breaking the serve-equals-serial bit-identity contract. The
///    ThreadPool is fixed-size, so a knob above its reservation competes
///    for pool slots instead of creating OS threads — admission bounds the
///    aggregate *scheduled* demand, the fixed pool bounds the OS threads.
///  - Strict FIFO (ticket order), not best-fit: a small request never
///    overtakes a large one, so a wide request cannot starve.

#ifndef VERTEXICA_SERVER_ADMISSION_H_
#define VERTEXICA_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>

#include "common/cancel.h"
#include "common/result.h"

namespace vertexica {

/// \brief One global thread budget with FIFO reservations.
class AdmissionController {
 public:
  /// `budget_threads` <= 0 resolves to the shared ThreadPool's size — the
  /// pool is the resource being budgeted.
  explicit AdmissionController(int budget_threads = 0);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// \brief A held reservation; releases its threads on destruction.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept;
    Ticket& operator=(Ticket&& other) noexcept;
    ~Ticket() { Release(); }

    /// Threads actually reserved (demand clamped to the budget).
    int granted_threads() const { return granted_; }
    /// True when the demand exceeded the budget and the reservation was
    /// clamped down.
    bool clamped() const { return clamped_; }
    /// Time spent waiting for the reservation, in seconds.
    double queue_seconds() const { return queue_seconds_; }

    /// Returns the reservation early (idempotent).
    void Release();

   private:
    friend class AdmissionController;
    AdmissionController* controller_ = nullptr;
    int granted_ = 0;
    bool clamped_ = false;
    double queue_seconds_ = 0.0;
  };

  /// \brief Blocks (FIFO) until `demand_threads` can be reserved, then
  /// returns the held reservation. A demand above the budget is clamped; a
  /// demand <= 0 is treated as 1.
  Ticket Admit(int demand_threads);

  /// \brief Deadline/cancellation-aware Admit: waits FIFO like above, but
  /// sheds the request — with `DeadlineExceeded` or `Cancelled` — when
  /// `cancel` fires before the reservation is granted. A shed waiter
  /// abandons its place in line without wedging the tickets behind it.
  /// A null token makes this identical to `Admit(demand_threads)`.
  Result<Ticket> Admit(int demand_threads, const CancelToken& cancel);

  /// \brief Aggregate counters since construction.
  struct Stats {
    uint64_t admitted = 0;          ///< total reservations granted
    uint64_t queued = 0;            ///< of which had to wait
    uint64_t clamped = 0;           ///< of which were clamped to the budget
    uint64_t shed = 0;              ///< waiters that gave up (deadline/cancel)
    double total_queue_seconds = 0; ///< summed queue wait
    double max_queue_seconds = 0;   ///< worst single queue wait
    int max_in_use = 0;             ///< high-water mark of reserved threads
  };
  Stats stats() const;

  int budget_threads() const { return budget_; }

  /// Currently reserved threads (for gauges/tests).
  int in_use() const;

 private:
  void ReleaseThreads(int n);

  /// Advances head_serial_ past serials whose waiters shed (mutex held) —
  /// an abandoned ticket must not block the FIFO line behind it.
  void SkipAbandonedLocked();

  const int budget_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int in_use_ = 0;
  uint64_t next_serial_ = 0;  ///< next ticket number to hand out
  uint64_t head_serial_ = 0;  ///< ticket currently allowed to admit
  std::set<uint64_t> abandoned_;  ///< shed serials not yet passed by head
  Stats stats_;
};

}  // namespace vertexica

#endif  // VERTEXICA_SERVER_ADMISSION_H_
