/// \file server_main.cc
/// \brief `vertexica_server` — a thin driver around EngineServer.
///
/// Generates (or will later load) a graph, installs it under a name, and
/// serves a mixed workload from N concurrent client threads, printing a
/// JSON summary (per-request latency percentiles, queue-wait, admission
/// stats) to stdout. Doubles as the smallest end-to-end smoke test of the
/// serving subsystem:
///
///   vertexica_server --vertices=2000 --edges=12000 --clients=8
///       --requests=4 --threads=2
///
/// All flags are optional; defaults give a sub-second run.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/run_types.h"
#include "common/timer.h"
#include "graphgen/generators.h"
#include "server/engine_server.h"

namespace {

using vertexica::EngineServer;
using vertexica::RunRequest;

struct Flags {
  int64_t vertices = 2000;
  int64_t edges = 12000;
  uint64_t seed = 13;
  int clients = 8;
  int requests = 4;  // per client
  int threads = 0;   // per request; 0 = ambient
  int shards = 0;    // per request; 0 = ambient
  int budget = 0;    // admission budget; 0 = pool size
};

bool ParseFlag(const char* arg, const char* name, long* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::strtol(arg + len + 1, nullptr, 10);
  return true;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    long v = 0;
    if (ParseFlag(argv[i], "--vertices", &v)) flags.vertices = v;
    else if (ParseFlag(argv[i], "--edges", &v)) flags.edges = v;
    else if (ParseFlag(argv[i], "--seed", &v)) flags.seed = static_cast<uint64_t>(v);
    else if (ParseFlag(argv[i], "--clients", &v)) flags.clients = static_cast<int>(v);
    else if (ParseFlag(argv[i], "--requests", &v)) flags.requests = static_cast<int>(v);
    else if (ParseFlag(argv[i], "--threads", &v)) flags.threads = static_cast<int>(v);
    else if (ParseFlag(argv[i], "--shards", &v)) flags.shards = static_cast<int>(v);
    else if (ParseFlag(argv[i], "--budget", &v)) flags.budget = static_cast<int>(v);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  vertexica::Graph graph =
      vertexica::GenerateRmat(flags.vertices, flags.edges, flags.seed);
  vertexica::AssignRandomWeights(&graph, 1.0, 5.0, flags.seed);

  vertexica::ServerOptions options;
  options.admission_budget_threads = flags.budget;
  EngineServer server(options);
  if (auto s = server.CreateGraph("default", std::move(graph)); !s.ok()) {
    std::fprintf(stderr, "CreateGraph: %s\n", s.ToString().c_str());
    return 1;
  }
  if (auto s = server.PrepareGraph("default"); !s.ok()) {
    std::fprintf(stderr, "PrepareGraph: %s\n", s.ToString().c_str());
    return 1;
  }

  // The mixed workload: each client cycles through backend × algorithm
  // pairs, staggered by client id so concurrent requests differ.
  struct Work {
    const char* backend;
    const char* algorithm;
  };
  const std::vector<Work> workload = {
      {vertexica::kVertexicaBackendId, vertexica::kPageRank},
      {vertexica::kVertexicaBackendId, vertexica::kSssp},
      {vertexica::kSqlGraphBackendId, vertexica::kPageRank},
      {vertexica::kGiraphBackendId, vertexica::kSssp},
      {vertexica::kGraphDbBackendId, vertexica::kPageRank},
  };

  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(flags.clients));
  std::vector<std::vector<double>> queue_waits(
      static_cast<std::size_t>(flags.clients));
  std::vector<int> failures(static_cast<std::size_t>(flags.clients), 0);

  vertexica::WallTimer total_timer;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(flags.clients));
  for (int c = 0; c < flags.clients; ++c) {
    clients.emplace_back([&, c]() {
      for (int r = 0; r < flags.requests; ++r) {
        const Work& w =
            workload[static_cast<std::size_t>(c + r) % workload.size()];
        RunRequest request;
        request.backend = w.backend;
        request.algorithm = w.algorithm;
        request.threads = flags.threads;
        request.shards = flags.shards;
        request.source = c % 2;
        vertexica::WallTimer timer;
        auto result = server.Run("default", request);
        if (!result.ok()) {
          ++failures[static_cast<std::size_t>(c)];
          continue;
        }
        latencies[static_cast<std::size_t>(c)].push_back(
            timer.ElapsedSeconds());
        queue_waits[static_cast<std::size_t>(c)].push_back(
            result->backend_metrics["server_queue_seconds"]);
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall_seconds = total_timer.ElapsedSeconds();

  std::vector<double> all_latencies;
  std::vector<double> all_waits;
  int failed = 0;
  for (int c = 0; c < flags.clients; ++c) {
    const auto sc = static_cast<std::size_t>(c);
    all_latencies.insert(all_latencies.end(), latencies[sc].begin(),
                         latencies[sc].end());
    all_waits.insert(all_waits.end(), queue_waits[sc].begin(),
                     queue_waits[sc].end());
    failed += failures[sc];
  }
  std::sort(all_latencies.begin(), all_latencies.end());
  std::sort(all_waits.begin(), all_waits.end());

  const auto admission = server.admission_stats();
  std::printf(
      "{\n"
      "  \"clients\": %d,\n"
      "  \"requests\": %zu,\n"
      "  \"failed\": %d,\n"
      "  \"wall_seconds\": %.6f,\n"
      "  \"latency_p50_seconds\": %.6f,\n"
      "  \"latency_p99_seconds\": %.6f,\n"
      "  \"queue_wait_p50_seconds\": %.6f,\n"
      "  \"queue_wait_p99_seconds\": %.6f,\n"
      "  \"admission_budget_threads\": %d,\n"
      "  \"admission_admitted\": %llu,\n"
      "  \"admission_queued\": %llu,\n"
      "  \"admission_clamped\": %llu,\n"
      "  \"admission_max_in_use\": %d\n"
      "}\n",
      flags.clients, all_latencies.size(), failed, wall_seconds,
      Percentile(all_latencies, 0.50), Percentile(all_latencies, 0.99),
      Percentile(all_waits, 0.50), Percentile(all_waits, 0.99),
      server.admission_budget_threads(),
      static_cast<unsigned long long>(admission.admitted),
      static_cast<unsigned long long>(admission.queued),
      static_cast<unsigned long long>(admission.clamped),
      admission.max_in_use);
  return failed == 0 ? 0 : 1;
}
