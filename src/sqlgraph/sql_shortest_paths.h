/// \file sql_shortest_paths.h
/// \brief Single-source shortest paths as iterated relational relaxation —
/// the "Vertexica (SQL)" series of Figure 2(b).

#ifndef VERTEXICA_SQLGRAPH_SQL_SHORTEST_PATHS_H_
#define VERTEXICA_SQLGRAPH_SQL_SHORTEST_PATHS_H_

#include <vector>

#include "common/result.h"
#include "graphgen/graph.h"
#include "storage/table.h"

namespace vertexica {

/// \brief Bellman–Ford in SQL: repeat
/// \code{.sql}
///   CREATE TABLE cand AS
///     SELECT e.dst, MIN(d.dist + e.weight) AS nd
///     FROM dist d JOIN edge e ON d.id = e.src
///     WHERE d.dist < 'inf' GROUP BY e.dst;
///   CREATE TABLE dist AS
///     SELECT d.id, LEAST(d.dist, c.nd) FROM dist d
///     LEFT JOIN cand c ON d.id = c.dst;
/// \endcode
/// until no distance improves (at most |V|-1 rounds).
///
/// \returns table (id, dist); unreachable vertices have dist = +inf.
Result<Table> SqlShortestPaths(const Table& vertices, const Table& edges,
                               int64_t source);

/// \brief Convenience overload returning distances indexed by vertex id.
///
/// \deprecated Prefer `Engine::Run({.algorithm = "sssp", .backend =
/// "sqlgraph"})` — see api/engine.h and docs/API.md.
Result<std::vector<double>> SqlShortestPaths(const Graph& graph,
                                             int64_t source);

}  // namespace vertexica

#endif  // VERTEXICA_SQLGRAPH_SQL_SHORTEST_PATHS_H_
