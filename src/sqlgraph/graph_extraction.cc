#include "sqlgraph/graph_extraction.h"

#include "exec/plan_builder.h"
#include "sqlgraph/sql_common.h"

namespace vertexica {

Result<Table> ExtractEdges(const Table& relation,
                           const std::string& src_column,
                           const std::string& dst_column,
                           const std::string& weight_column) {
  VX_RETURN_NOT_OK(relation.ColumnIndex(src_column).status());
  VX_RETURN_NOT_OK(relation.ColumnIndex(dst_column).status());
  ExprPtr weight = weight_column.empty()
                       ? Lit(1.0)
                       : Cast(Col(weight_column), DataType::kDouble);
  return PlanBuilder::Scan(relation)
      .Filter(And(IsNotNull(Col(src_column)), IsNotNull(Col(dst_column))))
      .Project({{"src", Col(src_column)},
                {"dst", Col(dst_column)},
                {"weight", std::move(weight)}})
      .Aggregate({"src", "dst"}, {{AggOp::kSum, "weight", "weight"}})
      .Execute();
}

Result<Table> CoOccurrenceGraph(const Table& relation,
                                const std::string& entity_column,
                                const std::string& context_column,
                                int64_t min_shared) {
  VX_ASSIGN_OR_RETURN(
      Table pairs,
      PlanBuilder::Scan(relation)
          .Project({{"entity", Col(entity_column)},
                    {"context", Col(context_column)}})
          .Filter(And(IsNotNull(Col("entity")), IsNotNull(Col("context"))))
          .Distinct()
          .Execute());
  return PlanBuilder::Scan(pairs)
      .Rename({"src", "context"})
      .Join(PlanBuilder::Scan(pairs).Rename({"dst", "context2"}),
            {"context"}, {"context2"})
      .Filter(Lt(Col("src"), Col("dst")))
      .Project({{"src", Col("src")},
                {"dst", Col("dst")},
                {"one", Lit(1.0)}})
      .Aggregate({"src", "dst"}, {{AggOp::kSum, "one", "weight"}})
      .Filter(Ge(Col("weight"), Cast(Lit(min_shared), DataType::kDouble)))
      .OrderBy({{"weight", false}, {"src", true}, {"dst", true}})
      .Execute();
}

Result<Table> DegreeTable(const Table& edges) {
  VX_ASSIGN_OR_RETURN(
      Table out_deg,
      PlanBuilder::Scan(edges)
          .Aggregate({"src"}, {{AggOp::kCountStar, "", "out_degree"}})
          .Rename({"id", "out_degree"})
          .Execute());
  VX_ASSIGN_OR_RETURN(
      Table in_deg,
      PlanBuilder::Scan(edges)
          .Aggregate({"dst"}, {{AggOp::kCountStar, "", "in_degree"}})
          .Rename({"id", "in_degree"})
          .Execute());
  // Full outer union of endpoints, then left joins so isolated sides get 0.
  VX_ASSIGN_OR_RETURN(Table ids,
                      PlanBuilder::Scan(edges)
                          .Select({"src"})
                          .Rename({"id"})
                          .Union(PlanBuilder::Scan(edges)
                                     .Select({"dst"})
                                     .Rename({"id"}))
                          .Distinct()
                          .Execute());
  return PlanBuilder::Scan(std::move(ids))
      .Join(PlanBuilder::Scan(std::move(out_deg)), {"id"}, {"id"},
            JoinType::kLeft)
      .Join(PlanBuilder::Scan(std::move(in_deg)), {"id"}, {"id"},
            JoinType::kLeft)
      .Project({{"id", Col("id")},
                {"out_degree", Coalesce(Col("out_degree"), Lit(int64_t{0}))},
                {"in_degree", Coalesce(Col("in_degree"), Lit(int64_t{0}))}})
      .Project({{"id", Col("id")},
                {"out_degree", Col("out_degree")},
                {"in_degree", Col("in_degree")},
                {"degree", Add(Col("out_degree"), Col("in_degree"))}})
      .OrderBy({{"id", true}})
      .Execute();
}

Result<GraphSummary> SummarizeGraph(const Table& edges) {
  GraphSummary summary;
  summary.num_edges = edges.num_rows();
  VX_ASSIGN_OR_RETURN(Table degrees, DegreeTable(edges));
  summary.num_vertices = degrees.num_rows();
  if (degrees.num_rows() == 0) return summary;
  VX_ASSIGN_OR_RETURN(
      Table agg, PlanBuilder::Scan(std::move(degrees))
                     .Aggregate({}, {{AggOp::kMax, "out_degree", "mx"},
                                     {AggOp::kAvg, "out_degree", "avg"}})
                     .Execute());
  summary.max_out_degree = agg.column(0).GetInt64(0);
  summary.avg_out_degree = agg.column(1).GetDouble(0);
  return summary;
}

}  // namespace vertexica
