#include "sqlgraph/clustering_coefficient.h"

#include "exec/plan_builder.h"
#include "sqlgraph/sql_common.h"
#include "sqlgraph/triangle_count.h"

namespace vertexica {

Result<Table> SqlClusteringCoefficients(const Table& edges) {
  VX_ASSIGN_OR_RETURN(Table und, UndirectedEdges(edges));
  VX_ASSIGN_OR_RETURN(
      Table degrees,
      PlanBuilder::Scan(std::move(und))
          .Aggregate({"src"}, {{AggOp::kCountStar, "", "degree"}})
          .Rename({"id", "degree"})
          .Execute());
  VX_ASSIGN_OR_RETURN(Table tri, SqlPerNodeTriangles(edges));

  return PlanBuilder::Scan(std::move(degrees))
      .Join(PlanBuilder::Scan(std::move(tri)), {"id"}, {"id"},
            JoinType::kLeft)
      .Project(
          {{"id", Col("id")},
           {"degree", Col("degree")},
           {"triangles", Coalesce(Col("triangles"), Lit(int64_t{0}))},
           {"coeff",
            If(Lt(Col("degree"), Lit(int64_t{2})), Lit(0.0),
               Div(Mul(Lit(2.0),
                       Coalesce(Col("triangles"), Lit(int64_t{0}))),
                   Mul(Col("degree"),
                       Sub(Col("degree"), Lit(int64_t{1})))))}})
      .Execute();
}

Result<double> SqlGlobalClusteringCoefficient(const Table& edges) {
  VX_ASSIGN_OR_RETURN(Table cc, SqlClusteringCoefficients(edges));
  // triples(v) = deg·(deg-1)/2; transitivity = 3·T / Σ triples.
  VX_ASSIGN_OR_RETURN(
      Table agg,
      PlanBuilder::Scan(std::move(cc))
          .Project({{"triples",
                     Div(Mul(Col("degree"), Sub(Col("degree"), Lit(int64_t{1}))),
                         Lit(2.0))},
                    {"triangles", Col("triangles")}})
          .Aggregate({}, {{AggOp::kSum, "triples", "triples"},
                          {AggOp::kSum, "triangles", "tri3"}})
          .Execute());
  if (agg.column(0).IsNull(0) || agg.column(0).GetDouble(0) == 0.0) {
    return 0.0;
  }
  // Σ per-node triangle counts already counts each triangle 3 times.
  return agg.column(1).GetInt64(0) / agg.column(0).GetDouble(0);
}

Result<int64_t> SqlMaxClusteringVertex(const Table& edges) {
  VX_ASSIGN_OR_RETURN(Table cc, SqlClusteringCoefficients(edges));
  VX_ASSIGN_OR_RETURN(Table top, PlanBuilder::Scan(std::move(cc))
                                     .OrderBy({{"coeff", false}, {"id", true}})
                                     .Limit(1)
                                     .Execute());
  if (top.num_rows() == 0) {
    return Status::NotFound("graph has no edges");
  }
  return top.ColumnByName("id")->GetInt64(0);
}

Result<Table> SqlClusteringCoefficients(const Graph& graph) {
  return SqlClusteringCoefficients(MakeEdgeListTable(graph));
}

Result<double> SqlGlobalClusteringCoefficient(const Graph& graph) {
  return SqlGlobalClusteringCoefficient(MakeEdgeListTable(graph));
}

}  // namespace vertexica
