#include "sqlgraph/sql_common.h"

#include <algorithm>

#include "exec/plan_builder.h"

namespace vertexica {

Table MakeVertexListTable(const Graph& g) {
  std::vector<int64_t> ids(static_cast<size_t>(g.num_vertices));
  for (int64_t v = 0; v < g.num_vertices; ++v) ids[static_cast<size_t>(v)] = v;
  auto made = Table::Make(Schema({{"id", DataType::kInt64}}),
                          {Column::FromInts(std::move(ids))});
  VX_CHECK(made.ok());
  return std::move(made).MoveValueUnsafe();
}

Table MakeEdgeListTable(const Graph& graph) {
  const Graph g = graph.AsDirected();
  std::vector<Column> cols;
  cols.push_back(Column::FromInts(g.src));
  cols.push_back(Column::FromInts(g.dst));
  if (g.weight.empty()) {
    cols.push_back(
        Column::FromDoubles(std::vector<double>(g.src.size(), 1.0)));
  } else {
    cols.push_back(Column::FromDoubles(g.weight));
  }
  auto made = Table::Make(Schema({{"src", DataType::kInt64},
                                  {"dst", DataType::kInt64},
                                  {"weight", DataType::kDouble}}),
                          std::move(cols));
  VX_CHECK(made.ok());
  return std::move(made).MoveValueUnsafe();
}

Result<Table> UndirectedEdges(const Table& edges) {
  // SELECT src, dst FROM e UNION SELECT dst, src FROM e  (dedup, no loops)
  return PlanBuilder::Scan(edges)
      .Project({{"src", Col("src")}, {"dst", Col("dst")}})
      .Union(PlanBuilder::Scan(edges)
                 .Project({{"src", Col("dst")}, {"dst", Col("src")}}))
      .Filter(Ne(Col("src"), Col("dst")))
      .Distinct()
      .Execute();
}

Result<Table> OrientedEdges(const Table& edges) {
  VX_ASSIGN_OR_RETURN(Table und, UndirectedEdges(edges));
  return PlanBuilder::Scan(std::move(und))
      .Filter(Lt(Col("src"), Col("dst")))
      .Execute();
}

Result<Graph> GraphFromEdgeTable(const Table& edges) {
  VX_ASSIGN_OR_RETURN(int src_c, edges.ColumnIndex("src"));
  VX_ASSIGN_OR_RETURN(int dst_c, edges.ColumnIndex("dst"));
  const int w_c = edges.schema().FieldIndex("weight");
  Graph g;
  g.directed = true;
  g.src = edges.column(src_c).ints();
  g.dst = edges.column(dst_c).ints();
  if (w_c >= 0) g.weight = edges.column(w_c).doubles();
  for (int64_t e = 0; e < edges.num_rows(); ++e) {
    g.num_vertices = std::max(
        {g.num_vertices, g.src[static_cast<size_t>(e)] + 1,
         g.dst[static_cast<size_t>(e)] + 1});
  }
  return g;
}

}  // namespace vertexica
