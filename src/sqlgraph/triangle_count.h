/// \file triangle_count.h
/// \brief SQL triangle counting (§3.2) — a 1-hop algorithm that is natural
/// in SQL but awkward in vertex-centric systems.

#ifndef VERTEXICA_SQLGRAPH_TRIANGLE_COUNT_H_
#define VERTEXICA_SQLGRAPH_TRIANGLE_COUNT_H_

#include "common/result.h"
#include "graphgen/graph.h"
#include "storage/table.h"

namespace vertexica {

/// \brief Total number of triangles in the undirected simple graph
/// underlying `edges`. The classic three-way self-join on canonically
/// oriented edges:
/// \code{.sql}
///   SELECT COUNT(*) FROM oriented e1
///   JOIN oriented e2 ON e1.dst = e2.src
///   JOIN oriented e3 ON e1.src = e3.src AND e2.dst = e3.dst;
/// \endcode
Result<int64_t> SqlTriangleCount(const Table& edges);

/// \brief Per-node participation: table (id, triangles). Vertices in no
/// triangle are absent.
Result<Table> SqlPerNodeTriangles(const Table& edges);

/// \brief Table (a, b, c) of all triangles, a < b < c.
Result<Table> SqlTriangleList(const Table& edges);

/// \brief Convenience overload on a Graph.
Result<int64_t> SqlTriangleCount(const Graph& graph);

}  // namespace vertexica

#endif  // VERTEXICA_SQLGRAPH_TRIANGLE_COUNT_H_
