/// \file sql_common.h
/// \brief Shared helpers for the hand-written SQL graph algorithms
/// ("Vertexica (SQL)" in Figure 2 — "hand-coded and meticulously optimized
/// SQL implementations of graph algorithms").

#ifndef VERTEXICA_SQLGRAPH_SQL_COMMON_H_
#define VERTEXICA_SQLGRAPH_SQL_COMMON_H_

#include "common/result.h"
#include "graphgen/graph.h"
#include "storage/table.h"

namespace vertexica {

/// \brief Table (id INT64) listing every vertex of `g`.
Table MakeVertexListTable(const Graph& g);

/// \brief Table (src, dst, weight) of the directed edges of `g`.
Table MakeEdgeListTable(const Graph& g);

/// \brief Symmetrized simple edge set: both orientations of every edge,
/// duplicates and self-loops removed. Schema (src, dst).
Result<Table> UndirectedEdges(const Table& edges);

/// \brief Canonically oriented simple edge set (src < dst), one row per
/// undirected edge. Schema (src, dst).
Result<Table> OrientedEdges(const Table& edges);

/// \brief Rebuilds a Graph from an edge table (columns src, dst, optional
/// weight). num_vertices = max endpoint + 1.
Result<Graph> GraphFromEdgeTable(const Table& edges);

}  // namespace vertexica

#endif  // VERTEXICA_SQLGRAPH_SQL_COMMON_H_
