/// \file sql_connected_components.h
/// \brief Connected components as iterated relational label propagation —
/// completing the SQL counterparts of the §3.1 vertex-centric suite.

#ifndef VERTEXICA_SQLGRAPH_SQL_CONNECTED_COMPONENTS_H_
#define VERTEXICA_SQLGRAPH_SQL_CONNECTED_COMPONENTS_H_

#include <vector>

#include "common/result.h"
#include "graphgen/graph.h"
#include "storage/table.h"

namespace vertexica {

/// \brief HashMin in SQL: every vertex starts labelled with its own id and
/// repeatedly takes the minimum label in its closed undirected
/// neighbourhood until a full pass changes nothing:
/// \code{.sql}
///   CREATE TABLE cand AS
///     SELECT e.dst AS id, MIN(l.label) AS nl
///     FROM label l JOIN und e ON l.id = e.src GROUP BY e.dst;
///   CREATE TABLE label AS
///     SELECT l.id, LEAST(l.label, c.nl) FROM label l
///     LEFT JOIN cand c ON l.id = c.id;
/// \endcode
/// \returns table (id, label) where label = min member id of the
/// component.
Result<Table> SqlConnectedComponents(const Table& vertices,
                                     const Table& edges);

/// \brief Convenience overload; labels indexed by vertex id.
Result<std::vector<int64_t>> SqlConnectedComponents(const Graph& graph);

}  // namespace vertexica

#endif  // VERTEXICA_SQLGRAPH_SQL_CONNECTED_COMPONENTS_H_
