/// \file strong_overlap.h
/// \brief Strong overlap (§3.2): "find pairs of nodes having strong overlap
/// between them. Overlap could be defined as number of common neighbors."

#ifndef VERTEXICA_SQLGRAPH_STRONG_OVERLAP_H_
#define VERTEXICA_SQLGRAPH_STRONG_OVERLAP_H_

#include "common/result.h"
#include "graphgen/graph.h"
#include "storage/table.h"

namespace vertexica {

/// \brief Pairs (a, b), a < b, sharing at least `min_common` undirected
/// neighbours:
/// \code{.sql}
///   SELECT n1.src AS a, n2.src AS b, COUNT(*) AS common
///   FROM und n1 JOIN und n2 ON n1.dst = n2.dst AND n1.src < n2.src
///   GROUP BY a, b HAVING COUNT(*) >= :min_common;
/// \endcode
/// \returns table (a, b, common) sorted by common desc.
Result<Table> SqlStrongOverlap(const Table& edges, int64_t min_common = 2);

/// \brief Convenience overload on a Graph.
Result<Table> SqlStrongOverlap(const Graph& graph, int64_t min_common = 2);

}  // namespace vertexica

#endif  // VERTEXICA_SQLGRAPH_STRONG_OVERLAP_H_
