#include "sqlgraph/sql_connected_components.h"

#include "exec/plan_builder.h"
#include "sqlgraph/sql_common.h"

namespace vertexica {

Result<Table> SqlConnectedComponents(const Table& vertices,
                                     const Table& edges) {
  VX_ASSIGN_OR_RETURN(Table und, UndirectedEdges(edges));

  VX_ASSIGN_OR_RETURN(Table label,
                      PlanBuilder::Scan(vertices)
                          .Project({{"id", Col("id")},
                                    {"label", Cast(Col("id"),
                                                   DataType::kDouble)}})
                          .Execute());

  const int64_t max_rounds = std::max<int64_t>(1, vertices.num_rows());
  for (int64_t round = 0; round < max_rounds; ++round) {
    VX_ASSIGN_OR_RETURN(
        Table cand,
        PlanBuilder::Scan(label)
            .Join(PlanBuilder::Scan(und), {"id"}, {"src"})
            .Project({{"nid", Col("dst")}, {"nl", Col("label")}})
            .Aggregate({"nid"}, {{AggOp::kMin, "nl", "nl"}})
            .Execute());
    VX_ASSIGN_OR_RETURN(
        Table next,
        PlanBuilder::Scan(label)
            .Join(PlanBuilder::Scan(std::move(cand)), {"id"}, {"nid"},
                  JoinType::kLeft)
            .Project({{"id", Col("id")},
                      {"label", Least(Col("label"), Col("nl"))},
                      {"improved",
                       If(And(IsNotNull(Col("nl")),
                              Lt(Col("nl"), Col("label"))),
                          Lit(int64_t{1}), Lit(int64_t{0}))}})
            .Execute());
    VX_ASSIGN_OR_RETURN(Table improved_count,
                        PlanBuilder::Scan(next)
                            .Aggregate({}, {{AggOp::kSum, "improved", "n"}})
                            .Execute());
    const bool improved = !improved_count.column(0).IsNull(0) &&
                          improved_count.column(0).GetInt64(0) > 0;
    VX_ASSIGN_OR_RETURN(label, PlanBuilder::Scan(std::move(next))
                                   .Select({"id", "label"})
                                   .Execute());
    if (!improved) break;
  }
  // Render labels back as integers.
  return PlanBuilder::Scan(std::move(label))
      .Project({{"id", Col("id")},
                {"label", Cast(Col("label"), DataType::kInt64)}})
      .Execute();
}

Result<std::vector<int64_t>> SqlConnectedComponents(const Graph& graph) {
  VX_ASSIGN_OR_RETURN(Table label,
                      SqlConnectedComponents(MakeVertexListTable(graph),
                                             MakeEdgeListTable(graph)));
  std::vector<int64_t> out(static_cast<size_t>(graph.num_vertices), 0);
  const auto& ids = label.column(0).ints();
  const auto& labels = label.column(1).ints();
  for (size_t i = 0; i < ids.size(); ++i) {
    out[static_cast<size_t>(ids[i])] = labels[i];
  }
  return out;
}

}  // namespace vertexica
