/// \file clustering_coefficient.h
/// \brief Local and global clustering coefficients, the §3.2/§4.2.2
/// composition of triangle counting with degree statistics ("global
/// clustering coefficient (combining triangle counting with weak ties)").

#ifndef VERTEXICA_SQLGRAPH_CLUSTERING_COEFFICIENT_H_
#define VERTEXICA_SQLGRAPH_CLUSTERING_COEFFICIENT_H_

#include "common/result.h"
#include "graphgen/graph.h"
#include "storage/table.h"

namespace vertexica {

/// \brief Local clustering coefficient per vertex:
/// c(v) = 2·triangles(v) / (deg(v)·(deg(v)-1)); 0 when deg(v) < 2.
/// \returns table (id, degree, triangles, coeff) for every vertex that has
/// at least one undirected edge.
Result<Table> SqlClusteringCoefficients(const Table& edges);

/// \brief Global (transitivity) coefficient:
/// 3·triangles / #connected-triples.
Result<double> SqlGlobalClusteringCoefficient(const Table& edges);

/// \brief Vertex id with the maximum local clustering coefficient (ties
/// broken by lower id) — the §3.2 example seed for shortest paths.
Result<int64_t> SqlMaxClusteringVertex(const Table& edges);

/// \brief Convenience overloads on a Graph.
Result<Table> SqlClusteringCoefficients(const Graph& graph);
Result<double> SqlGlobalClusteringCoefficient(const Graph& graph);

}  // namespace vertexica

#endif  // VERTEXICA_SQLGRAPH_CLUSTERING_COEFFICIENT_H_
