#include "sqlgraph/sql_shortest_paths.h"

#include <limits>

#include "exec/plan_builder.h"
#include "sqlgraph/sql_common.h"

namespace vertexica {

Result<Table> SqlShortestPaths(const Table& vertices, const Table& edges,
                               int64_t source) {
  const double kInf = std::numeric_limits<double>::infinity();

  VX_ASSIGN_OR_RETURN(
      Table dist,
      PlanBuilder::Scan(vertices)
          .Project({{"id", Col("id")},
                    {"dist", If(Eq(Col("id"), Lit(source)), Lit(0.0),
                                Lit(kInf))}})
          .Execute());

  const int64_t max_rounds = std::max<int64_t>(1, vertices.num_rows() - 1);
  for (int64_t round = 0; round < max_rounds; ++round) {
    // Candidate relaxations from currently-reachable vertices.
    VX_ASSIGN_OR_RETURN(
        Table cand,
        PlanBuilder::Scan(dist)
            .Filter(Lt(Col("dist"), Lit(kInf)))
            .Join(PlanBuilder::Scan(edges), {"id"}, {"src"})
            .Project({{"dst", Col("dst")},
                      {"nd", Add(Col("dist"), Col("weight"))}})
            .Aggregate({"dst"}, {{AggOp::kMin, "nd", "nd"}})
            .Execute());
    if (cand.num_rows() == 0) break;

    VX_ASSIGN_OR_RETURN(
        Table next,
        PlanBuilder::Scan(dist)
            .Join(PlanBuilder::Scan(std::move(cand)), {"id"}, {"dst"},
                  JoinType::kLeft)
            .Project({{"id", Col("id")},
                      {"dist", Least(Col("dist"), Col("nd"))},
                      {"improved",
                       If(And(IsNotNull(Col("nd")),
                              Lt(Col("nd"), Col("dist"))),
                          Lit(int64_t{1}), Lit(int64_t{0}))}})
            .Execute());

    VX_ASSIGN_OR_RETURN(
        Table improved_count,
        PlanBuilder::Scan(next)
            .Aggregate({}, {{AggOp::kSum, "improved", "n"}})
            .Execute());
    const bool improved = !improved_count.column(0).IsNull(0) &&
                          improved_count.column(0).GetInt64(0) > 0;

    VX_ASSIGN_OR_RETURN(dist, PlanBuilder::Scan(std::move(next))
                                  .Select({"id", "dist"})
                                  .Execute());
    if (!improved) break;
  }
  return dist;
}

Result<std::vector<double>> SqlShortestPaths(const Graph& graph,
                                             int64_t source) {
  VX_ASSIGN_OR_RETURN(Table dist,
                      SqlShortestPaths(MakeVertexListTable(graph),
                                       MakeEdgeListTable(graph), source));
  std::vector<double> out(static_cast<size_t>(graph.num_vertices),
                          std::numeric_limits<double>::infinity());
  const auto& ids = dist.column(0).ints();
  const auto& d = dist.column(1).doubles();
  for (size_t i = 0; i < ids.size(); ++i) {
    out[static_cast<size_t>(ids[i])] = d[i];
  }
  return out;
}

}  // namespace vertexica
