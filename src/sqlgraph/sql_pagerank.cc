#include "sqlgraph/sql_pagerank.h"

#include "exec/plan_builder.h"
#include "sqlgraph/sql_common.h"

namespace vertexica {

Result<Table> SqlPageRank(const Table& vertices, const Table& edges,
                          int iterations, double damping) {
  const auto n = static_cast<double>(vertices.num_rows());
  if (n == 0) return Table(Schema({{"id", DataType::kInt64},
                                   {"rank", DataType::kDouble}}));

  // Pre-join edges with out-degrees once; the per-iteration plan then only
  // joins this against the current rank table.
  VX_ASSIGN_OR_RETURN(
      Table outdeg,
      PlanBuilder::Scan(edges)
          .Aggregate({"src"}, {{AggOp::kCountStar, "", "outdeg"}})
          .Execute());
  VX_ASSIGN_OR_RETURN(
      Table edge_deg,
      PlanBuilder::Scan(edges)
          .Select({"src", "dst"})
          .Join(PlanBuilder::Scan(std::move(outdeg)), {"src"}, {"src"})
          .Select({"src", "dst", "outdeg"})
          .Execute());

  // rank_0 = 1/N everywhere.
  VX_ASSIGN_OR_RETURN(Table rank,
                      PlanBuilder::Scan(vertices)
                          .Project({{"id", Col("id")},
                                    {"rank", Lit(1.0 / n)}})
                          .Execute());

  for (int it = 0; it < iterations; ++it) {
    VX_ASSIGN_OR_RETURN(
        Table sums,
        PlanBuilder::Scan(edge_deg)
            .Join(PlanBuilder::Scan(rank), {"src"}, {"id"})
            .Project({{"dst", Col("dst")},
                      {"c", Div(Col("rank"), Col("outdeg"))}})
            .Aggregate({"dst"}, {{AggOp::kSum, "c", "s"}})
            .Execute());
    VX_ASSIGN_OR_RETURN(
        rank,
        PlanBuilder::Scan(vertices)
            .Join(PlanBuilder::Scan(std::move(sums)), {"id"}, {"dst"},
                  JoinType::kLeft)
            .Project({{"id", Col("id")},
                      {"rank", Add(Lit((1.0 - damping) / n),
                                   Mul(Lit(damping),
                                       Coalesce(Col("s"), Lit(0.0))))}})
            .Execute());
  }
  return rank;
}

Result<std::vector<double>> SqlPageRank(const Graph& graph, int iterations,
                                        double damping) {
  VX_ASSIGN_OR_RETURN(Table rank,
                      SqlPageRank(MakeVertexListTable(graph),
                                  MakeEdgeListTable(graph), iterations,
                                  damping));
  std::vector<double> out(static_cast<size_t>(graph.num_vertices), 0.0);
  const auto& ids = rank.column(0).ints();
  const auto& ranks = rank.column(1).doubles();
  for (size_t i = 0; i < ids.size(); ++i) {
    out[static_cast<size_t>(ids[i])] = ranks[i];
  }
  return out;
}

}  // namespace vertexica
