/// \file weak_ties.h
/// \brief Weak ties (§3.2): "find nodes which act as bridges between
/// otherwise disconnected pair of nodes."

#ifndef VERTEXICA_SQLGRAPH_WEAK_TIES_H_
#define VERTEXICA_SQLGRAPH_WEAK_TIES_H_

#include "common/result.h"
#include "graphgen/graph.h"
#include "storage/table.h"

namespace vertexica {

/// \brief For every vertex v, counts the neighbour pairs (a, b) that are
/// NOT directly connected — pairs for which v is the bridge:
/// \code{.sql}
///   SELECT n1.src AS v, COUNT(*) AS open_pairs
///   FROM und n1 JOIN und n2 ON n1.src = n2.src AND n1.dst < n2.dst
///   WHERE NOT EXISTS (SELECT 1 FROM und e
///                     WHERE e.src = n1.dst AND e.dst = n2.dst)
///   GROUP BY v HAVING COUNT(*) >= :min_pairs;
/// \endcode
/// \returns table (id, open_pairs) sorted by open_pairs desc.
Result<Table> SqlWeakTies(const Table& edges, int64_t min_pairs = 1);

/// \brief Convenience overload on a Graph.
Result<Table> SqlWeakTies(const Graph& graph, int64_t min_pairs = 1);

}  // namespace vertexica

#endif  // VERTEXICA_SQLGRAPH_WEAK_TIES_H_
