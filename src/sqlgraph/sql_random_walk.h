/// \file sql_random_walk.h
/// \brief Localized PageRank (random walk with restart) in SQL — the §1
/// example of combining graph algorithms with relational operators:
/// "Vertexica allows users to easily combine graph algorithms with
/// relational operators, thereby facilitating more advanced graph queries
/// e.g. localized PageRank."

#ifndef VERTEXICA_SQLGRAPH_SQL_RANDOM_WALK_H_
#define VERTEXICA_SQLGRAPH_SQL_RANDOM_WALK_H_

#include <vector>

#include "common/result.h"
#include "graphgen/graph.h"
#include "storage/table.h"

namespace vertexica {

/// \brief Iterative RWR: p ← (1-c)·Wᵀp + c·e_source, the same recurrence as
/// the vertex-centric RandomWalkWithRestartProgram, expressed as the
/// per-iteration join/aggregate plan of SqlPageRank with a personalized
/// teleport.
/// \returns table (id, score).
Result<Table> SqlRandomWalkWithRestart(const Table& vertices,
                                       const Table& edges, int64_t source,
                                       int iterations = 15,
                                       double restart_probability = 0.15);

/// \brief Convenience overload; scores indexed by vertex id.
Result<std::vector<double>> SqlRandomWalkWithRestart(
    const Graph& graph, int64_t source, int iterations = 15,
    double restart_probability = 0.15);

}  // namespace vertexica

#endif  // VERTEXICA_SQLGRAPH_SQL_RANDOM_WALK_H_
