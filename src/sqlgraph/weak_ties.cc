#include "sqlgraph/weak_ties.h"

#include "exec/plan_builder.h"
#include "sqlgraph/sql_common.h"

namespace vertexica {

Result<Table> SqlWeakTies(const Table& edges, int64_t min_pairs) {
  VX_ASSIGN_OR_RETURN(Table und, UndirectedEdges(edges));
  // Neighbour pairs of the same centre vertex, canonically ordered.
  VX_ASSIGN_OR_RETURN(
      Table open_pairs,
      PlanBuilder::Scan(und)
          .Rename({"v", "a"})
          .Join(PlanBuilder::Scan(und).Rename({"v2", "b"}), {"v"}, {"v2"})
          .Filter(Lt(Col("a"), Col("b")))
          // Keep only pairs with no direct a—b edge (anti join).
          .Join(PlanBuilder::Scan(und).Rename({"ea", "eb"}), {"a", "b"},
                {"ea", "eb"}, JoinType::kAnti)
          .Execute());
  return PlanBuilder::Scan(std::move(open_pairs))
      .Aggregate({"v"}, {{AggOp::kCountStar, "", "open_pairs"}})
      .Filter(Ge(Col("open_pairs"), Lit(min_pairs)))
      .Rename({"id", "open_pairs"})
      .OrderBy({{"open_pairs", false}, {"id", true}})
      .Execute();
}

Result<Table> SqlWeakTies(const Graph& graph, int64_t min_pairs) {
  return SqlWeakTies(MakeEdgeListTable(graph), min_pairs);
}

}  // namespace vertexica
