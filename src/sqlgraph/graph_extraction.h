/// \file graph_extraction.h
/// \brief Extracting graphs from relational data (§3.4): "in many cases,
/// the graphs may be implicit in the relational data and need to be
/// extracted in the first place."

#ifndef VERTEXICA_SQLGRAPH_GRAPH_EXTRACTION_H_
#define VERTEXICA_SQLGRAPH_GRAPH_EXTRACTION_H_

#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace vertexica {

/// \brief Extracts an edge table (src, dst, weight) from any relation:
/// `src_column` / `dst_column` must be INT64; `weight_column` is optional
/// (empty → weight 1.0). Rows with NULL endpoints are dropped; duplicate
/// (src, dst) pairs are merged, summing weights.
Result<Table> ExtractEdges(const Table& relation,
                           const std::string& src_column,
                           const std::string& dst_column,
                           const std::string& weight_column = "");

/// \brief Builds a co-occurrence graph: entities are connected when they
/// share at least `min_shared` contexts (e.g. users who rated the same
/// items, authors on the same papers). The classic self-join extraction:
/// \code{.sql}
///   SELECT a.entity AS src, b.entity AS dst, COUNT(*) AS weight
///   FROM r a JOIN r b ON a.context = b.context AND a.entity < b.entity
///   GROUP BY src, dst HAVING COUNT(*) >= :min_shared;
/// \endcode
/// \returns edge table (src, dst, weight), canonically oriented src < dst.
Result<Table> CoOccurrenceGraph(const Table& relation,
                                const std::string& entity_column,
                                const std::string& context_column,
                                int64_t min_shared = 1);

/// \brief Per-vertex degree summary of an edge table: (id, out_degree,
/// in_degree, degree) for every endpoint appearing in `edges`.
Result<Table> DegreeTable(const Table& edges);

/// \brief Whole-graph summary statistics.
struct GraphSummary {
  int64_t num_vertices = 0;
  int64_t num_edges = 0;
  int64_t max_out_degree = 0;
  double avg_out_degree = 0.0;
};
Result<GraphSummary> SummarizeGraph(const Table& edges);

}  // namespace vertexica

#endif  // VERTEXICA_SQLGRAPH_GRAPH_EXTRACTION_H_
