/// \file sql_pagerank.h
/// \brief PageRank as pure relational plans (join + aggregate per
/// iteration) — the "Vertexica (SQL)" series of Figure 2(a).

#ifndef VERTEXICA_SQLGRAPH_SQL_PAGERANK_H_
#define VERTEXICA_SQLGRAPH_SQL_PAGERANK_H_

#include <vector>

#include "common/result.h"
#include "graphgen/graph.h"
#include "storage/table.h"

namespace vertexica {

/// \brief Iterative SQL PageRank.
///
/// Per iteration (the classic two-join/one-aggregate plan):
/// \code{.sql}
///   CREATE TABLE contrib AS
///     SELECT e.dst, r.rank / o.outdeg AS c
///     FROM edge e JOIN rank r ON e.src = r.id
///                 JOIN outdeg o ON e.src = o.src;
///   CREATE TABLE rank AS
///     SELECT v.id, (1-d)/N + d * COALESCE(SUM(c), 0) AS rank
///     FROM vertex v LEFT JOIN contrib ON v.id = contrib.dst GROUP BY v.id;
/// \endcode
///
/// \param vertices table with an `id` column
/// \param edges    table with `src`/`dst` columns
/// \returns table (id, rank)
Result<Table> SqlPageRank(const Table& vertices, const Table& edges,
                          int iterations = 10, double damping = 0.85);

/// \brief Convenience overload; returns ranks indexed by vertex id.
///
/// \deprecated Prefer `Engine::Run({.algorithm = "pagerank", .backend =
/// "sqlgraph"})` — see api/engine.h and docs/API.md.
Result<std::vector<double>> SqlPageRank(const Graph& graph,
                                        int iterations = 10,
                                        double damping = 0.85);

}  // namespace vertexica

#endif  // VERTEXICA_SQLGRAPH_SQL_PAGERANK_H_
