#include "sqlgraph/strong_overlap.h"

#include "exec/plan_builder.h"
#include "sqlgraph/sql_common.h"

namespace vertexica {

Result<Table> SqlStrongOverlap(const Table& edges, int64_t min_common) {
  VX_ASSIGN_OR_RETURN(Table und, UndirectedEdges(edges));
  return PlanBuilder::Scan(und)
      .Rename({"a", "x"})
      .Join(PlanBuilder::Scan(und).Rename({"b", "x2"}), {"x"}, {"x2"})
      .Filter(Lt(Col("a"), Col("b")))
      .Aggregate({"a", "b"}, {{AggOp::kCountStar, "", "common"}})
      .Filter(Ge(Col("common"), Lit(min_common)))
      .OrderBy({{"common", false}, {"a", true}, {"b", true}})
      .Execute();
}

Result<Table> SqlStrongOverlap(const Graph& graph, int64_t min_common) {
  return SqlStrongOverlap(MakeEdgeListTable(graph), min_common);
}

}  // namespace vertexica
