#include "sqlgraph/sql_random_walk.h"

#include "exec/plan_builder.h"
#include "sqlgraph/sql_common.h"

namespace vertexica {

Result<Table> SqlRandomWalkWithRestart(const Table& vertices,
                                       const Table& edges, int64_t source,
                                       int iterations,
                                       double restart_probability) {
  const double c = restart_probability;

  VX_ASSIGN_OR_RETURN(
      Table outdeg,
      PlanBuilder::Scan(edges)
          .Aggregate({"src"}, {{AggOp::kCountStar, "", "outdeg"}})
          .Execute());
  VX_ASSIGN_OR_RETURN(
      Table edge_deg,
      PlanBuilder::Scan(edges)
          .Select({"src", "dst"})
          .Join(PlanBuilder::Scan(std::move(outdeg)), {"src"}, {"src"})
          .Select({"src", "dst", "outdeg"})
          .Execute());

  // score_0 = e_source.
  VX_ASSIGN_OR_RETURN(
      Table score,
      PlanBuilder::Scan(vertices)
          .Project({{"id", Col("id")},
                    {"score", If(Eq(Col("id"), Lit(source)), Lit(1.0),
                                 Lit(0.0))}})
          .Execute());

  for (int it = 0; it < iterations; ++it) {
    VX_ASSIGN_OR_RETURN(
        Table sums,
        PlanBuilder::Scan(edge_deg)
            .Join(PlanBuilder::Scan(score), {"src"}, {"id"})
            .Filter(Gt(Col("score"), Lit(0.0)))
            .Project({{"dst", Col("dst")},
                      {"m", Div(Col("score"), Col("outdeg"))}})
            .Aggregate({"dst"}, {{AggOp::kSum, "m", "s"}})
            .Execute());
    VX_ASSIGN_OR_RETURN(
        score,
        PlanBuilder::Scan(vertices)
            .Join(PlanBuilder::Scan(std::move(sums)), {"id"}, {"dst"},
                  JoinType::kLeft)
            .Project({{"id", Col("id")},
                      {"score",
                       Add(Mul(Lit(1.0 - c), Coalesce(Col("s"), Lit(0.0))),
                           If(Eq(Col("id"), Lit(source)), Lit(c),
                              Lit(0.0)))}})
            .Execute());
  }
  return score;
}

Result<std::vector<double>> SqlRandomWalkWithRestart(
    const Graph& graph, int64_t source, int iterations,
    double restart_probability) {
  VX_ASSIGN_OR_RETURN(
      Table score,
      SqlRandomWalkWithRestart(MakeVertexListTable(graph),
                               MakeEdgeListTable(graph), source, iterations,
                               restart_probability));
  std::vector<double> out(static_cast<size_t>(graph.num_vertices), 0.0);
  const auto& ids = score.column(0).ints();
  const auto& scores = score.column(1).doubles();
  for (size_t i = 0; i < ids.size(); ++i) {
    out[static_cast<size_t>(ids[i])] = scores[i];
  }
  return out;
}

}  // namespace vertexica
