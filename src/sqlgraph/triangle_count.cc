#include "sqlgraph/triangle_count.h"

#include "exec/plan_builder.h"
#include "sqlgraph/sql_common.h"

namespace vertexica {

Result<Table> SqlTriangleList(const Table& edges) {
  VX_ASSIGN_OR_RETURN(Table oriented, OrientedEdges(edges));
  // e1(a,b) ⋈ e2(b,c) ⋈ e3(a,c), all canonically oriented (a < b < c).
  VX_ASSIGN_OR_RETURN(
      Table wedges,
      PlanBuilder::Scan(oriented)
          .Rename({"a", "b"})
          .Join(PlanBuilder::Scan(oriented).Rename({"b2", "c"}), {"b"},
                {"b2"})
          .Select({"a", "b", "c"})
          .Execute());
  return PlanBuilder::Scan(std::move(wedges))
      .Join(PlanBuilder::Scan(oriented).Rename({"a3", "c3"}), {"a", "c"},
            {"a3", "c3"}, JoinType::kSemi)
      .Execute();
}

Result<int64_t> SqlTriangleCount(const Table& edges) {
  VX_ASSIGN_OR_RETURN(Table triangles, SqlTriangleList(edges));
  return triangles.num_rows();
}

Result<Table> SqlPerNodeTriangles(const Table& edges) {
  VX_ASSIGN_OR_RETURN(Table triangles, SqlTriangleList(edges));
  // Each triangle (a,b,c) contributes one count to each corner.
  return PlanBuilder::Scan(triangles)
      .Select({"a"})
      .Rename({"id"})
      .Union(PlanBuilder::Scan(triangles).Select({"b"}).Rename({"id"}))
      .Union(PlanBuilder::Scan(triangles).Select({"c"}).Rename({"id"}))
      .Aggregate({"id"}, {{AggOp::kCountStar, "", "triangles"}})
      .Execute();
}

Result<int64_t> SqlTriangleCount(const Graph& graph) {
  return SqlTriangleCount(MakeEdgeListTable(graph));
}

}  // namespace vertexica
