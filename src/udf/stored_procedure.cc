#include "udf/stored_procedure.h"

namespace vertexica {

Status ProcedureRegistry::Register(const std::string& name,
                                   ProcedureBody body) {
  if (procedures_.count(name) > 0) {
    return Status::AlreadyExists("Procedure '" + name + "' already exists");
  }
  procedures_[name] = std::move(body);
  return Status::OK();
}

Status ProcedureRegistry::Call(const std::string& name, Catalog* catalog,
                               const std::vector<Value>& params) const {
  auto it = procedures_.find(name);
  if (it == procedures_.end()) {
    return Status::NotFound("Procedure '" + name + "' does not exist");
  }
  return it->second(catalog, params);
}

bool ProcedureRegistry::Has(const std::string& name) const {
  return procedures_.count(name) > 0;
}

std::vector<std::string> ProcedureRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(procedures_.size());
  for (const auto& [name, _] : procedures_) names.push_back(name);
  return names;
}

}  // namespace vertexica
