/// \file transform.h
/// \brief Vertica-style transform UDFs (table functions with PARTITION BY).
///
/// The Vertexica worker (§2.2) is "a container for the vertex-compute
/// function [that] runs as a database UDF". In Vertica these are transform
/// functions invoked per partition of their input; this module reproduces
/// that invocation contract: the engine hash-partitions the input on a key,
/// optionally sorts each partition, and calls the UDF once per partition.
/// UDF instances run in parallel across a thread pool ("as many workers as
/// the number of cores").

#ifndef VERTEXICA_UDF_TRANSFORM_H_
#define VERTEXICA_UDF_TRANSFORM_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/cache_sizing.h"
#include "common/threadpool.h"
#include "exec/operator.h"

namespace vertexica {

/// \brief User entry point: consume one sorted partition, emit output rows.
///
/// `emit` may be called any number of times; each call appends a batch with
/// the UDF's declared output schema. Implementations must be thread-safe
/// across *instances* (one instance per partition invocation) but each
/// instance is called from a single thread.
class TransformUdf {
 public:
  virtual ~TransformUdf() = default;

  /// \brief Output schema of the function.
  virtual const Schema& output_schema() const = 0;

  /// \brief Processes one partition. `partition` is sorted by the configured
  /// sort keys. Emitted tables must match `output_schema()`.
  virtual Status ProcessPartition(const Table& partition,
                                  const std::function<Status(Table)>& emit) = 0;
};

/// \brief Factory: one fresh UDF instance per partition (mirrors Vertica's
/// per-invocation UDx lifecycle).
using TransformUdfFactory = std::function<std::unique_ptr<TransformUdf>()>;

/// \brief Execution options for ApplyTransform.
///
/// Parallelism contract (normalized in one place by
/// ResolveTransformParallelism; every consumer sees the same rules):
///  - `num_partitions <= 0` resolves to kDefaultTransformPartitions, a
///    fixed constant deliberately *not* derived from the worker count:
///    partition boundaries determine per-vertex tuple order, so tying them
///    to the thread count would make results vary with parallelism.
///  - `num_workers <= 0` resolves to the ambient ExecThreads() (the
///    RunRequest::threads knob, else VERTEXICA_THREADS, else cores).
///  - `num_partitions >= num_workers` always holds after resolution: a
///    worker with no partition to process would be pure overhead, so the
///    effective worker count is clamped down to the partition count.
struct TransformOptions {
  /// Number of hash partitions ("vertex batching" granularity, §2.3).
  int num_partitions = 0;  // 0 => kDefaultTransformPartitions
  /// Parallel UDF instances; 0 => ambient ExecThreads().
  int num_workers = 0;
  /// Sort each partition by these column indices (ascending) before the UDF
  /// sees it.
  std::vector<int> sort_columns;
};

/// \brief Default "vertex batching" granularity (see TransformOptions):
/// the shared order-defining partition constant (common/cache_sizing.h),
/// which sharded vertex layouts (storage/partition.h) pin too.
inline constexpr int kDefaultTransformPartitions = kVertexBatchPartitions;

/// \brief Resolved (workers, partitions) pair after applying the
/// TransformOptions contract above. partitions >= workers >= 1.
struct TransformParallelism {
  int workers = 1;
  int partitions = 1;
};
TransformParallelism ResolveTransformParallelism(const TransformOptions& opts);

/// \brief Runs a transform UDF over `input` partitioned by `partition_column`
/// (an INT64 column index), returning the concatenated outputs.
///
/// Equivalent SQL: `SELECT udf(...) OVER (PARTITION BY key ORDER BY ...)`.
Result<Table> ApplyTransform(const Table& input, int partition_column,
                             const TransformUdfFactory& factory,
                             const TransformOptions& options = {});

}  // namespace vertexica

#endif  // VERTEXICA_UDF_TRANSFORM_H_
