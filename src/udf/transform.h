/// \file transform.h
/// \brief Vertica-style transform UDFs (table functions with PARTITION BY).
///
/// The Vertexica worker (§2.2) is "a container for the vertex-compute
/// function [that] runs as a database UDF". In Vertica these are transform
/// functions invoked per partition of their input; this module reproduces
/// that invocation contract: the engine hash-partitions the input on a key,
/// optionally sorts each partition, and calls the UDF once per partition.
/// UDF instances run in parallel across a thread pool ("as many workers as
/// the number of cores").

#ifndef VERTEXICA_UDF_TRANSFORM_H_
#define VERTEXICA_UDF_TRANSFORM_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/threadpool.h"
#include "exec/operator.h"

namespace vertexica {

/// \brief User entry point: consume one sorted partition, emit output rows.
///
/// `emit` may be called any number of times; each call appends a batch with
/// the UDF's declared output schema. Implementations must be thread-safe
/// across *instances* (one instance per partition invocation) but each
/// instance is called from a single thread.
class TransformUdf {
 public:
  virtual ~TransformUdf() = default;

  /// \brief Output schema of the function.
  virtual const Schema& output_schema() const = 0;

  /// \brief Processes one partition. `partition` is sorted by the configured
  /// sort keys. Emitted tables must match `output_schema()`.
  virtual Status ProcessPartition(const Table& partition,
                                  const std::function<Status(Table)>& emit) = 0;
};

/// \brief Factory: one fresh UDF instance per partition (mirrors Vertica's
/// per-invocation UDx lifecycle).
using TransformUdfFactory = std::function<std::unique_ptr<TransformUdf>()>;

/// \brief Execution options for ApplyTransform.
struct TransformOptions {
  /// Number of hash partitions ("vertex batching" granularity, §2.3).
  int num_partitions = 0;  // 0 => num_workers
  /// Parallel UDF instances; 0 => hardware cores.
  int num_workers = 0;
  /// Sort each partition by these column indices (ascending) before the UDF
  /// sees it.
  std::vector<int> sort_columns;
};

/// \brief Runs a transform UDF over `input` partitioned by `partition_column`
/// (an INT64 column index), returning the concatenated outputs.
///
/// Equivalent SQL: `SELECT udf(...) OVER (PARTITION BY key ORDER BY ...)`.
Result<Table> ApplyTransform(const Table& input, int partition_column,
                             const TransformUdfFactory& factory,
                             const TransformOptions& options = {});

}  // namespace vertexica

#endif  // VERTEXICA_UDF_TRANSFORM_H_
