/// \file stored_procedure.h
/// \brief Named imperative procedures executed against a catalog.
///
/// The Vertexica coordinator "is implemented as a stored procedure" (§2.2).
/// This registry gives such procedures a home: a procedure owns imperative
/// control flow (loops over supersteps) and issues relational plans against
/// the catalog's tables.

#ifndef VERTEXICA_UDF_STORED_PROCEDURE_H_
#define VERTEXICA_UDF_STORED_PROCEDURE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "storage/value.h"

namespace vertexica {

/// \brief Procedure body: receives the catalog and positional parameters.
using ProcedureBody =
    std::function<Status(Catalog* catalog, const std::vector<Value>& params)>;

/// \brief A registry of named stored procedures.
class ProcedureRegistry {
 public:
  /// \brief Registers `name`; fails if already present.
  Status Register(const std::string& name, ProcedureBody body);

  /// \brief Invokes a registered procedure.
  Status Call(const std::string& name, Catalog* catalog,
              const std::vector<Value>& params = {}) const;

  bool Has(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, ProcedureBody> procedures_;
};

}  // namespace vertexica

#endif  // VERTEXICA_UDF_STORED_PROCEDURE_H_
