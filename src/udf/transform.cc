#include "udf/transform.h"

#include <algorithm>

#include "exec/parallel.h"
#include "storage/partition.h"
#include "storage/sort.h"

namespace vertexica {

TransformParallelism ResolveTransformParallelism(const TransformOptions& opts) {
  TransformParallelism out;
  out.partitions = opts.num_partitions > 0 ? opts.num_partitions
                                           : kDefaultTransformPartitions;
  out.workers = opts.num_workers > 0 ? opts.num_workers : ExecThreads();
  // Enforce the documented partitions >= workers invariant.
  out.workers = std::max(1, std::min(out.workers, out.partitions));
  return out;
}

Result<Table> ApplyTransform(const Table& input, int partition_column,
                             const TransformUdfFactory& factory,
                             const TransformOptions& options) {
  if (partition_column < 0 || partition_column >= input.num_columns()) {
    return Status::InvalidArgument("ApplyTransform: bad partition column");
  }
  const TransformParallelism par = ResolveTransformParallelism(options);

  std::vector<Table> parts =
      HashPartition(input, partition_column, par.partitions);

  // Pre-sort partitions (the §2.3 "each partition is sorted on vertex id"
  // step) and prepare one output slot per partition so emission order is
  // deterministic regardless of scheduling.
  std::vector<SortKey> keys;
  for (int c : options.sort_columns) keys.push_back(SortKey{c, true});

  // Discover the output schema from a throwaway instance.
  const Schema out_schema = factory()->output_schema();

  std::vector<Table> outputs(parts.size(), Table(out_schema));

  // Propagate the caller's ambient thread budget into the pool tasks so a
  // UDF body that runs exec kernels keeps honouring RunRequest::threads.
  const int ambient_threads = ExecThreads();
  VX_RETURN_NOT_OK(ThreadPool::Default()->ParallelFor(
      0, parts.size(), /*grain=*/1,
      [&](size_t begin, size_t end) -> Status {
        ScopedExecThreads scoped(ambient_threads);
        for (size_t p = begin; p < end; ++p) {
          Table partition =
              keys.empty() ? std::move(parts[p]) : SortTable(parts[p], keys);
          if (partition.num_rows() == 0) continue;
          auto udf = factory();
          Table& out = outputs[p];
          VX_RETURN_NOT_OK(udf->ProcessPartition(
              partition, [&out](Table batch) { return out.Append(batch); }));
        }
        return Status::OK();
      },
      par.workers));

  Table result(out_schema);
  for (auto& out : outputs) {
    VX_RETURN_NOT_OK(result.Append(out));
  }
  return result;
}

}  // namespace vertexica
