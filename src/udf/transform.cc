#include "udf/transform.h"

#include <atomic>
#include <mutex>

#include "storage/partition.h"
#include "storage/sort.h"

namespace vertexica {

Result<Table> ApplyTransform(const Table& input, int partition_column,
                             const TransformUdfFactory& factory,
                             const TransformOptions& options) {
  if (partition_column < 0 || partition_column >= input.num_columns()) {
    return Status::InvalidArgument("ApplyTransform: bad partition column");
  }
  int workers = options.num_workers;
  if (workers <= 0) {
    workers = static_cast<int>(ThreadPool::Default()->num_threads());
  }
  int partitions = options.num_partitions;
  if (partitions <= 0) partitions = workers;

  std::vector<Table> parts = HashPartition(input, partition_column, partitions);

  // Pre-sort partitions (the §2.3 "each partition is sorted on vertex id"
  // step) and prepare one output slot per partition so emission order is
  // deterministic regardless of scheduling.
  std::vector<SortKey> keys;
  for (int c : options.sort_columns) keys.push_back(SortKey{c, true});

  // Discover the output schema from a throwaway instance.
  const Schema out_schema = factory()->output_schema();

  std::vector<Table> outputs(parts.size(), Table(out_schema));
  std::vector<Status> statuses(parts.size());

  ThreadPool pool(static_cast<size_t>(workers));
  pool.ParallelFor(parts.size(), [&](size_t p) {
    Table partition =
        keys.empty() ? std::move(parts[p]) : SortTable(parts[p], keys);
    if (partition.num_rows() == 0) return;
    auto udf = factory();
    Table& out = outputs[p];
    statuses[p] = udf->ProcessPartition(
        partition, [&out](Table batch) { return out.Append(batch); });
  });

  for (const auto& st : statuses) VX_RETURN_NOT_OK(st);

  Table result(out_schema);
  for (auto& out : outputs) {
    VX_RETURN_NOT_OK(result.Append(out));
  }
  return result;
}

}  // namespace vertexica
