#include "common/env_knob.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>

#include "common/logging.h"

namespace vertexica {

namespace {

/// Returns true the first time it is called for `name` (so each knob logs
/// at most one rejection per process, however often it is re-read).
bool FirstWarningFor(const std::string& name) {
  static std::mutex mutex;
  static std::set<std::string>* warned = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(mutex);
  return warned->insert(name).second;
}

std::string ToLower(const char* text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool IsBlank(const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    if (!std::isspace(static_cast<unsigned char>(*p))) return false;
  }
  return true;
}

}  // namespace

std::optional<long> ParseKnobInt(const char* text, long min_value,
                                 long max_value, bool* clamped) {
  if (clamped != nullptr) *clamped = false;
  if (text == nullptr || IsBlank(text)) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(text, &end, 10);
  if (end == text) return std::nullopt;  // no digits at all
  while (*end != '\0' && std::isspace(static_cast<unsigned char>(*end))) {
    ++end;
  }
  if (*end != '\0') return std::nullopt;  // trailing junk ("8abc")
  if (errno == ERANGE || parsed < min_value || parsed > max_value) {
    if (clamped != nullptr) *clamped = true;
    return std::min(std::max(parsed, min_value), max_value);
  }
  return parsed;
}

long EnvIntKnob(const char* name, long min_value, long max_value,
                long fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  bool clamped = false;
  const std::optional<long> parsed =
      ParseKnobInt(value, min_value, max_value, &clamped);
  if (!parsed.has_value()) {
    if (FirstWarningFor(name)) {
      VX_LOG(kWarn) << name << "='" << value
                    << "' is not an integer; using default " << fallback;
    }
    return fallback;
  }
  if (clamped && FirstWarningFor(name)) {
    VX_LOG(kWarn) << name << "='" << value << "' outside [" << min_value
                  << ", " << max_value << "]; clamped to " << *parsed;
  }
  return *parsed;
}

std::string EnvTokenKnob(const char* name,
                         std::initializer_list<const char*> allowed,
                         const char* fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  const std::string lower = ToLower(value);
  for (const char* token : allowed) {
    if (lower == token) return lower;
  }
  if (FirstWarningFor(name)) {
    std::string list;
    for (const char* token : allowed) {
      if (!list.empty()) list += "|";
      list += token;
    }
    VX_LOG(kWarn) << name << "='" << value << "' not one of {" << list
                  << "}; using default '" << fallback << "'";
  }
  return fallback;
}

}  // namespace vertexica
