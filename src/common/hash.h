/// \file hash.h
/// \brief Hashing utilities and a flat open-addressing int64 hash map used in
/// join/aggregation hot paths.

#ifndef VERTEXICA_COMMON_HASH_H_
#define VERTEXICA_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vertexica {

/// \brief Strong 64-bit integer mix (a Murmur3 finalizer variant).
inline uint64_t HashInt64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// \brief FNV-1a over bytes.
inline uint64_t HashBytes(const void* data, std::size_t len,
                          uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashString(const std::string& s) {
  return HashBytes(s.data(), s.size());
}

/// \brief Combines two hashes (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

/// \brief Open-addressing hash map from int64 key to a value of type V.
///
/// Linear probing over a power-of-two table. Keys may be any int64 value;
/// an explicit occupancy flag is stored so no key is reserved as a sentinel.
/// Used on join build sides and aggregation tables, where it is markedly
/// faster than `std::unordered_map`.
template <typename V>
class Int64HashMap {
 public:
  explicit Int64HashMap(std::size_t expected = 16) { Rehash(CapFor(expected)); }

  /// \brief Returns the value slot for `key`, inserting `init` if absent.
  V& GetOrInsert(int64_t key, const V& init = V{}) {
    if ((size_ + 1) * 10 >= cap_ * 7) Rehash(cap_ * 2);
    std::size_t idx = Probe(key);
    if (!slots_[idx].occupied) {
      slots_[idx].occupied = true;
      slots_[idx].key = key;
      slots_[idx].value = init;
      ++size_;
    }
    return slots_[idx].value;
  }

  /// \brief Returns a pointer to the value for `key`, or nullptr.
  V* Find(int64_t key) {
    const std::size_t idx = Probe(key);
    return slots_[idx].occupied ? &slots_[idx].value : nullptr;
  }
  const V* Find(int64_t key) const {
    const std::size_t idx = Probe(key);
    return slots_[idx].occupied ? &slots_[idx].value : nullptr;
  }

  bool Contains(int64_t key) const { return Find(key) != nullptr; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// \brief Invokes fn(key, value&) for every entry, in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (auto& slot : slots_) {
      if (slot.occupied) fn(slot.key, slot.value);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& slot : slots_) {
      if (slot.occupied) fn(slot.key, slot.value);
    }
  }

  void Clear() {
    for (auto& slot : slots_) slot.occupied = false;
    size_ = 0;
  }

 private:
  struct Slot {
    int64_t key = 0;
    V value{};
    bool occupied = false;
  };

  static std::size_t CapFor(std::size_t expected) {
    std::size_t cap = 16;
    while (cap * 7 < expected * 10) cap <<= 1;
    return cap;
  }

  std::size_t Probe(int64_t key) const {
    std::size_t idx = HashInt64(static_cast<uint64_t>(key)) & (cap_ - 1);
    while (slots_[idx].occupied && slots_[idx].key != key) {
      idx = (idx + 1) & (cap_ - 1);
    }
    return idx;
  }

  void Rehash(std::size_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    cap_ = new_cap;
    slots_.assign(cap_, Slot{});
    size_ = 0;
    for (auto& slot : old) {
      if (slot.occupied) {
        GetOrInsert(slot.key, std::move(slot.value));
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t cap_ = 0;
  std::size_t size_ = 0;
};

}  // namespace vertexica

#endif  // VERTEXICA_COMMON_HASH_H_
