/// \file crc32.h
/// \brief CRC-32 (IEEE 802.3 polynomial) over byte buffers.
///
/// The self-verification primitive of the durability layer: checkpoint
/// MANIFESTs record a CRC32 per table file (catalog/catalog_io.cc) and
/// every WAL record carries one (graphdb/wal.cc), so torn or corrupted
/// bytes are detected at read time instead of being parsed as garbage.
/// Software table-driven implementation — no hardware dependency, and the
/// checkpoint/WAL paths are not hot.

#ifndef VERTEXICA_COMMON_CRC32_H_
#define VERTEXICA_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace vertexica {

/// \brief CRC-32 of `size` bytes at `data`, continuing from `seed` (pass
/// the previous call's return value to checksum a buffer in pieces; the
/// default seed starts a fresh checksum).
uint32_t Crc32(const void* data, std::size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view bytes, uint32_t seed = 0) {
  return Crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace vertexica

#endif  // VERTEXICA_COMMON_CRC32_H_
