/// \file fault_injection.h
/// \brief Deterministic fault injection: named sites, armed on demand.
///
/// Failure paths that are never exercised do not work. This registry lets
/// the durability layer place named fault points at the moments that
/// matter — checkpoint phase boundaries, catalog IO, admission, the shard
/// exchange — and lets a test (or the `VERTEXICA_FAULTS` environment knob)
/// arm any of them to fire on a *specific* hit, deterministically, so
/// every failure scenario is reproducible bit-for-bit.
///
/// A site is one line:
///
///     VX_FAULT_POINT("checkpoint.after_manifest");
///
/// Disarmed (the default, and the only state production ever sees) the
/// macro is a single branch on a relaxed atomic flag — no registry lookup,
/// no allocation, no measurable overhead. Armed, the Nth hit of the named
/// site either returns an injected `Status::Aborted` (which propagates
/// through the normal error path, modeling a transient failure) or
/// terminates the process immediately via `std::_Exit` (no destructors, no
/// flushing — indistinguishable from SIGKILL to everything on disk).
///
/// Arming syntax, shared by `VERTEXICA_FAULTS` and `ArmFaultsFromSpec`:
///
///     site=N[:action][,site=N[:action]...]
///
/// where `N` is the 1-based hit to fire on (`%N` instead fires on *every*
/// Nth hit — a deterministic failure rate for retry/shed benchmarks) and
/// `action` is `error` (default) or `crash`. Example:
///
///     VERTEXICA_FAULTS="checkpoint.after_manifest=1:crash,server.run=%10"
///
/// Fault-point naming: `<subsystem>.<moment>`, lower-case, dot-separated
/// (`checkpoint.after_rename`, `admission.admit`, `coordinator.superstep`).
/// The determinism lint (rule R5) requires every site named in src/ to be
/// referenced by at least one test or tooling script, so no failure path
/// ships unexercised.

#ifndef VERTEXICA_COMMON_FAULT_INJECTION_H_
#define VERTEXICA_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace vertexica {

/// \brief What an armed fault point does when it fires.
enum class FaultAction {
  kError,  ///< return Status::Aborted("injected fault at '<site>'")
  kCrash,  ///< std::_Exit(kFaultCrashExitCode): a simulated SIGKILL
};

/// Process exit code of a `crash` action; death tests and the crash-
/// recovery smoke assert on it to distinguish an injected crash from a
/// genuine one.
inline constexpr int kFaultCrashExitCode = 113;

namespace fault_internal {
extern std::atomic<bool> g_armed;
}  // namespace fault_internal

/// \brief True when any fault point is armed — the macro's fast path.
inline bool FaultInjectionArmed() {
  return fault_internal::g_armed.load(std::memory_order_relaxed);
}

/// \brief Slow path of VX_FAULT_POINT: counts the hit and fires the site's
/// armed action if this is the configured hit. OK when the site is not
/// armed. Thread-safe; hit counts are only maintained while armed.
Status FaultPointHit(const char* site);

/// \brief Arms `site` to fire `action` on its `nth` hit (1-based).
/// Re-arming a site resets its hit count.
void ArmFault(const std::string& site, int64_t nth,
              FaultAction action = FaultAction::kError);

/// \brief Arms `site` to fire `action` on every `period`-th hit — a
/// deterministic 1/period failure rate.
void ArmFaultEvery(const std::string& site, int64_t period,
                   FaultAction action = FaultAction::kError);

/// \brief Parses and arms a `site=N[:action],...` spec (the
/// `VERTEXICA_FAULTS` syntax above). Rejects malformed specs without
/// arming anything.
Status ArmFaultsFromSpec(const std::string& spec);

/// \brief Disarms every site and clears all hit counts.
void DisarmAllFaults();

/// \brief Hits recorded for `site` since it was last armed (0 when never
/// armed). For tests asserting a site is actually reached.
int64_t FaultHits(const std::string& site);

/// \brief Currently armed site names, sorted.
std::vector<std::string> ArmedFaultSites();

}  // namespace vertexica

/// \brief Names this statement as an injectable fault site. Expands to a
/// branch on a disabled flag unless faults are armed; when the site fires
/// in `error` mode the injected Status propagates out of the enclosing
/// function (which must return Status / Result).
#define VX_FAULT_POINT(site)                                  \
  do {                                                        \
    if (::vertexica::FaultInjectionArmed()) {                 \
      VX_RETURN_NOT_OK(::vertexica::FaultPointHit(site));     \
    }                                                         \
  } while (0)

#endif  // VERTEXICA_COMMON_FAULT_INJECTION_H_
