/// \file random.h
/// \brief Deterministic random number generation and distributions.
///
/// All randomness in the library (graph generation, metadata synthesis,
/// collaborative-filtering initialization) flows through `Rng` so that tests
/// and benchmarks are reproducible from a single seed.

#ifndef VERTEXICA_COMMON_RANDOM_H_
#define VERTEXICA_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace vertexica {

/// \brief A small, fast, seedable PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// \brief Next raw 64-bit value.
  uint64_t Next();

  /// \brief Uniform integer in [0, bound). Requires bound > 0.
  uint64_t Uniform(uint64_t bound);

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Standard normal via Box–Muller.
  double NextGaussian();

  /// \brief True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// \brief Random ASCII lowercase string of the given length.
  std::string NextString(std::size_t length);

 private:
  uint64_t s_[4];
};

/// \brief Zipf-distributed sampler over {1, ..., n} with exponent `s`.
///
/// Uses the precomputed-CDF method with binary search; O(n) setup and
/// O(log n) per sample. Deterministic given the Rng passed at sample time.
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double s);

  /// \brief Draws a value in [1, n].
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double exponent() const { return s_; }

 private:
  uint64_t n_;
  double s_;
  std::vector<double> cdf_;
};

}  // namespace vertexica

#endif  // VERTEXICA_COMMON_RANDOM_H_
