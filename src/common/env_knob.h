/// \file env_knob.h
/// \brief One validated parsing point for the VERTEXICA_* environment
/// knobs (threads, shards, encoding, merge-join).
///
/// Before this header each knob parsed its own environment variable with
/// its own tolerance for garbage: VERTEXICA_THREADS was clamped in the
/// thread pool but unclamped in ExecThreads, VERTEXICA_SHARDS silently
/// accepted "8abc" as 8, and a typoed VERTEXICA_ENCODING fell back to the
/// default without a word. These helpers give every knob the same
/// contract: strict integer / token parsing, explicit ranges, and one
/// warning per variable per process when a value is rejected or clamped —
/// a misconfigured server logs what it ignored instead of silently running
/// with defaults.

#ifndef VERTEXICA_COMMON_ENV_KNOB_H_
#define VERTEXICA_COMMON_ENV_KNOB_H_

#include <initializer_list>
#include <optional>
#include <string>

namespace vertexica {

/// \brief Strictly parses `text` as a decimal integer (optional sign,
/// surrounding whitespace allowed, no trailing junk). Returns nullopt for
/// garbage; out-of-range values are clamped to [min_value, max_value] with
/// `clamped` (when non-null) set so callers can report it.
std::optional<long> ParseKnobInt(const char* text, long min_value,
                                 long max_value, bool* clamped = nullptr);

/// \brief Reads environment variable `name` as an integer knob.
///
/// Unset (or empty) returns `fallback` silently. A valid value is clamped
/// into [min_value, max_value]; clamping and outright garbage each log one
/// kWarn line per variable per process (garbage additionally falls back to
/// `fallback`).
long EnvIntKnob(const char* name, long min_value, long max_value,
                long fallback);

/// \brief Reads environment variable `name` as a token knob.
///
/// Unset (or empty) returns `fallback` silently. A value matching one of
/// `allowed` case-insensitively is returned lower-cased; anything else
/// logs one kWarn line per variable per process and returns `fallback`.
std::string EnvTokenKnob(const char* name,
                         std::initializer_list<const char*> allowed,
                         const char* fallback);

}  // namespace vertexica

#endif  // VERTEXICA_COMMON_ENV_KNOB_H_
