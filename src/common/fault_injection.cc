#include "common/fault_injection.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace vertexica {

namespace fault_internal {
std::atomic<bool> g_armed{false};
}  // namespace fault_internal

namespace {

struct FaultSite {
  int64_t nth = 0;      // hit to fire on (1-based); period when `every`
  bool every = false;   // fire on every nth-th hit instead of once
  FaultAction action = FaultAction::kError;
  int64_t hits = 0;     // hits recorded since arming
};

struct Registry {
  std::mutex mutex;
  // Ordered map: ArmedFaultSites() reports names in a stable order.
  std::map<std::string, FaultSite> sites;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

Status ParseOneFault(const std::string& item, std::string* site,
                     FaultSite* parsed) {
  const auto eq = item.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("fault spec item '" + item +
                                   "': expected site=N[:action]");
  }
  *site = Trim(item.substr(0, eq));
  std::string rest = Trim(item.substr(eq + 1));
  std::string action_token;
  const auto colon = rest.find(':');
  if (colon != std::string::npos) {
    action_token = Trim(rest.substr(colon + 1));
    rest = Trim(rest.substr(0, colon));
  }
  if (!rest.empty() && rest[0] == '%') {
    parsed->every = true;
    rest = rest.substr(1);
  }
  if (rest.empty() ||
      rest.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("fault spec item '" + item +
                                   "': hit count must be a positive integer");
  }
  parsed->nth = std::strtoll(rest.c_str(), nullptr, 10);
  if (parsed->nth <= 0) {
    return Status::InvalidArgument("fault spec item '" + item +
                                   "': hit count must be >= 1");
  }
  if (action_token.empty() || action_token == "error") {
    parsed->action = FaultAction::kError;
  } else if (action_token == "crash") {
    parsed->action = FaultAction::kCrash;
  } else {
    return Status::InvalidArgument("fault spec item '" + item +
                                   "': unknown action '" + action_token +
                                   "' (expected error|crash)");
  }
  return Status::OK();
}

// Arms faults from VERTEXICA_FAULTS before main() runs, so a spec set in
// the environment covers the whole process lifetime (including static
// graph loads). A malformed spec warns and arms nothing — consistent with
// the env-knob contract of never silently running a half-applied config.
const bool g_env_armed = []() {
  const char* spec = std::getenv("VERTEXICA_FAULTS");
  if (spec == nullptr || *spec == '\0') return false;
  const Status st = ArmFaultsFromSpec(spec);
  if (!st.ok()) {
    VX_LOG(kWarn) << "VERTEXICA_FAULTS ignored: " << st.ToString();
    return false;
  }
  return true;
}();

}  // namespace

Status FaultPointHit(const char* site) {
  FaultAction action = FaultAction::kError;
  bool fire = false;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    auto it = registry.sites.find(site);
    if (it == registry.sites.end()) return Status::OK();
    FaultSite& fault = it->second;
    ++fault.hits;
    fire = fault.every ? (fault.hits % fault.nth == 0)
                       : (fault.hits == fault.nth);
    action = fault.action;
  }
  if (!fire) return Status::OK();
  if (action == FaultAction::kCrash) {
    // No destructors, no stream flushing: everything on disk looks exactly
    // like the process was SIGKILLed at this statement.
    std::_Exit(kFaultCrashExitCode);
  }
  return Status::Aborted(std::string("injected fault at '") + site + "'");
}

void ArmFault(const std::string& site, int64_t nth, FaultAction action) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.sites[site] = FaultSite{nth, /*every=*/false, action, 0};
  fault_internal::g_armed.store(true, std::memory_order_relaxed);
}

void ArmFaultEvery(const std::string& site, int64_t period,
                   FaultAction action) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.sites[site] = FaultSite{period, /*every=*/true, action, 0};
  fault_internal::g_armed.store(true, std::memory_order_relaxed);
}

Status ArmFaultsFromSpec(const std::string& spec) {
  // Parse everything before arming anything: a malformed item must not
  // leave a half-armed configuration behind.
  std::vector<std::pair<std::string, FaultSite>> parsed;
  for (const std::string& item : Split(spec, ',')) {
    if (Trim(item).empty()) continue;
    std::string site;
    FaultSite fault;
    VX_RETURN_NOT_OK(ParseOneFault(Trim(item), &site, &fault));
    parsed.emplace_back(std::move(site), fault);
  }
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (auto& [site, fault] : parsed) {
    registry.sites[site] = fault;
  }
  if (!registry.sites.empty()) {
    fault_internal::g_armed.store(true, std::memory_order_relaxed);
  }
  return Status::OK();
}

void DisarmAllFaults() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.sites.clear();
  fault_internal::g_armed.store(false, std::memory_order_relaxed);
}

int64_t FaultHits(const std::string& site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.sites.find(site);
  return it == registry.sites.end() ? 0 : it->second.hits;
}

std::vector<std::string> ArmedFaultSites() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<std::string> names;
  names.reserve(registry.sites.size());
  for (const auto& [name, _] : registry.sites) names.push_back(name);
  return names;
}

}  // namespace vertexica
