/// \file status.h
/// \brief Error-handling primitives used across the whole library.
///
/// Vertexica follows the Arrow/RocksDB convention: fallible functions return
/// a `Status` (or `Result<T>`, see result.h) instead of throwing exceptions.
/// A default-constructed `Status` means success; otherwise it carries a code
/// and a human-readable message.

#ifndef VERTEXICA_COMMON_STATUS_H_
#define VERTEXICA_COMMON_STATUS_H_

#include <memory>
#include <sstream>
#include <string>
#include <utility>

namespace vertexica {

/// \brief Broad classes of failure reported by the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kTypeError = 5,
  kIoError = 6,
  kNotImplemented = 7,
  kInternal = 8,
  kAborted = 9,
  kDeadlineExceeded = 10,
  kCancelled = 11,
};

/// \brief Returns a short human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Success-or-error outcome of an operation.
///
/// The success path is allocation-free: an OK status stores a null pointer.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  /// \brief Factory for the OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  /// \brief True iff this status represents success.
  bool ok() const { return state_ == nullptr; }

  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  /// \brief The error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->msg;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// \brief "OK" or "<Code>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = StatusCodeToString(state_->code);
    out += ": ";
    out += state_->msg;
    return out;
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<State> state_;  // null == OK
};

inline const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

}  // namespace vertexica

#define VX_CONCAT_IMPL(a, b) a##b
#define VX_CONCAT(a, b) VX_CONCAT_IMPL(a, b)

/// Propagates a non-OK Status to the caller. The temporary's name is
/// uniquified (__COUNTER__) so nested expansions — a lambda containing
/// VX_RETURN_NOT_OK passed as the `expr` of an outer one — never shadow.
#define VX_RETURN_NOT_OK_IMPL(st, expr)  \
  do {                                   \
    ::vertexica::Status st = (expr);     \
    if (!st.ok()) return st;             \
  } while (0)
#define VX_RETURN_NOT_OK(expr) \
  VX_RETURN_NOT_OK_IMPL(VX_CONCAT(_vx_status_, __COUNTER__), expr)

#endif  // VERTEXICA_COMMON_STATUS_H_
