#include "common/cancel.h"

#include <utility>

namespace vertexica {

namespace {

thread_local CancelToken t_ambient_token;

}  // namespace

CancelToken CancelToken::WithDeadlineAfter(double seconds) const {
  auto state = std::make_shared<cancel_internal::CancelState>();
  state->has_deadline = true;
  state->deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(seconds));
  state->parent = state_;
  return CancelToken(std::move(state));
}

Status CancelToken::Check() const {
  bool expired = false;
  for (const cancel_internal::CancelState* s = state_.get(); s != nullptr;
       s = s->parent.get()) {
    if (s->cancelled.load(std::memory_order_acquire)) {
      return Status::Cancelled("run cancelled");
    }
    if (s->has_deadline && std::chrono::steady_clock::now() >= s->deadline) {
      expired = true;  // keep walking: an ancestor's Cancel() wins
    }
  }
  if (expired) return Status::DeadlineExceeded("run deadline exceeded");
  return Status::OK();
}

bool CancelToken::deadline(
    std::chrono::steady_clock::time_point* out) const {
  bool found = false;
  for (const cancel_internal::CancelState* s = state_.get(); s != nullptr;
       s = s->parent.get()) {
    if (s->has_deadline && (!found || s->deadline < *out)) {
      *out = s->deadline;
      found = true;
    }
  }
  return found;
}

CancelToken AmbientCancelToken() { return t_ambient_token; }

ScopedCancelToken::ScopedCancelToken(CancelToken token)
    : previous_(t_ambient_token) {
  t_ambient_token = std::move(token);
}

ScopedCancelToken::~ScopedCancelToken() { t_ambient_token = previous_; }

}  // namespace vertexica
