/// \file timer.h
/// \brief Wall-clock timing helpers used by benches and the time monitor.

#ifndef VERTEXICA_COMMON_TIMER_H_
#define VERTEXICA_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace vertexica {

/// \brief Measures elapsed wall-clock time from construction (or Restart).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace vertexica

#endif  // VERTEXICA_COMMON_TIMER_H_
