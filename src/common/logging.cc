#include "common/logging.h"

#include <atomic>
#include <mutex>

namespace vertexica {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: ("
          << condition << ") ";
}

FatalLogMessage::~FatalLogMessage() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace internal
}  // namespace vertexica
