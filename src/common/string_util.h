/// \file string_util.h
/// \brief Small string helpers shared across modules.

#ifndef VERTEXICA_COMMON_STRING_UTIL_H_
#define VERTEXICA_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace vertexica {

/// \brief Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// \brief Trims ASCII whitespace from both ends.
std::string Trim(std::string_view s);

/// \brief True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace vertexica

#endif  // VERTEXICA_COMMON_STRING_UTIL_H_
