/// \file logging.h
/// \brief Minimal leveled logging and check macros.

#ifndef VERTEXICA_COMMON_LOGGING_H_
#define VERTEXICA_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace vertexica {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// \brief Process-wide minimum level below which log lines are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// \brief Accumulates one log line and flushes it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// \brief Like LogMessage but aborts the process on destruction.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace vertexica

#define VX_LOG(level)                                            \
  ::vertexica::internal::LogMessage(::vertexica::LogLevel::level, \
                                    __FILE__, __LINE__)

/// Fatal invariant check: always evaluated, aborts with a message on failure.
#define VX_CHECK(cond)                                                  \
  if (!(cond))                                                          \
  ::vertexica::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

// Identical to the definitions in common/status.h (token-for-token, so the
// repeated definition is legal); logging.h must stay includable on its own.
#define VX_CONCAT_IMPL(a, b) a##b
#define VX_CONCAT(a, b) VX_CONCAT_IMPL(a, b)

/// Fatal Status check; the temporary is uniquified so nested expansions
/// (an `expr` lambda that itself uses VX_CHECK_OK) never shadow.
#define VX_CHECK_OK_IMPL(st, expr)       \
  do {                                   \
    ::vertexica::Status st = (expr);     \
    VX_CHECK(st.ok()) << st.ToString();  \
  } while (0)
#define VX_CHECK_OK(expr) \
  VX_CHECK_OK_IMPL(VX_CONCAT(_vx_check_status_, __COUNTER__), expr)

/// \name The debug-audit check tier (VX_DCHECK / VX_DCHECK_OK)
///
/// Deep structural audits — Table::CheckInvariants, the coordinator's
/// phase-boundary validations, per-element index checks on hot paths — are
/// far too expensive for Release binaries, so they get their own tier:
/// compiled in only when VERTEXICA_DCHECK is on (the CMake option of the
/// same name, default ON in Debug builds and OFF otherwise; see
/// docs/DEVELOPING.md for the verification matrix).
///
/// When compiled out, the condition expression is *not evaluated*: it is
/// moved into an unevaluated `sizeof` operand, so it is still parsed and
/// type-checked (the audit cannot rot and its operands never trigger
/// -Wunused) but generates no code at all. Consequently a VX_DCHECK
/// condition must never carry side effects the program relies on.
/// @{

#if !defined(VERTEXICA_DCHECK_ENABLED)
#if defined(VERTEXICA_DCHECK)
#define VERTEXICA_DCHECK_ENABLED 1
#elif !defined(NDEBUG)
// Non-CMake or assert-enabled builds keep the historical Debug behavior.
#define VERTEXICA_DCHECK_ENABLED 1
#else
#define VERTEXICA_DCHECK_ENABLED 0
#endif
#endif

#if VERTEXICA_DCHECK_ENABLED
#define VX_DCHECK(cond) VX_CHECK(cond)
#define VX_DCHECK_OK(expr) VX_CHECK_OK(expr)
#else
// sizeof(!(cond)) is never 0, so the branch is statically dead; `cond`
// sits in an unevaluated operand (type-checked, never executed) and any
// streamed message is dead code behind it.
#define VX_DCHECK(cond)                 \
  if (sizeof(!(cond)) == 0)             \
  ::vertexica::internal::FatalLogMessage(__FILE__, __LINE__, #cond)
#define VX_DCHECK_OK(expr)    \
  do {                        \
    (void)sizeof(((expr)));   \
  } while (0)
#endif
/// @}

#endif  // VERTEXICA_COMMON_LOGGING_H_
