/// \file logging.h
/// \brief Minimal leveled logging and check macros.

#ifndef VERTEXICA_COMMON_LOGGING_H_
#define VERTEXICA_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace vertexica {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// \brief Process-wide minimum level below which log lines are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// \brief Accumulates one log line and flushes it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// \brief Like LogMessage but aborts the process on destruction.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace vertexica

#define VX_LOG(level)                                            \
  ::vertexica::internal::LogMessage(::vertexica::LogLevel::level, \
                                    __FILE__, __LINE__)

/// Fatal invariant check: always evaluated, aborts with a message on failure.
#define VX_CHECK(cond)                                                  \
  if (!(cond))                                                          \
  ::vertexica::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define VX_CHECK_OK(expr)                                          \
  do {                                                             \
    ::vertexica::Status _vx_st = (expr);                           \
    VX_CHECK(_vx_st.ok()) << _vx_st.ToString();                    \
  } while (0)

#ifndef NDEBUG
#define VX_DCHECK(cond) VX_CHECK(cond)
#else
#define VX_DCHECK(cond) \
  if (false) ::vertexica::internal::FatalLogMessage(__FILE__, __LINE__, #cond)
#endif

#endif  // VERTEXICA_COMMON_LOGGING_H_
