#include "common/threadpool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "common/cancel.h"
#include "common/env_knob.h"
#include "common/logging.h"

namespace vertexica {

std::size_t EnvThreadCount() {
  // Range-validated (and garbage-rejected, with one warning) in the shared
  // env-knob parser: a fat-fingered VERTEXICA_THREADS must not ask the OS
  // for thousands of threads at startup, and ExecThreads() must resolve
  // the same clamped value the pool sizing uses.
  return static_cast<std::size_t>(
      EnvIntKnob("VERTEXICA_THREADS", 1, 256, 0));
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = std::min(n, num_threads() + 1);
  const std::size_t grain = (n + workers - 1) / workers;
  // Preserve the historical contract: an exception thrown by `fn` (e.g. a
  // user-supplied vertex program) propagates to the caller instead of being
  // flattened into a Status. This entry point has no error channel, so it
  // is also not cancellable — a null token is installed for the loop's
  // duration lest an ambient cancellation turn into the VX_CHECK below.
  ScopedCancelToken no_cancel{CancelToken()};
  std::mutex eptr_mutex;
  std::exception_ptr first_exception;
  const Status status =
      ParallelFor(0, n, grain, [&](std::size_t begin, std::size_t end) {
        try {
          for (std::size_t i = begin; i < end; ++i) fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(eptr_mutex);
          if (!first_exception) first_exception = std::current_exception();
          return Status::Aborted("ParallelFor task threw");
        }
        return Status::OK();
      });
  if (first_exception) std::rethrow_exception(first_exception);
  VX_CHECK(status.ok()) << status.ToString();
}

namespace {

/// Shared state of one chunked ParallelFor call. Helpers hold it via
/// shared_ptr so stragglers scheduled after completion exit harmlessly.
struct ParallelForState {
  ThreadPool::ChunkFn fn;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t total_chunks = 0;
  // Captured from the submitting thread's ambient state: cooperative
  // cancellation is checked at every grain boundary, so a cancelled or
  // past-deadline run stops scheduling work instead of finishing the loop.
  CancelToken cancel;

  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::size_t> done_chunks{0};
  std::atomic<bool> failed{false};

  std::mutex mutex;
  std::condition_variable cv;
  Status first_error;

  /// Claims and runs chunks until none remain (work-sharing loop run by the
  /// caller and every helper task).
  void Drain() {
    for (;;) {
      const std::size_t c = next_chunk.fetch_add(1);
      if (c >= total_chunks) return;
      Status status;
      if (!failed.load(std::memory_order_acquire)) {
        status = cancel.Check();
      }
      if (status.ok() && !failed.load(std::memory_order_acquire)) {
        const std::size_t b = begin + c * grain;
        const std::size_t e = std::min(end, b + grain);
        try {
          status = fn(b, e);
        } catch (const std::exception& ex) {
          status = Status::Internal(std::string("ParallelFor task threw: ") +
                                    ex.what());
        } catch (...) {
          status = Status::Internal("ParallelFor task threw a non-exception");
        }
      }
      if (!status.ok() && !failed.exchange(true)) {
        std::lock_guard<std::mutex> lock(mutex);
        first_error = status;
      }
      if (done_chunks.fetch_add(1) + 1 == total_chunks) {
        std::lock_guard<std::mutex> lock(mutex);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

Status ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                               std::size_t grain, const ChunkFn& fn,
                               int max_threads) {
  if (begin >= end) return Status::OK();
  CancelToken cancel = AmbientCancelToken();
  VX_RETURN_NOT_OK(cancel.Check());
  grain = std::max<std::size_t>(1, grain);
  const std::size_t total = (end - begin + grain - 1) / grain;
  if (total == 1) {
    try {
      return fn(begin, end);
    } catch (const std::exception& ex) {
      return Status::Internal(std::string("ParallelFor task threw: ") +
                              ex.what());
    } catch (...) {
      return Status::Internal("ParallelFor task threw a non-exception");
    }
  }

  auto state = std::make_shared<ParallelForState>();
  state->fn = fn;
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->total_chunks = total;
  state->cancel = std::move(cancel);

  std::size_t helpers = std::min(total - 1, num_threads());
  if (max_threads > 0) {
    helpers = std::min(helpers, static_cast<std::size_t>(max_threads) - 1);
  }
  for (std::size_t h = 0; h < helpers; ++h) {
    Submit([state]() { state->Drain(); });
  }
  state->Drain();

  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&state]() {
    return state->done_chunks.load() >= state->total_chunks;
  });
  return state->first_error;
}

ThreadPool* ThreadPool::Default() {
  // EnvThreadCount() is already range-clamped by the shared env-knob
  // parser (common/env_knob.h).
  static ThreadPool pool(std::max(
      EnvThreadCount(),
      std::max<std::size_t>(1, std::thread::hardware_concurrency())));
  return &pool;
}

void Barrier::ArriveAndWait() {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::size_t gen = generation_;
  if (--count_ == 0) {
    ++generation_;
    count_ = threshold_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [this, gen]() { return generation_ != gen; });
  }
}

}  // namespace vertexica
