#include "common/threadpool.h"

#include <algorithm>
#include <atomic>

namespace vertexica {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = std::min(n, num_threads());
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunk = (n + workers - 1) / workers;
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    futures.push_back(Submit([begin, end, &fn]() {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

ThreadPool* ThreadPool::Default() {
  static ThreadPool pool(0);
  return &pool;
}

void Barrier::ArriveAndWait() {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::size_t gen = generation_;
  if (--count_ == 0) {
    ++generation_;
    count_ = threshold_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [this, gen]() { return generation_ != gen; });
  }
}

}  // namespace vertexica
