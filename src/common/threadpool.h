/// \file threadpool.h
/// \brief Fixed-size worker pool used for parallel workers and operators.

#ifndef VERTEXICA_COMMON_THREADPOOL_H_
#define VERTEXICA_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace vertexica {

/// \brief Threads requested via the VERTEXICA_THREADS environment variable;
/// 0 when unset or invalid. The single parsing point shared by the default
/// pool sizing and the executor's ExecThreads() resolution.
std::size_t EnvThreadCount();

/// \brief A simple fixed-size thread pool.
///
/// Tasks are arbitrary `void()` callables; `Submit` also supports callables
/// with a return value via `std::future`. The pool joins all workers on
/// destruction after draining the queue.
class ThreadPool {
 public:
  /// \param num_threads number of workers; 0 means hardware concurrency.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return threads_.size(); }

  /// \brief Enqueues a task and returns a future for its result.
  template <typename F>
  auto Submit(F&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// \brief Runs `fn(i)` for every i in [0, n) across the pool and waits.
  ///
  /// Work is chunked so that each worker receives a contiguous index range.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// \brief Per-chunk callback of the morsel ParallelFor: a contiguous
  /// index range [begin, end).
  using ChunkFn = std::function<Status(std::size_t begin, std::size_t end)>;

  /// \brief Runs `fn` over [begin, end) split into `grain`-sized chunks
  /// (morsels) and waits for all of them.
  ///
  /// Chunk boundaries depend only on `grain`, never on the thread count, so
  /// chunk-deterministic callers produce identical results at any
  /// parallelism. The calling thread participates in draining chunks, which
  /// makes nested ParallelFor calls (a pool task that itself fans out on the
  /// same pool) deadlock-free. Error handling: the first non-OK Status (or
  /// thrown exception, converted to Status::Internal) wins and the remaining
  /// unstarted chunks are skipped. `max_threads` caps the helper parallelism
  /// for this call (0 = use every pool worker).
  Status ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                     const ChunkFn& fn, int max_threads = 0);

  /// \brief Default process-wide pool sized to
  /// max(hardware concurrency, VERTEXICA_THREADS).
  static ThreadPool* Default();

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

/// \brief Reusable synchronization barrier for BSP-style supersteps.
class Barrier {
 public:
  explicit Barrier(std::size_t count) : threshold_(count), count_(count) {}

  /// \brief Blocks until `count` threads have arrived; then all proceed.
  void ArriveAndWait();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t threshold_;
  std::size_t count_;
  std::size_t generation_ = 0;
};

}  // namespace vertexica

#endif  // VERTEXICA_COMMON_THREADPOOL_H_
