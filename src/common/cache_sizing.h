/// \file cache_sizing.h
/// \brief The two partition-count policies of the engine, in one place.
///
/// Partition counts used to be a scattering of literal 64s with two very
/// different meanings hiding behind the same number:
///
///  1. **Order-defining partitioning** — vertex batching (§2.3) and the
///     shard layer built on it. Partition boundaries determine per-vertex
///     tuple order, so the count is a fixed architectural constant: deriving
///     it from the row count, thread count, or cache size would change
///     results. `kVertexBatchPartitions` is that constant; consumers
///     (udf/transform.h, storage/partition.h ShardingSpec) alias it so the
///     static_assert tying shard placement to vertex batching keeps holding.
///
///  2. **Cache-sized partitioning** — radix partitioning of hash join and
///     aggregate builds, where the count is a pure performance choice:
///     per-hash chains are assembled in a fixed chunk-then-row order, so
///     results are provably identical at any partition count, and the right
///     count is "each partition's working set fits in L2".
///     `CacheSizedPartitionCount` is that policy.
///
/// Keeping both here makes the distinction auditable: a new partitioned
/// kernel must decide which contract it is under, not inherit a magic 64.

#ifndef VERTEXICA_COMMON_CACHE_SIZING_H_
#define VERTEXICA_COMMON_CACHE_SIZING_H_

#include <algorithm>
#include <cstdint>

namespace vertexica {

/// \brief The fixed vertex-batching partition count (§2.3). Order-defining:
/// changing it changes per-vertex tuple order and therefore results, so it
/// is a constant of the dataflow, never derived from data or hardware.
inline constexpr int kVertexBatchPartitions = 64;

/// \brief Working-set target for one cache-sized partition, chosen to sit
/// comfortably inside a typical per-core L2 (256 KiB–1 MiB): the build
/// loop's partition-local state (hash-chain nodes, bucket arrays) stays
/// cache-resident while it is being assembled.
inline constexpr int64_t kCachePartitionBytes = 256 * 1024;

/// \brief Cache-sized partition count for a build of `rows` rows at
/// `bytes_per_row` of partition-local state, clamped to
/// [1, max_partitions]. Depends only on the row count — never on threads —
/// and is only valid for kernels whose output is provably identical at any
/// partition count (radix hash builds; see exec/parallel.cc).
inline int CacheSizedPartitionCount(int64_t rows, int64_t bytes_per_row,
                                    int max_partitions) {
  const int64_t total = rows * std::max<int64_t>(bytes_per_row, 1);
  return static_cast<int>(
      std::clamp<int64_t>(total / kCachePartitionBytes, 1, max_partitions));
}

}  // namespace vertexica

#endif  // VERTEXICA_COMMON_CACHE_SIZING_H_
