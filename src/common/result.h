/// \file result.h
/// \brief `Result<T>`: a value-or-Status union (Arrow idiom).

#ifndef VERTEXICA_COMMON_RESULT_H_
#define VERTEXICA_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace vertexica {

/// \brief Holds either a successfully computed `T` or the `Status`
/// describing why it could not be computed.
///
/// Construction from `T` yields a success result; construction from a
/// non-OK `Status` yields a failure. Constructing from an OK status is a
/// programming error and is converted to an Internal error.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// \brief The failure status; `Status::OK()` when this result holds a value.
  const Status& status() const { return status_; }

  /// \brief Access the contained value. Requires `ok()`.
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// \brief Moves the value out, leaving the result in a moved-from state.
  T MoveValueUnsafe() { return std::move(*value_); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace vertexica

/// Evaluates an expression returning Result<T>; on success assigns the value
/// to `lhs`, on failure returns the status to the caller.
#define VX_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).MoveValueUnsafe();

#define VX_ASSIGN_OR_RETURN(lhs, rexpr) \
  VX_ASSIGN_OR_RETURN_IMPL(VX_CONCAT(_vx_result_, __COUNTER__), lhs, rexpr)

#endif  // VERTEXICA_COMMON_RESULT_H_
