/// \file cancel.h
/// \brief Cooperative cancellation and deadlines for long-running work.
///
/// Nothing in the engine blocks forever by design, but a superstep loop or
/// a morsel-parallel scan can run for minutes — and a serving layer needs
/// both a client-side stop button (`Session::Cancel`) and per-request
/// deadlines (`RunRequest::deadline_ms`). `CancelToken` is the carrier:
/// a cheap, copyable handle on shared cancellation state that work loops
/// poll at their natural boundaries (`ParallelFor` grain boundaries,
/// coordinator superstep/phase boundaries, admission queue waits).
///
/// Tokens chain: `WithDeadlineAfter` derives a child that additionally
/// enforces a deadline while still observing every ancestor's
/// cancellation, so a session-wide Cancel() reaches a run whose token was
/// narrowed with a per-request deadline.
///
/// Like the execution knobs, the active token travels ambiently
/// (thread-local, RAII-scoped via `ScopedCancelToken`) and is captured
/// into `ExecKnobs` so pool tasks reinstall it — a checkpoint of the knob
/// plumbing described in exec/exec_knobs.h. Checks are wait-free loads;
/// a default (null) token never cancels and never expires.

#ifndef VERTEXICA_COMMON_CANCEL_H_
#define VERTEXICA_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>

#include "common/status.h"

namespace vertexica {

namespace cancel_internal {

struct CancelState {
  std::atomic<bool> cancelled{false};
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  std::shared_ptr<CancelState> parent;
};

}  // namespace cancel_internal

/// \brief A copyable handle on shared cancellation/deadline state.
class CancelToken {
 public:
  /// A null token: never cancelled, no deadline. The default everywhere a
  /// caller does not opt into cancellation.
  CancelToken() = default;

  /// \brief A fresh, independent cancellable token.
  static CancelToken Make() {
    return CancelToken(std::make_shared<cancel_internal::CancelState>());
  }

  /// \brief Derives a child enforcing `seconds` from now in addition to
  /// this token's (and its ancestors') cancellation and deadlines. Works
  /// on a null token too — the child then only carries the deadline.
  CancelToken WithDeadlineAfter(double seconds) const;

  /// \brief Requests cancellation; every copy and child observes it.
  /// No-op on a null token.
  void Cancel() const {
    if (state_ != nullptr) {
      state_->cancelled.store(true, std::memory_order_release);
    }
  }

  /// \brief True when cancelled or past any deadline in the chain.
  bool ShouldStop() const { return !Check().ok(); }

  /// \brief OK, or the Status work loops propagate: `Cancelled` when
  /// cancellation was requested, `DeadlineExceeded` when a deadline in the
  /// chain has passed. Cancellation wins when both hold.
  Status Check() const;

  /// \brief The tightest deadline in the chain, if any (for queue waits
  /// that need a wait_until time point).
  bool deadline(std::chrono::steady_clock::time_point* out) const;

  /// \brief True for tokens that can never fire (the default state).
  bool null() const { return state_ == nullptr; }

  /// Identity comparison: two tokens are equal when they share state.
  bool operator==(const CancelToken& other) const {
    return state_ == other.state_;
  }
  bool operator!=(const CancelToken& other) const {
    return !(*this == other);
  }

 private:
  explicit CancelToken(std::shared_ptr<cancel_internal::CancelState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<cancel_internal::CancelState> state_;
};

/// \brief The calling thread's ambient token (thread-local override, else
/// a null token). Pool threads resolve null unless a ScopedCancelToken /
/// ScopedExecKnobs reinstalled the submitter's token.
CancelToken AmbientCancelToken();

/// \brief Convenience for work-loop boundaries: Check() on the ambient
/// token.
inline Status CheckAmbientCancel() { return AmbientCancelToken().Check(); }

/// \brief RAII: installs `token` as the current thread's ambient token for
/// the lifetime of the scope, restoring the previous one after.
class ScopedCancelToken {
 public:
  explicit ScopedCancelToken(CancelToken token);
  ~ScopedCancelToken();

  ScopedCancelToken(const ScopedCancelToken&) = delete;
  ScopedCancelToken& operator=(const ScopedCancelToken&) = delete;

 private:
  CancelToken previous_;
};

}  // namespace vertexica

#endif  // VERTEXICA_COMMON_CANCEL_H_
