#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vertexica {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// SplitMix64, used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  VX_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  VX_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? Next() : Uniform(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::string Rng::NextString(std::size_t length) {
  std::string out(length, 'a');
  for (auto& c : out) c = static_cast<char>('a' + Uniform(26));
  return out;
}

ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n), s_(s) {
  VX_CHECK(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[k - 1] = sum;
  }
  for (auto& v : cdf_) v /= sum;
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

}  // namespace vertexica
