#include "giraph/bsp_engine.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/logging.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "exec/parallel.h"

namespace vertexica {

namespace {

/// Per-worker outbox of one superstep.
struct Outbox {
  std::vector<int64_t> dst;
  std::vector<double> payload;  // dst.size() * msg_arity
  std::map<std::string, double> aggregates;
};

/// Receiver-side message store: either combined (one slot per vertex) or
/// a bucketed multi-message inbox.
struct Inbox {
  // Combined representation.
  std::vector<double> combined;      // n * msg_arity
  std::vector<uint8_t> has_message;  // n
  // Multi-message representation.
  std::vector<int64_t> offsets;  // n + 1
  std::vector<double> data;      // total_msgs * msg_arity
  bool use_combined = false;
  int64_t total_messages = 0;

  int64_t MessageCount(int64_t v) const {
    if (use_combined) return has_message[static_cast<size_t>(v)] ? 1 : 0;
    return offsets[static_cast<size_t>(v) + 1] - offsets[static_cast<size_t>(v)];
  }
};

}  // namespace

BspEngine::BspEngine(const Graph& graph, VertexProgram* program,
                     GiraphOptions options)
    : csr_(Csr::Build(graph)), program_(program), options_(options) {
  value_arity_ = program_->value_arity();
  msg_arity_ = program_->message_arity();
  const auto n = static_cast<size_t>(csr_.num_vertices());
  values_.resize(n * static_cast<size_t>(value_arity_));
  halted_.assign(n, 0);
  std::vector<double> tmp(static_cast<size_t>(value_arity_));
  for (int64_t v = 0; v < csr_.num_vertices(); ++v) {
    program_->InitValue(v, csr_.num_vertices(), tmp.data());
    std::copy(tmp.begin(), tmp.end(),
              values_.begin() + static_cast<size_t>(v) * value_arity_);
  }
}

std::vector<double> BspEngine::values(int component) const {
  std::vector<double> out(static_cast<size_t>(csr_.num_vertices()));
  for (int64_t v = 0; v < csr_.num_vertices(); ++v) {
    out[static_cast<size_t>(v)] = value(v, component);
  }
  return out;
}

Status BspEngine::Run(GiraphStats* stats) {
  WallTimer timer;
  const int64_t n = csr_.num_vertices();
  int workers = options_.num_workers;
  if (workers <= 0) {
    // Ambient executor parallelism: RunRequest::threads, else
    // VERTEXICA_THREADS, else hardware cores.
    workers = ExecThreads();
  }
  const auto agg_specs = program_->aggregators();
  std::map<std::string, AggregatorKind> agg_kinds;
  for (const auto& spec : agg_specs) agg_kinds[spec.name] = spec.kind;

  const bool combine = options_.use_combiner &&
                       program_->combiner() != MessageCombiner::kNone;
  const MessageCombiner combiner = program_->combiner();

  Inbox inbox;  // messages delivered to the current superstep
  inbox.use_combined = combine;
  if (combine) {
    inbox.combined.assign(static_cast<size_t>(n) * msg_arity_, 0.0);
    inbox.has_message.assign(static_cast<size_t>(n), 0);
  } else {
    inbox.offsets.assign(static_cast<size_t>(n) + 1, 0);
  }

  ThreadPool pool(static_cast<size_t>(workers));
  int64_t total_messages = 0;
  int superstep = 0;
  prev_aggregates_.clear();

  for (; superstep < options_.max_supersteps; ++superstep) {
    if (superstep > 0 && inbox.total_messages == 0 &&
        std::all_of(halted_.begin(), halted_.end(),
                    [](uint8_t h) { return h != 0; })) {
      break;
    }

    // ---- Compute phase: range-partitioned parallel workers. -----------
    std::vector<Outbox> outboxes(static_cast<size_t>(workers));
    std::atomic<int64_t> active{0};
    const int64_t chunk = (n + workers - 1) / workers;
    pool.ParallelFor(static_cast<size_t>(workers), [&](size_t w) {
      const int64_t begin = static_cast<int64_t>(w) * chunk;
      const int64_t end = std::min(n, begin + chunk);
      Outbox& outbox = outboxes[w];
      std::map<std::string, double> local_aggs;

      VertexContext ctx;
      ctx.superstep_ = superstep;
      ctx.num_vertices_ = n;
      ctx.msg_arity_ = msg_arity_;
      ctx.value_.resize(static_cast<size_t>(value_arity_));
      ctx.prev_aggregates_ = &prev_aggregates_;
      ctx.local_aggregates_ = &local_aggs;
      ctx.aggregator_kinds_ = &agg_kinds;

      int64_t local_active = 0;
      for (int64_t v = begin; v < end; ++v) {
        const auto sv = static_cast<size_t>(v);
        const int64_t msgs = inbox.MessageCount(v);
        const bool is_active =
            superstep == 0 || halted_[sv] == 0 || msgs > 0;
        if (!is_active) continue;
        ++local_active;

        // Populate the context.
        ctx.vertex_id_ = v;
        ctx.halted_ = false;
        ctx.modified_ = false;
        std::copy(values_.begin() + sv * value_arity_,
                  values_.begin() + (sv + 1) * value_arity_,
                  ctx.value_.begin());
        ctx.edge_dst_.clear();
        ctx.edge_weight_.clear();
        for (int64_t e = csr_.offsets[sv]; e < csr_.offsets[sv + 1]; ++e) {
          ctx.edge_dst_.push_back(csr_.neighbors[static_cast<size_t>(e)]);
          ctx.edge_weight_.push_back(csr_.weights[static_cast<size_t>(e)]);
        }
        ctx.msg_data_.clear();
        ctx.num_messages_ = msgs;
        if (msgs > 0) {
          if (inbox.use_combined) {
            ctx.msg_data_.assign(
                inbox.combined.begin() + sv * msg_arity_,
                inbox.combined.begin() + (sv + 1) * msg_arity_);
          } else {
            ctx.msg_data_.assign(
                inbox.data.begin() +
                    static_cast<size_t>(inbox.offsets[sv]) * msg_arity_,
                inbox.data.begin() +
                    static_cast<size_t>(inbox.offsets[sv + 1]) * msg_arity_);
          }
        }
        ctx.out_msg_dst_.clear();
        ctx.out_msg_data_.clear();

        program_->Compute(&ctx);

        // Write back state.
        std::copy(ctx.value_.begin(), ctx.value_.end(),
                  values_.begin() + sv * value_arity_);
        halted_[sv] = ctx.halted_ ? 1 : 0;
        outbox.dst.insert(outbox.dst.end(), ctx.out_msg_dst_.begin(),
                          ctx.out_msg_dst_.end());
        outbox.payload.insert(outbox.payload.end(), ctx.out_msg_data_.begin(),
                              ctx.out_msg_data_.end());
      }
      outbox.aggregates = std::move(local_aggs);
      active.fetch_add(local_active, std::memory_order_relaxed);
    });

    // ---- Barrier: merge aggregators, deliver messages. -----------------
    std::map<std::string, double> new_aggregates;
    for (const auto& spec : agg_specs) {
      new_aggregates[spec.name] = AggregatorIdentity(spec.kind);
    }
    for (const auto& outbox : outboxes) {
      for (const auto& [name, v] : outbox.aggregates) {
        auto it = agg_kinds.find(name);
        if (it == agg_kinds.end()) continue;
        new_aggregates[name] =
            MergeAggregate(it->second, new_aggregates[name], v);
      }
    }
    prev_aggregates_ = std::move(new_aggregates);

    int64_t sent = 0;
    for (const auto& outbox : outboxes) {
      sent += static_cast<int64_t>(outbox.dst.size());
    }
    total_messages += sent;

    if (combine) {
      std::fill(inbox.has_message.begin(), inbox.has_message.end(), 0);
      for (const auto& outbox : outboxes) {
        for (size_t m = 0; m < outbox.dst.size(); ++m) {
          const auto d = static_cast<size_t>(outbox.dst[m]);
          const double* p = outbox.payload.data() + m * msg_arity_;
          double* slot = inbox.combined.data() + d * msg_arity_;
          if (inbox.has_message[d] == 0) {
            std::copy(p, p + msg_arity_, slot);
            inbox.has_message[d] = 1;
          } else {
            for (int c = 0; c < msg_arity_; ++c) {
              switch (combiner) {
                case MessageCombiner::kSum:
                  slot[c] += p[c];
                  break;
                case MessageCombiner::kMin:
                  slot[c] = std::min(slot[c], p[c]);
                  break;
                case MessageCombiner::kMax:
                  slot[c] = std::max(slot[c], p[c]);
                  break;
                case MessageCombiner::kNone:
                  break;
              }
            }
          }
        }
      }
      inbox.total_messages = sent;
    } else {
      // Counting-sort delivery into a bucketed inbox.
      std::vector<int64_t> counts(static_cast<size_t>(n) + 1, 0);
      for (const auto& outbox : outboxes) {
        for (int64_t d : outbox.dst) counts[static_cast<size_t>(d) + 1]++;
      }
      for (size_t v = 1; v < counts.size(); ++v) counts[v] += counts[v - 1];
      inbox.offsets = counts;
      inbox.data.assign(static_cast<size_t>(sent) * msg_arity_, 0.0);
      std::vector<int64_t> cursor(inbox.offsets.begin(),
                                  inbox.offsets.end() - 1);
      for (const auto& outbox : outboxes) {
        for (size_t m = 0; m < outbox.dst.size(); ++m) {
          const auto d = static_cast<size_t>(outbox.dst[m]);
          const auto pos = static_cast<size_t>(cursor[d]++);
          std::copy(outbox.payload.data() + m * msg_arity_,
                    outbox.payload.data() + (m + 1) * msg_arity_,
                    inbox.data.data() + pos * msg_arity_);
        }
      }
      inbox.total_messages = sent;
    }

    if (active.load() == 0 && sent == 0) {
      ++superstep;
      break;
    }
  }

  if (stats != nullptr) {
    stats->supersteps = superstep;
    stats->total_messages = total_messages;
    stats->compute_seconds = timer.ElapsedSeconds();
    stats->startup_seconds = options_.startup_overhead_ms / 1000.0;
    stats->message_seconds = static_cast<double>(total_messages) *
                             options_.per_message_overhead_ns * 1e-9;
    stats->total_seconds = stats->compute_seconds + stats->startup_seconds +
                           stats->message_seconds;
  }
  return Status::OK();
}

}  // namespace vertexica
