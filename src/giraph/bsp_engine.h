/// \file bsp_engine.h
/// \brief The Apache Giraph comparator: an in-memory BSP vertex-centric
/// engine (threaded partitions, double-buffered messages, barrier
/// supersteps, receiver-side combining).
///
/// Substitution note (see DESIGN.md §2): the real Giraph runs on a JVM over
/// Hadoop; its dominant cost on small graphs is a fixed job-launch latency
/// (tens of seconds) while per-superstep throughput is comparable to
/// Vertexica's. This engine reproduces the BSP execution model natively and
/// models the launch latency as an explicit, configurable constant
/// (`GiraphOptions::startup_overhead_ms`) that is *added to reported
/// timings*, never slept. Benches report it separately so the simulation is
/// transparent.

#ifndef VERTEXICA_GIRAPH_BSP_ENGINE_H_
#define VERTEXICA_GIRAPH_BSP_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "graphgen/graph.h"
#include "vertexica/vertex_program.h"

namespace vertexica {

/// \brief Execution knobs of the BSP comparator.
struct GiraphOptions {
  /// Compute threads (BSP workers); 0 = ambient ExecThreads()
  /// (RunRequest::threads / VERTEXICA_THREADS / hardware cores).
  int num_workers = 0;
  /// Apply the program's combiner at message delivery.
  bool use_combiner = true;
  /// Safety bound on supersteps.
  int max_supersteps = 500;
  /// Modeled job-launch overhead (JVM + Hadoop scheduling), in ms. Added to
  /// reported total time; no actual sleeping happens.
  double startup_overhead_ms = 0.0;
  /// Modeled per-message JVM cost (object allocation, serialization, RPC),
  /// in ns. Real Giraph pays roughly an order of magnitude more per
  /// message than this native engine; the model makes that explicit:
  /// modeled_message_seconds = total_messages * per_message_overhead_ns.
  double per_message_overhead_ns = 0.0;
};

/// \brief Run measurements.
struct GiraphStats {
  int supersteps = 0;
  int64_t total_messages = 0;
  double compute_seconds = 0.0;  ///< measured wall clock
  double startup_seconds = 0.0;  ///< modeled (startup_overhead_ms / 1000)
  double message_seconds = 0.0;  ///< modeled per-message JVM cost
  double total_seconds = 0.0;    ///< compute + modeled costs
};

/// \brief In-memory BSP engine executing the same `VertexProgram`s as the
/// Vertexica coordinator, over a CSR adjacency.
class BspEngine {
 public:
  BspEngine(const Graph& graph, VertexProgram* program,
            GiraphOptions options = {});

  /// \brief Runs supersteps to completion (all halted, no messages).
  Status Run(GiraphStats* stats = nullptr);

  /// \brief Vertex value component after the run.
  double value(int64_t vertex, int component = 0) const {
    return values_[static_cast<size_t>(vertex) * value_arity_ +
                   static_cast<size_t>(component)];
  }

  /// \brief All values of one component, indexed by vertex id.
  std::vector<double> values(int component = 0) const;

  /// \brief Final global-aggregator values.
  const std::map<std::string, double>& aggregates() const {
    return prev_aggregates_;
  }

  int64_t num_vertices() const { return csr_.num_vertices(); }

 private:
  Csr csr_;
  VertexProgram* program_;
  GiraphOptions options_;

  int value_arity_ = 1;
  int msg_arity_ = 1;
  std::vector<double> values_;    // n * value_arity
  std::vector<uint8_t> halted_;   // n
  std::map<std::string, double> prev_aggregates_;
};

}  // namespace vertexica

#endif  // VERTEXICA_GIRAPH_BSP_ENGINE_H_
