#include "pipeline/nodes.h"

#include <cmath>

#include "exec/plan_builder.h"
#include "sqlgraph/sql_common.h"
#include "sqlgraph/sql_connected_components.h"
#include "sqlgraph/sql_pagerank.h"
#include "sqlgraph/sql_random_walk.h"
#include "sqlgraph/sql_shortest_paths.h"
#include "sqlgraph/strong_overlap.h"
#include "sqlgraph/triangle_count.h"
#include "sqlgraph/weak_ties.h"

namespace vertexica {

namespace {

/// Adapter from a lambda to PipelineNode.
class FunctionNode : public PipelineNode {
 public:
  FunctionNode(std::string name,
               std::function<Result<Table>(const std::vector<Table>&)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}
  std::string name() const override { return name_; }
  Result<Table> Run(const std::vector<Table>& inputs) override {
    return fn_(inputs);
  }

 private:
  std::string name_;
  std::function<Result<Table>(const std::vector<Table>&)> fn_;
};

Status RequireInputs(const std::vector<Table>& inputs, size_t n,
                     const char* who) {
  if (inputs.size() != n) {
    return Status::InvalidArgument(std::string(who) + ": expected " +
                                   std::to_string(n) + " inputs, got " +
                                   std::to_string(inputs.size()));
  }
  return Status::OK();
}

/// Derives the vertex list (distinct endpoints) from an edge table.
Result<Table> VertexListOf(const Table& edges) {
  return PlanBuilder::Scan(edges)
      .Select({"src"})
      .Rename({"id"})
      .Union(PlanBuilder::Scan(edges).Select({"dst"}).Rename({"id"}))
      .Distinct()
      .Execute();
}

}  // namespace

PipelineNodePtr MakeSourceNode(std::string name, Table table) {
  return std::make_shared<FunctionNode>(
      std::move(name),
      [table = std::move(table)](const std::vector<Table>& inputs)
          -> Result<Table> {
        VX_RETURN_NOT_OK(RequireInputs(inputs, 0, "Source"));
        return table;
      });
}

PipelineNodePtr MakeFunctionNode(
    std::string name,
    std::function<Result<Table>(const std::vector<Table>&)> fn) {
  return std::make_shared<FunctionNode>(std::move(name), std::move(fn));
}

PipelineNodePtr MakeSelectionNode(ExprPtr predicate) {
  return std::make_shared<FunctionNode>(
      "Selection(" + predicate->ToString() + ")",
      [predicate](const std::vector<Table>& inputs) -> Result<Table> {
        VX_RETURN_NOT_OK(RequireInputs(inputs, 1, "Selection"));
        return PlanBuilder::Scan(inputs[0]).Filter(predicate).Execute();
      });
}

PipelineNodePtr MakeProjectionNode(std::vector<ProjectionSpec> outputs) {
  return std::make_shared<FunctionNode>(
      "Projection",
      [outputs = std::move(outputs)](
          const std::vector<Table>& inputs) -> Result<Table> {
        VX_RETURN_NOT_OK(RequireInputs(inputs, 1, "Projection"));
        return PlanBuilder::Scan(inputs[0]).Project(outputs).Execute();
      });
}

PipelineNodePtr MakeAggregationNode(std::vector<std::string> group_by,
                                    std::vector<AggSpec> aggs) {
  return std::make_shared<FunctionNode>(
      "Aggregation",
      [group_by = std::move(group_by), aggs = std::move(aggs)](
          const std::vector<Table>& inputs) -> Result<Table> {
        VX_RETURN_NOT_OK(RequireInputs(inputs, 1, "Aggregation"));
        return PlanBuilder::Scan(inputs[0]).Aggregate(group_by, aggs).Execute();
      });
}

PipelineNodePtr MakeJoinNode(std::vector<std::string> left_keys,
                             std::vector<std::string> right_keys,
                             JoinType type) {
  return std::make_shared<FunctionNode>(
      std::string("Join[") + JoinTypeName(type) + "]",
      [left_keys = std::move(left_keys), right_keys = std::move(right_keys),
       type](const std::vector<Table>& inputs) -> Result<Table> {
        VX_RETURN_NOT_OK(RequireInputs(inputs, 2, "Join"));
        return PlanBuilder::Scan(inputs[0])
            .Join(PlanBuilder::Scan(inputs[1]), left_keys, right_keys, type)
            .Execute();
      });
}

PipelineNodePtr MakeHistogramNode(std::string column, int num_buckets) {
  return std::make_shared<FunctionNode>(
      "Histogram(" + column + ")",
      [column, num_buckets](const std::vector<Table>& inputs)
          -> Result<Table> {
        VX_RETURN_NOT_OK(RequireInputs(inputs, 1, "Histogram"));
        const Table& in = inputs[0];
        VX_ASSIGN_OR_RETURN(
            Table range, PlanBuilder::Scan(in)
                             .Aggregate({}, {{AggOp::kMin, column, "lo"},
                                             {AggOp::kMax, column, "hi"}})
                             .Execute());
        if (range.column(0).IsNull(0)) {
          return Table(Schema({{"bucket", DataType::kInt64},
                               {"lo", DataType::kDouble},
                               {"hi", DataType::kDouble},
                               {"count", DataType::kInt64}}));
        }
        const double lo = range.column(0).GetNumeric(0);
        const double hi = range.column(1).GetNumeric(0);
        const double width =
            hi > lo ? (hi - lo) / num_buckets
                    : 1.0;  // degenerate single-value distribution
        // bucket = clamp(floor((x - lo) / width), 0, buckets-1)
        ExprPtr raw = Cast(Div(Sub(Col(column), Lit(lo)), Lit(width)),
                           DataType::kInt64);
        ExprPtr bucket =
            If(Ge(raw, Lit(static_cast<int64_t>(num_buckets))),
               Lit(static_cast<int64_t>(num_buckets - 1)), raw);
        VX_ASSIGN_OR_RETURN(
            Table counts,
            PlanBuilder::Scan(in)
                .Project({{"bucket", bucket}})
                .Aggregate({"bucket"}, {{AggOp::kCountStar, "", "count"}})
                .Execute());
        return PlanBuilder::Scan(std::move(counts))
            .Project({{"bucket", Col("bucket")},
                      {"lo", Add(Lit(lo), Mul(Col("bucket"), Lit(width)))},
                      {"hi", Add(Lit(lo), Mul(Add(Col("bucket"), Lit(int64_t{1})),
                                              Lit(width)))},
                      {"count", Col("count")}})
            .OrderBy({{"bucket", true}})
            .Execute();
      });
}

PipelineNodePtr MakePageRankNode(int iterations, double damping) {
  return std::make_shared<FunctionNode>(
      "PageRank",
      [iterations, damping](const std::vector<Table>& inputs)
          -> Result<Table> {
        VX_RETURN_NOT_OK(RequireInputs(inputs, 1, "PageRank"));
        VX_ASSIGN_OR_RETURN(Table vertices, VertexListOf(inputs[0]));
        return SqlPageRank(vertices, inputs[0], iterations, damping);
      });
}

PipelineNodePtr MakeShortestPathsNode(int64_t source) {
  return std::make_shared<FunctionNode>(
      "ShortestPaths",
      [source](const std::vector<Table>& inputs) -> Result<Table> {
        VX_RETURN_NOT_OK(RequireInputs(inputs, 1, "ShortestPaths"));
        VX_ASSIGN_OR_RETURN(Table vertices, VertexListOf(inputs[0]));
        Table edges = inputs[0];
        if (edges.schema().FieldIndex("weight") < 0) {
          VX_ASSIGN_OR_RETURN(edges,
                              PlanBuilder::Scan(std::move(edges))
                                  .Project({{"src", Col("src")},
                                            {"dst", Col("dst")},
                                            {"weight", Lit(1.0)}})
                                  .Execute());
        }
        return SqlShortestPaths(vertices, edges, source);
      });
}

PipelineNodePtr MakeConnectedComponentsNode() {
  return std::make_shared<FunctionNode>(
      "ConnectedComponents",
      [](const std::vector<Table>& inputs) -> Result<Table> {
        VX_RETURN_NOT_OK(RequireInputs(inputs, 1, "ConnectedComponents"));
        VX_ASSIGN_OR_RETURN(Table vertices, VertexListOf(inputs[0]));
        return SqlConnectedComponents(vertices, inputs[0]);
      });
}

PipelineNodePtr MakeRandomWalkNode(int64_t source, int iterations,
                                   double restart_probability) {
  return std::make_shared<FunctionNode>(
      "RandomWalkWithRestart",
      [source, iterations, restart_probability](
          const std::vector<Table>& inputs) -> Result<Table> {
        VX_RETURN_NOT_OK(RequireInputs(inputs, 1, "RandomWalkWithRestart"));
        VX_ASSIGN_OR_RETURN(Table vertices, VertexListOf(inputs[0]));
        return SqlRandomWalkWithRestart(vertices, inputs[0], source,
                                        iterations, restart_probability);
      });
}

PipelineNodePtr MakeTriangleCountingNode() {
  return std::make_shared<FunctionNode>(
      "TriangleCounting",
      [](const std::vector<Table>& inputs) -> Result<Table> {
        VX_RETURN_NOT_OK(RequireInputs(inputs, 1, "TriangleCounting"));
        return SqlPerNodeTriangles(inputs[0]);
      });
}

PipelineNodePtr MakeStrongOverlapNode(int64_t min_common) {
  return std::make_shared<FunctionNode>(
      "StrongOverlap",
      [min_common](const std::vector<Table>& inputs) -> Result<Table> {
        VX_RETURN_NOT_OK(RequireInputs(inputs, 1, "StrongOverlap"));
        return SqlStrongOverlap(inputs[0], min_common);
      });
}

PipelineNodePtr MakeWeakTiesNode(int64_t min_pairs) {
  return std::make_shared<FunctionNode>(
      "WeakTies",
      [min_pairs](const std::vector<Table>& inputs) -> Result<Table> {
        VX_RETURN_NOT_OK(RequireInputs(inputs, 1, "WeakTies"));
        return SqlWeakTies(inputs[0], min_pairs);
      });
}

}  // namespace vertexica
