#include "pipeline/dataflow.h"

#include "common/logging.h"
#include "common/timer.h"

namespace vertexica {

int Pipeline::AddNode(PipelineNodePtr node, std::vector<int> inputs) {
  for (int in : inputs) {
    VX_CHECK(in >= 0 && in < num_nodes()) << "bad pipeline input id " << in;
  }
  nodes_.push_back(Entry{std::move(node), std::move(inputs), false, Table()});
  return num_nodes() - 1;
}

Result<Table> Pipeline::Run(int node_id) {
  if (node_id < 0 || node_id >= num_nodes()) {
    return Status::InvalidArgument("no such pipeline node");
  }
  Entry& entry = nodes_[static_cast<size_t>(node_id)];
  if (entry.computed) return entry.output;

  std::vector<Table> inputs;
  inputs.reserve(entry.inputs.size());
  for (int in : entry.inputs) {
    VX_ASSIGN_OR_RETURN(Table t, Run(in));  // DAG ⇒ recursion terminates
    inputs.push_back(std::move(t));
  }
  WallTimer timer;
  VX_ASSIGN_OR_RETURN(entry.output, entry.node->Run(inputs));
  timings_.push_back(
      NodeTiming{node_id, entry.node->name(), timer.ElapsedSeconds()});
  entry.computed = true;
  return entry.output;
}

void Pipeline::Reset() {
  for (auto& entry : nodes_) {
    entry.computed = false;
    entry.output = Table();
  }
  timings_.clear();
}

}  // namespace vertexica
