#include "pipeline/dataflow.h"

#include <algorithm>

#include "common/logging.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "exec/parallel.h"

namespace vertexica {

int Pipeline::AddNode(PipelineNodePtr node, std::vector<int> inputs) {
  for (int in : inputs) {
    VX_CHECK(in >= 0 && in < num_nodes()) << "bad pipeline input id " << in;
  }
  nodes_.push_back(Entry{std::move(node), std::move(inputs), false, Table()});
  return num_nodes() - 1;
}

Status Pipeline::ComputeNode(int node_id) {
  Entry& entry = nodes_[static_cast<size_t>(node_id)];
  std::vector<Table> inputs;
  inputs.reserve(entry.inputs.size());
  for (int in : entry.inputs) {
    inputs.push_back(nodes_[static_cast<size_t>(in)].output);
  }
  WallTimer timer;
  VX_ASSIGN_OR_RETURN(entry.output, entry.node->Run(inputs));
  {
    std::lock_guard<std::mutex> lock(timings_mutex_);
    timings_.push_back(
        NodeTiming{node_id, entry.node->name(), timer.ElapsedSeconds()});
  }
  entry.computed = true;
  return Status::OK();
}

Result<Table> Pipeline::Run(int node_id) {
  if (node_id < 0 || node_id >= num_nodes()) {
    return Status::InvalidArgument("no such pipeline node");
  }

  // Mark the sub-DAG the target depends on (DAG ⇒ the stack terminates).
  std::vector<bool> needed(nodes_.size(), false);
  std::vector<int> stack{node_id};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (needed[static_cast<size_t>(id)]) continue;
    needed[static_cast<size_t>(id)] = true;
    if (nodes_[static_cast<size_t>(id)].computed) continue;
    for (int in : nodes_[static_cast<size_t>(id)].inputs) stack.push_back(in);
  }

  // Evaluate in waves of ready nodes; each wave fans out on the pool.
  const int threads = ExecThreads();
  while (!nodes_[static_cast<size_t>(node_id)].computed) {
    std::vector<int> ready;
    for (size_t id = 0; id < nodes_.size(); ++id) {
      if (!needed[id] || nodes_[id].computed) continue;
      const auto& inputs = nodes_[id].inputs;
      const bool runnable =
          std::all_of(inputs.begin(), inputs.end(), [this](int in) {
            return nodes_[static_cast<size_t>(in)].computed;
          });
      if (runnable) ready.push_back(static_cast<int>(id));
    }
    VX_CHECK(!ready.empty()) << "pipeline DAG made no progress";

    if (ready.size() == 1 || threads <= 1) {
      for (int id : ready) {
        VX_RETURN_NOT_OK(ComputeNode(id));
      }
    } else {
      VX_RETURN_NOT_OK(ThreadPool::Default()->ParallelFor(
          0, ready.size(), /*grain=*/1,
          [&](size_t begin, size_t end) -> Status {
            // Propagate the caller's thread budget into the pool task so
            // nodes keep using the morsel-parallel kernels underneath.
            ScopedExecThreads scoped(threads);
            for (size_t i = begin; i < end; ++i) {
              VX_RETURN_NOT_OK(ComputeNode(ready[i]));
            }
            return Status::OK();
          },
          threads));
    }
  }
  return nodes_[static_cast<size_t>(node_id)].output;
}

void Pipeline::Reset() {
  for (auto& entry : nodes_) {
    entry.computed = false;
    entry.output = Table();
  }
  timings_.clear();
}

}  // namespace vertexica
