/// \file dataflow.h
/// \brief Graph processing pipelines (§3.4 / the GUI "Dataflow" panel):
/// users "drag and drop the algorithms/operators, chain and combine them".
///
/// A `Pipeline` is a DAG of named nodes; each node consumes the tables
/// produced by its input nodes and produces one table. Execution is
/// memoized topological order, with per-node wall-clock timings for the
/// time-monitor display.

#ifndef VERTEXICA_PIPELINE_DATAFLOW_H_
#define VERTEXICA_PIPELINE_DATAFLOW_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace vertexica {

/// \brief One dataflow operator: relational op or graph algorithm.
class PipelineNode {
 public:
  virtual ~PipelineNode() = default;

  /// \brief Display name (toolbar label).
  virtual std::string name() const = 0;

  /// \brief Computes the node's output from its inputs' outputs.
  virtual Result<Table> Run(const std::vector<Table>& inputs) = 0;
};

using PipelineNodePtr = std::shared_ptr<PipelineNode>;

/// \brief A DAG of pipeline nodes.
class Pipeline {
 public:
  /// \brief Adds a node fed by the outputs of `inputs` (ids returned by
  /// earlier AddNode calls). Returns the new node's id.
  int AddNode(PipelineNodePtr node, std::vector<int> inputs = {});

  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// \brief Executes the sub-DAG needed for `node_id` and returns its
  /// output. Results are memoized within one Run call chain; call Reset()
  /// to clear.
  ///
  /// Independent nodes run concurrently: evaluation proceeds in waves of
  /// ready nodes (all inputs computed), and each wave fans out on the
  /// shared ThreadPool up to the ambient ExecThreads() budget — so a
  /// diamond of two branches costs one branch's wall clock. Node evaluation
  /// order within a wave is unspecified, but outputs (and the set of nodes
  /// run) are identical to serial execution.
  Result<Table> Run(int node_id);

  /// \brief Clears memoized results and timings (e.g. after the source
  /// data changed — continuous mode re-runs).
  void Reset();

  /// \brief Per-node timing of the last Run (the GUI time monitor).
  struct NodeTiming {
    int node_id;
    std::string name;
    double seconds;
  };
  const std::vector<NodeTiming>& timings() const { return timings_; }

 private:
  struct Entry {
    PipelineNodePtr node;
    std::vector<int> inputs;
    bool computed = false;
    Table output;
  };

  /// Evaluates one uncomputed node whose inputs are all computed.
  Status ComputeNode(int node_id);

  std::vector<Entry> nodes_;
  std::vector<NodeTiming> timings_;
  std::mutex timings_mutex_;  // guards timings_ during parallel waves
};

}  // namespace vertexica

#endif  // VERTEXICA_PIPELINE_DATAFLOW_H_
