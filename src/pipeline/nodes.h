/// \file nodes.h
/// \brief The toolbar's node library (§4.1): relational operators
/// (selection, projection, aggregation, join) and SQL graph algorithms
/// (PageRank, shortest paths, triangle counting, strong overlap, weak
/// ties), packaged as pipeline nodes.

#ifndef VERTEXICA_PIPELINE_NODES_H_
#define VERTEXICA_PIPELINE_NODES_H_

#include <functional>
#include <string>
#include <vector>

#include "exec/aggregate.h"
#include "exec/hash_join.h"
#include "exec/project.h"
#include "expr/expression.h"
#include "pipeline/dataflow.h"

namespace vertexica {

/// \name Sources and generic nodes
/// @{

/// \brief Emits a fixed table (the loaded graph / metadata).
PipelineNodePtr MakeSourceNode(std::string name, Table table);

/// \brief Wraps an arbitrary function.
PipelineNodePtr MakeFunctionNode(
    std::string name,
    std::function<Result<Table>(const std::vector<Table>&)> fn);
/// @}

/// \name Relational operators (graph pre-/post-processing, §3.4)
/// @{

/// \brief σ: filters its single input ("Graph Selection").
PipelineNodePtr MakeSelectionNode(ExprPtr predicate);

/// \brief π: projects its single input ("Graph Projection").
PipelineNodePtr MakeProjectionNode(std::vector<ProjectionSpec> outputs);

/// \brief γ: groups/aggregates its single input ("Graph Aggregation").
PipelineNodePtr MakeAggregationNode(std::vector<std::string> group_by,
                                    std::vector<AggSpec> aggs);

/// \brief ⋈: joins its two inputs ("Graph Join"); input 0 probes, 1 builds.
PipelineNodePtr MakeJoinNode(std::vector<std::string> left_keys,
                             std::vector<std::string> right_keys,
                             JoinType type = JoinType::kInner);

/// \brief Equi-width histogram over a numeric column of the input —
/// §4.2.2's "distribution of PageRank values". Output (bucket, lo, hi,
/// count).
PipelineNodePtr MakeHistogramNode(std::string column, int num_buckets);
/// @}

/// \name SQL graph algorithms (input: an edge table src/dst[/weight])
/// @{
PipelineNodePtr MakePageRankNode(int iterations = 10, double damping = 0.85);
PipelineNodePtr MakeShortestPathsNode(int64_t source);
PipelineNodePtr MakeConnectedComponentsNode();
PipelineNodePtr MakeRandomWalkNode(int64_t source, int iterations = 15,
                                   double restart_probability = 0.15);
PipelineNodePtr MakeTriangleCountingNode();
PipelineNodePtr MakeStrongOverlapNode(int64_t min_common = 2);
PipelineNodePtr MakeWeakTiesNode(int64_t min_pairs = 1);
/// @}

}  // namespace vertexica

#endif  // VERTEXICA_PIPELINE_NODES_H_
