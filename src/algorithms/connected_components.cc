#include "algorithms/connected_components.h"

namespace vertexica {

void ConnectedComponentsProgram::Compute(VertexContext* ctx) {
  double best = ctx->GetVertexValue(0);
  for (int64_t i = 0; i < ctx->num_messages(); ++i) {
    best = std::min(best, ctx->GetMessage(i)[0]);
  }
  if (ctx->superstep() == 0) {
    ctx->SendMessageToAllNeighbors(best);
  } else if (best < ctx->GetVertexValue(0)) {
    ctx->ModifyVertexValue(best);
    ctx->SendMessageToAllNeighbors(best);
  }
  ctx->VoteToHalt();
}

Result<std::vector<int64_t>> RunConnectedComponents(Catalog* catalog,
                                                    const Graph& graph,
                                                    VertexicaOptions options,
                                                    RunStats* stats) {
  ConnectedComponentsProgram program;
  const Graph bidirectional = graph.WithReverseEdges();
  VX_RETURN_NOT_OK(
      RunVertexProgram(catalog, bidirectional, &program, options, {}, stats));
  VX_ASSIGN_OR_RETURN(auto labels, ReadVertexValues(*catalog, {}));
  std::vector<int64_t> out(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    out[i] = static_cast<int64_t>(labels[i]);
  }
  return out;
}

}  // namespace vertexica
