#include "algorithms/random_walk.h"

namespace vertexica {

void RandomWalkWithRestartProgram::Compute(VertexContext* ctx) {
  if (ctx->superstep() >= 1) {
    double sum = 0.0;
    for (int64_t i = 0; i < ctx->num_messages(); ++i) {
      sum += ctx->GetMessage(i)[0];
    }
    const double restart_mass = ctx->vertex_id() == source_ ? restart_ : 0.0;
    ctx->ModifyVertexValue((1.0 - restart_) * sum + restart_mass);
  }
  if (ctx->superstep() < max_iterations_) {
    const int64_t degree = ctx->num_out_edges();
    if (degree > 0 && ctx->GetVertexValue(0) > 0.0) {
      ctx->SendMessageToAllNeighbors(ctx->GetVertexValue(0) /
                                     static_cast<double>(degree));
    }
  } else {
    ctx->VoteToHalt();
  }
}

Result<std::vector<double>> RunRandomWalkWithRestart(
    Catalog* catalog, const Graph& graph, int64_t source, int max_iterations,
    double restart_probability, VertexicaOptions options, RunStats* stats) {
  RandomWalkWithRestartProgram program(source, max_iterations,
                                       restart_probability);
  VX_RETURN_NOT_OK(
      RunVertexProgram(catalog, graph, &program, options, {}, stats));
  return ReadVertexValues(*catalog, {});
}

}  // namespace vertexica
