/// \file triangle_program.h
/// \brief Triangle counting *as a vertex-centric program* — deliberately
/// included to demonstrate §3.2's point: "vertex-centric computations …
/// do not work very well, if at all, for queries which involve 1-hop
/// neighborhood", because the vertex must first materialize its
/// neighbourhood pairs as messages (a quadratic blow-up per vertex).
///
/// Algorithm (2 supersteps over the canonically oriented graph a→b, a<b):
///  - superstep 0: vertex w enumerates ordered pairs (u, v), u < v, of its
///    out-neighbours and sends the probe message [v] to u —
///    Σ_w C(deg⁺(w), 2) messages;
///  - superstep 1: vertex u counts how many probes name one of its own
///    out-neighbours and contributes the count to the global "triangles"
///    aggregator.
///
/// Compare with the three-join SQL formulation in sqlgraph/triangle_count.h
/// (bench_ablation_1hop measures the gap).

#ifndef VERTEXICA_ALGORITHMS_TRIANGLE_PROGRAM_H_
#define VERTEXICA_ALGORITHMS_TRIANGLE_PROGRAM_H_

#include "vertexica/coordinator.h"
#include "vertexica/vertex_program.h"

namespace vertexica {

/// \brief The vertex-centric triangle counter described above.
class TriangleCountProgram : public VertexProgram {
 public:
  int value_arity() const override { return 1; }
  int message_arity() const override { return 1; }

  void InitValue(int64_t, int64_t, double* value) const override {
    value[0] = 0.0;
  }

  void Compute(VertexContext* ctx) override;

  std::vector<AggregatorSpec> aggregators() const override {
    return {{"triangles", AggregatorKind::kSum}};
  }
};

/// \brief Canonical orientation: one copy (low id → high id) of every
/// undirected simple edge of `graph`, self-loops dropped. This is the input
/// shape TriangleCountProgram requires; exposed so other engines (the BSP
/// comparator, the Engine facade) can run the same program.
Graph CanonicallyOriented(const Graph& graph);

/// \brief Counts triangles with the vertex-centric engine. `graph` may be
/// arbitrary; it is canonically oriented internally. Returns the exact
/// triangle count (matching TriangleCountReference / SqlTriangleCount).
///
/// \deprecated Prefer `Engine::Run({.algorithm = "triangle_count"})` — see
/// api/engine.h; this wrapper remains for source compatibility.
Result<int64_t> RunVertexCentricTriangleCount(Catalog* catalog,
                                              const Graph& graph,
                                              VertexicaOptions options = {},
                                              RunStats* stats = nullptr);

}  // namespace vertexica

#endif  // VERTEXICA_ALGORITHMS_TRIANGLE_PROGRAM_H_
