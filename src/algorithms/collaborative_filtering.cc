#include "algorithms/collaborative_filtering.h"

#include <cmath>

#include "common/hash.h"
#include "common/string_util.h"

namespace vertexica {

void CollaborativeFilteringProgram::InitValue(int64_t vertex_id,
                                              int64_t /*num_vertices*/,
                                              double* value) const {
  const double scale = 1.0 / std::sqrt(static_cast<double>(k_));
  for (int i = 0; i < k_; ++i) {
    const uint64_t h =
        HashInt64(static_cast<uint64_t>(vertex_id) * 131 + static_cast<uint64_t>(i));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
    value[i] = (u + 1e-3) * scale;
  }
}

void CollaborativeFilteringProgram::Compute(VertexContext* ctx) {
  std::vector<double> mine(ctx->GetVertexValue(),
                           ctx->GetVertexValue() + k_);
  if (ctx->superstep() >= 1) {
    double sq_error = 0.0;
    for (int64_t m = 0; m < ctx->num_messages(); ++m) {
      const double* msg = ctx->GetMessage(m);
      const double rating = msg[0];
      const double* theirs = msg + 1;
      double dot = 0.0;
      for (int i = 0; i < k_; ++i) dot += mine[static_cast<size_t>(i)] * theirs[i];
      const double err = rating - dot;
      sq_error += err * err;
      for (int i = 0; i < k_; ++i) {
        mine[static_cast<size_t>(i)] +=
            lr_ * (err * theirs[i] - lambda_ * mine[static_cast<size_t>(i)]);
      }
    }
    ctx->ModifyVertexValue(mine.data());
    ctx->Aggregate("cf_sq_error", sq_error);
  }

  if (ctx->superstep() < max_iterations_) {
    std::vector<double> msg(static_cast<size_t>(k_) + 1);
    for (int64_t e = 0; e < ctx->num_out_edges(); ++e) {
      msg[0] = ctx->OutEdgeWeight(e);  // the rating lives on the edge
      for (int i = 0; i < k_; ++i) {
        msg[static_cast<size_t>(i) + 1] = mine[static_cast<size_t>(i)];
      }
      ctx->SendMessage(ctx->OutEdgeTarget(e), msg.data());
    }
  } else {
    ctx->VoteToHalt();
  }
}

double CfModel::Predict(int64_t user, int64_t item) const {
  double dot = 0.0;
  for (int i = 0; i < num_factors; ++i) {
    dot += factors[static_cast<size_t>(user) * num_factors + i] *
           factors[static_cast<size_t>(item) * num_factors + i];
  }
  return dot;
}

Result<CfModel> RunCollaborativeFiltering(Catalog* catalog,
                                          const Graph& ratings,
                                          int num_factors, int max_iterations,
                                          VertexicaOptions options,
                                          RunStats* stats) {
  CollaborativeFilteringProgram program(num_factors, max_iterations);
  const Graph bidirectional = ratings.WithReverseEdges();
  Coordinator coordinator(catalog, &program, options);
  VX_RETURN_NOT_OK(LoadGraphTables(catalog, bidirectional, program));
  VX_RETURN_NOT_OK(coordinator.Run(stats));

  CfModel model;
  model.num_factors = num_factors;
  model.factors.assign(
      static_cast<size_t>(bidirectional.num_vertices) * num_factors, 0.0);
  for (int c = 0; c < num_factors; ++c) {
    VX_ASSIGN_OR_RETURN(auto component, ReadVertexValues(*catalog, {}, c));
    for (size_t v = 0; v < component.size(); ++v) {
      model.factors[v * static_cast<size_t>(num_factors) +
                    static_cast<size_t>(c)] = component[v];
    }
  }
  auto it = coordinator.aggregates().find("cf_sq_error");
  model.squared_error = it == coordinator.aggregates().end() ? 0.0 : it->second;
  return model;
}

}  // namespace vertexica
