#include "algorithms/pagerank.h"

namespace vertexica {

void PageRankProgram::Compute(VertexContext* ctx) {
  if (ctx->superstep() >= 1) {
    double sum = 0.0;
    for (int64_t i = 0; i < ctx->num_messages(); ++i) {
      sum += ctx->GetMessage(i)[0];
    }
    const double rank =
        (1.0 - damping_) / static_cast<double>(ctx->num_vertices()) +
        damping_ * sum;
    ctx->ModifyVertexValue(rank);
  }
  ctx->Aggregate("pagerank_mass", ctx->GetVertexValue(0));

  if (ctx->superstep() < max_iterations_) {
    const int64_t degree = ctx->num_out_edges();
    if (degree > 0) {
      ctx->SendMessageToAllNeighbors(ctx->GetVertexValue(0) /
                                     static_cast<double>(degree));
    }
  } else {
    ctx->VoteToHalt();
  }
}

Result<std::vector<double>> RunPageRank(Catalog* catalog, const Graph& graph,
                                        int max_iterations, double damping,
                                        VertexicaOptions options,
                                        RunStats* stats) {
  PageRankProgram program(max_iterations, damping);
  VX_RETURN_NOT_OK(
      RunVertexProgram(catalog, graph, &program, options, {}, stats));
  return ReadVertexValues(*catalog, {});
}

}  // namespace vertexica
