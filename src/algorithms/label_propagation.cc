#include "algorithms/label_propagation.h"

#include <map>

namespace vertexica {

void LabelPropagationProgram::Compute(VertexContext* ctx) {
  if (ctx->superstep() > 0) {
    // Adopt the most frequent incoming label; ties toward the smaller.
    std::map<int64_t, int64_t> counts;
    for (int64_t m = 0; m < ctx->num_messages(); ++m) {
      counts[static_cast<int64_t>(ctx->GetMessage(m)[0])]++;
    }
    int64_t best_label = static_cast<int64_t>(ctx->GetVertexValue(0));
    int64_t best_count = 0;
    for (const auto& [label, count] : counts) {
      if (count > best_count) {  // std::map iterates ascending ⇒ min tie-break
        best_count = count;
        best_label = label;
      }
    }
    if (best_count > 0 &&
        best_label != static_cast<int64_t>(ctx->GetVertexValue(0))) {
      ctx->ModifyVertexValue(static_cast<double>(best_label));
    }
  }
  if (ctx->superstep() < max_iterations_) {
    ctx->SendMessageToAllNeighbors(ctx->GetVertexValue(0));
  } else {
    ctx->VoteToHalt();
  }
}

Result<std::vector<int64_t>> RunLabelPropagation(Catalog* catalog,
                                                 const Graph& graph,
                                                 int max_iterations,
                                                 VertexicaOptions options,
                                                 RunStats* stats) {
  LabelPropagationProgram program(max_iterations);
  const Graph bidirectional = graph.WithReverseEdges();
  VX_RETURN_NOT_OK(
      RunVertexProgram(catalog, bidirectional, &program, options, {}, stats));
  VX_ASSIGN_OR_RETURN(auto labels, ReadVertexValues(*catalog, {}));
  std::vector<int64_t> out(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    out[i] = static_cast<int64_t>(labels[i]);
  }
  return out;
}

}  // namespace vertexica
