/// \file random_walk.h
/// \brief Random walk with restart (personalized PageRank), one of the
/// message-passing algorithms §1 lists as expressible in Vertexica.

#ifndef VERTEXICA_ALGORITHMS_RANDOM_WALK_H_
#define VERTEXICA_ALGORITHMS_RANDOM_WALK_H_

#include <vector>

#include "vertexica/coordinator.h"
#include "vertexica/vertex_program.h"

namespace vertexica {

/// \brief Deterministic power-iteration RWR: v ← (1-c)·Wᵀv + c·e_source,
/// where c is the restart probability. Converges to the personalized
/// PageRank vector of the source vertex.
class RandomWalkWithRestartProgram : public VertexProgram {
 public:
  RandomWalkWithRestartProgram(int64_t source, int max_iterations = 15,
                               double restart_probability = 0.15)
      : source_(source),
        max_iterations_(max_iterations),
        restart_(restart_probability) {}

  int value_arity() const override { return 1; }
  int message_arity() const override { return 1; }

  void InitValue(int64_t vertex_id, int64_t /*num_vertices*/,
                 double* value) const override {
    value[0] = vertex_id == source_ ? 1.0 : 0.0;
  }

  void Compute(VertexContext* ctx) override;

  MessageCombiner combiner() const override { return MessageCombiner::kSum; }

 private:
  int64_t source_;
  int max_iterations_;
  double restart_;
};

/// \brief Runs RWR from `source`; returns per-vertex proximity scores.
Result<std::vector<double>> RunRandomWalkWithRestart(
    Catalog* catalog, const Graph& graph, int64_t source,
    int max_iterations = 15, double restart_probability = 0.15,
    VertexicaOptions options = {}, RunStats* stats = nullptr);

}  // namespace vertexica

#endif  // VERTEXICA_ALGORITHMS_RANDOM_WALK_H_
