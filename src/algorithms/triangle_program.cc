#include "algorithms/triangle_program.h"

#include <algorithm>
#include <set>

namespace vertexica {

void TriangleCountProgram::Compute(VertexContext* ctx) {
  if (ctx->superstep() == 0) {
    // Collect, sort and dedup out-neighbours (the input is oriented so all
    // targets are > my id).
    std::vector<int64_t> neighbors;
    neighbors.reserve(static_cast<size_t>(ctx->num_out_edges()));
    for (int64_t e = 0; e < ctx->num_out_edges(); ++e) {
      neighbors.push_back(ctx->OutEdgeTarget(e));
    }
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
    // For every pair (u, v) with u < v, probe u: "is v your neighbour?".
    // This is the quadratic 1-hop materialization §3.2 warns about.
    for (size_t i = 0; i < neighbors.size(); ++i) {
      for (size_t j = i + 1; j < neighbors.size(); ++j) {
        ctx->SendMessage(neighbors[i],
                         static_cast<double>(neighbors[j]));
      }
    }
  } else {
    std::set<int64_t> mine;
    for (int64_t e = 0; e < ctx->num_out_edges(); ++e) {
      mine.insert(ctx->OutEdgeTarget(e));
    }
    double found = 0;
    for (int64_t m = 0; m < ctx->num_messages(); ++m) {
      const auto probed = static_cast<int64_t>(ctx->GetMessage(m)[0]);
      if (mine.count(probed) > 0) found += 1.0;
    }
    if (found > 0) ctx->Aggregate("triangles", found);
  }
  ctx->VoteToHalt();
}

Graph CanonicallyOriented(const Graph& graph) {
  Graph oriented;
  oriented.num_vertices = graph.num_vertices;
  oriented.directed = true;
  std::set<std::pair<int64_t, int64_t>> seen;
  const Graph d = graph.AsDirected();
  for (int64_t e = 0; e < d.num_edges(); ++e) {
    int64_t a = d.src[static_cast<size_t>(e)];
    int64_t b = d.dst[static_cast<size_t>(e)];
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    if (seen.emplace(a, b).second) oriented.AddEdge(a, b);
  }
  return oriented;
}

Result<int64_t> RunVertexCentricTriangleCount(Catalog* catalog,
                                              const Graph& graph,
                                              VertexicaOptions options,
                                              RunStats* stats) {
  const Graph oriented = CanonicallyOriented(graph);
  TriangleCountProgram program;
  Coordinator coordinator(catalog, &program, options);
  VX_RETURN_NOT_OK(LoadGraphTables(catalog, oriented, program));
  VX_RETURN_NOT_OK(coordinator.Run(stats));
  auto it = coordinator.aggregates().find("triangles");
  if (it == coordinator.aggregates().end()) return int64_t{0};
  return static_cast<int64_t>(it->second + 0.5);
}

}  // namespace vertexica
