/// \file label_propagation.h
/// \brief Community detection by label propagation — another of the
/// "message passing algorithms" §1 says Vertexica expresses naturally.
///
/// Every vertex starts in its own community; each superstep it adopts the
/// most frequent label among its neighbours (ties broken toward the
/// smaller label, making the algorithm deterministic under synchronous
/// execution). Runs a fixed number of iterations.

#ifndef VERTEXICA_ALGORITHMS_LABEL_PROPAGATION_H_
#define VERTEXICA_ALGORITHMS_LABEL_PROPAGATION_H_

#include <vector>

#include "vertexica/coordinator.h"
#include "vertexica/vertex_program.h"

namespace vertexica {

/// \brief Synchronous label propagation (no combiner — the full label
/// multiset is needed to take a mode).
class LabelPropagationProgram : public VertexProgram {
 public:
  explicit LabelPropagationProgram(int max_iterations = 10)
      : max_iterations_(max_iterations) {}

  int value_arity() const override { return 1; }
  int message_arity() const override { return 1; }

  void InitValue(int64_t vertex_id, int64_t /*num_vertices*/,
                 double* value) const override {
    value[0] = static_cast<double>(vertex_id);
  }

  void Compute(VertexContext* ctx) override;

 private:
  int max_iterations_;
};

/// \brief Runs label propagation on the undirected view of `graph`;
/// returns each vertex's community label.
Result<std::vector<int64_t>> RunLabelPropagation(Catalog* catalog,
                                                 const Graph& graph,
                                                 int max_iterations = 10,
                                                 VertexicaOptions options = {},
                                                 RunStats* stats = nullptr);

}  // namespace vertexica

#endif  // VERTEXICA_ALGORITHMS_LABEL_PROPAGATION_H_
