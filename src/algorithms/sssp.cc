#include "algorithms/sssp.h"

namespace vertexica {

void ShortestPathProgram::Compute(VertexContext* ctx) {
  double best = ctx->GetVertexValue(0);
  bool improved = false;

  if (ctx->superstep() == 0) {
    // Only the source has a finite distance to propagate.
    improved = ctx->vertex_id() == source_;
  }
  for (int64_t i = 0; i < ctx->num_messages(); ++i) {
    const double candidate = ctx->GetMessage(i)[0];
    if (candidate < best) {
      best = candidate;
      improved = true;
    }
  }
  if (best < ctx->GetVertexValue(0)) {
    ctx->ModifyVertexValue(best);
  }
  if (improved) {
    for (int64_t e = 0; e < ctx->num_out_edges(); ++e) {
      ctx->SendMessage(ctx->OutEdgeTarget(e), best + ctx->OutEdgeWeight(e));
    }
  }
  ctx->VoteToHalt();
}

Result<std::vector<double>> RunShortestPaths(Catalog* catalog,
                                             const Graph& graph,
                                             int64_t source,
                                             VertexicaOptions options,
                                             RunStats* stats) {
  ShortestPathProgram program(source);
  VX_RETURN_NOT_OK(
      RunVertexProgram(catalog, graph, &program, options, {}, stats));
  return ReadVertexValues(*catalog, {});
}

}  // namespace vertexica
