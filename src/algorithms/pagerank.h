/// \file pagerank.h
/// \brief Vertex-centric PageRank (§3.1 (i)) — "a ranking algorithm to
/// compute the relative importance of every vertex".

#ifndef VERTEXICA_ALGORITHMS_PAGERANK_H_
#define VERTEXICA_ALGORITHMS_PAGERANK_H_

#include <vector>

#include "vertexica/coordinator.h"
#include "vertexica/vertex_program.h"

namespace vertexica {

/// \brief Classic Pregel PageRank: each superstep a vertex sums its incoming
/// contributions, sets rank = (1-d)/N + d * sum, and scatters rank/outdeg
/// to its neighbours. Runs a fixed number of iterations, then halts.
class PageRankProgram : public VertexProgram {
 public:
  explicit PageRankProgram(int max_iterations = 10, double damping = 0.85)
      : max_iterations_(max_iterations), damping_(damping) {}

  int value_arity() const override { return 1; }
  int message_arity() const override { return 1; }

  void InitValue(int64_t /*vertex_id*/, int64_t num_vertices,
                 double* value) const override {
    value[0] = 1.0 / static_cast<double>(num_vertices);
  }

  void Compute(VertexContext* ctx) override;

  /// Contributions to one vertex can be summed ahead of delivery.
  MessageCombiner combiner() const override { return MessageCombiner::kSum; }

  /// Tracks the total rank mass each superstep (diagnostic invariant).
  std::vector<AggregatorSpec> aggregators() const override {
    return {{"pagerank_mass", AggregatorKind::kSum}};
  }

  int max_iterations() const { return max_iterations_; }
  double damping() const { return damping_; }

 private:
  int max_iterations_;
  double damping_;
};

/// \brief Loads `graph` and runs PageRank on the Vertexica engine,
/// returning per-vertex ranks (indexed by vertex id).
///
/// \deprecated Prefer `Engine::Run({.algorithm = "pagerank"})` — see
/// api/engine.h and docs/API.md; this wrapper remains for source
/// compatibility and for callers that manage their own Catalog.
Result<std::vector<double>> RunPageRank(Catalog* catalog, const Graph& graph,
                                        int max_iterations = 10,
                                        double damping = 0.85,
                                        VertexicaOptions options = {},
                                        RunStats* stats = nullptr);

}  // namespace vertexica

#endif  // VERTEXICA_ALGORITHMS_PAGERANK_H_
