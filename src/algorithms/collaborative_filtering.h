/// \file collaborative_filtering.h
/// \brief Vertex-centric collaborative filtering (§3.1 (iv)) — "a
/// recommendation technique to predict the edge weights in a bipartite
/// graph".

#ifndef VERTEXICA_ALGORITHMS_COLLABORATIVE_FILTERING_H_
#define VERTEXICA_ALGORITHMS_COLLABORATIVE_FILTERING_H_

#include <vector>

#include "vertexica/coordinator.h"
#include "vertexica/vertex_program.h"

namespace vertexica {

/// \brief Gradient-descent matrix factorization over a bipartite rating
/// graph (the paper's CF / "stochastic gradient descent" use case).
///
/// Every vertex (user or item) holds a length-K latent factor vector. Each
/// superstep a vertex sends [rating, factors...] along its rated edges;
/// receivers take a gradient step on the squared rating error. Requires
/// edges in both directions (RunCollaborativeFiltering adds reverses).
class CollaborativeFilteringProgram : public VertexProgram {
 public:
  CollaborativeFilteringProgram(int num_factors = 8, int max_iterations = 10,
                                double learning_rate = 0.05,
                                double regularization = 0.05)
      : k_(num_factors),
        max_iterations_(max_iterations),
        lr_(learning_rate),
        lambda_(regularization) {}

  int value_arity() const override { return k_; }
  int message_arity() const override { return k_ + 1; }

  /// Deterministic pseudo-random init in (0, 1/sqrt(K)].
  void InitValue(int64_t vertex_id, int64_t num_vertices,
                 double* value) const override;

  void Compute(VertexContext* ctx) override;

  /// Sum of squared rating errors observed in the previous superstep
  /// (training error; divide by ratings to get MSE).
  std::vector<AggregatorSpec> aggregators() const override {
    return {{"cf_sq_error", AggregatorKind::kSum}};
  }

  int num_factors() const { return k_; }
  int max_iterations() const { return max_iterations_; }

 private:
  int k_;
  int max_iterations_;
  double lr_;
  double lambda_;
};

/// \brief Learned CF model: per-vertex latent factors and final training
/// error.
struct CfModel {
  int num_factors = 0;
  /// factors[v * num_factors + k], indexed by vertex id.
  std::vector<double> factors;
  /// Sum of squared errors over directed rating edges at the last step.
  double squared_error = 0.0;

  /// \brief Predicted rating for (user, item).
  double Predict(int64_t user, int64_t item) const;
};

/// \brief Trains CF over a bipartite rating graph (users then items; edge
/// weights are ratings).
Result<CfModel> RunCollaborativeFiltering(Catalog* catalog,
                                          const Graph& ratings,
                                          int num_factors = 8,
                                          int max_iterations = 10,
                                          VertexicaOptions options = {},
                                          RunStats* stats = nullptr);

}  // namespace vertexica

#endif  // VERTEXICA_ALGORITHMS_COLLABORATIVE_FILTERING_H_
