/// \file sssp.h
/// \brief Vertex-centric single-source shortest paths (§3.1 (ii)).

#ifndef VERTEXICA_ALGORITHMS_SSSP_H_
#define VERTEXICA_ALGORITHMS_SSSP_H_

#include <limits>
#include <vector>

#include "vertexica/coordinator.h"
#include "vertexica/vertex_program.h"

namespace vertexica {

/// \brief Pregel SSSP: a vertex relaxes to the minimum of its distance and
/// incoming candidates, propagating improvements along out-edges. Purely
/// message-driven: every vertex votes to halt each superstep and is only
/// reawakened by a better candidate distance.
class ShortestPathProgram : public VertexProgram {
 public:
  explicit ShortestPathProgram(int64_t source) : source_(source) {}

  int value_arity() const override { return 1; }
  int message_arity() const override { return 1; }

  void InitValue(int64_t vertex_id, int64_t /*num_vertices*/,
                 double* value) const override {
    value[0] = vertex_id == source_
                   ? 0.0
                   : std::numeric_limits<double>::infinity();
  }

  void Compute(VertexContext* ctx) override;

  MessageCombiner combiner() const override { return MessageCombiner::kMin; }

  int64_t source() const { return source_; }

 private:
  int64_t source_;
};

/// \brief Loads `graph` and runs SSSP from `source` on the Vertexica engine.
/// Unreachable vertices report +infinity.
///
/// \deprecated Prefer `Engine::Run({.algorithm = "sssp"})` — see
/// api/engine.h and docs/API.md.
Result<std::vector<double>> RunShortestPaths(Catalog* catalog,
                                             const Graph& graph,
                                             int64_t source,
                                             VertexicaOptions options = {},
                                             RunStats* stats = nullptr);

}  // namespace vertexica

#endif  // VERTEXICA_ALGORITHMS_SSSP_H_
