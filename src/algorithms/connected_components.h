/// \file connected_components.h
/// \brief Vertex-centric connected components (§3.1 (iii)) — "find subgraphs
/// in which any two vertices are connected to each other".

#ifndef VERTEXICA_ALGORITHMS_CONNECTED_COMPONENTS_H_
#define VERTEXICA_ALGORITHMS_CONNECTED_COMPONENTS_H_

#include <vector>

#include "vertexica/coordinator.h"
#include "vertexica/vertex_program.h"

namespace vertexica {

/// \brief HashMin label propagation: every vertex starts labelled with its
/// own id and repeatedly adopts the minimum label among itself and its
/// neighbours. Converges to the minimum vertex id of each (weakly)
/// connected component.
///
/// Labels must flow against edge direction too, so run this on a graph with
/// reverse edges (RunConnectedComponents adds them automatically).
class ConnectedComponentsProgram : public VertexProgram {
 public:
  int value_arity() const override { return 1; }
  int message_arity() const override { return 1; }

  void InitValue(int64_t vertex_id, int64_t /*num_vertices*/,
                 double* value) const override {
    value[0] = static_cast<double>(vertex_id);
  }

  void Compute(VertexContext* ctx) override;

  MessageCombiner combiner() const override { return MessageCombiner::kMin; }
};

/// \brief Runs weakly-connected components; returns the component label
/// (minimum member id) of every vertex.
///
/// \deprecated Prefer `Engine::Run({.algorithm = "connected_components"})`
/// — see api/engine.h and docs/API.md.
Result<std::vector<int64_t>> RunConnectedComponents(
    Catalog* catalog, const Graph& graph, VertexicaOptions options = {},
    RunStats* stats = nullptr);

}  // namespace vertexica

#endif  // VERTEXICA_ALGORITHMS_CONNECTED_COMPONENTS_H_
