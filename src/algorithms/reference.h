/// \file reference.h
/// \brief Textbook single-threaded reference implementations used by tests
/// and benches to validate every engine (Vertexica vertex-centric,
/// Vertexica SQL, the Giraph comparator, the GraphDB comparator).

#ifndef VERTEXICA_ALGORITHMS_REFERENCE_H_
#define VERTEXICA_ALGORITHMS_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "graphgen/graph.h"

namespace vertexica {

/// \brief Synchronous power iteration with the same update rule as the
/// Pregel program: rank'(v) = (1-d)/N + d·Σ_{u→v} rank(u)/outdeg(u),
/// run for exactly `iterations` updates.
std::vector<double> PageRankReference(const Graph& graph, int iterations,
                                      double damping = 0.85);

/// \brief Dijkstra from `source` (non-negative weights); +inf when
/// unreachable.
std::vector<double> DijkstraReference(const Graph& graph, int64_t source);

/// \brief Weakly connected components via union-find; labels are the
/// minimum vertex id of each component.
std::vector<int64_t> WccReference(const Graph& graph);

/// \brief Exact triangle count of the undirected simple graph underlying
/// `graph` (self-loops and duplicate edges ignored).
int64_t TriangleCountReference(const Graph& graph);

/// \brief Per-vertex triangle participation counts (same undirected view).
std::vector<int64_t> PerVertexTrianglesReference(const Graph& graph);

}  // namespace vertexica

#endif  // VERTEXICA_ALGORITHMS_REFERENCE_H_
