#include "algorithms/reference.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace vertexica {

std::vector<double> PageRankReference(const Graph& graph, int iterations,
                                      double damping) {
  const Graph g = graph.AsDirected();
  const auto n = static_cast<size_t>(g.num_vertices);
  const Csr csr = Csr::Build(g);
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(),
              (1.0 - damping) / static_cast<double>(n));
    for (size_t v = 0; v < n; ++v) {
      const int64_t deg = csr.degree(static_cast<int64_t>(v));
      if (deg == 0) continue;
      const double share = damping * rank[v] / static_cast<double>(deg);
      for (int64_t e = csr.offsets[v]; e < csr.offsets[v + 1]; ++e) {
        next[static_cast<size_t>(csr.neighbors[static_cast<size_t>(e)])] +=
            share;
      }
    }
    rank.swap(next);
  }
  return rank;
}

std::vector<double> DijkstraReference(const Graph& graph, int64_t source) {
  const Csr csr = Csr::Build(graph);
  const auto n = static_cast<size_t>(csr.num_vertices());
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  using Entry = std::pair<double, int64_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[static_cast<size_t>(source)] = 0.0;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[static_cast<size_t>(v)]) continue;
    for (int64_t e = csr.offsets[static_cast<size_t>(v)];
         e < csr.offsets[static_cast<size_t>(v) + 1]; ++e) {
      const int64_t u = csr.neighbors[static_cast<size_t>(e)];
      const double nd = d + csr.weights[static_cast<size_t>(e)];
      if (nd < dist[static_cast<size_t>(u)]) {
        dist[static_cast<size_t>(u)] = nd;
        pq.emplace(nd, u);
      }
    }
  }
  return dist;
}

namespace {
struct UnionFind {
  explicit UnionFind(size_t n) : parent(n) {
    for (size_t i = 0; i < n; ++i) parent[i] = static_cast<int64_t>(i);
  }
  int64_t Find(int64_t x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  }
  void Union(int64_t a, int64_t b) {
    const int64_t ra = Find(a);
    const int64_t rb = Find(b);
    if (ra == rb) return;
    // Attach the larger root under the smaller so labels are min ids.
    if (ra < rb) {
      parent[static_cast<size_t>(rb)] = ra;
    } else {
      parent[static_cast<size_t>(ra)] = rb;
    }
  }
  std::vector<int64_t> parent;
};
}  // namespace

std::vector<int64_t> WccReference(const Graph& graph) {
  UnionFind uf(static_cast<size_t>(graph.num_vertices));
  for (int64_t e = 0; e < graph.num_edges(); ++e) {
    uf.Union(graph.src[static_cast<size_t>(e)],
             graph.dst[static_cast<size_t>(e)]);
  }
  std::vector<int64_t> labels(static_cast<size_t>(graph.num_vertices));
  for (int64_t v = 0; v < graph.num_vertices; ++v) {
    labels[static_cast<size_t>(v)] = uf.Find(v);
  }
  return labels;
}

namespace {
/// Sorted unique undirected adjacency (no self loops).
std::vector<std::vector<int64_t>> UndirectedAdjacency(const Graph& graph) {
  std::vector<std::vector<int64_t>> adj(
      static_cast<size_t>(graph.num_vertices));
  for (int64_t e = 0; e < graph.num_edges(); ++e) {
    const int64_t a = graph.src[static_cast<size_t>(e)];
    const int64_t b = graph.dst[static_cast<size_t>(e)];
    if (a == b) continue;
    adj[static_cast<size_t>(a)].push_back(b);
    adj[static_cast<size_t>(b)].push_back(a);
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return adj;
}
}  // namespace

int64_t TriangleCountReference(const Graph& graph) {
  const auto adj = UndirectedAdjacency(graph);
  int64_t triangles = 0;
  // Count each triangle once via the ordered (a < b < c) orientation.
  for (int64_t a = 0; a < graph.num_vertices; ++a) {
    const auto& na = adj[static_cast<size_t>(a)];
    for (int64_t b : na) {
      if (b <= a) continue;
      const auto& nb = adj[static_cast<size_t>(b)];
      // Intersect neighbours greater than b.
      size_t i = 0;
      size_t j = 0;
      while (i < na.size() && j < nb.size()) {
        if (na[i] < nb[j]) {
          ++i;
        } else if (na[i] > nb[j]) {
          ++j;
        } else {
          if (na[i] > b) ++triangles;
          ++i;
          ++j;
        }
      }
    }
  }
  return triangles;
}

std::vector<int64_t> PerVertexTrianglesReference(const Graph& graph) {
  const auto adj = UndirectedAdjacency(graph);
  std::vector<int64_t> counts(static_cast<size_t>(graph.num_vertices), 0);
  for (int64_t a = 0; a < graph.num_vertices; ++a) {
    const auto& na = adj[static_cast<size_t>(a)];
    for (int64_t b : na) {
      if (b <= a) continue;
      const auto& nb = adj[static_cast<size_t>(b)];
      size_t i = 0;
      size_t j = 0;
      while (i < na.size() && j < nb.size()) {
        if (na[i] < nb[j]) {
          ++i;
        } else if (na[i] > nb[j]) {
          ++j;
        } else {
          const int64_t c = na[i];
          if (c > b) {
            counts[static_cast<size_t>(a)]++;
            counts[static_cast<size_t>(b)]++;
            counts[static_cast<size_t>(c)]++;
          }
          ++i;
          ++j;
        }
      }
    }
  }
  return counts;
}

}  // namespace vertexica
