#include "expr/expression.h"

#include <cmath>

#include "common/string_util.h"

namespace vertexica {

namespace {

bool IsArithmetic(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return true;
    default:
      return false;
  }
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

int64_t ApplyIntArith(BinaryOp op, int64_t a, int64_t b) {
  switch (op) {
    case BinaryOp::kAdd:
      return a + b;
    case BinaryOp::kSub:
      return a - b;
    case BinaryOp::kMul:
      return a * b;
    case BinaryOp::kMod:
      return b == 0 ? 0 : a % b;
    default:
      return 0;
  }
}

double ApplyDoubleArith(BinaryOp op, double a, double b) {
  switch (op) {
    case BinaryOp::kAdd:
      return a + b;
    case BinaryOp::kSub:
      return a - b;
    case BinaryOp::kMul:
      return a * b;
    case BinaryOp::kDiv:
      return a / b;
    case BinaryOp::kMod:
      return std::fmod(a, b);
    default:
      return 0.0;
  }
}

bool ApplyCompare(BinaryOp op, int cmp) {
  switch (op) {
    case BinaryOp::kEq:
      return cmp == 0;
    case BinaryOp::kNe:
      return cmp != 0;
    case BinaryOp::kLt:
      return cmp < 0;
    case BinaryOp::kLe:
      return cmp <= 0;
    case BinaryOp::kGt:
      return cmp > 0;
    case BinaryOp::kGe:
      return cmp >= 0;
    default:
      return false;
  }
}

}  // namespace

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

// ---------------------------------------------------------------- ColumnRef

Result<Column> ColumnRefExpr::Evaluate(const Table& batch) const {
  const Column* col = batch.ColumnByName(name_);
  if (col == nullptr) {
    return Status::InvalidArgument("Unknown column '" + name_ + "' in " +
                                   batch.schema().ToString());
  }
  return *col;
}

Result<DataType> ColumnRefExpr::OutputType(const Schema& schema) const {
  const int idx = schema.FieldIndex(name_);
  if (idx < 0) {
    return Status::InvalidArgument("Unknown column '" + name_ + "' in " +
                                   schema.ToString());
  }
  return schema.field(idx).type;
}

// ------------------------------------------------------------------ Literal

Result<Column> LiteralExpr::Evaluate(const Table& batch) const {
  Column out(type_);
  out.Reserve(batch.num_rows());
  for (int64_t i = 0; i < batch.num_rows(); ++i) out.AppendValue(value_);
  return out;
}

Result<DataType> LiteralExpr::OutputType(const Schema&) const { return type_; }

// ------------------------------------------------------------------- Binary

Result<DataType> BinaryExpr::OutputType(const Schema& schema) const {
  VX_ASSIGN_OR_RETURN(DataType lt, left_->OutputType(schema));
  VX_ASSIGN_OR_RETURN(DataType rt, right_->OutputType(schema));
  if (IsArithmetic(op_)) {
    if (!IsNumeric(lt) || !IsNumeric(rt)) {
      return Status::TypeError(StringFormat(
          "Arithmetic '%s' requires numeric operands, got %s and %s",
          BinaryOpName(op_), DataTypeName(lt), DataTypeName(rt)));
    }
    if (op_ == BinaryOp::kDiv) return DataType::kDouble;
    return (lt == DataType::kDouble || rt == DataType::kDouble)
               ? DataType::kDouble
               : DataType::kInt64;
  }
  if (IsComparison(op_)) {
    const bool both_numeric = IsNumeric(lt) && IsNumeric(rt);
    if (lt != rt && !both_numeric) {
      return Status::TypeError(StringFormat(
          "Cannot compare %s with %s", DataTypeName(lt), DataTypeName(rt)));
    }
    return DataType::kBool;
  }
  // AND / OR
  if (lt != DataType::kBool || rt != DataType::kBool) {
    return Status::TypeError(StringFormat(
        "'%s' requires BOOL operands, got %s and %s", BinaryOpName(op_),
        DataTypeName(lt), DataTypeName(rt)));
  }
  return DataType::kBool;
}

Result<Column> BinaryExpr::Evaluate(const Table& batch) const {
  VX_ASSIGN_OR_RETURN(DataType out_type, OutputType(batch.schema()));
  VX_ASSIGN_OR_RETURN(Column lhs, left_->Evaluate(batch));
  VX_ASSIGN_OR_RETURN(Column rhs, right_->Evaluate(batch));
  const int64_t n = batch.num_rows();
  Column out(out_type);
  out.Reserve(n);

  const bool no_nulls = lhs.null_count() == 0 && rhs.null_count() == 0;

  if (IsArithmetic(op_)) {
    if (out_type == DataType::kInt64 && no_nulls) {
      // int64 (+,-,*,%) int64 fast path.
      const auto& a = lhs.ints();
      const auto& b = rhs.ints();
      auto* dst = out.mutable_ints();
      dst->resize(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        (*dst)[static_cast<size_t>(i)] = ApplyIntArith(
            op_, a[static_cast<size_t>(i)], b[static_cast<size_t>(i)]);
      }
      return Column::FromInts(std::move(*dst));
    }
    for (int64_t i = 0; i < n; ++i) {
      if (lhs.IsNull(i) || rhs.IsNull(i)) {
        out.AppendNull();
        continue;
      }
      if (out_type == DataType::kInt64) {
        out.AppendInt64(ApplyIntArith(op_, lhs.GetInt64(i), rhs.GetInt64(i)));
      } else {
        out.AppendDouble(
            ApplyDoubleArith(op_, lhs.GetNumeric(i), rhs.GetNumeric(i)));
      }
    }
    return out;
  }

  if (IsComparison(op_)) {
    const bool numeric = IsNumeric(lhs.type()) && IsNumeric(rhs.type());
    for (int64_t i = 0; i < n; ++i) {
      if (lhs.IsNull(i) || rhs.IsNull(i)) {
        out.AppendNull();
        continue;
      }
      int cmp;
      if (numeric && lhs.type() != rhs.type()) {
        const double a = lhs.GetNumeric(i);
        const double b = rhs.GetNumeric(i);
        cmp = a < b ? -1 : (a > b ? 1 : 0);
      } else {
        cmp = lhs.CompareRows(i, rhs, i);
      }
      out.AppendBool(ApplyCompare(op_, cmp));
    }
    return out;
  }

  // AND / OR with Kleene semantics.
  for (int64_t i = 0; i < n; ++i) {
    const bool ln = lhs.IsNull(i);
    const bool rn = rhs.IsNull(i);
    const bool lv = ln ? false : lhs.GetBool(i);
    const bool rv = rn ? false : rhs.GetBool(i);
    if (op_ == BinaryOp::kAnd) {
      if ((!ln && !lv) || (!rn && !rv)) {
        out.AppendBool(false);
      } else if (ln || rn) {
        out.AppendNull();
      } else {
        out.AppendBool(true);
      }
    } else {  // OR
      if ((!ln && lv) || (!rn && rv)) {
        out.AppendBool(true);
      } else if (ln || rn) {
        out.AppendNull();
      } else {
        out.AppendBool(false);
      }
    }
  }
  return out;
}

std::string BinaryExpr::ToString() const {
  return "(" + left_->ToString() + " " + BinaryOpName(op_) + " " +
         right_->ToString() + ")";
}

// -------------------------------------------------------------------- Unary

Result<DataType> UnaryExpr::OutputType(const Schema& schema) const {
  VX_ASSIGN_OR_RETURN(DataType t, input_->OutputType(schema));
  switch (op_) {
    case UnaryOp::kNot:
      if (t != DataType::kBool) {
        return Status::TypeError("NOT requires BOOL");
      }
      return DataType::kBool;
    case UnaryOp::kNegate:
    case UnaryOp::kAbs:
      if (!IsNumeric(t)) {
        return Status::TypeError("Numeric unary op requires numeric input");
      }
      return t;
    case UnaryOp::kIsNull:
    case UnaryOp::kIsNotNull:
      return DataType::kBool;
  }
  return Status::Internal("bad unary op");
}

Result<Column> UnaryExpr::Evaluate(const Table& batch) const {
  VX_ASSIGN_OR_RETURN(DataType out_type, OutputType(batch.schema()));
  VX_ASSIGN_OR_RETURN(Column in, input_->Evaluate(batch));
  const int64_t n = in.length();
  Column out(out_type);
  out.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    switch (op_) {
      case UnaryOp::kIsNull:
        out.AppendBool(in.IsNull(i));
        break;
      case UnaryOp::kIsNotNull:
        out.AppendBool(!in.IsNull(i));
        break;
      case UnaryOp::kNot:
        if (in.IsNull(i)) {
          out.AppendNull();
        } else {
          out.AppendBool(!in.GetBool(i));
        }
        break;
      case UnaryOp::kNegate:
        if (in.IsNull(i)) {
          out.AppendNull();
        } else if (in.type() == DataType::kInt64) {
          out.AppendInt64(-in.GetInt64(i));
        } else {
          out.AppendDouble(-in.GetDouble(i));
        }
        break;
      case UnaryOp::kAbs:
        if (in.IsNull(i)) {
          out.AppendNull();
        } else if (in.type() == DataType::kInt64) {
          out.AppendInt64(std::abs(in.GetInt64(i)));
        } else {
          out.AppendDouble(std::fabs(in.GetDouble(i)));
        }
        break;
    }
  }
  return out;
}

std::string UnaryExpr::ToString() const {
  switch (op_) {
    case UnaryOp::kNot:
      return "NOT " + input_->ToString();
    case UnaryOp::kNegate:
      return "-" + input_->ToString();
    case UnaryOp::kIsNull:
      return input_->ToString() + " IS NULL";
    case UnaryOp::kIsNotNull:
      return input_->ToString() + " IS NOT NULL";
    case UnaryOp::kAbs:
      return "ABS(" + input_->ToString() + ")";
  }
  return "?";
}

// --------------------------------------------------------------------- Cast

Result<DataType> CastExpr::OutputType(const Schema& schema) const {
  VX_ASSIGN_OR_RETURN(DataType t, input_->OutputType(schema));
  if (t == to_) return to_;
  if (to_ == DataType::kString) return to_;  // anything renders to string
  if (IsNumeric(t) && IsNumeric(to_)) return to_;
  if (t == DataType::kBool && to_ == DataType::kInt64) return to_;
  return Status::TypeError(StringFormat("Cannot cast %s to %s",
                                        DataTypeName(t), DataTypeName(to_)));
}

Result<Column> CastExpr::Evaluate(const Table& batch) const {
  VX_RETURN_NOT_OK(OutputType(batch.schema()).status());
  VX_ASSIGN_OR_RETURN(Column in, input_->Evaluate(batch));
  if (in.type() == to_) return in;
  Column out(to_);
  out.Reserve(in.length());
  for (int64_t i = 0; i < in.length(); ++i) {
    if (in.IsNull(i)) {
      out.AppendNull();
      continue;
    }
    switch (to_) {
      case DataType::kInt64:
        if (in.type() == DataType::kBool) {
          out.AppendInt64(in.GetBool(i) ? 1 : 0);
        } else {
          out.AppendInt64(static_cast<int64_t>(in.GetDouble(i)));
        }
        break;
      case DataType::kDouble:
        out.AppendDouble(in.GetNumeric(i));
        break;
      case DataType::kString: {
        Value v = in.GetValue(i);
        out.AppendString(v.is_string() ? v.string_value() : v.ToString());
        break;
      }
      case DataType::kBool:
        return Status::TypeError("Cannot cast to BOOL");
    }
  }
  return out;
}

std::string CastExpr::ToString() const {
  return StringFormat("CAST(%s AS %s)", input_->ToString().c_str(),
                      DataTypeName(to_));
}

// ----------------------------------------------------------------------- If

namespace {
/// Common branch type for If/Coalesce: equal types, or promoted numeric.
Result<DataType> BranchType(DataType a, DataType b, const char* what) {
  if (a == b) return a;
  if (IsNumeric(a) && IsNumeric(b)) return DataType::kDouble;
  return Status::TypeError(StringFormat("%s branches have types %s and %s",
                                        what, DataTypeName(a),
                                        DataTypeName(b)));
}

void AppendCoerced(Column* out, const Column& in, int64_t i) {
  if (in.IsNull(i)) {
    out->AppendNull();
  } else if (out->type() == DataType::kDouble &&
             in.type() == DataType::kInt64) {
    out->AppendDouble(static_cast<double>(in.GetInt64(i)));
  } else {
    out->AppendValue(in.GetValue(i));
  }
}
}  // namespace

Result<DataType> IfExpr::OutputType(const Schema& schema) const {
  VX_ASSIGN_OR_RETURN(DataType ct, cond_->OutputType(schema));
  if (ct != DataType::kBool) {
    return Status::TypeError("CASE condition must be BOOL");
  }
  VX_ASSIGN_OR_RETURN(DataType tt, then_->OutputType(schema));
  VX_ASSIGN_OR_RETURN(DataType et, else_->OutputType(schema));
  return BranchType(tt, et, "CASE");
}

Result<Column> IfExpr::Evaluate(const Table& batch) const {
  VX_ASSIGN_OR_RETURN(DataType out_type, OutputType(batch.schema()));
  VX_ASSIGN_OR_RETURN(Column cond, cond_->Evaluate(batch));
  VX_ASSIGN_OR_RETURN(Column thenv, then_->Evaluate(batch));
  VX_ASSIGN_OR_RETURN(Column elsev, else_->Evaluate(batch));
  Column out(out_type);
  out.Reserve(cond.length());
  for (int64_t i = 0; i < cond.length(); ++i) {
    const bool take_then = !cond.IsNull(i) && cond.GetBool(i);
    AppendCoerced(&out, take_then ? thenv : elsev, i);
  }
  return out;
}

std::string IfExpr::ToString() const {
  return "CASE WHEN " + cond_->ToString() + " THEN " + then_->ToString() +
         " ELSE " + else_->ToString() + " END";
}

// ------------------------------------------------------------------ Coalesce

Result<DataType> CoalesceExpr::OutputType(const Schema& schema) const {
  VX_ASSIGN_OR_RETURN(DataType a, first_->OutputType(schema));
  VX_ASSIGN_OR_RETURN(DataType b, second_->OutputType(schema));
  return BranchType(a, b, "COALESCE");
}

Result<Column> CoalesceExpr::Evaluate(const Table& batch) const {
  VX_ASSIGN_OR_RETURN(DataType out_type, OutputType(batch.schema()));
  VX_ASSIGN_OR_RETURN(Column a, first_->Evaluate(batch));
  VX_ASSIGN_OR_RETURN(Column b, second_->Evaluate(batch));
  Column out(out_type);
  out.Reserve(a.length());
  for (int64_t i = 0; i < a.length(); ++i) {
    AppendCoerced(&out, a.IsNull(i) ? b : a, i);
  }
  return out;
}

std::string CoalesceExpr::ToString() const {
  return "COALESCE(" + first_->ToString() + ", " + second_->ToString() + ")";
}

// ---------------------------------------------------------------- Factories

ExprPtr Col(std::string name) {
  return std::make_shared<ColumnRefExpr>(std::move(name));
}
ExprPtr Lit(int64_t v) {
  return std::make_shared<LiteralExpr>(Value(v), DataType::kInt64);
}
ExprPtr Lit(double v) {
  return std::make_shared<LiteralExpr>(Value(v), DataType::kDouble);
}
ExprPtr Lit(bool v) {
  return std::make_shared<LiteralExpr>(Value(v), DataType::kBool);
}
ExprPtr Lit(std::string v) {
  return std::make_shared<LiteralExpr>(Value(std::move(v)), DataType::kString);
}
ExprPtr NullLit(DataType type) {
  return std::make_shared<LiteralExpr>(Value::Null(), type);
}

namespace {
ExprPtr MakeBinary(BinaryOp op, ExprPtr a, ExprPtr b) {
  return std::make_shared<BinaryExpr>(op, std::move(a), std::move(b));
}
}  // namespace

ExprPtr Add(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kAdd, std::move(a), std::move(b));
}
ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kSub, std::move(a), std::move(b));
}
ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kMul, std::move(a), std::move(b));
}
ExprPtr Div(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kDiv, std::move(a), std::move(b));
}
ExprPtr Mod(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kMod, std::move(a), std::move(b));
}
ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kEq, std::move(a), std::move(b));
}
ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kNe, std::move(a), std::move(b));
}
ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kLt, std::move(a), std::move(b));
}
ExprPtr Le(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kLe, std::move(a), std::move(b));
}
ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kGt, std::move(a), std::move(b));
}
ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kGe, std::move(a), std::move(b));
}
ExprPtr And(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kAnd, std::move(a), std::move(b));
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kOr, std::move(a), std::move(b));
}
ExprPtr Not(ExprPtr a) {
  return std::make_shared<UnaryExpr>(UnaryOp::kNot, std::move(a));
}
ExprPtr Negate(ExprPtr a) {
  return std::make_shared<UnaryExpr>(UnaryOp::kNegate, std::move(a));
}
ExprPtr IsNull(ExprPtr a) {
  return std::make_shared<UnaryExpr>(UnaryOp::kIsNull, std::move(a));
}
ExprPtr IsNotNull(ExprPtr a) {
  return std::make_shared<UnaryExpr>(UnaryOp::kIsNotNull, std::move(a));
}
ExprPtr Abs(ExprPtr a) {
  return std::make_shared<UnaryExpr>(UnaryOp::kAbs, std::move(a));
}
ExprPtr Cast(ExprPtr a, DataType to) {
  return std::make_shared<CastExpr>(std::move(a), to);
}
ExprPtr If(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr) {
  return std::make_shared<IfExpr>(std::move(cond), std::move(then_expr),
                                  std::move(else_expr));
}
ExprPtr Coalesce(ExprPtr a, ExprPtr b) {
  return std::make_shared<CoalesceExpr>(std::move(a), std::move(b));
}
ExprPtr Least(ExprPtr a, ExprPtr b) {
  // NULL-safe: pick b only when it is non-NULL and strictly smaller.
  return If(And(IsNotNull(b), Lt(b, a)), b, a);
}

}  // namespace vertexica
