/// \file expression.h
/// \brief Scalar expression trees evaluated over table batches.
///
/// Expressions power the relational operators used for graph pre/post
/// processing (§3.4): selection predicates, projections, computed columns.
/// Evaluation is column-at-a-time with typed fast paths for numeric work.

#ifndef VERTEXICA_EXPR_EXPRESSION_H_
#define VERTEXICA_EXPR_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/column.h"
#include "storage/table.h"

namespace vertexica {

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// \brief Base class for all expression nodes.
class Expr {
 public:
  virtual ~Expr() = default;

  /// \brief Evaluates this expression against every row of `batch`,
  /// producing a column of `batch.num_rows()` values.
  virtual Result<Column> Evaluate(const Table& batch) const = 0;

  /// \brief The output type given an input schema; fails on type errors
  /// (e.g. arithmetic on strings) or unresolvable column names.
  virtual Result<DataType> OutputType(const Schema& schema) const = 0;

  /// \brief SQL-ish rendering, for plan explanation and error messages.
  virtual std::string ToString() const = 0;
};

/// \brief Reference to an input column by name.
class ColumnRefExpr : public Expr {
 public:
  explicit ColumnRefExpr(std::string name) : name_(std::move(name)) {}
  Result<Column> Evaluate(const Table& batch) const override;
  Result<DataType> OutputType(const Schema& schema) const override;
  std::string ToString() const override { return name_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// \brief A constant.
class LiteralExpr : public Expr {
 public:
  LiteralExpr(Value value, DataType type)
      : value_(std::move(value)), type_(type) {}
  Result<Column> Evaluate(const Table& batch) const override;
  Result<DataType> OutputType(const Schema& schema) const override;
  std::string ToString() const override { return value_.ToString(); }
  const Value& value() const { return value_; }
  DataType type() const { return type_; }

 private:
  Value value_;
  DataType type_;
};

/// \brief Binary operators.
enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

const char* BinaryOpName(BinaryOp op);

/// \brief A binary expression with SQL NULL semantics.
///
/// Arithmetic/comparison: NULL in → NULL out. AND/OR use Kleene logic
/// (`false AND NULL` is false; `true OR NULL` is true).
class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}
  Result<Column> Evaluate(const Table& batch) const override;
  Result<DataType> OutputType(const Schema& schema) const override;
  std::string ToString() const override;
  /// \name Introspection (predicate pushdown, exec/filter.h)
  /// @{
  BinaryOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  /// @}

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// \brief Unary operators.
enum class UnaryOp { kNot, kNegate, kIsNull, kIsNotNull, kAbs };

/// \brief A unary expression.
class UnaryExpr : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr input)
      : op_(op), input_(std::move(input)) {}
  Result<Column> Evaluate(const Table& batch) const override;
  Result<DataType> OutputType(const Schema& schema) const override;
  std::string ToString() const override;

 private:
  UnaryOp op_;
  ExprPtr input_;
};

/// \brief CAST(input AS type). Numeric casts truncate toward zero;
/// casting to string renders like Value::ToString (without quotes).
class CastExpr : public Expr {
 public:
  CastExpr(ExprPtr input, DataType to) : input_(std::move(input)), to_(to) {}
  Result<Column> Evaluate(const Table& batch) const override;
  Result<DataType> OutputType(const Schema& schema) const override;
  std::string ToString() const override;

 private:
  ExprPtr input_;
  DataType to_;
};

/// \brief CASE WHEN cond THEN a ELSE b END. A NULL condition selects the
/// else branch (SQL semantics). Branch types must match, or both be numeric
/// (promoted to double when mixed).
class IfExpr : public Expr {
 public:
  IfExpr(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr)
      : cond_(std::move(cond)),
        then_(std::move(then_expr)),
        else_(std::move(else_expr)) {}
  Result<Column> Evaluate(const Table& batch) const override;
  Result<DataType> OutputType(const Schema& schema) const override;
  std::string ToString() const override;

 private:
  ExprPtr cond_;
  ExprPtr then_;
  ExprPtr else_;
};

/// \brief COALESCE(a, b): a when non-NULL, else b.
class CoalesceExpr : public Expr {
 public:
  CoalesceExpr(ExprPtr first, ExprPtr second)
      : first_(std::move(first)), second_(std::move(second)) {}
  Result<Column> Evaluate(const Table& batch) const override;
  Result<DataType> OutputType(const Schema& schema) const override;
  std::string ToString() const override;

 private:
  ExprPtr first_;
  ExprPtr second_;
};

/// \name Convenience factories (fluent expression building)
/// @{
ExprPtr Col(std::string name);
ExprPtr Lit(int64_t v);
ExprPtr Lit(double v);
ExprPtr Lit(bool v);
ExprPtr Lit(std::string v);
ExprPtr NullLit(DataType type);
ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
ExprPtr Div(ExprPtr a, ExprPtr b);
ExprPtr Mod(ExprPtr a, ExprPtr b);
ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Ne(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Ge(ExprPtr a, ExprPtr b);
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr a);
ExprPtr Negate(ExprPtr a);
ExprPtr IsNull(ExprPtr a);
ExprPtr IsNotNull(ExprPtr a);
ExprPtr Abs(ExprPtr a);
ExprPtr Cast(ExprPtr a, DataType to);
ExprPtr If(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr);
ExprPtr Coalesce(ExprPtr a, ExprPtr b);
/// \brief LEAST(a, b) built from If (NULL-safe: NULL operand loses).
ExprPtr Least(ExprPtr a, ExprPtr b);
/// @}

}  // namespace vertexica

#endif  // VERTEXICA_EXPR_EXPRESSION_H_
