#include "catalog/catalog.h"

namespace vertexica {

Result<std::shared_ptr<const Table>> CatalogSnapshot::GetTable(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("Table '" + name + "' does not exist");
  }
  return it->second;
}

bool CatalogSnapshot::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

std::vector<std::string> CatalogSnapshot::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

Catalog::Catalog(const CatalogSnapshot& snapshot)
    : version_(snapshot.version_), tables_(snapshot.tables_) {}

Status Catalog::CreateTable(const std::string& name, Table table) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("Table '" + name + "' already exists");
  }
  tables_[name] = std::make_shared<const Table>(std::move(table));
  ++version_;
  return Status::OK();
}

Status Catalog::ReplaceTable(const std::string& name, Table table) {
  return ReplaceTable(name, std::make_shared<const Table>(std::move(table)));
}

Status Catalog::ReplaceTable(const std::string& name,
                             std::shared_ptr<const Table> table) {
  std::lock_guard<std::mutex> lock(mutex_);
  tables_[name] = std::move(table);
  ++version_;
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tables_.erase(name) == 0) {
    return Status::NotFound("Table '" + name + "' does not exist");
  }
  ++version_;
  return Status::OK();
}

CatalogSnapshot Catalog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CatalogSnapshot snapshot;
  snapshot.version_ = version_;
  snapshot.tables_ = tables_;
  return snapshot;
}

uint64_t Catalog::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return version_;
}

Result<std::shared_ptr<const Table>> Catalog::GetTable(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("Table '" + name + "' does not exist");
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tables_.count(name) > 0;
}

Result<int64_t> Catalog::RowCount(const std::string& name) const {
  VX_ASSIGN_OR_RETURN(auto table, GetTable(name));
  return table->num_rows();
}

std::vector<std::string> Catalog::TableNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace vertexica
