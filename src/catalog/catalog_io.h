/// \file catalog_io.h
/// \brief Catalog persistence: crash-atomic checkpoint and verified
/// recovery.
///
/// §1 lists "transactions, checkpointing and recovery, fault tolerance,
/// durability" among the relational features users are reluctant to
/// forego. This module provides the checkpoint/recover pair with the
/// crash-atomicity those words imply (checkpoint format v2; see
/// docs/DEVELOPING.md, "Fault injection & recovery"):
///
///  - `SaveCatalog` writes one CSV per table plus a MANIFEST (per-file
///    CRC32 and byte counts, format version header) into a temp
///    directory, fsyncs everything, atomically renames it into place as a
///    new numbered *generation*, and only then swaps the `CURRENT`
///    pointer file. A crash — real or injected via the
///    `checkpoint.*` fault points (common/fault_injection.h) — at any
///    moment leaves either the previous generation or the new one fully
///    intact, never a torn mixture.
///  - `LoadCatalog` follows `CURRENT`, verifies every file against the
///    MANIFEST's checksums and sizes, rejects torn or partial generations
///    with precise diagnostics, and falls back to the newest older
///    generation that verifies. Directories written by the pre-v2 format
///    (a bare MANIFEST, no checksums) still load.
///
/// Types come from the manifest, not from CSV inference, so restores are
/// lossless.

#ifndef VERTEXICA_CATALOG_CATALOG_IO_H_
#define VERTEXICA_CATALOG_CATALOG_IO_H_

#include <string>

#include "catalog/catalog.h"
#include "common/status.h"

namespace vertexica {

/// \brief Writes every table of `catalog` into a new checkpoint generation
/// under `directory` (created if missing) and atomically publishes it via
/// the `CURRENT` pointer. The two newest generations are retained; older
/// ones are pruned.
Status SaveCatalog(const Catalog& catalog, const std::string& directory);

/// \brief Restores the newest verifiable checkpoint generation under
/// `directory` into `catalog` (existing tables with the same names are
/// replaced; on any error `catalog` is left untouched).
Status LoadCatalog(const std::string& directory, Catalog* catalog);

}  // namespace vertexica

#endif  // VERTEXICA_CATALOG_CATALOG_IO_H_
