/// \file catalog_io.h
/// \brief Catalog persistence: checkpoint and recovery.
///
/// §1 lists "transactions, checkpointing and recovery, fault tolerance,
/// durability" among the relational features users are reluctant to
/// forego. This module provides the checkpoint/recover pair: a catalog is
/// saved as one CSV file per table plus a manifest recording names and
/// schemas, and restored losslessly (types come from the manifest, not
/// from CSV inference).

#ifndef VERTEXICA_CATALOG_CATALOG_IO_H_
#define VERTEXICA_CATALOG_CATALOG_IO_H_

#include <string>

#include "catalog/catalog.h"
#include "common/status.h"

namespace vertexica {

/// \brief Writes every table of `catalog` into `directory` (created if
/// missing): a `MANIFEST` file plus `<n>.csv` per table.
Status SaveCatalog(const Catalog& catalog, const std::string& directory);

/// \brief Restores a catalog previously written by SaveCatalog into
/// `catalog` (existing tables with the same names are replaced).
Status LoadCatalog(const std::string& directory, Catalog* catalog);

}  // namespace vertexica

#endif  // VERTEXICA_CATALOG_CATALOG_IO_H_
