#include "catalog/catalog_io.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "storage/csv.h"

namespace vertexica {

namespace {

namespace fs = std::filesystem;

// Checkpoint format v2 (docs/DEVELOPING.md, "Fault injection & recovery"):
//
//   <root>/CURRENT            one line naming the good generation dir
//   <root>/gen-NNNNNN/        MANIFEST + one CSV per table
//   <root>/.tmp-gen-NNNNNN/   in-progress write, never read
//
// MANIFEST first line: "VERTEXICA_CHECKPOINT 2". Table lines:
//   file \t crc32:XXXXXXXX \t bytes:N \t table-name \t col:TYPE \t ...
// Legacy (v1) manifests — no header, "file \t name \t col:TYPE..." lines,
// written straight into <root> — are still read, without verification.
constexpr const char* kManifestHeader = "VERTEXICA_CHECKPOINT 2";
constexpr const char* kCurrentFile = "CURRENT";
constexpr const char* kGenPrefix = "gen-";
constexpr const char* kTmpPrefix = ".tmp-";

const char* TypeToken(DataType t) { return DataTypeName(t); }

Result<DataType> TokenToType(const std::string& token) {
  if (token == "BOOL") return DataType::kBool;
  if (token == "INT64") return DataType::kInt64;
  if (token == "DOUBLE") return DataType::kDouble;
  if (token == "STRING") return DataType::kString;
  return Status::IoError("manifest: unknown type '" + token + "'");
}

/// Durability barrier on a file or directory; a no-op where POSIX fsync is
/// unavailable. Failure to sync is an error — a checkpoint that might not
/// survive power loss must not claim success.
Status FsyncPath(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path + "' for fsync");
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError("fsync failed for '" + path + "'");
#else
  (void)path;
#endif
  return Status::OK();
}

Status WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot write '" + path + "'");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good()) return Status::IoError("write failed for '" + path + "'");
  out.close();
  return FsyncPath(path);
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot read '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Parses "gen-NNNNNN" into NNNNNN; nullopt for anything else.
std::optional<uint64_t> GenNumber(const std::string& name) {
  const std::string prefix = kGenPrefix;
  if (name.rfind(prefix, 0) != 0) return std::nullopt;
  const std::string digits = name.substr(prefix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  return std::strtoull(digits.c_str(), nullptr, 10);
}

std::string GenName(uint64_t n) {
  return StringFormat("%s%06llu", kGenPrefix,
                      static_cast<unsigned long long>(n));
}

/// Generation numbers present under `root`, unsorted.
std::vector<uint64_t> ListGenerations(const std::string& root) {
  std::vector<uint64_t> gens;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (!entry.is_directory()) continue;
    if (auto n = GenNumber(entry.path().filename().string())) {
      gens.push_back(*n);
    }
  }
  return gens;
}

/// One table staged for installation into the caller's catalog.
struct StagedTable {
  std::string name;
  Table table;
  StagedTable(std::string n, Table t)
      : name(std::move(n)), table(std::move(t)) {}
};

/// Loads and verifies one generation (or legacy) directory into `staged`
/// without touching any catalog. `verified` selects the v2 path (checksum
/// and size verification against the manifest).
Status LoadTablesFrom(const std::string& dir, bool verified,
                      std::vector<StagedTable>* staged) {
  const std::string manifest_path = dir + "/MANIFEST";
  std::error_code ec;
  if (!fs::exists(manifest_path, ec)) {
    return Status::IoError("checkpoint '" + dir + "' has no MANIFEST");
  }
  VX_ASSIGN_OR_RETURN(std::string manifest_bytes,
                      ReadFileBytes(manifest_path));
  if (Trim(manifest_bytes).empty()) {
    return Status::IoError("MANIFEST in '" + dir + "' is empty");
  }

  std::istringstream manifest(manifest_bytes);
  std::string line;
  if (verified) {
    std::getline(manifest, line);
    if (Trim(line) != kManifestHeader) {
      return Status::IoError("MANIFEST in '" + dir +
                             "' has an unsupported format header: '" +
                             Trim(line) + "' (expected '" + kManifestHeader +
                             "')");
    }
  }

  while (std::getline(manifest, line)) {
    if (Trim(line).empty()) continue;
    const auto parts = Split(line, '\t');
    const size_t min_fields = verified ? 4 : 2;
    if (parts.size() < min_fields) {
      return Status::IoError("bad manifest line in '" + dir + "': '" + line +
                             "'");
    }

    const std::string& file = parts[0];
    uint32_t expect_crc = 0;
    uint64_t expect_bytes = 0;
    size_t name_idx = 1;
    if (verified) {
      if (parts[1].rfind("crc32:", 0) != 0 ||
          parts[2].rfind("bytes:", 0) != 0) {
        return Status::IoError("bad manifest line in '" + dir + "': '" +
                               line + "' (missing crc32:/bytes: fields)");
      }
      expect_crc = static_cast<uint32_t>(
          std::strtoul(parts[1].substr(6).c_str(), nullptr, 16));
      expect_bytes = std::strtoull(parts[2].substr(6).c_str(), nullptr, 10);
      name_idx = 3;
    }
    const std::string& name = parts[name_idx];

    Schema schema;
    for (size_t i = name_idx + 1; i < parts.size(); ++i) {
      const auto colon = parts[i].rfind(':');
      if (colon == std::string::npos) {
        return Status::IoError("bad manifest column in '" + dir + "': '" +
                               parts[i] + "'");
      }
      VX_ASSIGN_OR_RETURN(DataType type,
                          TokenToType(parts[i].substr(colon + 1)));
      schema.AddField({parts[i].substr(0, colon), type});
    }

    const std::string file_path = dir + "/" + file;
    if (!fs::exists(file_path, ec)) {
      return Status::IoError("MANIFEST names table file '" + file +
                             "' but '" + dir + "' lacks it");
    }
    VX_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(file_path));
    if (verified) {
      if (bytes.size() != expect_bytes) {
        return Status::IoError(StringFormat(
            "table file '%s' in '%s' is torn: MANIFEST records %llu bytes, "
            "file has %llu",
            file.c_str(), dir.c_str(),
            static_cast<unsigned long long>(expect_bytes),
            static_cast<unsigned long long>(bytes.size())));
      }
      const uint32_t got_crc = Crc32(bytes);
      if (got_crc != expect_crc) {
        return Status::IoError(StringFormat(
            "checksum mismatch for '%s' in '%s': MANIFEST records "
            "crc32:%08x, file has crc32:%08x",
            file.c_str(), dir.c_str(), expect_crc, got_crc));
      }
    }
    VX_ASSIGN_OR_RETURN(Table table, ParseCsvWithSchema(bytes, schema));
    staged->emplace_back(name, std::move(table));
  }
  return Status::OK();
}

Status InstallStaged(std::vector<StagedTable> staged, Catalog* catalog) {
  for (auto& entry : staged) {
    VX_RETURN_NOT_OK(
        catalog->ReplaceTable(entry.name, std::move(entry.table)));
  }
  return Status::OK();
}

/// Best-effort cleanup after a successful publish: drop generations older
/// than the previous one (keep current + one fallback) and any leftover
/// temp dirs. Failures only warn — the checkpoint itself is already
/// durable.
void PruneGenerations(const std::string& root, uint64_t current_gen) {
  std::error_code ec;
  std::vector<uint64_t> gens = ListGenerations(root);
  uint64_t keep_floor = 0;
  for (uint64_t g : gens) {
    if (g < current_gen && g > keep_floor) keep_floor = g;
  }
  for (uint64_t g : gens) {
    if (g >= keep_floor) continue;
    fs::remove_all(root + "/" + GenName(g), ec);
    if (ec) {
      VX_LOG(kWarn) << "checkpoint prune: cannot remove '"
                              << GenName(g) << "': " << ec.message();
    }
  }
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kTmpPrefix, 0) == 0) {
      std::error_code rm_ec;
      fs::remove_all(entry.path(), rm_ec);
    }
  }
}

}  // namespace

Status SaveCatalog(const Catalog& catalog, const std::string& directory) {
  VX_FAULT_POINT("checkpoint.begin");

  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::IoError("cannot create '" + directory +
                           "': " + ec.message());
  }

  uint64_t next_gen = 1;
  for (uint64_t g : ListGenerations(directory)) {
    if (g >= next_gen) next_gen = g + 1;
  }
  const std::string gen_name = GenName(next_gen);
  const std::string tmp_dir = directory + "/" + kTmpPrefix + gen_name;
  const std::string final_dir = directory + "/" + gen_name;

  fs::remove_all(tmp_dir, ec);
  fs::create_directories(tmp_dir, ec);
  if (ec) {
    return Status::IoError("cannot create '" + tmp_dir +
                           "': " + ec.message());
  }

  // Stage every table file in the temp dir, accumulating manifest lines
  // with the CRC32/byte count of the exact bytes written.
  std::ostringstream manifest;
  manifest << kManifestHeader << '\n';
  const auto names = catalog.TableNames();
  int file_index = 0;
  for (const auto& name : names) {
    VX_ASSIGN_OR_RETURN(auto table, catalog.GetTable(name));
    const std::string file = StringFormat("t%04d.csv", file_index++);
    const std::string bytes = ToCsv(*table);
    VX_RETURN_NOT_OK(WriteFileBytes(tmp_dir + "/" + file, bytes));
    manifest << file << '\t'
             << StringFormat("crc32:%08x", Crc32(bytes)) << '\t'
             << "bytes:" << bytes.size() << '\t' << name;
    for (const auto& field : table->schema().fields()) {
      manifest << '\t' << field.name << ':' << TypeToken(field.type);
    }
    manifest << '\n';
  }
  VX_FAULT_POINT("checkpoint.after_tables");

  VX_RETURN_NOT_OK(WriteFileBytes(tmp_dir + "/MANIFEST", manifest.str()));
  VX_RETURN_NOT_OK(FsyncPath(tmp_dir));
  VX_FAULT_POINT("checkpoint.after_manifest");

  // The commit point for the generation's *content*: after this rename the
  // directory is complete and durable, but invisible to readers until
  // CURRENT flips.
  fs::rename(tmp_dir, final_dir, ec);
  if (ec) {
    return Status::IoError("cannot rename '" + tmp_dir + "' to '" +
                           final_dir + "': " + ec.message());
  }
  VX_RETURN_NOT_OK(FsyncPath(directory));
  VX_FAULT_POINT("checkpoint.after_rename");

  // The commit point for *visibility*: CURRENT is replaced via the same
  // write-temp / fsync / rename dance, so readers see either the old
  // pointer or the new one, never a torn line.
  const std::string current_tmp =
      directory + "/" + kTmpPrefix + kCurrentFile;
  VX_RETURN_NOT_OK(WriteFileBytes(current_tmp, gen_name + "\n"));
  fs::rename(current_tmp, directory + "/" + kCurrentFile, ec);
  if (ec) {
    return Status::IoError("cannot publish CURRENT in '" + directory +
                           "': " + ec.message());
  }
  VX_RETURN_NOT_OK(FsyncPath(directory));
  VX_FAULT_POINT("checkpoint.after_current");

  PruneGenerations(directory, next_gen);
  return Status::OK();
}

Status LoadCatalog(const std::string& directory, Catalog* catalog) {
  std::error_code ec;
  const std::string current_path =
      std::string(directory) + "/" + kCurrentFile;

  if (!fs::exists(current_path, ec)) {
    // Legacy layout (pre-v2): a bare MANIFEST directly in `directory`.
    if (fs::exists(directory + "/MANIFEST", ec)) {
      std::vector<StagedTable> staged;
      VX_RETURN_NOT_OK(
          LoadTablesFrom(directory, /*verified=*/false, &staged));
      return InstallStaged(std::move(staged), catalog);
    }
    return Status::IoError("no checkpoint in '" + directory +
                           "' (neither a CURRENT pointer nor a MANIFEST)");
  }

  // Candidate order: the generation CURRENT names first, then every other
  // generation newest-first — the fallback chain for a corrupted current
  // generation.
  VX_ASSIGN_OR_RETURN(std::string current_bytes,
                      ReadFileBytes(current_path));
  const std::string current_name = Trim(current_bytes);
  std::vector<std::string> candidates;
  if (GenNumber(current_name)) {
    candidates.push_back(current_name);
  }
  std::vector<uint64_t> gens = ListGenerations(directory);
  std::sort(gens.rbegin(), gens.rend());
  for (uint64_t g : gens) {
    const std::string name = GenName(g);
    if (name != current_name) candidates.push_back(name);
  }
  if (candidates.empty()) {
    return Status::IoError("CURRENT in '" + directory + "' names '" +
                           current_name +
                           "' and no generation directories exist");
  }

  Status first_error;
  for (size_t i = 0; i < candidates.size(); ++i) {
    std::vector<StagedTable> staged;
    const Status st = LoadTablesFrom(directory + "/" + candidates[i],
                                     /*verified=*/true, &staged);
    if (st.ok()) {
      if (i > 0) {
        VX_LOG(kWarn)
            << "LoadCatalog: generation '" << candidates[0]
            << "' rejected (" << first_error.ToString()
            << "); restored fallback generation '" << candidates[i] << "'";
      }
      return InstallStaged(std::move(staged), catalog);
    }
    if (first_error.ok()) first_error = st;
  }
  return Status::IoError("no verifiable checkpoint generation in '" +
                         directory +
                         "'; newest rejected with: " + first_error.ToString());
}

}  // namespace vertexica
