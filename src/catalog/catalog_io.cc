#include "catalog/catalog_io.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "storage/csv.h"

namespace vertexica {

namespace {

const char* TypeToken(DataType t) { return DataTypeName(t); }

Result<DataType> TokenToType(const std::string& token) {
  if (token == "BOOL") return DataType::kBool;
  if (token == "INT64") return DataType::kInt64;
  if (token == "DOUBLE") return DataType::kDouble;
  if (token == "STRING") return DataType::kString;
  return Status::IoError("manifest: unknown type '" + token + "'");
}

}  // namespace

Status SaveCatalog(const Catalog& catalog, const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::IoError("cannot create '" + directory + "': " +
                           ec.message());
  }

  std::ofstream manifest(directory + "/MANIFEST");
  if (!manifest.is_open()) {
    return Status::IoError("cannot write manifest in '" + directory + "'");
  }

  const auto names = catalog.TableNames();
  int file_index = 0;
  for (const auto& name : names) {
    VX_ASSIGN_OR_RETURN(auto table, catalog.GetTable(name));
    const std::string file = StringFormat("t%04d.csv", file_index++);
    // Manifest line: file<TAB>table-name<TAB>col:TYPE<TAB>...
    manifest << file << '\t' << name;
    for (const auto& field : table->schema().fields()) {
      manifest << '\t' << field.name << ':' << TypeToken(field.type);
    }
    manifest << '\n';
    VX_RETURN_NOT_OK(WriteCsvFile(*table, directory + "/" + file));
  }
  manifest.flush();
  if (!manifest.good()) return Status::IoError("manifest write failed");
  return Status::OK();
}

Status LoadCatalog(const std::string& directory, Catalog* catalog) {
  std::ifstream manifest(directory + "/MANIFEST");
  if (!manifest.is_open()) {
    return Status::IoError("no manifest in '" + directory + "'");
  }
  std::string line;
  while (std::getline(manifest, line)) {
    if (Trim(line).empty()) continue;
    const auto parts = Split(line, '\t');
    if (parts.size() < 2) {
      return Status::IoError("bad manifest line: '" + line + "'");
    }
    const std::string& file = parts[0];
    const std::string& name = parts[1];
    Schema schema;
    for (size_t i = 2; i < parts.size(); ++i) {
      const auto colon = parts[i].rfind(':');
      if (colon == std::string::npos) {
        return Status::IoError("bad manifest column: '" + parts[i] + "'");
      }
      VX_ASSIGN_OR_RETURN(DataType type,
                          TokenToType(parts[i].substr(colon + 1)));
      schema.AddField({parts[i].substr(0, colon), type});
    }
    std::ifstream in(directory + "/" + file);
    if (!in.is_open()) {
      return Status::IoError("missing table file '" + file + "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    VX_ASSIGN_OR_RETURN(Table table,
                        ParseCsvWithSchema(buffer.str(), schema));
    VX_RETURN_NOT_OK(catalog->ReplaceTable(name, std::move(table)));
  }
  return Status::OK();
}

}  // namespace vertexica
