/// \file catalog.h
/// \brief Named-table catalog: the "database" the coordinator operates on.
///
/// The Vertexica coordinator is a stored procedure that reads and *replaces*
/// the vertex/message tables each superstep (§2.3 "Update Vs Replace");
/// `ReplaceTable` is the swap primitive it uses. The catalog is thread-safe
/// so parallel workers can read tables while the coordinator owns writes.
///
/// Tables are stored as `shared_ptr<const Table>`, which makes the whole
/// catalog copy-on-write for free: `Snapshot()` copies only the name→table
/// map (never table data) into an immutable CatalogSnapshot, and a new
/// Catalog can be seeded from a snapshot the same way. The serving layer
/// (src/server/) builds its isolation on this — each concurrent run gets a
/// private Catalog seeded from the shared base snapshot, so a load that
/// installs new tables never changes what an in-flight run reads.

#ifndef VERTEXICA_CATALOG_CATALOG_H_
#define VERTEXICA_CATALOG_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace vertexica {

/// \brief An immutable point-in-time view of a Catalog.
///
/// Holds shared handles to the table versions that were current when the
/// snapshot was taken; later mutations of the source catalog swap in new
/// `shared_ptr`s and are invisible here. Cheap to copy (shares the map's
/// table handles, never table data... the map itself is copied, which is
/// tiny next to the tables).
class CatalogSnapshot {
 public:
  CatalogSnapshot() = default;

  /// \brief Version of the source catalog when the snapshot was taken
  /// (0 for a default-constructed empty snapshot).
  uint64_t version() const { return version_; }

  Result<std::shared_ptr<const Table>> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

 private:
  friend class Catalog;

  uint64_t version_ = 0;
  std::map<std::string, std::shared_ptr<const Table>> tables_;
};

/// \brief A collection of named tables.
class Catalog {
 public:
  Catalog() = default;

  /// \brief Seeds the catalog from a snapshot (copy-on-write: shares table
  /// handles, copies no table data). Starts at the snapshot's version.
  explicit Catalog(const CatalogSnapshot& snapshot);

  /// \brief Registers a new table; fails if the name exists.
  Status CreateTable(const std::string& name, Table table);

  /// \brief Swaps in a new version of `name` (creates it if absent).
  /// This models Vertica's cheap "replace table" used by §2.3.
  Status ReplaceTable(const std::string& name, Table table);

  /// \brief Zero-copy variant: installs an already-shared immutable table
  /// (e.g. one lifted out of a snapshot or shared across catalogs).
  Status ReplaceTable(const std::string& name,
                      std::shared_ptr<const Table> table);

  /// \brief Removes a table; fails if absent.
  Status DropTable(const std::string& name);

  /// \brief Immutable snapshot handle of the current table version.
  Result<std::shared_ptr<const Table>> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// \brief Number of rows, or NotFound.
  Result<int64_t> RowCount(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// \brief Immutable view of every table's current version.
  CatalogSnapshot Snapshot() const;

  /// \brief Mutation counter: bumped by every successful Create/Replace/
  /// Drop. Lets callers detect "has anything changed since snapshot v?"
  /// without comparing table contents.
  uint64_t version() const;

 private:
  mutable std::mutex mutex_;
  uint64_t version_ = 0;
  std::map<std::string, std::shared_ptr<const Table>> tables_;
};

}  // namespace vertexica

#endif  // VERTEXICA_CATALOG_CATALOG_H_
