/// \file catalog.h
/// \brief Named-table catalog: the "database" the coordinator operates on.
///
/// The Vertexica coordinator is a stored procedure that reads and *replaces*
/// the vertex/message tables each superstep (§2.3 "Update Vs Replace");
/// `ReplaceTable` is the swap primitive it uses. The catalog is thread-safe
/// so parallel workers can read tables while the coordinator owns writes.

#ifndef VERTEXICA_CATALOG_CATALOG_H_
#define VERTEXICA_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace vertexica {

/// \brief A collection of named tables.
class Catalog {
 public:
  Catalog() = default;

  /// \brief Registers a new table; fails if the name exists.
  Status CreateTable(const std::string& name, Table table);

  /// \brief Swaps in a new version of `name` (creates it if absent).
  /// This models Vertica's cheap "replace table" used by §2.3.
  Status ReplaceTable(const std::string& name, Table table);

  /// \brief Removes a table; fails if absent.
  Status DropTable(const std::string& name);

  /// \brief Immutable snapshot handle of the current table version.
  Result<std::shared_ptr<const Table>> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// \brief Number of rows, or NotFound.
  Result<int64_t> RowCount(const std::string& name) const;

  std::vector<std::string> TableNames() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const Table>> tables_;
};

}  // namespace vertexica

#endif  // VERTEXICA_CATALOG_CATALOG_H_
