#include "temporal/versioned_graph.h"

#include "exec/plan_builder.h"
#include "sqlgraph/sql_common.h"
#include "sqlgraph/sql_pagerank.h"
#include "sqlgraph/sql_shortest_paths.h"

namespace vertexica {

VersionedGraphStore::VersionedGraphStore(Catalog* catalog, std::string prefix)
    : catalog_(catalog), prefix_(std::move(prefix)) {}

std::string VersionedGraphStore::TableName(int version) const {
  return prefix_ + "edges@v" + std::to_string(version);
}

Result<int> VersionedGraphStore::CommitVersion(Table edges) {
  if (edges.schema().FieldIndex("src") < 0 ||
      edges.schema().FieldIndex("dst") < 0) {
    return Status::InvalidArgument("edge table needs src and dst columns");
  }
  const int version = latest_ + 1;
  VX_RETURN_NOT_OK(catalog_->ReplaceTable(TableName(version), std::move(edges)));
  latest_ = version;
  return version;
}

Result<Table> VersionedGraphStore::EdgesAt(int version) const {
  if (version < 1 || version > latest_) {
    return Status::OutOfRange("no version " + std::to_string(version));
  }
  VX_ASSIGN_OR_RETURN(auto table, catalog_->GetTable(TableName(version)));
  return *table;
}

Result<int> VersionedGraphStore::AddEdges(const Table& new_edges) {
  VX_ASSIGN_OR_RETURN(Table current, EdgesAt(latest_));
  VX_ASSIGN_OR_RETURN(
      Table merged,
      PlanBuilder::Scan(std::move(current))
          .Union(PlanBuilder::Scan(new_edges))
          .Execute());
  return CommitVersion(std::move(merged));
}

Result<int> VersionedGraphStore::RemoveEdges(const Table& victims) {
  VX_ASSIGN_OR_RETURN(Table current, EdgesAt(latest_));
  VX_ASSIGN_OR_RETURN(
      Table remaining,
      PlanBuilder::Scan(std::move(current))
          .Join(PlanBuilder::Scan(victims).Select({"src", "dst"}),
                {"src", "dst"}, {"src", "dst"}, JoinType::kAnti)
          .Execute());
  return CommitVersion(std::move(remaining));
}

Result<int> VersionedGraphStore::UpdateEdgeColumn(const Table& updates,
                                                  const std::string& column) {
  VX_ASSIGN_OR_RETURN(Table current, EdgesAt(latest_));
  VX_ASSIGN_OR_RETURN(int col_idx, current.ColumnIndex(column));
  VX_RETURN_NOT_OK(updates.ColumnIndex(column).status());

  // LEFT JOIN the updates, then COALESCE the new value over the old.
  VX_ASSIGN_OR_RETURN(
      Table joined,
      PlanBuilder::Scan(std::move(current))
          .Join(PlanBuilder::Scan(updates)
                    .Select({"src", "dst", column})
                    .Rename({"u_src", "u_dst", "u_val"}),
                {"src", "dst"}, {"u_src", "u_dst"}, JoinType::kLeft)
          .Execute());
  std::vector<ProjectionSpec> proj;
  const Schema& schema = joined.schema();
  for (int c = 0; c < schema.num_fields() - 3; ++c) {  // original columns
    const std::string& name = schema.field(c).name;
    if (c == col_idx) {
      proj.push_back({name, Coalesce(Col("u_val"), Col(name))});
    } else {
      proj.push_back({name, Col(name)});
    }
  }
  VX_ASSIGN_OR_RETURN(Table next,
                      PlanBuilder::Scan(std::move(joined))
                          .Project(std::move(proj))
                          .Execute());
  return CommitVersion(std::move(next));
}

Result<Table> PageRankDelta(const VersionedGraphStore& store, int old_version,
                            int new_version, int iterations, double damping) {
  VX_ASSIGN_OR_RETURN(Table old_edges, store.EdgesAt(old_version));
  VX_ASSIGN_OR_RETURN(Table new_edges, store.EdgesAt(new_version));
  VX_ASSIGN_OR_RETURN(Graph old_graph, GraphFromEdgeTable(old_edges));
  VX_ASSIGN_OR_RETURN(Graph new_graph, GraphFromEdgeTable(new_edges));
  // Rank over the union vertex domain so joins align.
  const int64_t n = std::max(old_graph.num_vertices, new_graph.num_vertices);
  old_graph.num_vertices = n;
  new_graph.num_vertices = n;

  VX_ASSIGN_OR_RETURN(
      Table old_rank,
      SqlPageRank(MakeVertexListTable(old_graph),
                  MakeEdgeListTable(old_graph), iterations, damping));
  VX_ASSIGN_OR_RETURN(
      Table new_rank,
      SqlPageRank(MakeVertexListTable(new_graph),
                  MakeEdgeListTable(new_graph), iterations, damping));

  return PlanBuilder::Scan(std::move(old_rank))
      .Rename({"id", "old_rank"})
      .Join(PlanBuilder::Scan(std::move(new_rank)).Rename({"nid", "new_rank"}),
            {"id"}, {"nid"})
      .Project({{"id", Col("id")},
                {"old_rank", Col("old_rank")},
                {"new_rank", Col("new_rank")},
                {"delta", Sub(Col("new_rank"), Col("old_rank"))}})
      .Project({{"id", Col("id")},
                {"old_rank", Col("old_rank")},
                {"new_rank", Col("new_rank")},
                {"delta", Col("delta")},
                {"abs_delta", Abs(Col("delta"))}})
      .OrderBy({{"abs_delta", false}, {"id", true}})
      .Select({"id", "old_rank", "new_rank", "delta"})
      .Execute();
}

Result<Table> ShortestPathDecrease(const VersionedGraphStore& store,
                                   int old_version, int new_version,
                                   int64_t source, double min_decrease) {
  VX_ASSIGN_OR_RETURN(Table old_edges, store.EdgesAt(old_version));
  VX_ASSIGN_OR_RETURN(Table new_edges, store.EdgesAt(new_version));
  VX_ASSIGN_OR_RETURN(Graph old_graph, GraphFromEdgeTable(old_edges));
  VX_ASSIGN_OR_RETURN(Graph new_graph, GraphFromEdgeTable(new_edges));
  const int64_t n = std::max(old_graph.num_vertices, new_graph.num_vertices);
  old_graph.num_vertices = n;
  new_graph.num_vertices = n;

  VX_ASSIGN_OR_RETURN(
      Table old_dist,
      SqlShortestPaths(MakeVertexListTable(old_graph),
                       MakeEdgeListTable(old_graph), source));
  VX_ASSIGN_OR_RETURN(
      Table new_dist,
      SqlShortestPaths(MakeVertexListTable(new_graph),
                       MakeEdgeListTable(new_graph), source));

  return PlanBuilder::Scan(std::move(old_dist))
      .Rename({"id", "old_dist"})
      .Join(PlanBuilder::Scan(std::move(new_dist)).Rename({"nid", "new_dist"}),
            {"id"}, {"nid"})
      .Project({{"id", Col("id")},
                {"old_dist", Col("old_dist")},
                {"new_dist", Col("new_dist")},
                {"decrease", Sub(Col("old_dist"), Col("new_dist"))}})
      .Filter(And(Lt(Col("new_dist"), Col("old_dist")),
                  Ge(Col("decrease"), Lit(min_decrease))))
      .OrderBy({{"decrease", false}, {"id", true}})
      .Execute();
}

}  // namespace vertexica
