/// \file continuous.h
/// \brief Continuous analysis mode (§4.1 "Running mode" / §4.2.3): a graph
/// analysis registered once and re-evaluated as the graph mutates, with
/// per-run timings for the time monitor and running results for the
/// console.

#ifndef VERTEXICA_TEMPORAL_CONTINUOUS_H_
#define VERTEXICA_TEMPORAL_CONTINUOUS_H_

#include <functional>
#include <string>
#include <vector>

#include "temporal/versioned_graph.h"

namespace vertexica {

/// \brief Re-runs a table-valued analysis over every new graph version.
class ContinuousRunner {
 public:
  /// Analysis callback: edge table of one version → result table.
  using Analysis = std::function<Result<Table>(const Table& edges)>;

  /// \brief One completed evaluation.
  struct Tick {
    int version = 0;
    double seconds = 0.0;  ///< plotted by the time monitor
    Table result;          ///< shown on the console
  };

  ContinuousRunner(const VersionedGraphStore* store, std::string name,
                   Analysis analysis)
      : store_(store), name_(std::move(name)), analysis_(std::move(analysis)) {}

  /// \brief Evaluates the analysis on every version committed since the
  /// last poll; returns the new ticks (empty when up to date).
  Result<std::vector<Tick>> Poll();

  /// \brief All ticks so far.
  const std::vector<Tick>& history() const { return history_; }

  const std::string& name() const { return name_; }
  int last_seen_version() const { return last_seen_; }

 private:
  const VersionedGraphStore* store_;
  std::string name_;
  Analysis analysis_;
  int last_seen_ = 0;
  std::vector<Tick> history_;
};

}  // namespace vertexica

#endif  // VERTEXICA_TEMPORAL_CONTINUOUS_H_
