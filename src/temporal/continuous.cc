#include "temporal/continuous.h"

#include "common/timer.h"

namespace vertexica {

Result<std::vector<ContinuousRunner::Tick>> ContinuousRunner::Poll() {
  std::vector<Tick> fresh;
  while (last_seen_ < store_->latest_version()) {
    const int version = last_seen_ + 1;
    VX_ASSIGN_OR_RETURN(Table edges, store_->EdgesAt(version));
    WallTimer timer;
    VX_ASSIGN_OR_RETURN(Table result, analysis_(edges));
    Tick tick;
    tick.version = version;
    tick.seconds = timer.ElapsedSeconds();
    tick.result = std::move(result);
    history_.push_back(tick);
    fresh.push_back(std::move(tick));
    last_seen_ = version;
  }
  return fresh;
}

}  // namespace vertexica
