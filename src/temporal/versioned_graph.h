/// \file versioned_graph.h
/// \brief Dynamic graph storage (§3.3): "Vertexica is naturally suited to
/// handle updates and therefore allows for dynamic graph analysis."
///
/// Every mutation (edge insertion/deletion, metadata update) commits a new
/// immutable edge-table version into the catalog; temporal queries run
/// graph algorithms "on different versions of nodes and edges" (§4.2.3)
/// and diff the results.

#ifndef VERTEXICA_TEMPORAL_VERSIONED_GRAPH_H_
#define VERTEXICA_TEMPORAL_VERSIONED_GRAPH_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "storage/table.h"

namespace vertexica {

/// \brief Versioned edge store on top of the catalog.
///
/// Versions are numbered 1..latest; table names are "<prefix>edges@v<N>".
/// The edge schema is caller-defined but must contain src/dst (weight and
/// further metadata columns flow through untouched).
class VersionedGraphStore {
 public:
  explicit VersionedGraphStore(Catalog* catalog, std::string prefix = "g_");

  /// \brief Commits `edges` as the next version; returns its number.
  Result<int> CommitVersion(Table edges);

  /// \brief New version = latest ∪ new_edges.
  Result<int> AddEdges(const Table& new_edges);

  /// \brief New version = latest ∖ victims (matched on src & dst).
  Result<int> RemoveEdges(const Table& victims);

  /// \brief New version with column `column` of edges matching (src, dst)
  /// in `updates` replaced by the update's value. `updates` must carry
  /// src, dst and the new column value.
  Result<int> UpdateEdgeColumn(const Table& updates,
                               const std::string& column);

  /// \brief Snapshot of a committed version.
  Result<Table> EdgesAt(int version) const;

  int latest_version() const { return latest_; }

 private:
  std::string TableName(int version) const;

  Catalog* catalog_;
  std::string prefix_;
  int latest_ = 0;
};

/// \brief §4.2.3 "how the PageRank of a given node has changed":
/// runs SQL PageRank on two versions and reports per-vertex deltas.
/// \returns table (id, old_rank, new_rank, delta) sorted by |delta| desc.
Result<Table> PageRankDelta(const VersionedGraphStore& store, int old_version,
                            int new_version, int iterations = 10,
                            double damping = 0.85);

/// \brief §4.2.3 "which nodes have come closer (smaller path distance)":
/// vertices whose shortest-path distance from `source` decreased by at
/// least `min_decrease` between the two versions.
/// \returns table (id, old_dist, new_dist, decrease).
Result<Table> ShortestPathDecrease(const VersionedGraphStore& store,
                                   int old_version, int new_version,
                                   int64_t source, double min_decrease = 0.0);

}  // namespace vertexica

#endif  // VERTEXICA_TEMPORAL_VERSIONED_GRAPH_H_
