/// \file frontier.h
/// \brief The ambient frontier-mode knob: sparse active-vertex supersteps
/// on/off/auto.
///
/// The coordinator's frontier path (vertexica/coordinator.cc) restricts
/// each superstep's worker input to the active vertices — non-halted ones
/// plus message receivers — gathered via a bitvector and CSR edge slices
/// instead of scanning the full tables. It is bit-identical to the dense
/// path by construction, so like the merge-join toggle it is a pure
/// physical-plan knob: thread-local ScopedFrontierMode override, else the
/// process default (SetDefaultFrontierMode), else the VERTEXICA_FRONTIER
/// environment variable, else auto.
///
/// - `auto`: take the frontier path when the active fraction is below the
///   coordinator's threshold (VertexicaOptions::frontier_threshold) and
///   the structural preconditions hold (id-ordered vertex table, grouped
///   edge keys).
/// - `on`: take it whenever the structural preconditions hold, regardless
///   of the active fraction (the ablation/forcing setting).
/// - `off`: always run the dense path.

#ifndef VERTEXICA_EXEC_FRONTIER_H_
#define VERTEXICA_EXEC_FRONTIER_H_

#include <string>

namespace vertexica {

/// \brief Frontier-path policy, resolved per superstep by the coordinator.
enum class FrontierMode {
  kAuto,  ///< frontier when the active fraction is below the threshold
  kOn,    ///< frontier whenever structurally possible
  kOff,   ///< always dense
};

const char* FrontierModeName(FrontierMode m);

/// \brief Effective mode for the calling thread (innermost scoped override,
/// else process default, else VERTEXICA_FRONTIER env, else kAuto).
FrontierMode AmbientFrontierMode();

/// \brief Sets the process-wide default; kAuto is the unset sentinel and
/// restores automatic resolution from the environment (use
/// ScopedFrontierMode to pin kAuto over a non-auto environment).
void SetDefaultFrontierMode(FrontierMode m);

/// \brief RAII thread-local override (how RunRequest::frontier reaches the
/// coordinator).
class ScopedFrontierMode {
 public:
  explicit ScopedFrontierMode(FrontierMode m);
  ~ScopedFrontierMode();
  ScopedFrontierMode(const ScopedFrontierMode&) = delete;
  ScopedFrontierMode& operator=(const ScopedFrontierMode&) = delete;

 private:
  bool active_;
  FrontierMode prev_;
  bool prev_active_;
};

/// \brief Parses "auto"/"on"/"1"/"off"/"0" (case-insensitive); defaults to
/// kAuto for anything unrecognized — same tolerance as ParseEncodingMode.
FrontierMode ParseFrontierMode(const std::string& text);

}  // namespace vertexica

#endif  // VERTEXICA_EXEC_FRONTIER_H_
