/// \file topn.h
/// \brief Fused ORDER BY + LIMIT with bounded memory.
///
/// Interactive scenarios (§4.2.1 "top pageranks", "top shortest paths" in
/// the demo console) ask for the k best rows of a large result; a full
/// sort materializes everything. TopN keeps at most `limit` candidate rows
/// while streaming.

#ifndef VERTEXICA_EXEC_TOPN_H_
#define VERTEXICA_EXEC_TOPN_H_

#include <vector>

#include "exec/operator.h"
#include "exec/sort_op.h"

namespace vertexica {

/// \brief Emits the first `limit` rows of the input under the given
/// ordering. Ties are broken by input order (stable, like SortOp+Limit).
class TopNOp : public Operator {
 public:
  TopNOp(OperatorPtr input, std::vector<OrderBySpec> keys, int64_t limit);

  const Schema& output_schema() const override {
    return input_->output_schema();
  }
  // Emits the k best rows already sorted by the keys.
  std::vector<OrderKey> output_order() const override {
    std::vector<OrderKey> order;
    for (const OrderBySpec& k : keys_) order.push_back({k.column, k.ascending});
    return order;
  }
  Result<std::optional<Table>> Next() override;

  std::string label() const override {
    return "TopN(" + std::to_string(limit_) + ")";
  }
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  std::vector<OrderBySpec> keys_;
  int64_t limit_;
  bool done_ = false;
};

}  // namespace vertexica

#endif  // VERTEXICA_EXEC_TOPN_H_
