#include "exec/aggregate.h"

#include <unordered_map>

#include "common/hash.h"
#include "common/threadpool.h"
#include "exec/parallel.h"

namespace vertexica {

namespace {

/// Per-(group, aggregate) running state.
struct AccState {
  double dsum = 0.0;
  int64_t isum = 0;
  int64_t count = 0;
  bool seen = false;
  Value extreme;  // current min or max
};

int CompareValues(const Value& a, const Value& b) {
  if (a.is_string()) {
    return a.string_value().compare(b.string_value());
  }
  if (a.is_bool()) {
    const int x = a.bool_value() ? 1 : 0;
    const int y = b.bool_value() ? 1 : 0;
    return x - y;
  }
  const double x = a.AsDouble();
  const double y = b.AsDouble();
  return x < y ? -1 : (x > y ? 1 : 0);
}

uint64_t HashGroupRow(const Table& t, const std::vector<int>& cols,
                      int64_t row) {
  // Dictionary-encoded STRING group columns hash via the segment's cached
  // per-entry hashes (Column::HashRow) — no decode, one HashString per
  // distinct value — and GroupRowsEqual's CompareRows resolves equal codes
  // without touching string bytes.
  uint64_t h = 0xabcdef01ULL;
  for (int c : cols) h = HashCombine(h, t.column(c).HashRow(row));
  return h;
}

bool GroupRowsEqual(const Table& t, const std::vector<int>& cols, int64_t a,
                    int64_t b) {
  for (int c : cols) {
    const Column& col = t.column(c);
    if (col.IsNull(a) != col.IsNull(b)) return false;
    if (!col.IsNull(a) && col.CompareRows(a, col, b) != 0) return false;
  }
  return true;
}

/// Folds row `i` of `in` into `st` (the shared accumulation step of the
/// serial fold and the parallel per-chunk partials). `agg_col` is -1 for
/// COUNT(*).
void AccumulateRow(const AggSpec& spec, const Table& in, int agg_col,
                   int64_t i, AccState& st) {
  if (spec.op == AggOp::kCountStar) {
    ++st.count;
    return;
  }
  const Column& col = in.column(agg_col);
  if (col.IsNull(i)) return;
  switch (spec.op) {
    case AggOp::kCount:
      ++st.count;
      break;
    case AggOp::kSum:
    case AggOp::kAvg:
      ++st.count;
      if (col.type() == DataType::kInt64) {
        st.isum += col.GetInt64(i);
        st.dsum += static_cast<double>(col.GetInt64(i));
      } else {
        st.dsum += col.GetDouble(i);
      }
      break;
    case AggOp::kMin:
    case AggOp::kMax: {
      Value v = col.GetValue(i);
      if (!st.seen) {
        st.extreme = std::move(v);
        st.seen = true;
      } else {
        const int cmp = CompareValues(v, st.extreme);
        if ((spec.op == AggOp::kMin && cmp < 0) ||
            (spec.op == AggOp::kMax && cmp > 0)) {
          st.extreme = std::move(v);
        }
      }
      break;
    }
    case AggOp::kCountStar:
      break;
  }
}

/// Merges a later-chunk partial `src` into `dst` (chunk-order fold).
void MergeAcc(const AggSpec& spec, const AccState& src, AccState& dst) {
  dst.count += src.count;
  dst.isum += src.isum;
  dst.dsum += src.dsum;
  if (src.seen) {
    if (!dst.seen) {
      dst.extreme = src.extreme;
      dst.seen = true;
    } else {
      const int cmp = CompareValues(src.extreme, dst.extreme);
      if ((spec.op == AggOp::kMin && cmp < 0) ||
          (spec.op == AggOp::kMax && cmp > 0)) {
        dst.extreme = src.extreme;
      }
    }
  }
}

/// Materializes the final table from representatives + accumulated states
/// (shared by the serial operator and the parallel kernel).
Result<Table> MaterializeAgg(const Table& in, const Schema& schema,
                             const std::vector<int>& group_cols,
                             const std::vector<AggSpec>& aggs,
                             const std::vector<int64_t>& representative,
                             const std::vector<AccState>& acc,
                             bool empty_global) {
  const size_t num_groups = representative.size();
  const size_t num_aggs = aggs.size();
  std::vector<Column> out_cols;
  for (size_t g = 0; g < group_cols.size(); ++g) {
    out_cols.push_back(in.column(group_cols[g]).Take(representative));
  }
  for (size_t a = 0; a < num_aggs; ++a) {
    const DataType out_type =
        schema.field(static_cast<int>(group_cols.size() + a)).type;
    Column col(out_type);
    for (size_t g = 0; g < num_groups; ++g) {
      const AccState& st = acc[g * num_aggs + a];
      switch (aggs[a].op) {
        case AggOp::kCountStar:
        case AggOp::kCount:
          col.AppendInt64(st.count);
          break;
        case AggOp::kSum:
          if (st.count == 0 || empty_global) {
            col.AppendNull();
          } else if (out_type == DataType::kInt64) {
            col.AppendInt64(st.isum);
          } else {
            col.AppendDouble(st.dsum);
          }
          break;
        case AggOp::kAvg:
          if (st.count == 0 || empty_global) {
            col.AppendNull();
          } else {
            col.AppendDouble(st.dsum / static_cast<double>(st.count));
          }
          break;
        case AggOp::kMin:
        case AggOp::kMax:
          if (!st.seen) {
            col.AppendNull();
          } else {
            col.AppendValue(st.extreme);
          }
          break;
      }
    }
    out_cols.push_back(std::move(col));
  }
  return Table::Make(schema, std::move(out_cols));
}

/// Resolves group-by and aggregate input column indices (-1 = COUNT(*)).
Status ResolveAggColumns(const Table& in,
                         const std::vector<std::string>& group_by,
                         const std::vector<AggSpec>& aggs,
                         std::vector<int>* group_cols,
                         std::vector<int>* agg_cols) {
  for (const auto& g : group_by) {
    VX_ASSIGN_OR_RETURN(int idx, in.ColumnIndex(g));
    group_cols->push_back(idx);
  }
  for (const auto& a : aggs) {
    if (a.op == AggOp::kCountStar) {
      agg_cols->push_back(-1);
    } else {
      VX_ASSIGN_OR_RETURN(int idx, in.ColumnIndex(a.input));
      agg_cols->push_back(idx);
    }
  }
  return Status::OK();
}

/// One chunk's partial aggregation: groups in local first-appearance order
/// (representatives are global row ids) with their accumulated states.
struct AggPartial {
  std::vector<int64_t> representative;
  std::vector<AccState> acc;  // representative.size() * aggs.size()
};

/// Aggregates rows [begin, end) of `in` into a partial.
void AggregateChunk(const Table& in, const std::vector<int>& group_cols,
                    const std::vector<AggSpec>& aggs,
                    const std::vector<int>& agg_cols, bool int64_fast_path,
                    int64_t begin, int64_t end, AggPartial* out) {
  const size_t num_aggs = aggs.size();
  auto accumulate = [&](int64_t gid, int64_t row) {
    for (size_t a = 0; a < num_aggs; ++a) {
      AccumulateRow(aggs[a], in, agg_cols[a],
                    row, out->acc[static_cast<size_t>(gid) * num_aggs + a]);
    }
  };
  auto new_group = [&](int64_t row) -> int64_t {
    const auto gid = static_cast<int64_t>(out->representative.size());
    out->representative.push_back(row);
    out->acc.resize(out->acc.size() + num_aggs);
    return gid;
  };

  if (group_cols.empty()) {
    new_group(begin);
    for (int64_t i = begin; i < end; ++i) accumulate(0, i);
    return;
  }
  if (int64_fast_path) {
    const auto& keys = in.column(group_cols[0]).ints();
    Int64HashMap<int64_t> ids(static_cast<size_t>(end - begin));
    for (int64_t i = begin; i < end; ++i) {
      int64_t& gid = ids.GetOrInsert(keys[static_cast<size_t>(i)], -1);
      if (gid < 0) gid = new_group(i);
      accumulate(gid, i);
    }
    return;
  }
  // order-insensitive: keyed lookups only; group ids are assigned in
  // input-row order, never in map-iteration order.
  std::unordered_map<uint64_t, std::vector<int64_t>> chains;
  for (int64_t i = begin; i < end; ++i) {
    const uint64_t h = HashGroupRow(in, group_cols, i);
    auto& chain = chains[h];
    int64_t gid = -1;
    for (int64_t g : chain) {
      if (GroupRowsEqual(in, group_cols,
                         out->representative[static_cast<size_t>(g)], i)) {
        gid = g;
        break;
      }
    }
    if (gid < 0) {
      gid = new_group(i);
      chain.push_back(gid);
    }
    accumulate(gid, i);
  }
}

}  // namespace

const char* AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kSum:
      return "SUM";
    case AggOp::kCount:
      return "COUNT";
    case AggOp::kCountStar:
      return "COUNT(*)";
    case AggOp::kMin:
      return "MIN";
    case AggOp::kMax:
      return "MAX";
    case AggOp::kAvg:
      return "AVG";
  }
  return "?";
}

Result<Schema> AggregateOutputSchema(const Schema& input,
                                     const std::vector<std::string>& group_by,
                                     const std::vector<AggSpec>& aggs) {
  Schema schema;
  for (const auto& g : group_by) {
    const int idx = input.FieldIndex(g);
    if (idx < 0) {
      return Status::InvalidArgument("Aggregate: no group-by column '" + g +
                                     "'");
    }
    schema.AddField(input.field(idx));
  }
  for (const auto& a : aggs) {
    DataType in_type = DataType::kInt64;
    if (a.op != AggOp::kCountStar) {
      const int idx = input.FieldIndex(a.input);
      if (idx < 0) {
        return Status::InvalidArgument("Aggregate: no input column '" +
                                       a.input + "'");
      }
      in_type = input.field(idx).type;
      if ((a.op == AggOp::kSum || a.op == AggOp::kAvg) &&
          !IsNumeric(in_type)) {
        return Status::TypeError(std::string(AggOpName(a.op)) +
                                 " requires a numeric column");
      }
    }
    DataType out_type = DataType::kInt64;
    switch (a.op) {
      case AggOp::kSum:
        out_type = in_type;
        break;
      case AggOp::kCount:
      case AggOp::kCountStar:
        out_type = DataType::kInt64;
        break;
      case AggOp::kMin:
      case AggOp::kMax:
        out_type = in_type;
        break;
      case AggOp::kAvg:
        out_type = DataType::kDouble;
        break;
    }
    schema.AddField(Field{a.output, out_type});
  }
  return schema;
}

HashAggregateOp::HashAggregateOp(OperatorPtr input,
                                 std::vector<std::string> group_by,
                                 std::vector<AggSpec> aggs)
    : input_(std::move(input)),
      group_by_(std::move(group_by)),
      aggs_(std::move(aggs)) {
  auto schema =
      AggregateOutputSchema(input_->output_schema(), group_by_, aggs_);
  if (!schema.ok()) {
    init_status_ = schema.status();
    return;
  }
  schema_ = *std::move(schema);
}

Status HashAggregateOp::Compute() {
  VX_ASSIGN_OR_RETURN(Table in, Collect(input_.get()));

  std::vector<int> group_cols;
  std::vector<int> agg_cols;
  VX_RETURN_NOT_OK(
      ResolveAggColumns(in, group_by_, aggs_, &group_cols, &agg_cols));

  // Assign group ids. Fast path: single non-null INT64 key.
  std::vector<int64_t> group_of(static_cast<size_t>(in.num_rows()));
  std::vector<int64_t> representative;  // first row of each group
  if (group_cols.size() == 1 &&
      in.column(group_cols[0]).type() == DataType::kInt64 &&
      in.column(group_cols[0]).null_count() == 0) {
    const auto& keys = in.column(group_cols[0]).ints();
    Int64HashMap<int64_t> ids(keys.size());
    for (int64_t i = 0; i < in.num_rows(); ++i) {
      int64_t& gid = ids.GetOrInsert(keys[static_cast<size_t>(i)], -1);
      if (gid < 0) {
        gid = static_cast<int64_t>(representative.size());
        representative.push_back(i);
      }
      group_of[static_cast<size_t>(i)] = gid;
    }
  } else if (!group_cols.empty()) {
    // order-insensitive: keyed lookups only; group ids are assigned in
    // input-row order, never in map-iteration order.
    std::unordered_map<uint64_t, std::vector<int64_t>> chains;
    for (int64_t i = 0; i < in.num_rows(); ++i) {
      const uint64_t h = HashGroupRow(in, group_cols, i);
      auto& chain = chains[h];
      int64_t gid = -1;
      for (int64_t g : chain) {
        if (GroupRowsEqual(in, group_cols, representative[static_cast<size_t>(g)],
                           i)) {
          gid = g;
          break;
        }
      }
      if (gid < 0) {
        gid = static_cast<int64_t>(representative.size());
        representative.push_back(i);
        chain.push_back(gid);
      }
      group_of[static_cast<size_t>(i)] = gid;
    }
  } else {
    // Global aggregate: one group, possibly with zero rows.
    representative.push_back(0);
    for (auto& g : group_of) g = 0;
  }

  const size_t num_groups = representative.size();
  const size_t num_aggs = aggs_.size();
  std::vector<AccState> acc(num_groups * num_aggs);

  for (int64_t i = 0; i < in.num_rows(); ++i) {
    const auto gid = static_cast<size_t>(group_of[static_cast<size_t>(i)]);
    for (size_t a = 0; a < num_aggs; ++a) {
      AccumulateRow(aggs_[a], in, agg_cols[a], i, acc[gid * num_aggs + a]);
    }
  }

  const bool empty_global = group_by_.empty() && in.num_rows() == 0;
  VX_ASSIGN_OR_RETURN(Table out,
                      MaterializeAgg(in, schema_, group_cols, aggs_,
                                     representative, acc, empty_global));
  result_ = std::move(out);
  return Status::OK();
}

Result<std::optional<Table>> HashAggregateOp::Next() {
  VX_RETURN_NOT_OK(init_status_);
  if (done_) return std::optional<Table>{};
  VX_RETURN_NOT_OK(Compute());
  done_ = true;
  return std::move(result_);
}

Result<Table> ParallelHashAggregate(const Table& input,
                                    const std::vector<std::string>& group_by,
                                    const std::vector<AggSpec>& aggs,
                                    const ParallelOptions& options) {
  VX_ASSIGN_OR_RETURN(Schema schema,
                      AggregateOutputSchema(input.schema(), group_by, aggs));
  std::vector<int> group_cols;
  std::vector<int> agg_cols;
  VX_RETURN_NOT_OK(
      ResolveAggColumns(input, group_by, aggs, &group_cols, &agg_cols));

  const int64_t rows = input.num_rows();
  const int64_t grain = options.ResolvedGrain();
  const size_t num_aggs = aggs.size();
  const bool int64_fast_path =
      group_cols.size() == 1 &&
      input.column(group_cols[0]).type() == DataType::kInt64 &&
      input.column(group_cols[0]).null_count() == 0;

  // Phase 1: per-chunk partial states. Chunk boundaries depend only on
  // morsel_rows, so the chunk-order merge below is identical at any thread
  // count.
  const size_t num_chunks =
      rows == 0 ? 0 : static_cast<size_t>((rows + grain - 1) / grain);
  std::vector<AggPartial> partials(num_chunks);
  const int threads = options.ResolvedThreads();
  VX_RETURN_NOT_OK(ThreadPool::Default()->ParallelFor(
      0, static_cast<size_t>(rows), static_cast<size_t>(grain),
      [&](size_t begin, size_t end) {
        AggregateChunk(input, group_cols, aggs, agg_cols, int64_fast_path,
                       static_cast<int64_t>(begin), static_cast<int64_t>(end),
                       &partials[begin / static_cast<size_t>(grain)]);
        return Status::OK();
      },
      threads));

  // Phase 2: merge partials in chunk order. Groups keep global
  // first-appearance order because chunks are scanned in row order.
  std::vector<int64_t> representative;
  std::vector<AccState> acc;
  auto add_group = [&](int64_t rep) -> int64_t {
    const auto gid = static_cast<int64_t>(representative.size());
    representative.push_back(rep);
    acc.resize(acc.size() + num_aggs);
    return gid;
  };
  auto merge_states = [&](int64_t gid, const AggPartial& partial,
                          size_t local) {
    for (size_t a = 0; a < num_aggs; ++a) {
      MergeAcc(aggs[a], partial.acc[local * num_aggs + a],
               acc[static_cast<size_t>(gid) * num_aggs + a]);
    }
  };

  if (group_cols.empty()) {
    add_group(0);
    for (const auto& partial : partials) {
      if (!partial.representative.empty()) merge_states(0, partial, 0);
    }
  } else if (int64_fast_path) {
    const auto& keys = input.column(group_cols[0]).ints();
    Int64HashMap<int64_t> ids(256);
    for (const auto& partial : partials) {
      for (size_t g = 0; g < partial.representative.size(); ++g) {
        const int64_t rep = partial.representative[g];
        int64_t& gid = ids.GetOrInsert(keys[static_cast<size_t>(rep)], -1);
        if (gid < 0) gid = add_group(rep);
        merge_states(gid, partial, g);
      }
    }
  } else {
    // order-insensitive: keyed lookups only; merged group ids follow
    // partial/representative order, never map-iteration order.
    std::unordered_map<uint64_t, std::vector<int64_t>> chains;
    for (const auto& partial : partials) {
      for (size_t g = 0; g < partial.representative.size(); ++g) {
        const int64_t rep = partial.representative[g];
        const uint64_t h = HashGroupRow(input, group_cols, rep);
        auto& chain = chains[h];
        int64_t gid = -1;
        for (int64_t cand : chain) {
          if (GroupRowsEqual(input, group_cols,
                             representative[static_cast<size_t>(cand)], rep)) {
            gid = cand;
            break;
          }
        }
        if (gid < 0) {
          gid = add_group(rep);
          chain.push_back(gid);
        }
        merge_states(gid, partial, g);
      }
    }
  }

  const bool empty_global = group_by.empty() && rows == 0;
  return MaterializeAgg(input, schema, group_cols, aggs, representative, acc,
                        empty_global);
}

}  // namespace vertexica
