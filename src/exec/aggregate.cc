#include "exec/aggregate.h"

#include <unordered_map>

#include "common/hash.h"

namespace vertexica {

namespace {

/// Per-(group, aggregate) running state.
struct AccState {
  double dsum = 0.0;
  int64_t isum = 0;
  int64_t count = 0;
  bool seen = false;
  Value extreme;  // current min or max
};

int CompareValues(const Value& a, const Value& b) {
  if (a.is_string()) {
    return a.string_value().compare(b.string_value());
  }
  if (a.is_bool()) {
    const int x = a.bool_value() ? 1 : 0;
    const int y = b.bool_value() ? 1 : 0;
    return x - y;
  }
  const double x = a.AsDouble();
  const double y = b.AsDouble();
  return x < y ? -1 : (x > y ? 1 : 0);
}

uint64_t HashGroupRow(const Table& t, const std::vector<int>& cols,
                      int64_t row) {
  uint64_t h = 0xabcdef01ULL;
  for (int c : cols) h = HashCombine(h, t.column(c).HashRow(row));
  return h;
}

bool GroupRowsEqual(const Table& t, const std::vector<int>& cols, int64_t a,
                    int64_t b) {
  for (int c : cols) {
    const Column& col = t.column(c);
    if (col.IsNull(a) != col.IsNull(b)) return false;
    if (!col.IsNull(a) && col.CompareRows(a, col, b) != 0) return false;
  }
  return true;
}

}  // namespace

const char* AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kSum:
      return "SUM";
    case AggOp::kCount:
      return "COUNT";
    case AggOp::kCountStar:
      return "COUNT(*)";
    case AggOp::kMin:
      return "MIN";
    case AggOp::kMax:
      return "MAX";
    case AggOp::kAvg:
      return "AVG";
  }
  return "?";
}

HashAggregateOp::HashAggregateOp(OperatorPtr input,
                                 std::vector<std::string> group_by,
                                 std::vector<AggSpec> aggs)
    : input_(std::move(input)),
      group_by_(std::move(group_by)),
      aggs_(std::move(aggs)) {
  const Schema& in = input_->output_schema();
  for (const auto& g : group_by_) {
    const int idx = in.FieldIndex(g);
    if (idx < 0) {
      init_status_ =
          Status::InvalidArgument("Aggregate: no group-by column '" + g + "'");
      return;
    }
    schema_.AddField(in.field(idx));
  }
  for (const auto& a : aggs_) {
    DataType in_type = DataType::kInt64;
    if (a.op != AggOp::kCountStar) {
      const int idx = in.FieldIndex(a.input);
      if (idx < 0) {
        init_status_ = Status::InvalidArgument(
            "Aggregate: no input column '" + a.input + "'");
        return;
      }
      in_type = in.field(idx).type;
      if ((a.op == AggOp::kSum || a.op == AggOp::kAvg) &&
          !IsNumeric(in_type)) {
        init_status_ = Status::TypeError(
            std::string(AggOpName(a.op)) + " requires a numeric column");
        return;
      }
    }
    DataType out_type = DataType::kInt64;
    switch (a.op) {
      case AggOp::kSum:
        out_type = in_type;
        break;
      case AggOp::kCount:
      case AggOp::kCountStar:
        out_type = DataType::kInt64;
        break;
      case AggOp::kMin:
      case AggOp::kMax:
        out_type = in_type;
        break;
      case AggOp::kAvg:
        out_type = DataType::kDouble;
        break;
    }
    schema_.AddField(Field{a.output, out_type});
  }
}

Status HashAggregateOp::Compute() {
  VX_ASSIGN_OR_RETURN(Table in, Collect(input_.get()));

  std::vector<int> group_cols;
  for (const auto& g : group_by_) {
    VX_ASSIGN_OR_RETURN(int idx, in.ColumnIndex(g));
    group_cols.push_back(idx);
  }
  std::vector<int> agg_cols;
  for (const auto& a : aggs_) {
    if (a.op == AggOp::kCountStar) {
      agg_cols.push_back(-1);
    } else {
      VX_ASSIGN_OR_RETURN(int idx, in.ColumnIndex(a.input));
      agg_cols.push_back(idx);
    }
  }

  // Assign group ids. Fast path: single non-null INT64 key.
  std::vector<int64_t> group_of(static_cast<size_t>(in.num_rows()));
  std::vector<int64_t> representative;  // first row of each group
  if (group_cols.size() == 1 &&
      in.column(group_cols[0]).type() == DataType::kInt64 &&
      in.column(group_cols[0]).null_count() == 0) {
    const auto& keys = in.column(group_cols[0]).ints();
    Int64HashMap<int64_t> ids(keys.size());
    for (int64_t i = 0; i < in.num_rows(); ++i) {
      int64_t& gid = ids.GetOrInsert(keys[static_cast<size_t>(i)], -1);
      if (gid < 0) {
        gid = static_cast<int64_t>(representative.size());
        representative.push_back(i);
      }
      group_of[static_cast<size_t>(i)] = gid;
    }
  } else if (!group_cols.empty()) {
    std::unordered_map<uint64_t, std::vector<int64_t>> chains;
    for (int64_t i = 0; i < in.num_rows(); ++i) {
      const uint64_t h = HashGroupRow(in, group_cols, i);
      auto& chain = chains[h];
      int64_t gid = -1;
      for (int64_t g : chain) {
        if (GroupRowsEqual(in, group_cols, representative[static_cast<size_t>(g)],
                           i)) {
          gid = g;
          break;
        }
      }
      if (gid < 0) {
        gid = static_cast<int64_t>(representative.size());
        representative.push_back(i);
        chain.push_back(gid);
      }
      group_of[static_cast<size_t>(i)] = gid;
    }
  } else {
    // Global aggregate: one group, possibly with zero rows.
    representative.push_back(0);
    for (auto& g : group_of) g = 0;
  }

  const size_t num_groups = representative.size();
  const size_t num_aggs = aggs_.size();
  std::vector<AccState> acc(num_groups * num_aggs);

  for (int64_t i = 0; i < in.num_rows(); ++i) {
    const auto gid = static_cast<size_t>(group_of[static_cast<size_t>(i)]);
    for (size_t a = 0; a < num_aggs; ++a) {
      AccState& st = acc[gid * num_aggs + a];
      if (aggs_[a].op == AggOp::kCountStar) {
        ++st.count;
        continue;
      }
      const Column& col = in.column(agg_cols[a]);
      if (col.IsNull(i)) continue;
      switch (aggs_[a].op) {
        case AggOp::kCount:
          ++st.count;
          break;
        case AggOp::kSum:
        case AggOp::kAvg:
          ++st.count;
          if (col.type() == DataType::kInt64) {
            st.isum += col.GetInt64(i);
            st.dsum += static_cast<double>(col.GetInt64(i));
          } else {
            st.dsum += col.GetDouble(i);
          }
          break;
        case AggOp::kMin:
        case AggOp::kMax: {
          Value v = col.GetValue(i);
          if (!st.seen) {
            st.extreme = std::move(v);
            st.seen = true;
          } else {
            const int cmp = CompareValues(v, st.extreme);
            if ((aggs_[a].op == AggOp::kMin && cmp < 0) ||
                (aggs_[a].op == AggOp::kMax && cmp > 0)) {
              st.extreme = std::move(v);
            }
          }
          break;
        }
        case AggOp::kCountStar:
          break;
      }
    }
  }

  // Materialize output.
  std::vector<Column> out_cols;
  for (size_t g = 0; g < group_cols.size(); ++g) {
    out_cols.push_back(in.column(group_cols[g]).Take(representative));
  }
  const bool empty_global = group_by_.empty() && in.num_rows() == 0;
  for (size_t a = 0; a < num_aggs; ++a) {
    const DataType out_type =
        schema_.field(static_cast<int>(group_cols.size() + a)).type;
    Column col(out_type);
    for (size_t g = 0; g < num_groups; ++g) {
      const AccState& st = acc[g * num_aggs + a];
      switch (aggs_[a].op) {
        case AggOp::kCountStar:
        case AggOp::kCount:
          col.AppendInt64(st.count);
          break;
        case AggOp::kSum:
          if (st.count == 0 || empty_global) {
            col.AppendNull();
          } else if (out_type == DataType::kInt64) {
            col.AppendInt64(st.isum);
          } else {
            col.AppendDouble(st.dsum);
          }
          break;
        case AggOp::kAvg:
          if (st.count == 0 || empty_global) {
            col.AppendNull();
          } else {
            col.AppendDouble(st.dsum / static_cast<double>(st.count));
          }
          break;
        case AggOp::kMin:
        case AggOp::kMax:
          if (!st.seen) {
            col.AppendNull();
          } else {
            col.AppendValue(st.extreme);
          }
          break;
      }
    }
    out_cols.push_back(std::move(col));
  }
  VX_ASSIGN_OR_RETURN(Table out, Table::Make(schema_, std::move(out_cols)));
  result_ = std::move(out);
  return Status::OK();
}

Result<std::optional<Table>> HashAggregateOp::Next() {
  VX_RETURN_NOT_OK(init_status_);
  if (done_) return std::optional<Table>{};
  VX_RETURN_NOT_OK(Compute());
  done_ = true;
  return std::move(result_);
}

}  // namespace vertexica
