#include "exec/operator.h"

#include <sstream>

namespace vertexica {

namespace {
void ExplainInto(const Operator& op, int depth, std::ostringstream* out) {
  for (int i = 0; i < depth; ++i) *out << "  ";
  *out << op.label() << "\n";
  for (const Operator* child : op.children()) {
    ExplainInto(*child, depth + 1, out);
  }
}
}  // namespace

std::string ExplainPlan(const Operator& root) {
  std::ostringstream out;
  ExplainInto(root, 0, &out);
  return out.str();
}

Result<Table> Collect(Operator* op) {
  Table out(op->output_schema());
  for (;;) {
    VX_ASSIGN_OR_RETURN(auto batch, op->Next());
    if (!batch.has_value()) break;
    VX_RETURN_NOT_OK(out.Append(*batch));
  }
  return out;
}

Result<int64_t> CountRows(Operator* op) {
  int64_t rows = 0;
  for (;;) {
    VX_ASSIGN_OR_RETURN(auto batch, op->Next());
    if (!batch.has_value()) break;
    rows += batch->num_rows();
  }
  return rows;
}

}  // namespace vertexica
