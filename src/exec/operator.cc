#include "exec/operator.h"

#include <sstream>

namespace vertexica {

namespace {
void ExplainInto(const Operator& op, int depth, std::ostringstream* out) {
  for (int i = 0; i < depth; ++i) *out << "  ";
  *out << op.label() << "\n";
  for (const Operator* child : op.children()) {
    ExplainInto(*child, depth + 1, out);
  }
}
}  // namespace

std::string ExplainPlan(const Operator& root) {
  std::ostringstream out;
  ExplainInto(root, 0, &out);
  return out.str();
}

Result<Table> Collect(Operator* op) {
  // Blocking operators (joins, aggregates, sorts) emit exactly one
  // materialized batch: return it as-is — no re-copy, and table metadata
  // (the declared sort order) survives, which keeps join chains merging.
  VX_ASSIGN_OR_RETURN(auto first, op->Next());
  if (!first.has_value()) return Table(op->output_schema());
  VX_ASSIGN_OR_RETURN(auto second, op->Next());
  if (!second.has_value()) return *std::move(first);
  Table out(op->output_schema());
  VX_RETURN_NOT_OK(out.Append(*first));
  VX_RETURN_NOT_OK(out.Append(*second));
  for (;;) {
    VX_ASSIGN_OR_RETURN(auto batch, op->Next());
    if (!batch.has_value()) break;
    VX_RETURN_NOT_OK(out.Append(*batch));
  }
  return out;
}

Result<int64_t> CountRows(Operator* op) {
  int64_t rows = 0;
  for (;;) {
    VX_ASSIGN_OR_RETURN(auto batch, op->Next());
    if (!batch.has_value()) break;
    rows += batch->num_rows();
  }
  return rows;
}

}  // namespace vertexica
