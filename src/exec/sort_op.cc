#include "exec/sort_op.h"

#include "storage/sort.h"

namespace vertexica {

SortOp::SortOp(OperatorPtr input, std::vector<OrderBySpec> keys)
    : input_(std::move(input)), keys_(std::move(keys)) {}

Result<std::optional<Table>> SortOp::Next() {
  if (done_) return std::optional<Table>{};
  done_ = true;
  VX_ASSIGN_OR_RETURN(Table all, Collect(input_.get()));
  std::vector<SortKey> resolved;
  resolved.reserve(keys_.size());
  for (const auto& k : keys_) {
    VX_ASSIGN_OR_RETURN(int idx, all.ColumnIndex(k.column));
    resolved.push_back(SortKey{idx, k.ascending});
  }
  return std::optional<Table>(SortTable(all, resolved));
}

}  // namespace vertexica
