#include "exec/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_map>

#include "common/cache_sizing.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "exec/batch.h"
#include "exec/filter.h"
#include "exec/kernel_stats.h"
#include "exec/merge_join.h"
#include "exec/scan.h"
#include "exec/vectorized.h"

namespace vertexica {

namespace {

int HardwareThreads() {
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

std::atomic<int> g_default_threads{0};
thread_local int tl_thread_override = 0;

}  // namespace

int ExecThreads() {
  if (tl_thread_override > 0) return tl_thread_override;
  const int configured = g_default_threads.load(std::memory_order_relaxed);
  if (configured > 0) return configured;
  static const int env = static_cast<int>(EnvThreadCount());
  if (env > 0) return env;
  static const int hardware = HardwareThreads();
  return hardware;
}

void SetDefaultExecThreads(int n) {
  g_default_threads.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

ScopedExecThreads::ScopedExecThreads(int n) : prev_(tl_thread_override) {
  if (n > 0) tl_thread_override = n;
}

ScopedExecThreads::~ScopedExecThreads() { tl_thread_override = prev_; }

MorselPruneFn MakeZonePrune(std::shared_ptr<const Table> table,
                            std::vector<ColumnPredicate> preds) {
  std::vector<ColumnPredicate> active;
  for (auto& pred : preds) {
    const Column* col = table->ColumnByName(pred.column);
    if (col != nullptr && col->zone_map() != nullptr) {
      active.push_back(std::move(pred));
    }
  }
  if (active.empty()) return nullptr;
  return [table = std::move(table),
          active = std::move(active)](int64_t begin, int64_t end) {
    return !MorselMayMatch(*table, active, begin, end);
  };
}

Result<Table> ParallelCollect(std::shared_ptr<const Table> input,
                              const MorselPlanFactory& make_plan,
                              const MorselPruneFn& prune,
                              const ParallelOptions& options) {
  const int64_t rows = input->num_rows();
  const int64_t grain = options.ResolvedGrain();
  const int threads = options.ResolvedThreads();

  // Single morsel (or empty input): run the plan inline over the full range
  // so tiny tables pay no fan-out cost. Morsel boundaries are fixed by
  // `grain`, so this fast path produces the same output as the fan-out.
  if (rows <= grain) {
    auto plan = make_plan(std::make_unique<TableScan>(input,
                                                      kDefaultBatchSize));
    VX_RETURN_NOT_OK(plan.status());
    if (prune != nullptr && rows > 0 && prune(0, rows)) {
      return Table((*plan)->output_schema());
    }
    return Collect(plan->get());
  }

  // The output schema up front (a 0-row plan build, no execution), so
  // pruned morsels can contribute empty-but-typed tables.
  Schema out_schema;
  {
    auto plan = make_plan(
        std::make_unique<TableScan>(input, kDefaultBatchSize, 0, 0));
    VX_RETURN_NOT_OK(plan.status());
    out_schema = (*plan)->output_schema();
  }

  const auto num_morsels = static_cast<size_t>((rows + grain - 1) / grain);
  std::vector<Table> outputs(num_morsels);
  // Captured on the submitting thread: pool workers have no ambient
  // collector of their own, and counters must not depend on whether a
  // morsel ran inline (threads=1 fast path above) or on the pool.
  KernelStats* const kernel_stats = AmbientKernelStats();
  VX_RETURN_NOT_OK(ThreadPool::Default()->ParallelFor(
      0, static_cast<size_t>(rows), static_cast<size_t>(grain),
      [&](size_t begin, size_t end) -> Status {
        ScopedKernelStats stats_scope(kernel_stats);
        if (prune != nullptr && prune(static_cast<int64_t>(begin),
                                      static_cast<int64_t>(end))) {
          outputs[begin / static_cast<size_t>(grain)] = Table(out_schema);
          return Status::OK();
        }
        auto plan = make_plan(std::make_unique<TableScan>(
            input, kDefaultBatchSize, static_cast<int64_t>(begin),
            static_cast<int64_t>(end - begin)));
        VX_RETURN_NOT_OK(plan.status());
        VX_ASSIGN_OR_RETURN(Table out, Collect(plan->get()));
        outputs[begin / static_cast<size_t>(grain)] = std::move(out);
        return Status::OK();
      },
      threads));

  Table result(std::move(out_schema));
  for (const Table& out : outputs) {
    VX_RETURN_NOT_OK(result.Append(out));
  }
  return result;
}

Result<Table> ParallelCollect(std::shared_ptr<const Table> input,
                              const MorselPlanFactory& make_plan,
                              const ParallelOptions& options) {
  return ParallelCollect(std::move(input), make_plan, nullptr, options);
}

Result<Table> ParallelCollect(Table input, const MorselPlanFactory& make_plan,
                              const ParallelOptions& options) {
  return ParallelCollect(std::make_shared<const Table>(std::move(input)),
                         make_plan, nullptr, options);
}

namespace {

/// Morsel driver of the fused σ→π path (exec/vectorized.h): evaluates the
/// compiled pipeline's conjuncts into a selection-vector Batch per morsel
/// and materializes exactly one output table per morsel, concatenated in
/// morsel order. Morsel boundaries and merge order are identical to
/// ParallelCollect's, so the result is bit-identical to the interpreter
/// path at any thread count.
Result<Table> RunFusedPipeline(const std::shared_ptr<const Table>& input,
                               const FusedPipelinePlan& plan,
                               const MorselPruneFn& prune,
                               const ParallelOptions& options) {
  const int64_t rows = input->num_rows();
  const int64_t grain = options.ResolvedGrain();
  auto run_morsel = [&](int64_t begin, int64_t end) -> Result<Table> {
    Batch batch;
    batch.source = input.get();
    batch.begin = begin;
    batch.end = begin;  // pruned morsels stay an empty dense window
    if (prune == nullptr || begin >= end || !prune(begin, end)) {
      EvaluateConjuncts(*input, plan.conjuncts, begin, end, &batch);
    }
    return MaterializeFusedOutputs(plan, batch);
  };

  // Single morsel: inline, like ParallelCollect's fast path.
  if (rows <= grain) return run_morsel(0, rows);

  const auto num_morsels = static_cast<size_t>((rows + grain - 1) / grain);
  std::vector<Table> outputs(num_morsels);
  KernelStats* const kernel_stats = AmbientKernelStats();
  VX_RETURN_NOT_OK(ThreadPool::Default()->ParallelFor(
      0, static_cast<size_t>(rows), static_cast<size_t>(grain),
      [&](size_t begin, size_t end) -> Status {
        ScopedKernelStats stats_scope(kernel_stats);
        VX_ASSIGN_OR_RETURN(Table out,
                            run_morsel(static_cast<int64_t>(begin),
                                       static_cast<int64_t>(end)));
        outputs[begin / static_cast<size_t>(grain)] = std::move(out);
        return Status::OK();
      },
      options.ResolvedThreads()));
  Table result(plan.schema);
  for (const Table& out : outputs) {
    VX_RETURN_NOT_OK(result.Append(out));
  }
  return result;
}

/// The identity projection (π = *) for the fused filter: every input
/// column passed through as a column ref.
FusedPipelinePlan IdentityPlan(const Table& input,
                               std::vector<ColumnPredicate> conjuncts) {
  FusedPipelinePlan plan;
  plan.conjuncts = std::move(conjuncts);
  plan.schema = input.schema();
  for (int c = 0; c < input.num_columns(); ++c) {
    FusedPipelinePlan::Output out;
    out.name = input.schema().field(c).name;
    out.source_column = c;
    out.type = input.schema().field(c).type;
    plan.outputs.push_back(std::move(out));
  }
  return plan;
}

}  // namespace

Result<Table> ParallelFilter(std::shared_ptr<const Table> input,
                             const ExprPtr& predicate,
                             const ParallelOptions& options) {
  MorselPruneFn prune = MakeZonePrune(
      input, ExtractPushdownPredicates(predicate, input->schema()));

  // Fused selection-vector path: a predicate that decomposes *completely*
  // into pushable conjuncts evaluates conjunct-at-a-time into a selection
  // vector (encoded-aware first pass, tight typed refinement passes) and
  // gathers survivors once — no mask column, no per-operator tables.
  if (VectorizedEnabled() && input->num_columns() > 0) {
    PredicateConjuncts split =
        SplitPredicateConjuncts(predicate, input->schema());
    if (split.residual.empty() && !split.pushable.empty()) {
      return RunFusedPipeline(
          input, IdentityPlan(*input, std::move(split.pushable)), prune,
          options);
    }
  }

  // Encoded fast path (also the `vectorized=off` path for one conjunct): a
  // predicate that *is* one pushable comparison is evaluated straight on
  // the column representation (whole RLE runs / dictionary entries, see
  // SelectMatchingRows) instead of through the expression interpreter —
  // same rows, same order, no decode.
  if (const auto exact = ExactColumnPredicate(predicate, input->schema())) {
    const Column* col = input->ColumnByName(exact->column);
    VX_CHECK(col != nullptr);  // ExactColumnPredicate validated the schema
    const int64_t rows = input->num_rows();
    const int64_t grain = options.ResolvedGrain();
    const auto num_morsels =
        rows == 0 ? size_t{0}
                  : static_cast<size_t>((rows + grain - 1) / grain);
    std::vector<Table> outputs(num_morsels);
    KernelStats* const kernel_stats = AmbientKernelStats();
    VX_RETURN_NOT_OK(ThreadPool::Default()->ParallelFor(
        0, static_cast<size_t>(rows), static_cast<size_t>(grain),
        [&](size_t begin, size_t end) -> Status {
          ScopedKernelStats stats_scope(kernel_stats);
          std::vector<int64_t> selected;
          if (prune == nullptr || !prune(static_cast<int64_t>(begin),
                                         static_cast<int64_t>(end))) {
            SelectMatchingRows(*col, exact->op, exact->literal,
                               static_cast<int64_t>(begin),
                               static_cast<int64_t>(end), &selected);
          }
          Table out = input->Take(selected);
          NoteMaterialized(out);
          NoteLegacyBatch();
          outputs[begin / static_cast<size_t>(grain)] = std::move(out);
          return Status::OK();
        },
        options.ResolvedThreads()));
    Table result(input->schema());
    for (const Table& out : outputs) {
      VX_RETURN_NOT_OK(result.Append(out));
    }
    return result;
  }

  return ParallelCollect(
      std::move(input),
      [&predicate](OperatorPtr source) -> Result<OperatorPtr> {
        return OperatorPtr(
            std::make_unique<FilterOp>(std::move(source), predicate));
      },
      prune, options);
}

Result<Table> ParallelProject(std::shared_ptr<const Table> input,
                              const std::vector<ProjectionSpec>& outputs,
                              const ParallelOptions& options) {
  // Pure column-ref/literal projections slice (dense morsels never gather)
  // straight off the source — the interpreter would copy each column per
  // batch through Evaluate.
  if (VectorizedEnabled()) {
    if (auto plan = CompileFusedPipeline(*input, nullptr, outputs)) {
      return RunFusedPipeline(input, *plan, nullptr, options);
    }
  }
  return ParallelCollect(
      std::move(input),
      [&outputs](OperatorPtr source) -> Result<OperatorPtr> {
        return OperatorPtr(
            std::make_unique<ProjectOp>(std::move(source), outputs));
      },
      options);
}

Result<Table> ParallelFilterProject(std::shared_ptr<const Table> input,
                                    const ExprPtr& predicate,
                                    const std::vector<ProjectionSpec>& outputs,
                                    const ParallelOptions& options) {
  MorselPruneFn prune = MakeZonePrune(
      input, ExtractPushdownPredicates(predicate, input->schema()));
  // The tentpole shape: σ→π fused over selection vectors, one
  // materialization per morsel at the pipeline's end instead of a scan
  // slice + mask + filter output + projection output.
  if (VectorizedEnabled()) {
    if (auto plan = CompileFusedPipeline(*input, predicate, outputs)) {
      return RunFusedPipeline(input, *plan, prune, options);
    }
  }
  return ParallelCollect(
      std::move(input),
      [&predicate, &outputs](OperatorPtr source) -> Result<OperatorPtr> {
        auto filtered =
            std::make_unique<FilterOp>(std::move(source), predicate);
        return OperatorPtr(
            std::make_unique<ProjectOp>(std::move(filtered), outputs));
      },
      prune, options);
}

namespace {

/// Ceiling on the number of independent build-side hash partitions.
constexpr int kMaxJoinPartitions = 64;

/// Bytes one build key occupies in a partition's index: the scattered
/// (hash, row) pair plus the amortized node/bucket overhead of the
/// per-partition chain map.
constexpr int64_t kJoinBuildBytesPerKey = 48;

/// Partition count for a build side of `rows`: radix-partitioned so each
/// partition's index stays within one cache budget (common/cache_sizing.h)
/// while it is built, clamped to [1, 64] so tiny builds stop paying 64-way
/// scatter/assemble overhead. Partitioning stays hash-based and the count
/// depends only on the row count — per-hash chains are assembled in
/// chunk-then-row order either way, so match order (and results) are
/// identical at any thread count *and* any partition count.
size_t JoinPartitionsFor(int64_t rows) {
  return static_cast<size_t>(CacheSizedPartitionCount(
      rows, kJoinBuildBytesPerKey, kMaxJoinPartitions));
}

struct JoinBuildIndex {
  // partition -> hash -> build row indices (ascending, like the serial op).
  // order-insensitive: probed by key only; the comment above this struct
  // proves match order is identical at any thread/partition count.
  std::vector<std::unordered_map<uint64_t, std::vector<int64_t>>> partitions;
};

}  // namespace

Result<Table> ParallelHashJoin(const Table& probe, const Table& build,
                               const std::vector<std::string>& probe_keys,
                               const std::vector<std::string>& build_keys,
                               JoinType type, const ParallelOptions& options) {
  WallTimer timer;
  VX_ASSIGN_OR_RETURN(
      Schema schema, HashJoinOutputSchema(probe.schema(), build.schema(),
                                          probe_keys, build_keys, type));
  std::vector<int> probe_cols;
  for (const auto& k : probe_keys) {
    VX_ASSIGN_OR_RETURN(int idx, probe.ColumnIndex(k));
    probe_cols.push_back(idx);
  }
  std::vector<int> build_cols;
  for (const auto& k : build_keys) {
    VX_ASSIGN_OR_RETURN(int idx, build.ColumnIndex(k));
    build_cols.push_back(idx);
  }

  const int threads = options.ResolvedThreads();
  const int64_t grain = options.ResolvedGrain();

  // ---- Build: scatter (hash, row) into per-chunk partition buckets, then
  // assemble each partition from the chunks in row order. ----------------
  const int64_t build_rows = build.num_rows();
  const size_t partitions = JoinPartitionsFor(build_rows);
  const size_t build_chunks =
      build_rows == 0 ? 0
                      : static_cast<size_t>((build_rows + grain - 1) / grain);
  std::vector<std::vector<std::vector<std::pair<uint64_t, int64_t>>>> scatter(
      build_chunks);
  // Captured outside the fan-out: the knob and collector are thread-local
  // on the submitting thread, not on pool workers.
  const bool vectorized = VectorizedEnabled();
  KernelStats* const kernel_stats = AmbientKernelStats();
  VX_RETURN_NOT_OK(ThreadPool::Default()->ParallelFor(
      0, static_cast<size_t>(build_rows), static_cast<size_t>(grain),
      [&](size_t begin, size_t end) {
        ScopedKernelStats stats_scope(kernel_stats);
        auto& buckets = scatter[begin / static_cast<size_t>(grain)];
        buckets.resize(partitions);
        std::vector<uint64_t> hashes;
        if (vectorized) {
          BatchJoinKeyHash(build, build_cols, static_cast<int64_t>(begin),
                           static_cast<int64_t>(end), &hashes);
        }
        for (auto i = static_cast<int64_t>(begin);
             i < static_cast<int64_t>(end); ++i) {
          if (JoinKeyHasNull(build, build_cols, i)) continue;
          const uint64_t h =
              vectorized ? hashes[static_cast<size_t>(
                               i - static_cast<int64_t>(begin))]
                         : JoinKeyHash(build, build_cols, i);
          buckets[h % partitions].emplace_back(h, i);
        }
        return Status::OK();
      },
      threads));

  JoinBuildIndex index;
  index.partitions.resize(partitions);
  VX_RETURN_NOT_OK(ThreadPool::Default()->ParallelFor(
      0, partitions, 1,
      [&](size_t begin, size_t end) {
        for (size_t p = begin; p < end; ++p) {
          auto& partition = index.partitions[p];
          for (const auto& buckets : scatter) {
            if (buckets.empty()) continue;
            for (const auto& [h, row] : buckets[p]) {
              partition[h].push_back(row);
            }
          }
        }
        return Status::OK();
      },
      threads));

  // ---- Probe: morsel-parallel, one output table per morsel, concatenated
  // in morsel order (= serial probe-row order). --------------------------
  const int64_t probe_rows = probe.num_rows();
  const size_t probe_chunks =
      probe_rows == 0 ? 0
                      : static_cast<size_t>((probe_rows + grain - 1) / grain);
  std::vector<Table> outputs(probe_chunks);
  const bool emit_build = type == JoinType::kInner || type == JoinType::kLeft;
  VX_RETURN_NOT_OK(ThreadPool::Default()->ParallelFor(
      0, static_cast<size_t>(probe_rows), static_cast<size_t>(grain),
      [&](size_t begin, size_t end) -> Status {
        ScopedKernelStats stats_scope(kernel_stats);
        std::vector<int64_t> probe_idx;
        std::vector<int64_t> build_idx;
        std::vector<uint64_t> hashes;
        if (vectorized) {
          BatchJoinKeyHash(probe, probe_cols, static_cast<int64_t>(begin),
                           static_cast<int64_t>(end), &hashes);
        }
        for (auto i = static_cast<int64_t>(begin);
             i < static_cast<int64_t>(end); ++i) {
          bool matched = false;
          if (!JoinKeyHasNull(probe, probe_cols, i)) {
            const uint64_t h =
                vectorized ? hashes[static_cast<size_t>(
                                 i - static_cast<int64_t>(begin))]
                           : JoinKeyHash(probe, probe_cols, i);
            const auto& partition = index.partitions[h % partitions];
            auto it = partition.find(h);
            if (it != partition.end()) {
              for (int64_t bi : it->second) {
                if (JoinKeysEqual(probe, probe_cols, i, build, build_cols,
                                  bi)) {
                  matched = true;
                  if (emit_build) {
                    probe_idx.push_back(i);
                    build_idx.push_back(bi);
                  } else {
                    break;  // semi/anti only need existence
                  }
                }
              }
            }
          }
          switch (type) {
            case JoinType::kLeft:
              if (!matched) {
                probe_idx.push_back(i);
                build_idx.push_back(-1);
              }
              break;
            case JoinType::kSemi:
              if (matched) probe_idx.push_back(i);
              break;
            case JoinType::kAnti:
              if (!matched) probe_idx.push_back(i);
              break;
            case JoinType::kInner:
              break;
          }
        }

        std::vector<Column> columns;
        columns.reserve(static_cast<size_t>(schema.num_fields()));
        {
          Table probe_side = probe.Take(probe_idx);
          for (int c = 0; c < probe_side.num_columns(); ++c) {
            columns.push_back(std::move(*probe_side.mutable_column(c)));
          }
        }
        if (emit_build) {
          for (int c = 0; c < build.num_columns(); ++c) {
            columns.push_back(JoinTakeWithNulls(build.column(c), build_idx));
          }
        }
        VX_ASSIGN_OR_RETURN(Table out,
                            Table::Make(schema, std::move(columns)));
        outputs[begin / static_cast<size_t>(grain)] = std::move(out);
        return Status::OK();
      },
      threads));

  Table result(schema);
  for (const Table& out : outputs) {
    VX_RETURN_NOT_OK(result.Append(out));
  }
  // Probe-row-major output: the probe side's declared order survives the
  // join (its columns keep their positions), whatever the join type.
  if (!probe.sort_order().empty()) result.SetSortOrder(probe.sort_order());
  if (JoinPathStats* stats = AmbientJoinStats()) {
    ++stats->hash_joins;
    stats->hash_rows += result.num_rows();
    stats->hash_seconds += timer.ElapsedSeconds();
  }
  return result;
}

ParallelHashJoinOp::ParallelHashJoinOp(OperatorPtr probe, OperatorPtr build,
                                       std::vector<std::string> probe_keys,
                                       std::vector<std::string> build_keys,
                                       JoinType type, ParallelOptions options)
    : probe_(std::move(probe)),
      build_(std::move(build)),
      probe_keys_(std::move(probe_keys)),
      build_keys_(std::move(build_keys)),
      type_(type),
      options_(options) {
  auto schema =
      HashJoinOutputSchema(probe_->output_schema(), build_->output_schema(),
                           probe_keys_, build_keys_, type_);
  if (!schema.ok()) {
    init_status_ = schema.status();
    return;
  }
  schema_ = *std::move(schema);
}

std::string ParallelHashJoinOp::label() const {
  std::string out = std::string("HashJoin[") + JoinTypeName(type_) + "](";
  for (size_t i = 0; i < probe_keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += probe_keys_[i] + " = " + build_keys_[i];
  }
  return out + ") [morsel]";
}

Result<std::optional<Table>> ParallelHashJoinOp::Next() {
  VX_RETURN_NOT_OK(init_status_);
  if (done_) return std::optional<Table>{};
  done_ = true;
  VX_ASSIGN_OR_RETURN(auto probe_table, CollectShared(probe_.get()));
  VX_ASSIGN_OR_RETURN(auto build_table, CollectShared(build_.get()));
  VX_ASSIGN_OR_RETURN(Table out,
                      ParallelHashJoin(*probe_table, *build_table, probe_keys_,
                                       build_keys_, type_, options_));
  return std::optional<Table>(std::move(out));
}

ParallelAggregateOp::ParallelAggregateOp(OperatorPtr input,
                                         std::vector<std::string> group_by,
                                         std::vector<AggSpec> aggs,
                                         ParallelOptions options)
    : input_(std::move(input)),
      group_by_(std::move(group_by)),
      aggs_(std::move(aggs)),
      options_(options) {
  auto schema =
      AggregateOutputSchema(input_->output_schema(), group_by_, aggs_);
  if (!schema.ok()) {
    init_status_ = schema.status();
    return;
  }
  schema_ = *std::move(schema);
}

std::string ParallelAggregateOp::label() const {
  std::string out = "HashAggregate(by: ";
  for (size_t i = 0; i < group_by_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_by_[i];
  }
  out += "; ";
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::string(AggOpName(aggs_[i].op));
    if (aggs_[i].op != AggOp::kCountStar) out += "(" + aggs_[i].input + ")";
  }
  return out + ") [morsel]";
}

Result<std::optional<Table>> ParallelAggregateOp::Next() {
  VX_RETURN_NOT_OK(init_status_);
  if (done_) return std::optional<Table>{};
  done_ = true;
  VX_ASSIGN_OR_RETURN(Table in, Collect(input_.get()));
  VX_ASSIGN_OR_RETURN(Table out,
                      ParallelHashAggregate(in, group_by_, aggs_, options_));
  return std::optional<Table>(std::move(out));
}

}  // namespace vertexica
