/// \file scan.h
/// \brief Table scan over an immutable table snapshot.

#ifndef VERTEXICA_EXEC_SCAN_H_
#define VERTEXICA_EXEC_SCAN_H_

#include <memory>

#include "exec/operator.h"

namespace vertexica {

/// \brief Emits `batch_size`-row slices of a materialized table.
class TableScan : public Operator {
 public:
  explicit TableScan(std::shared_ptr<const Table> table,
                     int64_t batch_size = kDefaultBatchSize);

  /// \brief Convenience overload copying a table value.
  explicit TableScan(Table table, int64_t batch_size = kDefaultBatchSize);

  const Schema& output_schema() const override { return table_->schema(); }
  Result<std::optional<Table>> Next() override;

  std::string label() const override {
    return "TableScan(" + std::to_string(table_->num_rows()) + " rows)";
  }
  std::vector<const Operator*> children() const override {
    return {};
  }

 private:
  std::shared_ptr<const Table> table_;
  int64_t batch_size_;
  int64_t offset_ = 0;
};

}  // namespace vertexica

#endif  // VERTEXICA_EXEC_SCAN_H_
