/// \file scan.h
/// \brief Table scan over an immutable table snapshot, with zone-map
/// pruning of pushed-down comparison predicates.

#ifndef VERTEXICA_EXEC_SCAN_H_
#define VERTEXICA_EXEC_SCAN_H_

#include <memory>
#include <vector>

#include "exec/operator.h"
#include "storage/encoding.h"

namespace vertexica {

/// \name Zone-map range pruning
/// Shared by TableScan batches and the morsel driver (exec/parallel.h).
/// @{

/// \brief True when rows [row_begin, row_end) of `table` may contain a row
/// satisfying *every* predicate in `preds`, judged by the referenced
/// columns' zone maps. Conservative: a missing column, missing zone map or
/// mixed-type comparison never prunes. Updates the global prune counters.
bool MorselMayMatch(const Table& table,
                    const std::vector<ColumnPredicate>& preds,
                    int64_t row_begin, int64_t row_end);

/// \brief Process-wide pruning counters (atomic; benches snapshot them to
/// report "bytes/rows touched" with and without zone maps).
struct ScanPruneStats {
  int64_t ranges_checked = 0;  ///< morsel/batch ranges tested
  int64_t ranges_pruned = 0;   ///< ranges skipped entirely
  int64_t rows_pruned = 0;     ///< rows in the skipped ranges
};

ScanPruneStats ScanPruneStatsSnapshot();
void ResetScanPruneStats();
/// @}

/// \brief Emits `batch_size`-row slices of a materialized table.
///
/// A scan may be restricted to a row range [offset, offset+count): that is
/// the partitioned/morsel scan the parallel driver (exec/parallel.h) hands
/// to each worker, so N range scans over disjoint ranges together cover the
/// table exactly once.
///
/// A scan may also carry pushed-down comparison predicates
/// (PlanBuilder::Filter installs them): batches whose zone maps prove that
/// no row can satisfy some predicate are skipped without being sliced.
/// Pruning is an optimization only — the scan never evaluates predicates
/// row-by-row, so the Filter above it must still run; with zone maps built
/// (Table::BuildZoneMaps / EncodeColumns) the pair returns bit-identical
/// rows while touching fewer of them.
class TableScan : public Operator {
 public:
  explicit TableScan(std::shared_ptr<const Table> table,
                     int64_t batch_size = kDefaultBatchSize);

  /// \brief Convenience overload copying a table value.
  explicit TableScan(Table table, int64_t batch_size = kDefaultBatchSize);

  /// \brief Range-restricted (morsel) scan over rows
  /// [offset, offset+count); the range is clamped to the table.
  TableScan(std::shared_ptr<const Table> table, int64_t batch_size,
            int64_t offset, int64_t count);

  /// \brief Installs pushed-down predicates used solely to skip batches
  /// via zone maps (see class comment).
  void PushDownPredicates(std::vector<ColumnPredicate> preds);
  const std::vector<ColumnPredicate>& pushed_predicates() const {
    return pushed_;
  }

  const Schema& output_schema() const override { return table_->schema(); }

  /// The snapshot's declared sort order (Table::sort_order), by name. A
  /// range-restricted scan of a sorted table is still sorted.
  std::vector<OrderKey> output_order() const override {
    std::vector<OrderKey> order;
    for (const SortKey& k : table_->sort_order()) {
      order.push_back({table_->schema().field(k.column).name, k.ascending});
    }
    return order;
  }

  /// \brief The underlying snapshot when this scan covers the whole table
  /// and has not started emitting; nullptr otherwise. Lets blocking
  /// operators (joins) reuse the shared snapshot — with its sort-order
  /// metadata — instead of re-materializing it batch by batch.
  std::shared_ptr<const Table> shared_table_if_whole() const {
    return offset_ == first_row_ && first_row_ == 0 &&
                   limit_ == table_->num_rows() && pushed_.empty()
               ? table_
               : nullptr;
  }

  Result<std::optional<Table>> Next() override;

  std::string label() const override {
    std::string out;
    if (first_row_ != 0 || limit_ != table_->num_rows()) {
      out = "TableScan(rows " + std::to_string(first_row_) + ".." +
            std::to_string(limit_) + ")";
    } else {
      out = "TableScan(" + std::to_string(table_->num_rows()) + " rows)";
    }
    for (const auto& p : pushed_) {
      out += " [push: " + p.column + " " + CompareOpName(p.op) + " " +
             p.literal.ToString() + "]";
    }
    return out;
  }
  std::vector<const Operator*> children() const override {
    return {};
  }

 private:
  std::shared_ptr<const Table> table_;
  int64_t batch_size_;
  int64_t first_row_ = 0;  // construction-time range start (for label())
  int64_t offset_ = 0;     // scan cursor
  int64_t limit_ = 0;      // one past the last row to emit
  std::vector<ColumnPredicate> pushed_;
};

/// \brief Materializes an operator like Collect, but returns the shared
/// snapshot directly (no copy, metadata intact) when the operator is a
/// whole-table TableScan — the common shape of join inputs built by
/// PlanBuilder::Scan.
Result<std::shared_ptr<const Table>> CollectShared(Operator* op);

}  // namespace vertexica

#endif  // VERTEXICA_EXEC_SCAN_H_
