/// \file scan.h
/// \brief Table scan over an immutable table snapshot.

#ifndef VERTEXICA_EXEC_SCAN_H_
#define VERTEXICA_EXEC_SCAN_H_

#include <memory>

#include "exec/operator.h"

namespace vertexica {

/// \brief Emits `batch_size`-row slices of a materialized table.
///
/// A scan may be restricted to a row range [offset, offset+count): that is
/// the partitioned/morsel scan the parallel driver (exec/parallel.h) hands
/// to each worker, so N range scans over disjoint ranges together cover the
/// table exactly once.
class TableScan : public Operator {
 public:
  explicit TableScan(std::shared_ptr<const Table> table,
                     int64_t batch_size = kDefaultBatchSize);

  /// \brief Convenience overload copying a table value.
  explicit TableScan(Table table, int64_t batch_size = kDefaultBatchSize);

  /// \brief Range-restricted (morsel) scan over rows
  /// [offset, offset+count); the range is clamped to the table.
  TableScan(std::shared_ptr<const Table> table, int64_t batch_size,
            int64_t offset, int64_t count);

  const Schema& output_schema() const override { return table_->schema(); }
  Result<std::optional<Table>> Next() override;

  std::string label() const override {
    if (first_row_ != 0 || limit_ != table_->num_rows()) {
      return "TableScan(rows " + std::to_string(first_row_) + ".." +
             std::to_string(limit_) + ")";
    }
    return "TableScan(" + std::to_string(table_->num_rows()) + " rows)";
  }
  std::vector<const Operator*> children() const override {
    return {};
  }

 private:
  std::shared_ptr<const Table> table_;
  int64_t batch_size_;
  int64_t first_row_ = 0;  // construction-time range start (for label())
  int64_t offset_ = 0;     // scan cursor
  int64_t limit_ = 0;      // one past the last row to emit
};

}  // namespace vertexica

#endif  // VERTEXICA_EXEC_SCAN_H_
