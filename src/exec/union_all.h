/// \file union_all.h
/// \brief UNION ALL over type-compatible children.
///
/// This is the operator behind the paper's headline optimization (§2.3
/// "Table Unions"): the vertex, edge and message tables are renamed to a
/// common schema and unioned — not joined — before being fed to workers.

#ifndef VERTEXICA_EXEC_UNION_ALL_H_
#define VERTEXICA_EXEC_UNION_ALL_H_

#include <vector>

#include "exec/operator.h"

namespace vertexica {

/// \brief Concatenates child streams. Children must have equal column
/// types; output uses the first child's column names (the "common schema").
class UnionAllOp : public Operator {
 public:
  explicit UnionAllOp(std::vector<OperatorPtr> children);

  const Schema& output_schema() const override { return schema_; }
  Result<std::optional<Table>> Next() override;

  std::string label() const override { return "UnionAll"; }
  std::vector<const Operator*> children() const override {
    std::vector<const Operator*> out;
    for (const auto& c : children_) out.push_back(c.get());
    return out;
  }

 private:
  std::vector<OperatorPtr> children_;
  Schema schema_;
  Status init_status_;
  size_t current_ = 0;
};

}  // namespace vertexica

#endif  // VERTEXICA_EXEC_UNION_ALL_H_
