/// \file limit.h
/// \brief LIMIT: stops after emitting n rows.

#ifndef VERTEXICA_EXEC_LIMIT_H_
#define VERTEXICA_EXEC_LIMIT_H_

#include "exec/operator.h"

namespace vertexica {

/// \brief Truncates the input stream to its first `limit` rows.
class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr input, int64_t limit)
      : input_(std::move(input)), remaining_(limit) {}

  const Schema& output_schema() const override {
    return input_->output_schema();
  }
  // A prefix of an ordered stream is ordered.
  std::vector<OrderKey> output_order() const override {
    return input_->output_order();
  }
  Result<std::optional<Table>> Next() override;

  std::string label() const override {
    return "Limit(" + std::to_string(remaining_) + ")";
  }
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  int64_t remaining_;
};

}  // namespace vertexica

#endif  // VERTEXICA_EXEC_LIMIT_H_
