#include "exec/scan.h"

#include <algorithm>
#include <atomic>

#include "exec/kernel_stats.h"

namespace vertexica {

namespace {

std::atomic<int64_t> g_ranges_checked{0};
std::atomic<int64_t> g_ranges_pruned{0};
std::atomic<int64_t> g_rows_pruned{0};

}  // namespace

bool MorselMayMatch(const Table& table,
                    const std::vector<ColumnPredicate>& preds,
                    int64_t row_begin, int64_t row_end) {
  if (preds.empty() || row_begin >= row_end) return true;
  g_ranges_checked.fetch_add(1, std::memory_order_relaxed);
  for (const ColumnPredicate& pred : preds) {
    const Column* col = table.ColumnByName(pred.column);
    if (col == nullptr) continue;  // stale pushdown: never prune
    const auto& zm = col->zone_map();
    if (zm == nullptr) continue;
    if (!zm->RangeMayMatch(pred.op, pred.literal, row_begin, row_end)) {
      // One impossible conjunct makes the whole conjunction false.
      g_ranges_pruned.fetch_add(1, std::memory_order_relaxed);
      g_rows_pruned.fetch_add(row_end - row_begin,
                              std::memory_order_relaxed);
      return false;
    }
  }
  return true;
}

ScanPruneStats ScanPruneStatsSnapshot() {
  ScanPruneStats stats;
  stats.ranges_checked = g_ranges_checked.load(std::memory_order_relaxed);
  stats.ranges_pruned = g_ranges_pruned.load(std::memory_order_relaxed);
  stats.rows_pruned = g_rows_pruned.load(std::memory_order_relaxed);
  return stats;
}

void ResetScanPruneStats() {
  g_ranges_checked.store(0, std::memory_order_relaxed);
  g_ranges_pruned.store(0, std::memory_order_relaxed);
  g_rows_pruned.store(0, std::memory_order_relaxed);
}

TableScan::TableScan(std::shared_ptr<const Table> table, int64_t batch_size)
    : table_(std::move(table)),
      batch_size_(batch_size),
      limit_(table_->num_rows()) {
  VX_CHECK(batch_size_ > 0);
}

TableScan::TableScan(Table table, int64_t batch_size)
    : TableScan(std::make_shared<const Table>(std::move(table)), batch_size) {}

TableScan::TableScan(std::shared_ptr<const Table> table, int64_t batch_size,
                     int64_t offset, int64_t count)
    : table_(std::move(table)), batch_size_(batch_size) {
  VX_CHECK(batch_size_ > 0);
  VX_CHECK(offset >= 0 && count >= 0);
  first_row_ = std::min(offset, table_->num_rows());
  offset_ = first_row_;
  limit_ = std::min(first_row_ + count, table_->num_rows());
}

void TableScan::PushDownPredicates(std::vector<ColumnPredicate> preds) {
  pushed_ = std::move(preds);
}

Result<std::optional<Table>> TableScan::Next() {
  while (offset_ < limit_) {
    const int64_t count = std::min(batch_size_, limit_ - offset_);
    if (!pushed_.empty() &&
        !MorselMayMatch(*table_, pushed_, offset_, offset_ + count)) {
      offset_ += count;  // provably no matching row: skip without slicing
      continue;
    }
    Table batch = table_->Slice(offset_, count);
    NoteMaterialized(batch);
    offset_ += count;
    return std::optional<Table>(std::move(batch));
  }
  return std::optional<Table>{};
}

Result<std::shared_ptr<const Table>> CollectShared(Operator* op) {
  if (auto* scan = dynamic_cast<TableScan*>(op)) {
    if (auto table = scan->shared_table_if_whole()) return table;
  }
  VX_ASSIGN_OR_RETURN(Table out, Collect(op));
  return std::make_shared<const Table>(std::move(out));
}

}  // namespace vertexica
