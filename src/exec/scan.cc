#include "exec/scan.h"

#include <algorithm>

namespace vertexica {

TableScan::TableScan(std::shared_ptr<const Table> table, int64_t batch_size)
    : table_(std::move(table)),
      batch_size_(batch_size),
      limit_(table_->num_rows()) {
  VX_CHECK(batch_size_ > 0);
}

TableScan::TableScan(Table table, int64_t batch_size)
    : TableScan(std::make_shared<const Table>(std::move(table)), batch_size) {}

TableScan::TableScan(std::shared_ptr<const Table> table, int64_t batch_size,
                     int64_t offset, int64_t count)
    : table_(std::move(table)), batch_size_(batch_size) {
  VX_CHECK(batch_size_ > 0);
  VX_CHECK(offset >= 0 && count >= 0);
  first_row_ = std::min(offset, table_->num_rows());
  offset_ = first_row_;
  limit_ = std::min(first_row_ + count, table_->num_rows());
}

Result<std::optional<Table>> TableScan::Next() {
  if (offset_ >= limit_) return std::optional<Table>{};
  const int64_t count = std::min(batch_size_, limit_ - offset_);
  Table batch = table_->Slice(offset_, count);
  offset_ += count;
  return std::optional<Table>(std::move(batch));
}

}  // namespace vertexica
