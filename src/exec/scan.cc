#include "exec/scan.h"

namespace vertexica {

TableScan::TableScan(std::shared_ptr<const Table> table, int64_t batch_size)
    : table_(std::move(table)), batch_size_(batch_size) {
  VX_CHECK(batch_size_ > 0);
}

TableScan::TableScan(Table table, int64_t batch_size)
    : TableScan(std::make_shared<const Table>(std::move(table)), batch_size) {}

Result<std::optional<Table>> TableScan::Next() {
  if (offset_ >= table_->num_rows()) return std::optional<Table>{};
  const int64_t count = std::min(batch_size_, table_->num_rows() - offset_);
  Table batch = table_->Slice(offset_, count);
  offset_ += count;
  return std::optional<Table>(std::move(batch));
}

}  // namespace vertexica
