/// \file sort_op.h
/// \brief Blocking sort operator (ORDER BY).

#ifndef VERTEXICA_EXEC_SORT_OP_H_
#define VERTEXICA_EXEC_SORT_OP_H_

#include <string>
#include <vector>

#include "exec/operator.h"

namespace vertexica {

/// \brief Sort key addressed by column name.
struct OrderBySpec {
  std::string column;
  bool ascending = true;
};

/// \brief Materializes its input and emits it fully sorted.
class SortOp : public Operator {
 public:
  SortOp(OperatorPtr input, std::vector<OrderBySpec> keys);

  const Schema& output_schema() const override {
    return input_->output_schema();
  }

  // The sort is what establishes the order.
  std::vector<OrderKey> output_order() const override {
    std::vector<OrderKey> order;
    for (const OrderBySpec& k : keys_) order.push_back({k.column, k.ascending});
    return order;
  }

  Result<std::optional<Table>> Next() override;

  std::string label() const override {
    std::string out = "Sort(";
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (i > 0) out += ", ";
      out += keys_[i].column + (keys_[i].ascending ? " asc" : " desc");
    }
    return out + ")";
  }
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  std::vector<OrderBySpec> keys_;
  bool done_ = false;
};

}  // namespace vertexica

#endif  // VERTEXICA_EXEC_SORT_OP_H_
