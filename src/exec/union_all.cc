#include "exec/union_all.h"

namespace vertexica {

UnionAllOp::UnionAllOp(std::vector<OperatorPtr> children)
    : children_(std::move(children)) {
  if (children_.empty()) {
    init_status_ = Status::InvalidArgument("UnionAll: no children");
    return;
  }
  schema_ = children_[0]->output_schema();
  for (size_t i = 1; i < children_.size(); ++i) {
    if (!children_[i]->output_schema().EqualTypes(schema_)) {
      init_status_ = Status::TypeError(
          "UnionAll: child " + std::to_string(i) + " has schema " +
          children_[i]->output_schema().ToString() + ", expected types of " +
          schema_.ToString());
      return;
    }
  }
}

Result<std::optional<Table>> UnionAllOp::Next() {
  VX_RETURN_NOT_OK(init_status_);
  while (current_ < children_.size()) {
    VX_ASSIGN_OR_RETURN(auto batch, children_[current_]->Next());
    if (batch.has_value()) {
      // Rename to the common schema (first child's names).
      if (!batch->schema().Equals(schema_)) {
        std::vector<std::string> names;
        for (const auto& f : schema_.fields()) names.push_back(f.name);
        return std::optional<Table>(batch->RenameColumns(names));
      }
      return batch;
    }
    ++current_;
  }
  return std::optional<Table>{};
}

}  // namespace vertexica
