/// \file parallel.h
/// \brief Morsel-parallel relational execution (§2.3 "parallel workers",
/// applied to the operator layer).
///
/// The paper's claim is that a relational engine keeps up with specialized
/// graph systems *because* its table operators use all cores. This module is
/// that operator-level parallelism: an Exchange-style driver that splits a
/// materialized source into fixed row-range morsels and drains a per-morsel
/// plan on the shared ThreadPool, plus parallel variants of the hot
/// operators (scan→filter→project pipelines, hash join with partitioned
/// parallel build + morsel-parallel probe, aggregation with per-chunk
/// partial states merged in chunk order).
///
/// Determinism contract: morsel and chunk boundaries depend only on
/// `ParallelOptions::morsel_rows`, never on the thread count, and partial
/// results are always merged in morsel order. A plan therefore produces
/// *bit-identical* output at any `threads` setting (1, 2, 8, ...); the only
/// divergence from the serial reference operators is floating-point
/// summation order in aggregates (chunk-fold vs. row-fold), which is
/// row-set-equal within rounding. See docs/EXECUTOR.md.

#ifndef VERTEXICA_EXEC_PARALLEL_H_
#define VERTEXICA_EXEC_PARALLEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/aggregate.h"
#include "exec/hash_join.h"
#include "exec/operator.h"
#include "exec/project.h"
#include "expr/expression.h"

namespace vertexica {

/// \name The end-to-end `threads` knob
///
/// One integer controls engine parallelism: RunRequest::threads installs a
/// scoped override around the backend dispatch, and every layer that fans
/// out (exec kernels, worker UDFs, BSP compute threads, pipeline DAG waves)
/// resolves its default thread count through ExecThreads().
/// @{

/// \brief Effective parallelism for the calling thread: the innermost
/// ScopedExecThreads override, else the process default
/// (SetDefaultExecThreads, else VERTEXICA_THREADS, else hardware cores).
/// Always >= 1.
int ExecThreads();

/// \brief Sets the process-wide default parallelism; 0 restores automatic
/// resolution (VERTEXICA_THREADS env, else hardware concurrency).
void SetDefaultExecThreads(int n);

/// \brief RAII thread-count override for the current thread (how
/// RunRequest::threads reaches the kernels). n <= 0 is a no-op scope.
class ScopedExecThreads {
 public:
  explicit ScopedExecThreads(int n);
  ~ScopedExecThreads();
  ScopedExecThreads(const ScopedExecThreads&) = delete;
  ScopedExecThreads& operator=(const ScopedExecThreads&) = delete;

 private:
  int prev_;
};
/// @}

/// \brief Default rows per morsel. Fixed (not derived from the thread
/// count) so results are reproducible across parallelism settings.
inline constexpr int64_t kDefaultMorselRows = 16 * 1024;

/// \brief Per-call execution options of the parallel kernels.
struct ParallelOptions {
  /// Upper bound on threads used by this call; 0 = ExecThreads().
  int num_threads = 0;
  /// Morsel/chunk granularity in rows. Determines split boundaries (and
  /// hence output row order and FP merge order) independent of threads.
  int64_t morsel_rows = kDefaultMorselRows;

  /// The single resolution point every kernel uses.
  int ResolvedThreads() const {
    return num_threads > 0 ? num_threads : ExecThreads();
  }
  int64_t ResolvedGrain() const {
    return morsel_rows > 0 ? morsel_rows : kDefaultMorselRows;
  }
};

/// \brief Builds the per-morsel plan over a range-restricted TableScan of
/// the source. Called once per morsel, possibly concurrently; the returned
/// operator tree is drained by one thread.
using MorselPlanFactory =
    std::function<Result<OperatorPtr>(OperatorPtr morsel_source)>;

/// \brief Zone-map morsel pruning hook: returns true when the morsel
/// spanning source rows [begin, end) can be skipped entirely — i.e. the
/// per-morsel plan provably emits no rows for it. Built from pushed-down
/// predicates and the source columns' zone maps (MakeZonePrune).
using MorselPruneFn = std::function<bool(int64_t begin, int64_t end)>;

/// \brief Builds a MorselPruneFn from the pushdown conjuncts whose columns
/// carry zone maps (see exec/scan.h MorselMayMatch); nullptr when none do —
/// callers treat nullptr as "never prune".
MorselPruneFn MakeZonePrune(std::shared_ptr<const Table> table,
                            std::vector<ColumnPredicate> preds);

/// \brief The Exchange-style driver: splits `input` into row-range morsels,
/// drains `make_plan(scan-of-morsel)` for each on the shared pool, and
/// concatenates the per-morsel outputs in morsel order. Morsels rejected by
/// `prune` contribute no rows and are never scanned or decoded.
///
/// Works for any streaming per-row plan (filter, project, rename, ...).
/// Blocking operators (join, aggregate, sort) must not be put inside
/// `make_plan` — they would compute per-morsel results, not a global one;
/// use ParallelHashJoin / ParallelHashAggregate instead.
Result<Table> ParallelCollect(std::shared_ptr<const Table> input,
                              const MorselPlanFactory& make_plan,
                              const MorselPruneFn& prune,
                              const ParallelOptions& options = {});
/// \brief Overload without pruning.
Result<Table> ParallelCollect(std::shared_ptr<const Table> input,
                              const MorselPlanFactory& make_plan,
                              const ParallelOptions& options = {});
/// \brief Convenience overload copying `input` into shared ownership.
Result<Table> ParallelCollect(Table input, const MorselPlanFactory& make_plan,
                              const ParallelOptions& options = {});

/// \name Morsel-parallel streaming kernels (σ, π, fused σ→π)
///
/// ParallelFilter and ParallelFilterProject extract the pushable conjuncts
/// of the predicate (exec/filter.h) and skip morsels their zone maps rule
/// out. Under the `vectorized` knob (exec/vectorized.h, on by default),
/// predicates that decompose completely into pushable conjuncts — and
/// column-ref/literal projections — run on the fused selection-vector path:
/// conjunct-at-a-time evaluation into a selection vector (encoded-aware
/// first pass, tight typed refinement passes) with one materialization per
/// morsel at the pipeline's end. With the knob off (or an ineligible
/// shape), the table-at-a-time interpreter path runs, with ParallelFilter's
/// single-comparison encoded fast path still bypassing the interpreter.
/// Every path returns rows bit-identical to the serial FilterOp/ProjectOp.
/// @{
Result<Table> ParallelFilter(std::shared_ptr<const Table> input,
                             const ExprPtr& predicate,
                             const ParallelOptions& options = {});
Result<Table> ParallelProject(std::shared_ptr<const Table> input,
                              const std::vector<ProjectionSpec>& outputs,
                              const ParallelOptions& options = {});
/// Fused σ→π over each morsel (one pass, no intermediate materialization).
Result<Table> ParallelFilterProject(std::shared_ptr<const Table> input,
                                    const ExprPtr& predicate,
                                    const std::vector<ProjectionSpec>& outputs,
                                    const ParallelOptions& options = {});
/// @}

/// \brief Parallel hash join over materialized sides: partitioned parallel
/// build (per-chunk bucket scatter, per-partition table build) and
/// morsel-parallel probe. Output rows are in probe-row-major order with
/// build matches in build-row order — exactly the serial HashJoinOp order,
/// at any thread count.
Result<Table> ParallelHashJoin(const Table& probe, const Table& build,
                               const std::vector<std::string>& probe_keys,
                               const std::vector<std::string>& build_keys,
                               JoinType type = JoinType::kInner,
                               const ParallelOptions& options = {});

/// \brief Parallel hash aggregation: per-chunk partial states merged in
/// chunk order (so group order matches global first-appearance order, like
/// the serial operator). Defined in aggregate.cc next to the serial kernel.
Result<Table> ParallelHashAggregate(const Table& input,
                                    const std::vector<std::string>& group_by,
                                    const std::vector<AggSpec>& aggs,
                                    const ParallelOptions& options = {});

/// \brief Operator wrapper over ParallelHashJoin: materializes both
/// children, joins in parallel, emits the result as one batch. This is what
/// PlanBuilder::Join builds, so every plan in the system (coordinator
/// supersteps, sqlgraph algorithms, pipeline nodes) joins in parallel.
class ParallelHashJoinOp : public Operator {
 public:
  ParallelHashJoinOp(OperatorPtr probe, OperatorPtr build,
                     std::vector<std::string> probe_keys,
                     std::vector<std::string> build_keys,
                     JoinType type = JoinType::kInner,
                     ParallelOptions options = {});

  const Schema& output_schema() const override { return schema_; }
  Result<std::optional<Table>> Next() override;

  // Probe-row-major output: the probe side's declared order survives.
  std::vector<OrderKey> output_order() const override {
    return probe_->output_order();
  }

  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {probe_.get(), build_.get()};
  }

 private:
  OperatorPtr probe_;
  OperatorPtr build_;
  std::vector<std::string> probe_keys_;
  std::vector<std::string> build_keys_;
  JoinType type_;
  ParallelOptions options_;
  Schema schema_;
  Status init_status_;
  bool done_ = false;
};

/// \brief Operator wrapper over ParallelHashAggregate; built by
/// PlanBuilder::Aggregate.
class ParallelAggregateOp : public Operator {
 public:
  ParallelAggregateOp(OperatorPtr input, std::vector<std::string> group_by,
                      std::vector<AggSpec> aggs, ParallelOptions options = {});

  const Schema& output_schema() const override { return schema_; }
  Result<std::optional<Table>> Next() override;

  // Groups are emitted in first-appearance order, so when the input is
  // already sorted by the group-by prefix, first appearance *is* sorted —
  // the combiner's group-by-dst output inherits the message order.
  std::vector<OrderKey> output_order() const override {
    const std::vector<OrderKey> in = input_->output_order();
    if (group_by_.empty() || group_by_.size() > in.size()) return {};
    for (size_t i = 0; i < group_by_.size(); ++i) {
      if (in[i].column != group_by_[i] || !in[i].ascending) return {};
    }
    std::vector<OrderKey> order;
    for (const auto& g : group_by_) order.push_back({g, true});
    return order;
  }

  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  std::vector<std::string> group_by_;
  std::vector<AggSpec> aggs_;
  ParallelOptions options_;
  Schema schema_;
  Status init_status_;
  bool done_ = false;
};

}  // namespace vertexica

#endif  // VERTEXICA_EXEC_PARALLEL_H_
