#include "exec/project.h"

#include "exec/kernel_stats.h"

namespace vertexica {

ProjectOp::ProjectOp(OperatorPtr input, std::vector<ProjectionSpec> outputs)
    : input_(std::move(input)), outputs_(std::move(outputs)) {
  for (const auto& spec : outputs_) {
    auto type = spec.expr->OutputType(input_->output_schema());
    if (!type.ok()) {
      init_status_ = type.status();
      return;
    }
    schema_.AddField(Field{spec.name, *type});
  }
}

Result<std::optional<Table>> ProjectOp::Next() {
  VX_RETURN_NOT_OK(init_status_);
  VX_ASSIGN_OR_RETURN(auto batch, input_->Next());
  if (!batch.has_value()) return std::optional<Table>{};
  std::vector<Column> columns;
  columns.reserve(outputs_.size());
  for (const auto& spec : outputs_) {
    VX_ASSIGN_OR_RETURN(Column col, spec.expr->Evaluate(*batch));
    columns.push_back(std::move(col));
  }
  VX_ASSIGN_OR_RETURN(Table out, Table::Make(schema_, std::move(columns)));
  NoteMaterialized(out);
  NoteLegacyBatch();
  return std::optional<Table>(std::move(out));
}

}  // namespace vertexica
