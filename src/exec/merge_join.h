/// \file merge_join.h
/// \brief Order-aware sort-merge join over sorted inputs.
///
/// PR 3 pays to keep the edge table sorted on (src, dst) with an RLE
/// source column, and the coordinator keeps the vertex table sorted by id
/// and the message table sorted by receiver — yet the superstep triple
/// join re-built hash tables over those statically ordered inputs every
/// step. This module is the column-store answer: a merge join that reads
/// the sorted (and run-length-encoded) representation directly, with zero
/// hash builds.
///
/// Semantics are *bit-identical* to the hash joins (exec/hash_join.h,
/// exec/parallel.h): probe-row-major output, build matches in ascending
/// build-row order, SQL NULL keys never match, DOUBLE keys compared under
/// the CompareRows total order (NaN equals itself, exactly like
/// JoinKeysEqual). The parallel driver splits the probe side into morsels
/// whose boundaries depend only on `morsel_rows` and the data — each fixed
/// grain boundary is extended to the next key-group boundary — so results
/// are bit-identical at any thread count.
///
/// Order is *established*, never assumed: `TableSortedOnKeys` accepts the
/// declared metadata (Table::sort_order / Column::sorted_ascending / RLE
/// runs — the trusted physical-design contract, like zone maps) and
/// otherwise verifies with one comparison pass. `ParallelMergeJoinOp`
/// falls back to the parallel hash join when the inputs turn out
/// unsorted, so the planner's static order claims can only cost a
/// fallback, never correctness.

#ifndef VERTEXICA_EXEC_MERGE_JOIN_H_
#define VERTEXICA_EXEC_MERGE_JOIN_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/hash_join.h"
#include "exec/operator.h"
#include "exec/parallel.h"

namespace vertexica {

/// \name The merge-join knob
///
/// Ambient on/off switch mirroring ExecThreads / the encoding mode:
/// innermost ScopedMergeJoin override, else the process default
/// (SetDefaultMergeJoin, else VERTEXICA_MERGE_JOIN env — "0"/"off"
/// disables — else on). PlanBuilder::Join consults it, so one scope turns
/// the order-aware path off for an entire run (ablation benches,
/// VertexicaOptions::use_merge_join).
/// @{
bool MergeJoinEnabled();
/// \brief Sets the process default: 1 = on, 0 = off, -1 = automatic
/// (env, else on).
void SetDefaultMergeJoin(int enabled);
/// \brief RAII override for the current thread.
class ScopedMergeJoin {
 public:
  explicit ScopedMergeJoin(bool enabled);
  ~ScopedMergeJoin();
  ScopedMergeJoin(const ScopedMergeJoin&) = delete;
  ScopedMergeJoin& operator=(const ScopedMergeJoin&) = delete;

 private:
  int prev_;
};
/// @}

/// \name Join-path accounting
///
/// Thread-local collector the join kernels report into: which physical
/// path ran, rows emitted, and wall-clock inside the kernel. The
/// coordinator installs one per superstep and publishes the counters via
/// SuperstepStats, so bench output shows merge-vs-hash per step.
/// @{
struct JoinPathStats {
  int64_t merge_joins = 0;      ///< merge-join kernel invocations
  int64_t hash_joins = 0;       ///< hash-join kernel invocations
  int64_t merge_rows = 0;       ///< rows emitted by merge joins
  int64_t hash_rows = 0;        ///< rows emitted by hash joins
  double merge_seconds = 0.0;   ///< wall-clock inside merge kernels
  double hash_seconds = 0.0;    ///< wall-clock inside hash kernels
};

/// \brief The innermost collector installed on this thread; nullptr when
/// none. Kernels add to it from the thread that drains the operator (the
/// per-morsel fan-out happens inside the kernel, so no locking is needed).
JoinPathStats* AmbientJoinStats();

/// \brief RAII installation of a collector for the current thread.
class ScopedJoinStatsCollector {
 public:
  explicit ScopedJoinStatsCollector(JoinPathStats* stats);
  ~ScopedJoinStatsCollector();
  ScopedJoinStatsCollector(const ScopedJoinStatsCollector&) = delete;
  ScopedJoinStatsCollector& operator=(const ScopedJoinStatsCollector&) =
      delete;

 private:
  JoinPathStats* prev_;
};
/// @}

/// \brief True when `order` covers `keys` as a prefix, in sequence and
/// all ascending — the planner-side test for merge-join eligibility.
bool OrderPrefixCovers(const std::vector<OrderKey>& order,
                       const std::vector<std::string>& keys);

/// \brief Establishes that `t` is lexicographically nondecreasing on
/// `key_cols` under CompareRows: declared metadata first (table order
/// prefix; for a single key also the column's sorted flag or its RLE run
/// values), else one verification pass over the key columns.
bool TableSortedOnKeys(const Table& t, const std::vector<int>& key_cols);

/// \brief Morsel-parallel sort-merge join. Precondition: both inputs are
/// sorted on their key columns (see TableSortedOnKeys) and key column
/// types match pairwise; `ParallelMergeJoinOp` checks both and falls back
/// to the hash join instead of calling this.
///
/// Output is bit-identical to ParallelHashJoin/HashJoinOp on the same
/// inputs, at any thread count, and carries the probe side's sort order.
/// When the build key column is RLE-encoded (the edge table's src), whole
/// runs are matched without decoding the key column.
Result<Table> ParallelMergeJoin(const Table& probe, const Table& build,
                                const std::vector<std::string>& probe_keys,
                                const std::vector<std::string>& build_keys,
                                JoinType type = JoinType::kInner,
                                const ParallelOptions& options = {});

/// \brief Operator wrapper built by PlanBuilder::Join when both children
/// declare compatible output orders: materializes both sides (reusing the
/// whole-table scan snapshot when possible, see CollectShared),
/// re-establishes sortedness, and merges — or falls back to
/// ParallelHashJoin. Either path reports to AmbientJoinStats.
class ParallelMergeJoinOp : public Operator {
 public:
  ParallelMergeJoinOp(OperatorPtr probe, OperatorPtr build,
                      std::vector<std::string> probe_keys,
                      std::vector<std::string> build_keys,
                      JoinType type = JoinType::kInner,
                      ParallelOptions options = {});

  const Schema& output_schema() const override { return schema_; }
  Result<std::optional<Table>> Next() override;

  // Probe-row-major output: the probe side's order survives the join.
  std::vector<OrderKey> output_order() const override {
    return probe_->output_order();
  }

  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {probe_.get(), build_.get()};
  }

 private:
  OperatorPtr probe_;
  OperatorPtr build_;
  std::vector<std::string> probe_keys_;
  std::vector<std::string> build_keys_;
  JoinType type_;
  ParallelOptions options_;
  Schema schema_;
  Status init_status_;
  bool done_ = false;
};

}  // namespace vertexica

#endif  // VERTEXICA_EXEC_MERGE_JOIN_H_
