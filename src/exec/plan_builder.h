/// \file plan_builder.h
/// \brief Fluent construction of physical plans.
///
/// The hand-written SQL graph algorithms (§3.1–3.2) are expressed as plans:
///
/// \code
///   auto ranks = PlanBuilder::Scan(edges)
///                    .Join(PlanBuilder::Scan(ranks), {"src"}, {"id"})
///                    .Project({{"dst", Col("dst")},
///                              {"contrib", Div(Col("rank"), Col("outdeg"))}})
///                    .Aggregate({"dst"}, {{AggOp::kSum, "contrib", "rank"}})
///                    .Execute();
/// \endcode

#ifndef VERTEXICA_EXEC_PLAN_BUILDER_H_
#define VERTEXICA_EXEC_PLAN_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/aggregate.h"
#include "exec/distinct.h"
#include "exec/filter.h"
#include "exec/hash_join.h"
#include "exec/limit.h"
#include "exec/operator.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "exec/sort_op.h"
#include "exec/topn.h"
#include "exec/union_all.h"

namespace vertexica {

/// \brief Chainable builder producing an `OperatorPtr` pipeline.
class PlanBuilder {
 public:
  /// \name Leaf constructors
  /// @{
  static PlanBuilder Scan(std::shared_ptr<const Table> table,
                          int64_t batch_size = kDefaultBatchSize);
  static PlanBuilder Scan(Table table,
                          int64_t batch_size = kDefaultBatchSize);
  /// \brief Wraps an arbitrary operator (e.g. a TransformUdfOp).
  static PlanBuilder FromOperator(OperatorPtr op);
  /// @}

  /// \name Relational transformations (each consumes *this)
  /// @{
  PlanBuilder Filter(ExprPtr predicate) &&;
  PlanBuilder Project(std::vector<ProjectionSpec> outputs) &&;
  /// Keep only the named columns, in the given order.
  PlanBuilder Select(const std::vector<std::string>& columns) &&;
  PlanBuilder Join(PlanBuilder build, std::vector<std::string> probe_keys,
                   std::vector<std::string> build_keys,
                   JoinType type = JoinType::kInner) &&;
  PlanBuilder Aggregate(std::vector<std::string> group_by,
                        std::vector<AggSpec> aggs) &&;
  PlanBuilder OrderBy(std::vector<OrderBySpec> keys) &&;
  PlanBuilder Limit(int64_t n) &&;
  /// Fused ORDER BY + LIMIT with bounded memory.
  PlanBuilder TopN(std::vector<OrderBySpec> keys, int64_t n) &&;
  PlanBuilder Distinct() &&;
  PlanBuilder Union(PlanBuilder other) &&;
  /// Rename all columns (positional).
  PlanBuilder Rename(std::vector<std::string> names) &&;
  /// @}

  /// \brief Releases the built operator tree.
  OperatorPtr Build() &&;

  /// \brief Builds and fully executes, returning the materialized result.
  Result<Table> Execute() &&;

  /// \brief EXPLAIN rendering of the plan built so far.
  std::string Explain() const { return ExplainPlan(*op_); }

  const Schema& output_schema() const { return op_->output_schema(); }

 private:
  explicit PlanBuilder(OperatorPtr op) : op_(std::move(op)) {}
  OperatorPtr op_;
};

}  // namespace vertexica

#endif  // VERTEXICA_EXEC_PLAN_BUILDER_H_
