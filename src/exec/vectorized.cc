#include "exec/vectorized.h"

#include <atomic>

#include "common/env_knob.h"
#include "exec/kernel_stats.h"

namespace vertexica {

// --------------------------------------------------------------- the knob

namespace {

std::atomic<int> g_default_vectorized{-1};  // -1 = automatic (env, else on)
thread_local int tl_vectorized_override = -1;  // -1 unset, 0 off, 1 on

bool EnvVectorizedEnabled() {
  // Validated through the shared env-knob helper: a typo like
  // VERTEXICA_VECTORIZED=offf warns once and keeps the default (on).
  const std::string token = EnvTokenKnob(
      "VERTEXICA_VECTORIZED",
      {"0", "off", "false", "no", "1", "on", "true", "yes"}, "on");
  return token != "0" && token != "off" && token != "false" && token != "no";
}

}  // namespace

bool VectorizedEnabled() {
  if (tl_vectorized_override >= 0) return tl_vectorized_override != 0;
  const int configured = g_default_vectorized.load(std::memory_order_relaxed);
  if (configured >= 0) return configured != 0;
  static const bool env = EnvVectorizedEnabled();
  return env;
}

void SetDefaultVectorized(int enabled) {
  g_default_vectorized.store(enabled < 0 ? -1 : (enabled != 0 ? 1 : 0),
                             std::memory_order_relaxed);
}

ScopedVectorized::ScopedVectorized(bool enabled)
    : prev_(tl_vectorized_override) {
  tl_vectorized_override = enabled ? 1 : 0;
}

ScopedVectorized::~ScopedVectorized() { tl_vectorized_override = prev_; }

// ------------------------------------------------------------ compilation

std::optional<FusedPipelinePlan> CompileFusedPipeline(
    const Table& input, const ExprPtr& predicate,
    const std::vector<ProjectionSpec>& outputs) {
  if (outputs.empty()) return std::nullopt;
  FusedPipelinePlan plan;
  if (predicate != nullptr) {
    PredicateConjuncts split =
        SplitPredicateConjuncts(predicate, input.schema());
    // Only a *complete* decomposition may bypass the interpreter: one
    // residual conjunct and the Kleene-AND mask could differ from the
    // conjunct intersection.
    if (!split.residual.empty() || split.pushable.empty()) {
      return std::nullopt;
    }
    plan.conjuncts = std::move(split.pushable);
  }
  for (const auto& spec : outputs) {
    FusedPipelinePlan::Output out;
    out.name = spec.name;
    if (const auto* ref =
            dynamic_cast<const ColumnRefExpr*>(spec.expr.get())) {
      const int idx = input.schema().FieldIndex(ref->name());
      if (idx < 0) return std::nullopt;
      out.source_column = idx;
      out.type = input.schema().field(idx).type;
    } else if (const auto* lit =
                   dynamic_cast<const LiteralExpr*>(spec.expr.get())) {
      out.literal = lit->value();
      out.type = lit->type();
    } else {
      return std::nullopt;  // computed projection: interpreter path
    }
    plan.schema.AddField(Field{out.name, out.type});
    plan.outputs.push_back(std::move(out));
  }
  return plan;
}

// ------------------------------------------------------- selection kernels

void RefineMatchingRows(const Column& column, CompareOp op,
                        const Value& literal, SelVector* sel) {
  if (sel->empty()) return;
  // NULL literal: the comparison is NULL for every row — no matches.
  if (literal.is_null()) {
    sel->clear();
    return;
  }
  const bool has_nulls = column.null_count() > 0;
  size_t w = 0;
  switch (column.type()) {
    case DataType::kInt64: {
      const int64_t lit = literal.int64_value();
      const auto& v = column.ints();
      for (const int64_t i : *sel) {
        const int64_t x = v[static_cast<size_t>(i)];
        if (CompareOpMatches(op, x < lit ? -1 : (x > lit ? 1 : 0)) &&
            !(has_nulls && column.IsNull(i))) {
          (*sel)[w++] = i;
        }
      }
      break;
    }
    case DataType::kDouble: {
      const double lit = literal.double_value();
      const auto& v = column.doubles();
      for (const int64_t i : *sel) {
        if (CompareOpMatches(
                op, TotalOrderCompareDoubles(v[static_cast<size_t>(i)],
                                             lit)) &&
            !(has_nulls && column.IsNull(i))) {
          (*sel)[w++] = i;
        }
      }
      break;
    }
    case DataType::kBool: {
      const int lit = literal.bool_value() ? 1 : 0;
      const auto& v = column.bools();
      for (const int64_t i : *sel) {
        const int x = v[static_cast<size_t>(i)] != 0 ? 1 : 0;
        if (CompareOpMatches(op, x - lit) &&
            !(has_nulls && column.IsNull(i))) {
          (*sel)[w++] = i;
        }
      }
      break;
    }
    case DataType::kString: {
      const std::string& lit = literal.string_value();
      if (const auto* dict = column.dict()) {
        // One comparison per dictionary entry, then a code scan over the
        // surviving rows — same evaluation shape as SelectMatchingRows.
        std::vector<uint8_t> entry_matches(dict->dictionary.size());
        for (size_t k = 0; k < dict->dictionary.size(); ++k) {
          const int cmp = dict->dictionary[k].compare(lit);
          entry_matches[k] =
              CompareOpMatches(op, cmp < 0 ? -1 : (cmp > 0 ? 1 : 0)) ? 1 : 0;
        }
        for (const int64_t i : *sel) {
          if (entry_matches[static_cast<size_t>(
                  dict->codes[static_cast<size_t>(i)])] != 0 &&
              !(has_nulls && column.IsNull(i))) {
            (*sel)[w++] = i;
          }
        }
        break;
      }
      const auto& v = column.strings();
      for (const int64_t i : *sel) {
        const int cmp = v[static_cast<size_t>(i)].compare(lit);
        if (CompareOpMatches(op, cmp < 0 ? -1 : (cmp > 0 ? 1 : 0)) &&
            !(has_nulls && column.IsNull(i))) {
          (*sel)[w++] = i;
        }
      }
      break;
    }
  }
  sel->resize(w);
}

void EvaluateConjuncts(const Table& source,
                       const std::vector<ColumnPredicate>& conjuncts,
                       int64_t begin, int64_t end, Batch* batch) {
  batch->source = &source;
  batch->begin = begin;
  batch->end = end;
  batch->sel.clear();
  batch->dense = conjuncts.empty();
  if (batch->dense) return;
  const Column* first = source.ColumnByName(conjuncts[0].column);
  VX_CHECK(first != nullptr);  // CompileFusedPipeline validated the schema
  SelectMatchingRows(*first, conjuncts[0].op, conjuncts[0].literal, begin,
                     end, &batch->sel);
  for (size_t k = 1; k < conjuncts.size() && !batch->sel.empty(); ++k) {
    const Column* col = source.ColumnByName(conjuncts[k].column);
    VX_CHECK(col != nullptr);
    RefineMatchingRows(*col, conjuncts[k].op, conjuncts[k].literal,
                       &batch->sel);
  }
  if (static_cast<int64_t>(batch->sel.size()) == end - begin) {
    // Every window row survived: collapse to the dense representation so
    // the gather below becomes a contiguous slice.
    batch->dense = true;
    batch->sel.clear();
  }
}

// ---------------------------------------------------------- materialization

Result<Table> MaterializeFusedOutputs(const FusedPipelinePlan& plan,
                                      const Batch& batch) {
  const int64_t rows = batch.num_selected();
  std::vector<Column> columns;
  columns.reserve(plan.outputs.size());
  for (const auto& out : plan.outputs) {
    if (out.source_column >= 0) {
      columns.push_back(
          MaterializeColumn(batch.source->column(out.source_column), batch));
    } else {
      // Replicated exactly like LiteralExpr::Evaluate, so literal outputs
      // stay byte-identical to the interpreter path.
      Column c(out.type);
      c.Reserve(rows);
      for (int64_t i = 0; i < rows; ++i) c.AppendValue(out.literal);
      columns.push_back(std::move(c));
    }
  }
  // materialize-ok: the pipeline's end — the single assembly of the fused
  // pipeline's output table.
  VX_ASSIGN_OR_RETURN(Table table,
                      Table::Make(plan.schema, std::move(columns)));
  NoteMaterialized(table);
  NoteFusedBatch();
  return table;
}

}  // namespace vertexica
