#include "exec/kernel_stats.h"

#include "storage/table.h"

namespace vertexica {

namespace {

thread_local KernelStats* tl_kernel_stats = nullptr;

}  // namespace

KernelStatsSnapshot Snapshot(const KernelStats& stats) {
  KernelStatsSnapshot out;
  out.bytes_materialized =
      stats.bytes_materialized.load(std::memory_order_relaxed);
  out.fused_batches = stats.fused_batches.load(std::memory_order_relaxed);
  out.legacy_batches = stats.legacy_batches.load(std::memory_order_relaxed);
  out.batch_hash_rows = stats.batch_hash_rows.load(std::memory_order_relaxed);
  return out;
}

KernelStats* AmbientKernelStats() { return tl_kernel_stats; }

ScopedKernelStats::ScopedKernelStats(KernelStats* stats)
    : prev_(tl_kernel_stats) {
  tl_kernel_stats = stats;
}

ScopedKernelStats::~ScopedKernelStats() { tl_kernel_stats = prev_; }

int64_t MaterializedByteSize(const Column& col) {
  int64_t bytes = col.ValidityByteSize();
  if (const auto* runs = col.rle_runs()) {
    return bytes + static_cast<int64_t>(runs->size()) *
                       static_cast<int64_t>(sizeof(RleRun));
  }
  if (const auto* dict = col.dict()) {
    // The dictionary itself is shared by all copies of the segment; the
    // per-row materialization cost is the code vector.
    return bytes + static_cast<int64_t>(dict->codes.size()) *
                       static_cast<int64_t>(sizeof(dict->codes[0]));
  }
  switch (col.type()) {
    case DataType::kInt64:
      return bytes + col.length() * 8;
    case DataType::kDouble:
      return bytes + col.length() * 8;
    case DataType::kBool:
      return bytes + col.length();
    case DataType::kString: {
      // Plain (or plain-decoded) strings: header plus character storage.
      int64_t sum = 0;
      for (const std::string& s : col.strings()) {
        sum += static_cast<int64_t>(sizeof(std::string) + s.size());
      }
      return bytes + sum;
    }
  }
  return bytes;
}

void NoteMaterialized(const Table& table) {
  KernelStats* stats = tl_kernel_stats;
  if (stats == nullptr) return;
  int64_t bytes = 0;
  for (int c = 0; c < table.num_columns(); ++c) {
    bytes += MaterializedByteSize(table.column(c));
  }
  stats->bytes_materialized.fetch_add(bytes, std::memory_order_relaxed);
}

void NoteMaterialized(const Column& column) {
  KernelStats* stats = tl_kernel_stats;
  if (stats == nullptr) return;
  stats->bytes_materialized.fetch_add(MaterializedByteSize(column),
                                      std::memory_order_relaxed);
}

void NoteFusedBatch() {
  KernelStats* stats = tl_kernel_stats;
  if (stats == nullptr) return;
  stats->fused_batches.fetch_add(1, std::memory_order_relaxed);
}

void NoteLegacyBatch() {
  KernelStats* stats = tl_kernel_stats;
  if (stats == nullptr) return;
  stats->legacy_batches.fetch_add(1, std::memory_order_relaxed);
}

void NoteBatchHashRows(int64_t rows) {
  KernelStats* stats = tl_kernel_stats;
  if (stats == nullptr) return;
  stats->batch_hash_rows.fetch_add(rows, std::memory_order_relaxed);
}

}  // namespace vertexica
