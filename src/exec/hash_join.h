/// \file hash_join.h
/// \brief Hash joins (inner, left outer, semi, anti).
///
/// §2.3 motivates replacing the vertex⋈edge⋈message 3-way join with a
/// union; this operator is the join side of that ablation, and the general
/// workhorse for metadata joins (§3.4) and the "update vs replace" left
/// join that rebuilds the vertex table each superstep.

#ifndef VERTEXICA_EXEC_HASH_JOIN_H_
#define VERTEXICA_EXEC_HASH_JOIN_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"

namespace vertexica {

enum class JoinType { kInner, kLeft, kSemi, kAnti };

const char* JoinTypeName(JoinType t);

/// \name Row-level join primitives
/// Shared by the serial operator below and the parallel join kernel
/// (exec/parallel.h) so both hash, compare, and pad identically.
/// @{

/// \brief Hash of one row's key columns.
uint64_t JoinKeyHash(const Table& t, const std::vector<int>& key_cols,
                     int64_t row);

/// \brief Hashes every row of [begin, end) into `hashes[i - begin]` —
/// column-at-a-time over the key columns so plain non-NULL INT64/DOUBLE
/// keys hash in a tight loop over the typed view. Values are byte-identical
/// to calling JoinKeyHash per row (HashCombine is applied in key-column
/// order for each row either way), so batched and per-row callers build
/// compatible tables. Rows hashed here are reported to the ambient
/// KernelStats.
void BatchJoinKeyHash(const Table& t, const std::vector<int>& key_cols,
                      int64_t begin, int64_t end,
                      std::vector<uint64_t>* hashes);

/// \brief True when any key column is NULL at `row` (SQL: never matches).
bool JoinKeyHasNull(const Table& t, const std::vector<int>& key_cols,
                    int64_t row);

/// \brief Multi-column key equality between two rows of two tables.
bool JoinKeysEqual(const Table& a, const std::vector<int>& a_cols, int64_t ai,
                   const Table& b, const std::vector<int>& b_cols, int64_t bi);

/// \brief Gathers `indices` from `col`; index -1 produces NULL (left-join
/// padding).
Column JoinTakeWithNulls(const Column& col, const std::vector<int64_t>& indices);

/// \brief Output schema shared by all hash-join implementations: probe
/// columns then build columns (inner/left, collisions suffixed "_r"), probe
/// columns only (semi/anti). Validates the key lists against both schemas.
Result<Schema> HashJoinOutputSchema(const Schema& probe, const Schema& build,
                                    const std::vector<std::string>& probe_keys,
                                    const std::vector<std::string>& build_keys,
                                    JoinType type);
/// @}

/// \brief Canonical hash join: fully materializes the build (right) side,
/// then streams probe (left) batches against the hash table.
///
/// Output schema: probe columns followed by build columns (inner/left);
/// probe columns only (semi/anti). Build column names that collide with a
/// probe column name are suffixed with "_r". SQL NULL semantics: a NULL key
/// never matches.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr probe, OperatorPtr build,
             std::vector<std::string> probe_keys,
             std::vector<std::string> build_keys,
             JoinType type = JoinType::kInner);

  const Schema& output_schema() const override { return schema_; }
  Result<std::optional<Table>> Next() override;

  std::string label() const override {
    std::string out = std::string("HashJoin[") + JoinTypeName(type_) + "](";
    for (size_t i = 0; i < probe_key_names_.size(); ++i) {
      if (i > 0) out += ", ";
      out += probe_key_names_[i] + " = " + build_key_names_[i];
    }
    return out + ")";
  }
  std::vector<const Operator*> children() const override {
    return {probe_.get(), build_.get()};
  }

 private:
  Status BuildHashTable();
  // Appends matches for one probe batch into (probe_idx, build_idx) pairs;
  // build_idx == -1 emits NULLs (left join).
  Status ProbeBatch(const Table& batch, std::vector<int64_t>* probe_idx,
                    std::vector<int64_t>* build_idx);

  OperatorPtr probe_;
  OperatorPtr build_;
  std::vector<std::string> probe_key_names_;
  std::vector<std::string> build_key_names_;
  JoinType type_;

  Schema schema_;
  Status init_status_;
  bool built_ = false;

  Table build_table_;
  std::vector<int> build_key_cols_;
  // hash -> row indices in build_table_ (chained; equality re-verified).
  // order-insensitive: probed by key only; matches emit in probe-row then
  // chain (build-row) order, never in map-iteration order.
  std::unordered_map<uint64_t, std::vector<int64_t>> index_;
};

}  // namespace vertexica

#endif  // VERTEXICA_EXEC_HASH_JOIN_H_
