#include "exec/distinct.h"

#include "common/hash.h"

namespace vertexica {

namespace {
uint64_t HashFullRow(const Table& t, int64_t row) {
  uint64_t h = 0x44697374ULL;  // "Dist"
  for (int c = 0; c < t.num_columns(); ++c) {
    h = HashCombine(h, t.column(c).HashRow(row));
  }
  return h;
}

bool RowsEqual(const Table& t, int64_t a, int64_t b) {
  for (int c = 0; c < t.num_columns(); ++c) {
    const Column& col = t.column(c);
    if (col.IsNull(a) != col.IsNull(b)) return false;
    if (!col.IsNull(a) && col.CompareRows(a, col, b) != 0) return false;
  }
  return true;
}
}  // namespace

Result<std::optional<Table>> DistinctOp::Next() {
  if (done_) return std::optional<Table>{};
  done_ = true;
  VX_ASSIGN_OR_RETURN(Table all, Collect(input_.get()));
  // order-insensitive: keyed lookups only; kept rows come out in input-row
  // order, never in map-iteration order.
  std::unordered_map<uint64_t, std::vector<int64_t>> seen;
  std::vector<int64_t> keep;
  for (int64_t i = 0; i < all.num_rows(); ++i) {
    auto& chain = seen[HashFullRow(all, i)];
    bool dup = false;
    for (int64_t j : chain) {
      if (RowsEqual(all, i, j)) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      chain.push_back(i);
      keep.push_back(i);
    }
  }
  return std::optional<Table>(all.Take(keep));
}

}  // namespace vertexica
