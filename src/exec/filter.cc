#include "exec/filter.h"

#include <algorithm>
#include <cmath>

#include "exec/kernel_stats.h"

namespace vertexica {

namespace {

/// Maps a comparison BinaryOp onto the storage-layer CompareOp; nullopt for
/// non-comparisons.
std::optional<CompareOp> ToCompareOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return CompareOp::kEq;
    case BinaryOp::kNe:
      return CompareOp::kNe;
    case BinaryOp::kLt:
      return CompareOp::kLt;
    case BinaryOp::kLe:
      return CompareOp::kLe;
    case BinaryOp::kGt:
      return CompareOp::kGt;
    case BinaryOp::kGe:
      return CompareOp::kGe;
    default:
      return std::nullopt;
  }
}

/// `lit <op> col` ≡ `col <flipped op> lit`.
CompareOp FlipCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    case CompareOp::kEq:
    case CompareOp::kNe:
      return op;
  }
  return op;
}

bool LiteralMatchesColumnType(const Value& literal, DataType type) {
  switch (type) {
    case DataType::kInt64:
      return literal.is_int64();
    case DataType::kDouble:
      return literal.is_double();
    case DataType::kString:
      return literal.is_string();
    case DataType::kBool:
      return literal.is_bool();
  }
  return false;
}

/// Matches `column <op> literal` (either operand order) with an exact
/// column/literal type pairing.
std::optional<ColumnPredicate> MatchComparison(const BinaryExpr& cmp,
                                               const Schema& schema) {
  const auto op = ToCompareOp(cmp.op());
  if (!op.has_value()) return std::nullopt;
  const auto* lcol = dynamic_cast<const ColumnRefExpr*>(cmp.left().get());
  const auto* rcol = dynamic_cast<const ColumnRefExpr*>(cmp.right().get());
  const auto* llit = dynamic_cast<const LiteralExpr*>(cmp.left().get());
  const auto* rlit = dynamic_cast<const LiteralExpr*>(cmp.right().get());
  const ColumnRefExpr* col = nullptr;
  const LiteralExpr* lit = nullptr;
  CompareOp resolved = *op;
  if (lcol != nullptr && rlit != nullptr) {
    col = lcol;
    lit = rlit;
  } else if (llit != nullptr && rcol != nullptr) {
    col = rcol;
    lit = llit;
    resolved = FlipCompareOp(resolved);
  } else {
    return std::nullopt;
  }
  const int idx = schema.FieldIndex(col->name());
  if (idx < 0) return std::nullopt;
  // NULL literals are pushable too: `col <op> NULL` matches no row, which
  // both the zone maps and SelectMatchingRows report consistently.
  if (!lit->value().is_null() &&
      !LiteralMatchesColumnType(lit->value(), schema.field(idx).type)) {
    return std::nullopt;
  }
  return ColumnPredicate{col->name(), resolved, lit->value()};
}

void SplitConjuncts(const ExprPtr& expr, const Schema& schema,
                    PredicateConjuncts* out) {
  const auto* binary = dynamic_cast<const BinaryExpr*>(expr.get());
  if (binary != nullptr && binary->op() == BinaryOp::kAnd) {
    SplitConjuncts(binary->left(), schema, out);
    SplitConjuncts(binary->right(), schema, out);
    return;
  }
  if (binary != nullptr) {
    if (auto pred = MatchComparison(*binary, schema)) {
      out->pushable.push_back(*std::move(pred));
      return;
    }
  }
  out->residual.push_back(expr);
}

}  // namespace

bool CompareOpMatches(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

std::vector<ColumnPredicate> ExtractPushdownPredicates(
    const ExprPtr& predicate, const Schema& schema) {
  return SplitPredicateConjuncts(predicate, schema).pushable;
}

PredicateConjuncts SplitPredicateConjuncts(const ExprPtr& predicate,
                                           const Schema& schema) {
  PredicateConjuncts out;
  SplitConjuncts(predicate, schema, &out);
  return out;
}

std::optional<ColumnPredicate> ExactColumnPredicate(const ExprPtr& predicate,
                                                    const Schema& schema) {
  const auto* binary = dynamic_cast<const BinaryExpr*>(predicate.get());
  if (binary == nullptr || binary->op() == BinaryOp::kAnd) return std::nullopt;
  return MatchComparison(*binary, schema);
}

void SelectMatchingRows(const Column& column, CompareOp op,
                        const Value& literal, int64_t begin, int64_t end,
                        std::vector<int64_t>* out) {
  begin = std::max<int64_t>(begin, 0);
  end = std::min(end, column.length());
  if (begin >= end) return;
  // NULL literal: the comparison is NULL for every row — no matches.
  if (literal.is_null()) return;
  VX_CHECK(LiteralMatchesColumnType(literal, column.type()))
      << "SelectMatchingRows: literal/column type mismatch";

  const bool has_nulls = column.null_count() > 0;
  auto emit_range = [&](int64_t from, int64_t to) {
    if (!has_nulls) {
      for (int64_t i = from; i < to; ++i) out->push_back(i);
      return;
    }
    for (int64_t i = from; i < to; ++i) {
      if (!column.IsNull(i)) out->push_back(i);
    }
  };
  // One comparison per run overlapping [begin, end); the run-start offsets
  // locate the first overlapping run by binary search so a morsel only
  // touches its own runs (not the whole run list from row 0).
  auto scan_runs = [&](const auto& run_matches) {
    const std::vector<RleRun>& runs = *column.rle_runs();
    const std::vector<int64_t>& starts = *column.rle_run_starts();
    auto k = static_cast<size_t>(
        std::upper_bound(starts.begin(), starts.end(), begin) -
        starts.begin());
    if (k > 0) --k;
    for (; k < runs.size(); ++k) {
      const int64_t row = starts[k];
      if (row >= end) break;
      const int64_t run_end = row + runs[k].length;
      if (run_end > begin && run_matches(runs[k].value)) {
        emit_range(std::max(row, begin), std::min(run_end, end));
      }
    }
  };

  switch (column.type()) {
    case DataType::kInt64: {
      const int64_t lit = literal.int64_value();
      auto matches = [&](int64_t v) {
        return CompareOpMatches(op, v < lit ? -1 : (v > lit ? 1 : 0));
      };
      if (column.rle_runs() != nullptr) {
        scan_runs(matches);
        return;
      }
      const auto& v = column.ints();
      for (int64_t i = begin; i < end; ++i) {
        if (matches(v[static_cast<size_t>(i)]) &&
            !(has_nulls && column.IsNull(i))) {
          out->push_back(i);
        }
      }
      return;
    }
    case DataType::kBool: {
      const int lit = literal.bool_value() ? 1 : 0;
      if (column.rle_runs() != nullptr) {
        scan_runs([&](int64_t v) {
          return CompareOpMatches(op, (v != 0 ? 1 : 0) - lit);
        });
        return;
      }
      auto matches = [&](int v) { return CompareOpMatches(op, v - lit); };
      const auto& v = column.bools();
      for (int64_t i = begin; i < end; ++i) {
        if (matches(v[static_cast<size_t>(i)] != 0 ? 1 : 0) &&
            !(has_nulls && column.IsNull(i))) {
          out->push_back(i);
        }
      }
      return;
    }
    case DataType::kDouble: {
      const double lit = literal.double_value();
      const auto& v = column.doubles();
      for (int64_t i = begin; i < end; ++i) {
        if (CompareOpMatches(op, TotalOrderCompareDoubles(
                                   v[static_cast<size_t>(i)], lit)) &&
            !(has_nulls && column.IsNull(i))) {
          out->push_back(i);
        }
      }
      return;
    }
    case DataType::kString: {
      const std::string& lit = literal.string_value();
      if (const auto* dict = column.dict()) {
        // One comparison per dictionary entry, then a code scan.
        std::vector<uint8_t> entry_matches(dict->dictionary.size());
        for (size_t k = 0; k < dict->dictionary.size(); ++k) {
          const int cmp = dict->dictionary[k].compare(lit);
          entry_matches[k] =
              CompareOpMatches(op, cmp < 0 ? -1 : (cmp > 0 ? 1 : 0)) ? 1 : 0;
        }
        for (int64_t i = begin; i < end; ++i) {
          if (entry_matches[static_cast<size_t>(
                  dict->codes[static_cast<size_t>(i)])] != 0 &&
              !(has_nulls && column.IsNull(i))) {
            out->push_back(i);
          }
        }
        return;
      }
      const auto& v = column.strings();
      for (int64_t i = begin; i < end; ++i) {
        const int cmp = v[static_cast<size_t>(i)].compare(lit);
        if (CompareOpMatches(op, cmp < 0 ? -1 : (cmp > 0 ? 1 : 0)) &&
            !(has_nulls && column.IsNull(i))) {
          out->push_back(i);
        }
      }
      return;
    }
  }
}

FilterOp::FilterOp(OperatorPtr input, ExprPtr predicate)
    : input_(std::move(input)), predicate_(std::move(predicate)) {}

Result<std::optional<Table>> FilterOp::Next() {
  for (;;) {
    VX_ASSIGN_OR_RETURN(auto batch, input_->Next());
    if (!batch.has_value()) return std::optional<Table>{};
    VX_ASSIGN_OR_RETURN(Column mask, predicate_->Evaluate(*batch));
    if (mask.type() != DataType::kBool) {
      return Status::TypeError("Filter predicate must be BOOL: " +
                               predicate_->ToString());
    }
    NoteMaterialized(mask);  // the per-batch mask the fused path avoids
    std::vector<int64_t> selected;
    selected.reserve(static_cast<size_t>(batch->num_rows()));
    for (int64_t i = 0; i < batch->num_rows(); ++i) {
      if (!mask.IsNull(i) && mask.GetBool(i)) selected.push_back(i);
    }
    if (selected.empty()) continue;  // fetch more input
    NoteLegacyBatch();
    if (static_cast<int64_t>(selected.size()) == batch->num_rows()) {
      return std::optional<Table>(std::move(*batch));
    }
    Table out = batch->Take(selected);
    NoteMaterialized(out);
    return std::optional<Table>(std::move(out));
  }
}

}  // namespace vertexica
