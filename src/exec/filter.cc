#include "exec/filter.h"

namespace vertexica {

FilterOp::FilterOp(OperatorPtr input, ExprPtr predicate)
    : input_(std::move(input)), predicate_(std::move(predicate)) {}

Result<std::optional<Table>> FilterOp::Next() {
  for (;;) {
    VX_ASSIGN_OR_RETURN(auto batch, input_->Next());
    if (!batch.has_value()) return std::optional<Table>{};
    VX_ASSIGN_OR_RETURN(Column mask, predicate_->Evaluate(*batch));
    if (mask.type() != DataType::kBool) {
      return Status::TypeError("Filter predicate must be BOOL: " +
                               predicate_->ToString());
    }
    std::vector<int64_t> selected;
    selected.reserve(static_cast<size_t>(batch->num_rows()));
    for (int64_t i = 0; i < batch->num_rows(); ++i) {
      if (!mask.IsNull(i) && mask.GetBool(i)) selected.push_back(i);
    }
    if (selected.empty()) continue;  // fetch more input
    if (static_cast<int64_t>(selected.size()) == batch->num_rows()) {
      return std::optional<Table>(std::move(*batch));
    }
    return std::optional<Table>(batch->Take(selected));
  }
}

}  // namespace vertexica
