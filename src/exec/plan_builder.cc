#include "exec/plan_builder.h"

#include "exec/merge_join.h"
#include "exec/parallel.h"

namespace vertexica {

namespace {

/// Renames the stream by inserting a pass-through projection.
class RenameOp : public Operator {
 public:
  RenameOp(OperatorPtr input, std::vector<std::string> names)
      : input_(std::move(input)), names_(std::move(names)) {
    schema_ = input_->output_schema().WithNames(names_);
  }
  const Schema& output_schema() const override { return schema_; }
  Result<std::optional<Table>> Next() override {
    VX_ASSIGN_OR_RETURN(auto batch, input_->Next());
    if (!batch.has_value()) return std::optional<Table>{};
    return std::optional<Table>(batch->RenameColumns(names_));
  }
  // Positional rename of the input's declared order.
  std::vector<OrderKey> output_order() const override {
    std::vector<OrderKey> order = input_->output_order();
    const Schema& in = input_->output_schema();
    for (OrderKey& k : order) {
      const int idx = in.FieldIndex(k.column);
      if (idx < 0) return {};
      k.column = names_[static_cast<size_t>(idx)];
    }
    return order;
  }
  std::string label() const override { return "Rename"; }
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  std::vector<std::string> names_;
  Schema schema_;
};

}  // namespace

PlanBuilder PlanBuilder::Scan(std::shared_ptr<const Table> table,
                              int64_t batch_size) {
  return PlanBuilder(std::make_unique<TableScan>(std::move(table), batch_size));
}

PlanBuilder PlanBuilder::Scan(Table table, int64_t batch_size) {
  return PlanBuilder(std::make_unique<TableScan>(std::move(table), batch_size));
}

PlanBuilder PlanBuilder::FromOperator(OperatorPtr op) {
  return PlanBuilder(std::move(op));
}

PlanBuilder PlanBuilder::Filter(ExprPtr predicate) && {
  // σ over a base-table scan: push the comparison conjuncts into the scan,
  // which then skips whole batches via zone maps (when the table has them —
  // Table::BuildZoneMaps/EncodeColumns). The FilterOp still evaluates the
  // full predicate on the surviving batches, so this is purely an
  // I/O-avoidance rewrite: same rows out, fewer rows touched.
  if (auto* scan = dynamic_cast<TableScan*>(op_.get())) {
    auto pushed =
        ExtractPushdownPredicates(predicate, scan->output_schema());
    if (!pushed.empty()) scan->PushDownPredicates(std::move(pushed));
  }
  return PlanBuilder(
      std::make_unique<FilterOp>(std::move(op_), std::move(predicate)));
}

PlanBuilder PlanBuilder::Project(std::vector<ProjectionSpec> outputs) && {
  return PlanBuilder(
      std::make_unique<ProjectOp>(std::move(op_), std::move(outputs)));
}

PlanBuilder PlanBuilder::Select(const std::vector<std::string>& columns) && {
  std::vector<ProjectionSpec> outputs;
  outputs.reserve(columns.size());
  for (const auto& c : columns) outputs.push_back({c, Col(c)});
  return std::move(*this).Project(std::move(outputs));
}

PlanBuilder PlanBuilder::Join(PlanBuilder build,
                              std::vector<std::string> probe_keys,
                              std::vector<std::string> build_keys,
                              JoinType type) && {
  // Order-aware physical selection: when both children declare output
  // orders covering their join keys, build the sort-merge join — it reads
  // the sorted (and RLE) representation directly instead of building hash
  // tables, re-establishes the order on its materialized inputs, and
  // falls back to the hash join if the claim does not hold at runtime.
  // Either operator produces the same probe-row-major rows, bit-identical
  // at any thread count (exec/merge_join.h).
  if (MergeJoinEnabled() &&
      OrderPrefixCovers(op_->output_order(), probe_keys) &&
      OrderPrefixCovers(build.op_->output_order(), build_keys)) {
    return PlanBuilder(std::make_unique<ParallelMergeJoinOp>(
        std::move(op_), std::move(build.op_), std::move(probe_keys),
        std::move(build_keys), type));
  }
  // Morsel-parallel hash join (exec/parallel.h); resolves its thread
  // budget at execution time and produces serial-identical row order.
  return PlanBuilder(std::make_unique<ParallelHashJoinOp>(
      std::move(op_), std::move(build.op_), std::move(probe_keys),
      std::move(build_keys), type));
}

PlanBuilder PlanBuilder::Aggregate(std::vector<std::string> group_by,
                                   std::vector<AggSpec> aggs) && {
  // Chunk-parallel aggregation with deterministic chunk-order merge.
  return PlanBuilder(std::make_unique<ParallelAggregateOp>(
      std::move(op_), std::move(group_by), std::move(aggs)));
}

PlanBuilder PlanBuilder::OrderBy(std::vector<OrderBySpec> keys) && {
  return PlanBuilder(std::make_unique<SortOp>(std::move(op_), std::move(keys)));
}

PlanBuilder PlanBuilder::Limit(int64_t n) && {
  return PlanBuilder(std::make_unique<LimitOp>(std::move(op_), n));
}

PlanBuilder PlanBuilder::TopN(std::vector<OrderBySpec> keys, int64_t n) && {
  return PlanBuilder(
      std::make_unique<TopNOp>(std::move(op_), std::move(keys), n));
}

PlanBuilder PlanBuilder::Distinct() && {
  return PlanBuilder(std::make_unique<DistinctOp>(std::move(op_)));
}

PlanBuilder PlanBuilder::Union(PlanBuilder other) && {
  std::vector<OperatorPtr> children;
  children.push_back(std::move(op_));
  children.push_back(std::move(other.op_));
  return PlanBuilder(std::make_unique<UnionAllOp>(std::move(children)));
}

PlanBuilder PlanBuilder::Rename(std::vector<std::string> names) && {
  return PlanBuilder(
      std::make_unique<RenameOp>(std::move(op_), std::move(names)));
}

OperatorPtr PlanBuilder::Build() && { return std::move(op_); }

Result<Table> PlanBuilder::Execute() && {
  OperatorPtr op = std::move(op_);
  return Collect(op.get());
}

}  // namespace vertexica
