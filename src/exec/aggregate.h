/// \file aggregate.h
/// \brief Hash aggregation (GROUP BY) with SUM/COUNT/MIN/MAX/AVG.
///
/// Aggregation is central to the SQL graph algorithms (§3.2): PageRank sums
/// contributions per destination, shortest paths takes MIN(distance) per
/// vertex, triangle counting COUNTs per node, strong overlap COUNTs common
/// neighbours per pair.

#ifndef VERTEXICA_EXEC_AGGREGATE_H_
#define VERTEXICA_EXEC_AGGREGATE_H_

#include <string>
#include <vector>

#include "exec/operator.h"

namespace vertexica {

enum class AggOp { kSum, kCount, kCountStar, kMin, kMax, kAvg };

const char* AggOpName(AggOp op);

/// \brief One aggregate: op + input column (ignored for COUNT(*)) + output
/// column name.
struct AggSpec {
  AggOp op;
  std::string input;   // empty for kCountStar
  std::string output;
};

/// \brief Output schema shared by the serial operator and the parallel
/// aggregation kernel (exec/parallel.h): group-by columns followed by one
/// column per AggSpec. Validates column references and SUM/AVG numeric
/// requirements.
Result<Schema> AggregateOutputSchema(const Schema& input,
                                     const std::vector<std::string>& group_by,
                                     const std::vector<AggSpec>& aggs);

/// \brief Blocking hash-aggregation operator.
///
/// Output schema: the group-by columns (in the given order) followed by one
/// column per AggSpec. With an empty group-by list produces exactly one row
/// (global aggregate), even for empty input. NULL inputs are ignored by all
/// aggregates except COUNT(*); SUM over int64 stays int64.
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(OperatorPtr input, std::vector<std::string> group_by,
                  std::vector<AggSpec> aggs);

  const Schema& output_schema() const override { return schema_; }
  Result<std::optional<Table>> Next() override;

  std::string label() const override {
    std::string out = "HashAggregate(by: ";
    for (size_t i = 0; i < group_by_.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by_[i];
    }
    out += "; ";
    for (size_t i = 0; i < aggs_.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::string(AggOpName(aggs_[i].op));
      if (aggs_[i].op != AggOp::kCountStar) out += "(" + aggs_[i].input + ")";
    }
    return out + ")";
  }
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  Status Compute();

  OperatorPtr input_;
  std::vector<std::string> group_by_;
  std::vector<AggSpec> aggs_;
  Schema schema_;
  Status init_status_;
  bool done_ = false;
  std::optional<Table> result_;
};

}  // namespace vertexica

#endif  // VERTEXICA_EXEC_AGGREGATE_H_
