/// \file project.h
/// \brief Projection (π): computes named output expressions per row.

#ifndef VERTEXICA_EXEC_PROJECT_H_
#define VERTEXICA_EXEC_PROJECT_H_

#include <string>
#include <utility>
#include <vector>

#include "exec/operator.h"
#include "expr/expression.h"

namespace vertexica {

/// \brief One projected column: output name + defining expression.
struct ProjectionSpec {
  std::string name;
  ExprPtr expr;
};

/// \brief Evaluates a list of expressions over each input batch.
class ProjectOp : public Operator {
 public:
  /// \param input child operator
  /// \param outputs projection list; output schema is derived eagerly and
  ///        construction aborts the query at first Next() on type errors.
  ProjectOp(OperatorPtr input, std::vector<ProjectionSpec> outputs);

  const Schema& output_schema() const override { return schema_; }
  Result<std::optional<Table>> Next() override;

  // Projection never reorders rows, so the input order survives for as
  // long as its key columns are passed through verbatim (a plain column
  // reference); the first key that is dropped or computed ends the claim.
  std::vector<OrderKey> output_order() const override {
    std::vector<OrderKey> order;
    for (const OrderKey& k : input_->output_order()) {
      const ProjectionSpec* hit = nullptr;
      for (const auto& spec : outputs_) {
        const auto* ref = dynamic_cast<const ColumnRefExpr*>(spec.expr.get());
        if (ref != nullptr && ref->name() == k.column) {
          hit = &spec;
          break;
        }
      }
      if (hit == nullptr) break;
      order.push_back({hit->name, k.ascending});
    }
    return order;
  }

  std::string label() const override {
    std::string out = "Project(";
    for (size_t i = 0; i < outputs_.size(); ++i) {
      if (i > 0) out += ", ";
      out += outputs_[i].name;
    }
    return out + ")";
  }
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  std::vector<ProjectionSpec> outputs_;
  Schema schema_;
  Status init_status_;
};

}  // namespace vertexica

#endif  // VERTEXICA_EXEC_PROJECT_H_
