#include "exec/merge_join.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/env_knob.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "exec/scan.h"

namespace vertexica {

// --------------------------------------------------------------- the knob

namespace {

std::atomic<int> g_default_merge_join{-1};  // -1 = automatic (env, else on)
thread_local int tl_merge_override = -1;    // -1 unset, 0 off, 1 on

bool EnvMergeJoinEnabled() {
  // Validated through the shared env-knob helper: a typo like
  // VERTEXICA_MERGE_JOIN=offf warns once and keeps the default (on).
  const std::string token = EnvTokenKnob(
      "VERTEXICA_MERGE_JOIN",
      {"0", "off", "false", "no", "1", "on", "true", "yes"}, "on");
  return token != "0" && token != "off" && token != "false" && token != "no";
}

thread_local JoinPathStats* tl_join_stats = nullptr;

}  // namespace

bool MergeJoinEnabled() {
  if (tl_merge_override >= 0) return tl_merge_override != 0;
  const int configured = g_default_merge_join.load(std::memory_order_relaxed);
  if (configured >= 0) return configured != 0;
  static const bool env = EnvMergeJoinEnabled();
  return env;
}

void SetDefaultMergeJoin(int enabled) {
  g_default_merge_join.store(enabled < 0 ? -1 : (enabled != 0 ? 1 : 0),
                             std::memory_order_relaxed);
}

ScopedMergeJoin::ScopedMergeJoin(bool enabled) : prev_(tl_merge_override) {
  tl_merge_override = enabled ? 1 : 0;
}

ScopedMergeJoin::~ScopedMergeJoin() { tl_merge_override = prev_; }

JoinPathStats* AmbientJoinStats() { return tl_join_stats; }

ScopedJoinStatsCollector::ScopedJoinStatsCollector(JoinPathStats* stats)
    : prev_(tl_join_stats) {
  tl_join_stats = stats;
}

ScopedJoinStatsCollector::~ScopedJoinStatsCollector() {
  tl_join_stats = prev_;
}

// ------------------------------------------------------ order establishment

bool OrderPrefixCovers(const std::vector<OrderKey>& order,
                       const std::vector<std::string>& keys) {
  if (keys.empty() || keys.size() > order.size()) return false;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (order[i].column != keys[i] || !order[i].ascending) return false;
  }
  return true;
}

bool TableSortedOnKeys(const Table& t, const std::vector<int>& key_cols) {
  if (key_cols.empty()) return false;
  // Declared metadata: the trusted physical-design contract (like zone
  // maps) — the coordinator/loader/SortTable only declare orders they
  // produced.
  if (t.OrderCoversKeys(key_cols)) return true;
  if (key_cols.size() == 1) {
    const Column& col = t.column(key_cols[0]);
    if (col.sorted_ascending()) return true;
    if (col.null_count() == 0) {
      // RLE runs: O(runs) check, no decode.
      if (const auto* runs = col.rle_runs()) {
        for (size_t r = 1; r < runs->size(); ++r) {
          if ((*runs)[r - 1].value > (*runs)[r].value) return false;
        }
        return true;
      }
      if (col.type() == DataType::kInt64) {
        const auto& v = col.ints();
        for (size_t i = 1; i < v.size(); ++i) {
          if (v[i - 1] > v[i]) return false;
        }
        return true;
      }
    }
  }
  // Generic verification pass: lexicographic nondecreasing under
  // CompareRows. One pass; far cheaper than the hash build it replaces.
  for (int64_t i = 1; i < t.num_rows(); ++i) {
    for (int c : key_cols) {
      const Column& col = t.column(c);
      const int cmp = col.CompareRows(i - 1, col, i);
      if (cmp < 0) break;
      if (cmp > 0) return false;
    }
  }
  return true;
}

// ------------------------------------------------------------- the kernel

namespace {

/// Lexicographic three-way comparison of probe row `p` against build row
/// `b` over the key column pairs (CompareRows per column — the same
/// comparator the inputs were sorted with and JoinKeysEqual matches with).
int CompareKeys(const Table& probe, const std::vector<int>& pc, int64_t p,
                const Table& build, const std::vector<int>& bc, int64_t b) {
  for (size_t k = 0; k < pc.size(); ++k) {
    const int cmp =
        probe.column(pc[k]).CompareRows(p, build.column(bc[k]), b);
    if (cmp != 0) return cmp;
  }
  return 0;
}

/// True when probe rows `a` and `b` carry equal keys (group membership).
bool ProbeKeysEqual(const Table& probe, const std::vector<int>& pc, int64_t a,
                    int64_t b) {
  for (int c : pc) {
    if (probe.column(c).CompareRows(a, probe.column(c), b) != 0) return false;
  }
  return true;
}

/// Per-probe-row emission for the join types that react to (un)matched
/// rows; shared by the generic and RLE kernels so their semantics cannot
/// diverge. (kInner emits only inside the match loop.)
void EmitByJoinType(JoinType type, bool matched, int64_t p,
                    std::vector<int64_t>* probe_idx,
                    std::vector<int64_t>* build_idx) {
  switch (type) {
    case JoinType::kLeft:
      if (!matched) {
        probe_idx->push_back(p);
        build_idx->push_back(-1);
      }
      break;
    case JoinType::kSemi:
      if (matched) probe_idx->push_back(p);
      break;
    case JoinType::kAnti:
      if (!matched) probe_idx->push_back(p);
      break;
    case JoinType::kInner:
      break;
  }
}

/// Generic merge over probe rows [pb, pe): walks the build side once per
/// morsel (after a binary-search seed), rescanning the current equal-key
/// group for duplicate probe keys — output-proportional work, like the
/// hash probe's chain walk.
void MergeMorselGeneric(const Table& probe, const std::vector<int>& pc,
                        const Table& build, const std::vector<int>& bc,
                        JoinType type, bool emit_build, int64_t pb, int64_t pe,
                        std::vector<int64_t>* probe_idx,
                        std::vector<int64_t>* build_idx) {
  const int64_t build_rows = build.num_rows();
  // Seed: first build row not below this morsel's first non-null probe
  // key. Everything before it is below every key the morsel will look up.
  int64_t seed_probe = pb;
  while (seed_probe < pe && JoinKeyHasNull(probe, pc, seed_probe)) {
    ++seed_probe;
  }
  int64_t group = 0;
  if (seed_probe < pe) {
    int64_t lo = 0;
    int64_t hi = build_rows;
    while (lo < hi) {
      const int64_t mid = lo + (hi - lo) / 2;
      if (CompareKeys(probe, pc, seed_probe, build, bc, mid) > 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    group = lo;
  }
  for (int64_t p = pb; p < pe; ++p) {
    bool matched = false;
    // SQL NULL semantics: a NULL key never matches (CompareKeys would call
    // NULL == NULL, so the null check must come first — exactly mirroring
    // the hash probe's JoinKeyHasNull gate).
    if (!JoinKeyHasNull(probe, pc, p)) {
      while (group < build_rows &&
             CompareKeys(probe, pc, p, build, bc, group) > 0) {
        ++group;
      }
      for (int64_t b = group;
           b < build_rows && CompareKeys(probe, pc, p, build, bc, b) == 0;
           ++b) {
        matched = true;
        if (!emit_build) break;  // semi/anti only need existence
        probe_idx->push_back(p);
        build_idx->push_back(b);
      }
    }
    EmitByJoinType(type, matched, p, probe_idx, build_idx);
  }
}

/// RLE fast path: single INT64 key with the build key column run-length
/// encoded (the sorted edge table's src). Matches whole runs — one value
/// comparison per run, build rows emitted straight from the run's row
/// range — without ever decoding the build key column.
void MergeMorselRle(const Table& probe, int probe_col,
                    const std::vector<RleRun>& runs,
                    const std::vector<int64_t>& run_starts, JoinType type,
                    bool emit_build, int64_t pb, int64_t pe,
                    std::vector<int64_t>* probe_idx,
                    std::vector<int64_t>* build_idx) {
  const Column& pcol = probe.column(probe_col);
  const size_t num_runs = runs.size();
  int64_t seed_probe = pb;
  while (seed_probe < pe && pcol.IsNull(seed_probe)) ++seed_probe;
  size_t r = 0;
  if (seed_probe < pe) {
    const int64_t k0 = pcol.GetInt64(seed_probe);
    size_t lo = 0;
    size_t hi = num_runs;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (runs[mid].value < k0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    r = lo;
  }
  for (int64_t p = pb; p < pe; ++p) {
    bool matched = false;
    if (!pcol.IsNull(p)) {
      const int64_t k = pcol.GetInt64(p);
      while (r < num_runs && runs[r].value < k) ++r;
      for (size_t rr = r; rr < num_runs && runs[rr].value == k; ++rr) {
        matched = true;
        if (!emit_build) break;
        const int64_t first = run_starts[rr];
        for (int64_t b = first; b < first + runs[rr].length; ++b) {
          probe_idx->push_back(p);
          build_idx->push_back(b);
        }
      }
    }
    EmitByJoinType(type, matched, p, probe_idx, build_idx);
  }
}

}  // namespace

Result<Table> ParallelMergeJoin(const Table& probe, const Table& build,
                                const std::vector<std::string>& probe_keys,
                                const std::vector<std::string>& build_keys,
                                JoinType type,
                                const ParallelOptions& options) {
  WallTimer timer;
  VX_ASSIGN_OR_RETURN(
      Schema schema, HashJoinOutputSchema(probe.schema(), build.schema(),
                                          probe_keys, build_keys, type));
  std::vector<int> probe_cols;
  for (const auto& k : probe_keys) {
    VX_ASSIGN_OR_RETURN(int idx, probe.ColumnIndex(k));
    probe_cols.push_back(idx);
  }
  std::vector<int> build_cols;
  for (const auto& k : build_keys) {
    VX_ASSIGN_OR_RETURN(int idx, build.ColumnIndex(k));
    build_cols.push_back(idx);
  }
  for (size_t k = 0; k < probe_cols.size(); ++k) {
    if (probe.column(probe_cols[k]).type() !=
        build.column(build_cols[k]).type()) {
      return Status::TypeError("MergeJoin: key type mismatch on '" +
                               probe_keys[k] + "' = '" + build_keys[k] + "'");
    }
  }

  const bool emit_build = type == JoinType::kInner || type == JoinType::kLeft;
  const int64_t probe_rows = probe.num_rows();
  const int64_t grain = options.ResolvedGrain();
  const int threads = options.ResolvedThreads();

  // Morsel boundaries: fixed grain positions, each extended forward to the
  // next key-group boundary. A function of the data and `morsel_rows`
  // only — never the thread count — so outputs (concatenated in morsel
  // order) are bit-identical at any parallelism, and whole key groups stay
  // inside one morsel for the run-at-a-time fast path.
  std::vector<int64_t> bounds{0};
  while (bounds.back() < probe_rows) {
    int64_t next = std::min(bounds.back() + grain, probe_rows);
    while (next < probe_rows &&
           ProbeKeysEqual(probe, probe_cols, next - 1, next)) {
      ++next;
    }
    bounds.push_back(next);
  }
  const size_t num_morsels = bounds.size() - 1;

  // Run-at-a-time eligibility: single INT64 key, build side RLE, no build
  // NULLs (a NULL's stored slot value would break the run-order premise).
  const std::vector<RleRun>* runs = nullptr;
  const std::vector<int64_t>* run_starts = nullptr;
  if (probe_cols.size() == 1) {
    const Column& bcol = build.column(build_cols[0]);
    if (bcol.type() == DataType::kInt64 && bcol.null_count() == 0) {
      runs = bcol.rle_runs();
      run_starts = bcol.rle_run_starts();
    }
  }

  std::vector<Table> outputs(num_morsels);
  VX_RETURN_NOT_OK(ThreadPool::Default()->ParallelFor(
      0, num_morsels, 1,
      [&](size_t begin, size_t end) -> Status {
        for (size_t m = begin; m < end; ++m) {
          std::vector<int64_t> probe_idx;
          std::vector<int64_t> build_idx;
          if (runs != nullptr) {
            MergeMorselRle(probe, probe_cols[0], *runs, *run_starts, type,
                           emit_build, bounds[m], bounds[m + 1], &probe_idx,
                           &build_idx);
          } else {
            MergeMorselGeneric(probe, probe_cols, build, build_cols, type,
                               emit_build, bounds[m], bounds[m + 1],
                               &probe_idx, &build_idx);
          }
          std::vector<Column> columns;
          columns.reserve(static_cast<size_t>(schema.num_fields()));
          {
            Table probe_side = probe.Take(probe_idx);
            for (int c = 0; c < probe_side.num_columns(); ++c) {
              columns.push_back(std::move(*probe_side.mutable_column(c)));
            }
          }
          if (emit_build) {
            for (int c = 0; c < build.num_columns(); ++c) {
              columns.push_back(
                  JoinTakeWithNulls(build.column(c), build_idx));
            }
          }
          VX_ASSIGN_OR_RETURN(Table out,
                              Table::Make(schema, std::move(columns)));
          outputs[m] = std::move(out);
        }
        return Status::OK();
      },
      threads));

  Table result(schema);
  for (const Table& out : outputs) {
    VX_RETURN_NOT_OK(result.Append(out));
  }
  // Probe-row-major output: the probe side's declared order survives (its
  // columns keep their positions). When the probe declared nothing — the
  // caller established order by verification — declare the key prefix.
  if (!probe.sort_order().empty()) {
    result.SetSortOrder(probe.sort_order());
  } else {
    std::vector<SortKey> keys;
    for (int c : probe_cols) keys.push_back({c, true});
    result.SetSortOrder(std::move(keys));
  }
  if (JoinPathStats* stats = AmbientJoinStats()) {
    ++stats->merge_joins;
    stats->merge_rows += result.num_rows();
    stats->merge_seconds += timer.ElapsedSeconds();
  }
  return result;
}

// ------------------------------------------------------------ the operator

ParallelMergeJoinOp::ParallelMergeJoinOp(OperatorPtr probe, OperatorPtr build,
                                         std::vector<std::string> probe_keys,
                                         std::vector<std::string> build_keys,
                                         JoinType type,
                                         ParallelOptions options)
    : probe_(std::move(probe)),
      build_(std::move(build)),
      probe_keys_(std::move(probe_keys)),
      build_keys_(std::move(build_keys)),
      type_(type),
      options_(options) {
  auto schema =
      HashJoinOutputSchema(probe_->output_schema(), build_->output_schema(),
                           probe_keys_, build_keys_, type_);
  if (!schema.ok()) {
    init_status_ = schema.status();
    return;
  }
  schema_ = *std::move(schema);
}

std::string ParallelMergeJoinOp::label() const {
  std::string out = std::string("MergeJoin[") + JoinTypeName(type_) + "](";
  for (size_t i = 0; i < probe_keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += probe_keys_[i] + " = " + build_keys_[i];
  }
  return out + ") [morsel]";
}

Result<std::optional<Table>> ParallelMergeJoinOp::Next() {
  VX_RETURN_NOT_OK(init_status_);
  if (done_) return std::optional<Table>{};
  done_ = true;
  VX_ASSIGN_OR_RETURN(auto probe_table, CollectShared(probe_.get()));
  VX_ASSIGN_OR_RETURN(auto build_table, CollectShared(build_.get()));

  bool mergeable = MergeJoinEnabled();
  std::vector<int> probe_cols;
  std::vector<int> build_cols;
  for (size_t k = 0; mergeable && k < probe_keys_.size(); ++k) {
    auto pi = probe_table->ColumnIndex(probe_keys_[k]);
    auto bi = build_table->ColumnIndex(build_keys_[k]);
    if (!pi.ok() || !bi.ok() ||
        probe_table->column(*pi).type() != build_table->column(*bi).type()) {
      mergeable = false;
      break;
    }
    probe_cols.push_back(*pi);
    build_cols.push_back(*bi);
  }
  // The planner's order claim is re-established on the materialized
  // inputs; if it does not hold (an upstream operator lost or never had
  // the order), fall back — merge join degrades to hash join, never to a
  // wrong answer.
  mergeable = mergeable && TableSortedOnKeys(*probe_table, probe_cols) &&
              TableSortedOnKeys(*build_table, build_cols);

  if (mergeable) {
    VX_ASSIGN_OR_RETURN(
        Table out, ParallelMergeJoin(*probe_table, *build_table, probe_keys_,
                                     build_keys_, type_, options_));
    return std::optional<Table>(std::move(out));
  }
  VX_ASSIGN_OR_RETURN(
      Table out, ParallelHashJoin(*probe_table, *build_table, probe_keys_,
                                  build_keys_, type_, options_));
  return std::optional<Table>(std::move(out));
}

}  // namespace vertexica
