#include "exec/frontier.h"

#include <atomic>
#include <cctype>

#include "common/env_knob.h"

namespace vertexica {

const char* FrontierModeName(FrontierMode m) {
  switch (m) {
    case FrontierMode::kAuto:
      return "auto";
    case FrontierMode::kOn:
      return "on";
    case FrontierMode::kOff:
      return "off";
  }
  return "?";
}

FrontierMode ParseFrontierMode(const std::string& text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "off" || lower == "0" || lower == "false" || lower == "none") {
    return FrontierMode::kOff;
  }
  if (lower == "on" || lower == "1" || lower == "true" ||
      lower == "force") {
    return FrontierMode::kOn;
  }
  // "auto" and anything unrecognized.
  return FrontierMode::kAuto;
}

namespace {

// -1 = unset (resolve from env); otherwise a cast FrontierMode.
std::atomic<int> g_default_frontier{-1};
thread_local bool tl_frontier_active = false;
thread_local FrontierMode tl_frontier_override = FrontierMode::kAuto;

FrontierMode EnvFrontierMode() {
  // Validated through the shared env-knob helper so a typoed value warns
  // once instead of silently resolving to kAuto inside ParseFrontierMode.
  static const FrontierMode env = ParseFrontierMode(EnvTokenKnob(
      "VERTEXICA_FRONTIER",
      {"off", "0", "false", "auto", "on", "1", "true", "force"}, "auto"));
  return env;
}

}  // namespace

FrontierMode AmbientFrontierMode() {
  if (tl_frontier_active) return tl_frontier_override;
  const int configured = g_default_frontier.load(std::memory_order_relaxed);
  if (configured >= 0) return static_cast<FrontierMode>(configured);
  return EnvFrontierMode();
}

void SetDefaultFrontierMode(FrontierMode m) {
  // kAuto is the unset sentinel (like SetDefaultEncodingMode): it restores
  // resolution from the VERTEXICA_FRONTIER environment variable, whose own
  // default is kAuto anyway. Use ScopedFrontierMode to pin kAuto over a
  // non-auto environment.
  g_default_frontier.store(m == FrontierMode::kAuto ? -1 : static_cast<int>(m),
                           std::memory_order_relaxed);
}

ScopedFrontierMode::ScopedFrontierMode(FrontierMode m)
    : active_(true),
      prev_(tl_frontier_override),
      prev_active_(tl_frontier_active) {
  tl_frontier_override = m;
  tl_frontier_active = true;
}

ScopedFrontierMode::~ScopedFrontierMode() {
  if (active_) {
    tl_frontier_override = prev_;
    tl_frontier_active = prev_active_;
  }
}

}  // namespace vertexica
