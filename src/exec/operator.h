/// \file operator.h
/// \brief Volcano-style batch iterator interface for relational operators.
///
/// Every operator pulls batches (small `Table`s) from its children via
/// `Next()` and pushes produced batches upward; `std::nullopt` signals end of
/// stream. This is the execution machinery Vertexica's coordinator composes
/// each superstep (scans, unions, joins) and that hybrid/relational graph
/// queries (§3.2, §3.4) run on.

#ifndef VERTEXICA_EXEC_OPERATOR_H_
#define VERTEXICA_EXEC_OPERATOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace vertexica {

/// \brief Default number of rows per batch produced by scans.
inline constexpr int64_t kDefaultBatchSize = 16 * 1024;

/// \brief One key of an operator's declared output order: column name +
/// direction. A non-empty Operator::output_order() promises rows
/// lexicographically nondecreasing by these keys under the
/// Column::CompareRows total order (NULLs first, NaN last).
struct OrderKey {
  std::string column;
  bool ascending = true;
};

/// \brief Base class of all physical operators.
class Operator {
 public:
  virtual ~Operator() = default;

  /// \brief Schema of the batches this operator produces.
  virtual const Schema& output_schema() const = 0;

  /// \brief Declared sort order of the produced rows; empty = unknown.
  /// Planner metadata (PlanBuilder::Join uses it to pick the merge join);
  /// the merge join re-establishes order on its materialized inputs, so a
  /// wrong claim here costs a fallback, never correctness.
  virtual std::vector<OrderKey> output_order() const { return {}; }

  /// \brief Produces the next batch, or nullopt at end of stream.
  virtual Result<std::optional<Table>> Next() = 0;

  /// \brief One-line physical-operator description for EXPLAIN output.
  virtual std::string label() const { return "Operator"; }

  /// \brief Child operators (for EXPLAIN tree walks).
  virtual std::vector<const Operator*> children() const { return {}; }
};

using OperatorPtr = std::unique_ptr<Operator>;

/// \brief Renders the plan tree under `root` in EXPLAIN style:
/// one operator per line, children indented two spaces.
std::string ExplainPlan(const Operator& root);

/// \brief Drains an operator into a single materialized table.
Result<Table> Collect(Operator* op);

/// \brief Convenience: drains and discards, returning the row count.
Result<int64_t> CountRows(Operator* op);

}  // namespace vertexica

#endif  // VERTEXICA_EXEC_OPERATOR_H_
