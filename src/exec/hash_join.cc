#include "exec/hash_join.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "exec/kernel_stats.h"
#include "exec/operator.h"

namespace vertexica {

Column JoinTakeWithNulls(const Column& col,
                         const std::vector<int64_t>& indices) {
  // Inner joins (and fully matched left joins) have no -1 padding: use the
  // typed gather instead of per-row Value boxing. Column::Take also reads
  // dictionary-encoded build columns without decoding them.
  const bool padded =
      std::any_of(indices.begin(), indices.end(),
                  [](int64_t idx) { return idx < 0; });
  if (!padded) return col.Take(indices);
  Column out(col.type());
  out.Reserve(static_cast<int64_t>(indices.size()));
  for (int64_t idx : indices) {
    if (idx < 0) {
      out.AppendNull();
    } else {
      out.AppendValue(col.GetValue(idx));
    }
  }
  return out;
}

uint64_t JoinKeyHash(const Table& t, const std::vector<int>& key_cols,
                     int64_t row) {
  // STRING key columns that are dictionary-encoded hash via the segment's
  // per-entry hash cache (Column::HashRow): |dictionary| string hashes
  // total instead of one per row, and the values equal HashString of the
  // decoded key, so plain and encoded sides of a join stay compatible.
  uint64_t h = 0x12345678ULL;
  for (int c : key_cols) h = HashCombine(h, t.column(c).HashRow(row));
  return h;
}

void BatchJoinKeyHash(const Table& t, const std::vector<int>& key_cols,
                      int64_t begin, int64_t end,
                      std::vector<uint64_t>* hashes) {
  const int64_t n = std::max<int64_t>(end - begin, 0);
  // Seed matches JoinKeyHash; columns then fold in declaration order, so
  // hashes[i] ends up exactly JoinKeyHash(t, key_cols, begin + i).
  hashes->assign(static_cast<size_t>(n), 0x12345678ULL);
  if (n == 0) return;
  for (int c : key_cols) {
    const Column& col = t.column(c);
    const bool plain = col.rle_runs() == nullptr && col.dict() == nullptr &&
                       col.null_count() == 0;
    if (plain && col.type() == DataType::kInt64) {
      const auto& v = col.ints();
      for (int64_t i = 0; i < n; ++i) {
        (*hashes)[static_cast<size_t>(i)] = HashCombine(
            (*hashes)[static_cast<size_t>(i)],
            HashInt64(static_cast<uint64_t>(
                v[static_cast<size_t>(begin + i)])));
      }
      continue;
    }
    if (plain && col.type() == DataType::kDouble) {
      const auto& v = col.doubles();
      for (int64_t i = 0; i < n; ++i) {
        const double d = v[static_cast<size_t>(begin + i)];
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        (*hashes)[static_cast<size_t>(i)] =
            HashCombine((*hashes)[static_cast<size_t>(i)], HashInt64(bits));
      }
      continue;
    }
    // Encoded, nullable, or non-numeric keys: HashRow already evaluates on
    // the representation (dictionary hash cache, NULL sentinel).
    for (int64_t i = 0; i < n; ++i) {
      (*hashes)[static_cast<size_t>(i)] = HashCombine(
          (*hashes)[static_cast<size_t>(i)], col.HashRow(begin + i));
    }
  }
  NoteBatchHashRows(n);
}

bool JoinKeyHasNull(const Table& t, const std::vector<int>& key_cols,
                    int64_t row) {
  for (int c : key_cols) {
    if (t.column(c).IsNull(row)) return true;
  }
  return false;
}

bool JoinKeysEqual(const Table& a, const std::vector<int>& a_cols, int64_t ai,
                   const Table& b, const std::vector<int>& b_cols,
                   int64_t bi) {
  for (size_t k = 0; k < a_cols.size(); ++k) {
    if (a.column(a_cols[k]).CompareRows(ai, b.column(b_cols[k]), bi) != 0) {
      return false;
    }
  }
  return true;
}

Result<Schema> HashJoinOutputSchema(const Schema& probe, const Schema& build,
                                    const std::vector<std::string>& probe_keys,
                                    const std::vector<std::string>& build_keys,
                                    JoinType type) {
  if (probe_keys.size() != build_keys.size() || probe_keys.empty()) {
    return Status::InvalidArgument("HashJoin: bad key lists");
  }
  for (const auto& k : probe_keys) {
    if (probe.FieldIndex(k) < 0) {
      return Status::InvalidArgument("HashJoin: no probe column '" + k + "'");
    }
  }
  for (const auto& k : build_keys) {
    if (build.FieldIndex(k) < 0) {
      return Status::InvalidArgument("HashJoin: no build column '" + k + "'");
    }
  }
  Schema schema;
  for (const auto& f : probe.fields()) schema.AddField(f);
  if (type == JoinType::kInner || type == JoinType::kLeft) {
    for (const auto& f : build.fields()) {
      std::string name = f.name;
      if (schema.HasField(name)) name += "_r";
      schema.AddField(Field{std::move(name), f.type});
    }
  }
  return schema;
}

const char* JoinTypeName(JoinType t) {
  switch (t) {
    case JoinType::kInner:
      return "INNER";
    case JoinType::kLeft:
      return "LEFT";
    case JoinType::kSemi:
      return "SEMI";
    case JoinType::kAnti:
      return "ANTI";
  }
  return "?";
}

HashJoinOp::HashJoinOp(OperatorPtr probe, OperatorPtr build,
                       std::vector<std::string> probe_keys,
                       std::vector<std::string> build_keys, JoinType type)
    : probe_(std::move(probe)),
      build_(std::move(build)),
      probe_key_names_(std::move(probe_keys)),
      build_key_names_(std::move(build_keys)),
      type_(type) {
  auto schema = HashJoinOutputSchema(probe_->output_schema(),
                                     build_->output_schema(),
                                     probe_key_names_, build_key_names_, type_);
  if (!schema.ok()) {
    init_status_ = schema.status();
    return;
  }
  schema_ = *std::move(schema);
}

Status HashJoinOp::BuildHashTable() {
  VX_ASSIGN_OR_RETURN(build_table_, Collect(build_.get()));
  for (const auto& k : build_key_names_) {
    VX_ASSIGN_OR_RETURN(int idx, build_table_.ColumnIndex(k));
    build_key_cols_.push_back(idx);
  }
  index_.reserve(static_cast<size_t>(build_table_.num_rows()));
  for (int64_t i = 0; i < build_table_.num_rows(); ++i) {
    if (JoinKeyHasNull(build_table_, build_key_cols_, i)) continue;
    index_[JoinKeyHash(build_table_, build_key_cols_, i)].push_back(i);
  }
  built_ = true;
  return Status::OK();
}

Status HashJoinOp::ProbeBatch(const Table& batch,
                              std::vector<int64_t>* probe_idx,
                              std::vector<int64_t>* build_idx) {
  std::vector<int> probe_cols;
  for (const auto& k : probe_key_names_) {
    VX_ASSIGN_OR_RETURN(int idx, batch.ColumnIndex(k));
    probe_cols.push_back(idx);
  }
  for (int64_t i = 0; i < batch.num_rows(); ++i) {
    bool matched = false;
    if (!JoinKeyHasNull(batch, probe_cols, i)) {
      auto it = index_.find(JoinKeyHash(batch, probe_cols, i));
      if (it != index_.end()) {
        for (int64_t bi : it->second) {
          if (JoinKeysEqual(batch, probe_cols, i, build_table_, build_key_cols_,
                        bi)) {
            matched = true;
            if (type_ == JoinType::kInner || type_ == JoinType::kLeft) {
              probe_idx->push_back(i);
              build_idx->push_back(bi);
            } else {
              break;  // semi/anti only need existence
            }
          }
        }
      }
    }
    switch (type_) {
      case JoinType::kLeft:
        if (!matched) {
          probe_idx->push_back(i);
          build_idx->push_back(-1);
        }
        break;
      case JoinType::kSemi:
        if (matched) probe_idx->push_back(i);
        break;
      case JoinType::kAnti:
        if (!matched) probe_idx->push_back(i);
        break;
      case JoinType::kInner:
        break;
    }
  }
  return Status::OK();
}

Result<std::optional<Table>> HashJoinOp::Next() {
  VX_RETURN_NOT_OK(init_status_);
  if (!built_) VX_RETURN_NOT_OK(BuildHashTable());

  for (;;) {
    VX_ASSIGN_OR_RETURN(auto batch, probe_->Next());
    if (!batch.has_value()) return std::optional<Table>{};

    std::vector<int64_t> probe_idx;
    std::vector<int64_t> build_idx;
    VX_RETURN_NOT_OK(ProbeBatch(*batch, &probe_idx, &build_idx));
    if (probe_idx.empty()) continue;

    std::vector<Column> columns;
    columns.reserve(static_cast<size_t>(schema_.num_fields()));
    {
      Table probe_side = batch->Take(probe_idx);
      for (int c = 0; c < probe_side.num_columns(); ++c) {
        columns.push_back(std::move(*probe_side.mutable_column(c)));
      }
    }
    if (type_ == JoinType::kInner || type_ == JoinType::kLeft) {
      for (int c = 0; c < build_table_.num_columns(); ++c) {
        columns.push_back(JoinTakeWithNulls(build_table_.column(c), build_idx));
      }
    }
    VX_ASSIGN_OR_RETURN(Table out, Table::Make(schema_, std::move(columns)));
    return std::optional<Table>(std::move(out));
  }
}

}  // namespace vertexica
