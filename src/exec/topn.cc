#include "exec/topn.h"

#include "storage/sort.h"

namespace vertexica {

TopNOp::TopNOp(OperatorPtr input, std::vector<OrderBySpec> keys,
               int64_t limit)
    : input_(std::move(input)), keys_(std::move(keys)), limit_(limit) {}

Result<std::optional<Table>> TopNOp::Next() {
  if (done_) return std::optional<Table>{};
  done_ = true;
  if (limit_ <= 0) return std::optional<Table>(Table(input_->output_schema()));

  std::vector<SortKey> resolved;
  resolved.reserve(keys_.size());
  for (const auto& k : keys_) {
    const int idx = input_->output_schema().FieldIndex(k.column);
    if (idx < 0) {
      return Status::InvalidArgument("TopN: no column '" + k.column + "'");
    }
    resolved.push_back(SortKey{idx, k.ascending});
  }

  // Streaming candidates: append a batch, re-sort, truncate to `limit`.
  // Memory stays O(limit + batch); each step is O((limit+B) log(limit+B)).
  Table candidates(input_->output_schema());
  for (;;) {
    VX_ASSIGN_OR_RETURN(auto batch, input_->Next());
    if (!batch.has_value()) break;
    VX_RETURN_NOT_OK(candidates.Append(*batch));
    if (candidates.num_rows() > 2 * limit_) {
      candidates = SortTable(candidates, resolved).Slice(
          0, std::min(limit_, candidates.num_rows()));
    }
  }
  candidates = SortTable(candidates, resolved)
                   .Slice(0, std::min(limit_, candidates.num_rows()));
  return std::optional<Table>(std::move(candidates));
}

}  // namespace vertexica
