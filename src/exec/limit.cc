#include "exec/limit.h"

namespace vertexica {

Result<std::optional<Table>> LimitOp::Next() {
  if (remaining_ <= 0) return std::optional<Table>{};
  VX_ASSIGN_OR_RETURN(auto batch, input_->Next());
  if (!batch.has_value()) return std::optional<Table>{};
  if (batch->num_rows() <= remaining_) {
    remaining_ -= batch->num_rows();
    return batch;
  }
  Table out = batch->Slice(0, remaining_);
  remaining_ = 0;
  return std::optional<Table>(std::move(out));
}

}  // namespace vertexica
