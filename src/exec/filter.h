/// \file filter.h
/// \brief Selection (σ): keeps rows whose predicate evaluates to TRUE.

#ifndef VERTEXICA_EXEC_FILTER_H_
#define VERTEXICA_EXEC_FILTER_H_

#include <optional>
#include <vector>

#include "exec/operator.h"
#include "expr/expression.h"
#include "storage/encoding.h"

namespace vertexica {

/// \name Predicate pushdown over encoded segments
///
/// The bridge between expression trees and the storage layer's
/// ColumnPredicate/zone-map machinery. Only comparisons whose literal type
/// *exactly* matches the column type are extracted — that is the subset
/// whose zone-map may-match logic and encoded evaluation provably agree
/// with BinaryExpr::Evaluate (same-type comparisons route through
/// Column::CompareRows), so pushing them down can never change results.
/// @{

/// \brief Extracts every AND-conjunct of `predicate` of the form
/// `column <op> literal` (either operand order) with an exact column/
/// literal type match. The result under-approximates the predicate: rows
/// failing any extracted conjunct provably fail the whole predicate.
std::vector<ColumnPredicate> ExtractPushdownPredicates(
    const ExprPtr& predicate, const Schema& schema);

/// \brief When `predicate` *is* exactly one pushable comparison, returns
/// it; the caller may then evaluate rows with SelectMatchingRows instead of
/// the expression interpreter.
std::optional<ColumnPredicate> ExactColumnPredicate(const ExprPtr& predicate,
                                                    const Schema& schema);

/// \brief The complete AND-decomposition of a predicate: the pushable
/// conjuncts as ColumnPredicates and everything else verbatim.
///
/// ExtractPushdownPredicates answers "which conjuncts can also be checked
/// early?" — an under-approximation. This answers the stronger question
/// the fused selection-vector path (exec/vectorized.h) needs: "is the
/// predicate *nothing but* pushable conjuncts?" When `residual` is empty,
/// evaluating the pushable conjuncts and intersecting their matches is
/// exactly the rows whose Kleene-AND mask is TRUE, so the expression
/// interpreter can be bypassed entirely.
struct PredicateConjuncts {
  std::vector<ColumnPredicate> pushable;
  std::vector<ExprPtr> residual;  ///< conjuncts the interpreter must run
};
PredicateConjuncts SplitPredicateConjuncts(const ExprPtr& predicate,
                                           const Schema& schema);

/// \brief Appends (ascending) the row ids in [begin, end) whose value
/// satisfies `value <op> literal` to `out` — bit-identical to evaluating
/// the comparison expression and keeping TRUE rows (NULL rows never match;
/// DOUBLE uses the CompareRows total order). RLE columns evaluate each
/// overlapping run once; dictionary columns evaluate each dictionary entry
/// once and then compare codes — no decode either way.
void SelectMatchingRows(const Column& column, CompareOp op,
                        const Value& literal, int64_t begin, int64_t end,
                        std::vector<int64_t>* out);

/// \brief `<op>` applied to a three-way comparison result (`cmp` < 0, 0,
/// or > 0) — the single decision shared by SelectMatchingRows and the
/// selection-refining kernels (exec/vectorized.h), so every encoded and
/// plain evaluation path agrees on comparison semantics.
bool CompareOpMatches(CompareOp op, int cmp);
/// @}

/// \brief Filters each input batch by a boolean predicate expression.
/// Rows where the predicate is NULL are dropped (SQL WHERE semantics).
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr input, ExprPtr predicate);

  const Schema& output_schema() const override {
    return input_->output_schema();
  }
  Result<std::optional<Table>> Next() override;

  // Selection keeps surviving rows in input order.
  std::vector<OrderKey> output_order() const override {
    return input_->output_order();
  }

  std::string label() const override {
    return "Filter(" + predicate_->ToString() + ")";
  }
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  ExprPtr predicate_;
};

}  // namespace vertexica

#endif  // VERTEXICA_EXEC_FILTER_H_
