/// \file filter.h
/// \brief Selection (σ): keeps rows whose predicate evaluates to TRUE.

#ifndef VERTEXICA_EXEC_FILTER_H_
#define VERTEXICA_EXEC_FILTER_H_

#include "exec/operator.h"
#include "expr/expression.h"

namespace vertexica {

/// \brief Filters each input batch by a boolean predicate expression.
/// Rows where the predicate is NULL are dropped (SQL WHERE semantics).
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr input, ExprPtr predicate);

  const Schema& output_schema() const override {
    return input_->output_schema();
  }
  Result<std::optional<Table>> Next() override;

  std::string label() const override {
    return "Filter(" + predicate_->ToString() + ")";
  }
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  ExprPtr predicate_;
};

}  // namespace vertexica

#endif  // VERTEXICA_EXEC_FILTER_H_
