/// \file distinct.h
/// \brief DISTINCT: removes duplicate rows (full-row equality).

#ifndef VERTEXICA_EXEC_DISTINCT_H_
#define VERTEXICA_EXEC_DISTINCT_H_

#include <unordered_map>
#include <vector>

#include "exec/operator.h"

namespace vertexica {

/// \brief Blocking duplicate elimination over all columns.
/// Keeps the first occurrence of each distinct row (stable).
class DistinctOp : public Operator {
 public:
  explicit DistinctOp(OperatorPtr input) : input_(std::move(input)) {}

  const Schema& output_schema() const override {
    return input_->output_schema();
  }
  // First occurrences are emitted in input order.
  std::vector<OrderKey> output_order() const override {
    return input_->output_order();
  }
  Result<std::optional<Table>> Next() override;

  std::string label() const override {
    return "Distinct";
  }
  std::vector<const Operator*> children() const override {
    return {input_.get()};
  }

 private:
  OperatorPtr input_;
  bool done_ = false;
};

}  // namespace vertexica

#endif  // VERTEXICA_EXEC_DISTINCT_H_
