#include "exec/exec_knobs.h"

namespace vertexica {

ExecKnobs ExecKnobs::Capture() {
  ExecKnobs knobs;
  knobs.threads = ExecThreads();
  knobs.shards = ExecShards();
  knobs.encoding = AmbientEncodingMode();
  knobs.merge_join = MergeJoinEnabled();
  knobs.frontier = AmbientFrontierMode();
  knobs.cancel = AmbientCancelToken();
  return knobs;
}

}  // namespace vertexica
