#include "exec/exec_knobs.h"

namespace vertexica {

ExecKnobs ExecKnobs::Capture() {
  ExecKnobs knobs;
  knobs.threads = ExecThreads();
  knobs.shards = ExecShards();
  knobs.encoding = AmbientEncodingMode();
  knobs.merge_join = MergeJoinEnabled();
  knobs.frontier = AmbientFrontierMode();
  knobs.vectorized = VectorizedEnabled();
  knobs.cancel = AmbientCancelToken();
  knobs.kernel_stats = AmbientKernelStats();
  return knobs;
}

}  // namespace vertexica
