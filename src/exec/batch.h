/// \file batch.h
/// \brief Selection-vector batches: the executor's fused-pipeline currency.
///
/// The table-at-a-time operators (exec/filter.h, exec/project.h) hand a
/// fully materialized Table from stage to stage: a scan slices every column
/// of the morsel, the filter materializes a boolean mask and a gathered
/// survivor table, the projection copies the surviving columns again — three
/// copies of rows the pipeline is mostly about to discard. A Batch instead
/// carries *references*: the shared source table, a morsel window, and a
/// selection vector of surviving row ids. Fused kernels (exec/vectorized.h)
/// narrow the selection in place, column by column, and materialize exactly
/// once — at the pipeline breaker (join build, aggregate, sort, exchange)
/// or the pipeline's output.
///
/// Representation rules:
///  - `sel` holds *absolute* row ids of `source`, strictly ascending and
///    all inside [begin, end). Absolute ids make gathers direct
///    (Column::Take needs no rebasing) and keep morsel outputs
///    concatenation-ready in morsel order — the determinism contract of
///    the morsel driver (exec/parallel.h) carries over unchanged.
///  - A batch where every window row survives is *dense*: `sel` stays
///    empty and `dense` is true, so an unselective pipeline prefix never
///    builds a 16K-entry identity vector just to throw it away.
///
/// Materialization (MaterializeColumn) is the only point a Batch touches
/// column storage: Slice for dense batches, the typed gather (Column::Take,
/// which reads dictionary codes without decoding) for sparse ones. Like
/// every gather in the engine, the result drops derived metadata (zone
/// maps, sort flags) — values, never metadata, are the bit-identity
/// contract (docs/EXECUTOR.md).

#ifndef VERTEXICA_EXEC_BATCH_H_
#define VERTEXICA_EXEC_BATCH_H_

#include <cstdint>
#include <vector>

#include "storage/table.h"

namespace vertexica {

/// \brief Selected row ids: absolute, strictly ascending.
using SelVector = std::vector<int64_t>;

/// \brief One morsel of a fused pipeline: a borrowed source table, the
/// morsel window, and the rows still alive. The source must outlive the
/// batch (the morsel drivers pin it via shared_ptr for the whole fan-out).
struct Batch {
  const Table* source = nullptr;
  int64_t begin = 0;  ///< window start (inclusive), absolute row id
  int64_t end = 0;    ///< window end (exclusive), absolute row id
  SelVector sel;      ///< alive rows; unused while `dense`
  bool dense = true;  ///< all of [begin, end) alive; `sel` is empty

  int64_t num_selected() const {
    return dense ? end - begin : static_cast<int64_t>(sel.size());
  }
};

/// \brief Materializes one column of the batch: a contiguous Slice for a
/// dense batch, a typed gather for a sparse one. The single point a fused
/// pipeline pays a copy.
inline Column MaterializeColumn(const Column& col, const Batch& batch) {
  // materialize-ok: this IS the fused pipeline's one copy point — callers
  // reach storage only through here, at the pipeline's end.
  if (batch.dense) return col.Slice(batch.begin, batch.end - batch.begin);
  return col.Take(batch.sel);
}

}  // namespace vertexica

#endif  // VERTEXICA_EXEC_BATCH_H_
