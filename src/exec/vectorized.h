/// \file vectorized.h
/// \brief The fused selection-vector execution core (ROADMAP item 2).
///
/// The hot σ→π shapes of the engine — the coordinator's worker-output
/// split, its union/join input builds, metadata selections — are
/// conjunctions of `column <op> literal` comparisons feeding column-ref/
/// literal projections. For exactly that shape this module replaces the
/// table-at-a-time interpreter with a fused pipeline over selection-vector
/// batches (exec/batch.h):
///
///   compile:   the predicate decomposes completely into pushable conjuncts
///              (SplitPredicateConjuncts, exec/filter.h) and every
///              projection is a column ref or literal — else the plan is
///              ineligible and the caller keeps the interpreter path;
///   evaluate:  conjunct-at-a-time into a selection vector. The first
///              conjunct runs the encoded-aware SelectMatchingRows kernel
///              (whole RLE runs / dictionary entries, no decode); each
///              further conjunct *narrows* the survivors in place with a
///              tight typed loop (RefineMatchingRows) — no mask column, no
///              intermediate table;
///   gather:    one materialization per output column at the pipeline's
///              end: Slice when every window row survived, the typed
///              gather otherwise, and literal outputs replicated exactly
///              like LiteralExpr::Evaluate.
///
/// Bit-identity contract (docs/EXECUTOR.md): a row survives the fused
/// pipeline iff every conjunct compares TRUE — exactly the rows whose
/// Kleene-AND mask is TRUE under the interpreter (a NULL operand makes a
/// conjunct non-TRUE in both worlds), and gathers/replications reproduce
/// the interpreter's output values byte-for-byte. The fused path is
/// therefore a pure physical-plan swap, toggled by the `vectorized` knob
/// below and verified row-for-row by the exec_test property suite at
/// every knob combination.

#ifndef VERTEXICA_EXEC_VECTORIZED_H_
#define VERTEXICA_EXEC_VECTORIZED_H_

#include <optional>
#include <string>
#include <vector>

#include "exec/batch.h"
#include "exec/filter.h"
#include "exec/project.h"
#include "expr/expression.h"

namespace vertexica {

/// \name The `vectorized` knob
///
/// Ambient on/off switch mirroring the merge-join knob: innermost
/// ScopedVectorized override, else the process default
/// (SetDefaultVectorized, else VERTEXICA_VECTORIZED env — "0"/"off"
/// disables — else on). The morsel drivers (exec/parallel.cc) consult it,
/// so one scope pins the interpreter path for an entire run (ablation
/// benches, the VERTEXICA_VECTORIZED=off CI pass).
/// @{
bool VectorizedEnabled();
/// \brief Sets the process default: 1 = on, 0 = off, -1 = automatic
/// (env, else on).
void SetDefaultVectorized(int enabled);
/// \brief RAII override for the current thread.
class ScopedVectorized {
 public:
  explicit ScopedVectorized(bool enabled);
  ~ScopedVectorized();
  ScopedVectorized(const ScopedVectorized&) = delete;
  ScopedVectorized& operator=(const ScopedVectorized&) = delete;

 private:
  int prev_;
};
/// @}

/// \brief A compiled fused σ→π pipeline: the predicate as conjuncts, the
/// projections resolved to source column indices or literals, and the
/// output schema (identical to the interpreter operators' schema).
struct FusedPipelinePlan {
  /// Complete decomposition of the predicate; empty for a pure projection.
  std::vector<ColumnPredicate> conjuncts;

  struct Output {
    std::string name;
    int source_column = -1;  ///< gathered column; -1 for a literal
    Value literal;           ///< replicated when source_column < 0
    DataType type = DataType::kInt64;
  };
  std::vector<Output> outputs;
  Schema schema;
};

/// \brief Compiles predicate + projections against `input`'s schema.
/// Returns nullopt when the shape is ineligible — a residual (non-pushable)
/// conjunct, a computed projection, or an unknown column — in which case
/// the caller must keep the interpreter path. `predicate` may be null (no
/// filter); `outputs` must be non-empty.
std::optional<FusedPipelinePlan> CompileFusedPipeline(
    const Table& input, const ExprPtr& predicate,
    const std::vector<ProjectionSpec>& outputs);

/// \brief Evaluates `conjuncts` over the window [begin, end) of `source`
/// into `batch` (overwriting its window and selection). The first conjunct
/// runs SelectMatchingRows; each further conjunct narrows in place. A
/// selection covering the whole window collapses to the dense
/// representation.
void EvaluateConjuncts(const Table& source,
                       const std::vector<ColumnPredicate>& conjuncts,
                       int64_t begin, int64_t end, Batch* batch);

/// \brief Narrows `sel` in place to the rows where `value <op> literal`
/// compares TRUE — the same semantics as SelectMatchingRows (NULL rows and
/// NULL literals never match), over an existing selection. Dictionary
/// columns test per-entry then compare codes.
void RefineMatchingRows(const Column& column, CompareOp op,
                        const Value& literal, SelVector* sel);

/// \brief Materializes the plan's outputs for one batch: sliced/gathered
/// source columns and replicated literals, assembled into a table of
/// `plan.schema`. The single materialization of the fused pipeline; bytes
/// are reported to the ambient KernelStats.
Result<Table> MaterializeFusedOutputs(const FusedPipelinePlan& plan,
                                      const Batch& batch);

}  // namespace vertexica

#endif  // VERTEXICA_EXEC_VECTORIZED_H_
