/// \file kernel_stats.h
/// \brief Per-run kernel counters: bytes materialized, fused vs legacy
/// batches, batched-hash rows.
///
/// ScanPruneStats (exec/scan.h) is process-wide atomics — fine for a
/// single-run bench, but under the concurrent server (docs/SERVER.md)
/// process-wide counters interleave across requests and can only be reset
/// by everyone at once. KernelStats is the per-run form: the API layer
/// allocates one per request (api/backends.cc), installs it as the ambient
/// collector on the dispatching thread, and the pointer rides ExecKnobs
/// into every pool task, so morsel workers report into *their* run's block.
/// All fields are relaxed atomics precisely because many pool threads of
/// one run increment them concurrently; blocks of different runs never
/// alias.
///
/// The headline counter, `bytes_materialized`, measures what the fused
/// selection-vector pipeline (exec/vectorized.h) exists to remove: every
/// intermediate table an operator materializes inside a σ/π pipeline —
/// scan slices, filter masks and outputs, projection outputs, fused-kernel
/// outputs. Pipeline breakers (join build, aggregate, sort, exchange) are
/// deliberately not counted: their materialization is inherent, not
/// fusable. The counter is deterministic for a given plan + knob setting —
/// morsel boundaries never depend on the thread count — so bench rows can
/// report it as a stable "bytes per pipeline" figure.

#ifndef VERTEXICA_EXEC_KERNEL_STATS_H_
#define VERTEXICA_EXEC_KERNEL_STATS_H_

#include <atomic>
#include <cstdint>

namespace vertexica {

class Column;
class Table;

/// \brief One run's kernel counters (relaxed atomics; see file comment).
struct KernelStats {
  /// Bytes of intermediate tables materialized inside σ/π pipelines.
  std::atomic<int64_t> bytes_materialized{0};
  /// Morsels executed by the fused selection-vector kernels.
  std::atomic<int64_t> fused_batches{0};
  /// Morsel outputs produced by the interpreter (table-at-a-time) path.
  std::atomic<int64_t> legacy_batches{0};
  /// Join-key rows hashed by the batched hash kernel (BatchJoinKeyHash).
  std::atomic<int64_t> batch_hash_rows{0};
};

/// \brief Plain-value copy of a KernelStats block (atomics aren't
/// copyable; benches and stats publishers read through this).
struct KernelStatsSnapshot {
  int64_t bytes_materialized = 0;
  int64_t fused_batches = 0;
  int64_t legacy_batches = 0;
  int64_t batch_hash_rows = 0;
};

KernelStatsSnapshot Snapshot(const KernelStats& stats);

/// \brief The innermost collector installed on this thread; nullptr when
/// none (counting is then skipped entirely — one thread-local read per
/// batch). Unlike JoinPathStats, the block is safe to install on many
/// threads at once.
KernelStats* AmbientKernelStats();

/// \brief RAII installation of a collector for the current thread.
/// nullptr installs "no collector" (used by pool tasks to mirror the
/// submitting thread exactly).
class ScopedKernelStats {
 public:
  explicit ScopedKernelStats(KernelStats* stats);
  ~ScopedKernelStats();
  ScopedKernelStats(const ScopedKernelStats&) = delete;
  ScopedKernelStats& operator=(const ScopedKernelStats&) = delete;

 private:
  KernelStats* prev_;
};

/// \brief Physical byte footprint of `col` as materialized — respects the
/// current representation (RLE runs, dict codes, validity) and never
/// forces a decode.
int64_t MaterializedByteSize(const Column& col);

/// \name Reporting hooks (no-ops when no collector is installed)
/// @{
void NoteMaterialized(const Table& table);
void NoteMaterialized(const Column& column);
void NoteFusedBatch();
void NoteLegacyBatch();
void NoteBatchHashRows(int64_t rows);
/// @}

}  // namespace vertexica

#endif  // VERTEXICA_EXEC_KERNEL_STATS_H_
