/// \file exec_knobs.h
/// \brief Capture/install of the ambient execution knobs as one value.
///
/// The executor's tuning state (thread count, shard count, encoding mode,
/// merge-join and vectorized toggles) lives in per-knob thread-locals so it can be scoped
/// per request. That design has one sharp edge: a task handed to a
/// ThreadPool worker runs on a thread whose locals are all unset, so every
/// fan-out site has to re-install each knob by hand — PR 5's coordinator
/// did this in two places, and the serving layer would have added more.
/// ExecKnobs packages the capture (on the submitting thread) and the
/// install (inside the pool task) so a knob added later has exactly one
/// place to be threaded through.

#ifndef VERTEXICA_EXEC_EXEC_KNOBS_H_
#define VERTEXICA_EXEC_EXEC_KNOBS_H_

#include "common/cancel.h"
#include "common/logging.h"
#include "exec/frontier.h"
#include "exec/kernel_stats.h"
#include "exec/merge_join.h"
#include "exec/parallel.h"
#include "exec/vectorized.h"
#include "storage/encoding.h"
#include "storage/partition.h"

namespace vertexica {

/// \brief A value snapshot of the ambient execution knobs (plus the run's
/// cancellation token).
///
/// Plain copyable data: capture once on the coordinating thread, then copy
/// into each pool task and install there. Also the payload of the serving
/// layer's ExecContext (api/exec_context.h), which resolves a RunRequest's
/// explicit overrides against ambient defaults into one of these.
struct ExecKnobs {
  int threads = 1;
  int shards = 1;
  EncodingMode encoding = EncodingMode::kAuto;
  bool merge_join = true;
  FrontierMode frontier = FrontierMode::kAuto;
  bool vectorized = true;
  /// The run's cancellation/deadline token (common/cancel.h). Not a tuning
  /// knob, but it rides the same capture/install plumbing so pool tasks
  /// observe the submitting request's cancellation — a null token (the
  /// default) never fires.
  CancelToken cancel;
  /// The run's kernel-counter block (exec/kernel_stats.h); nullptr disables
  /// counting. Rides the knob plumbing so morsel workers report into the
  /// submitting run's block — safe to share across pool threads because the
  /// block is all relaxed atomics (unlike JoinPathStats, which is installed
  /// per dispatching thread only; see api/backends.cc).
  KernelStats* kernel_stats = nullptr;

  /// Resolves the calling thread's ambient knobs (thread-local override →
  /// process default → environment → fallback, per knob).
  static ExecKnobs Capture();

  bool operator==(const ExecKnobs& other) const {
    return threads == other.threads && shards == other.shards &&
           encoding == other.encoding && merge_join == other.merge_join &&
           frontier == other.frontier && vectorized == other.vectorized &&
           cancel == other.cancel && kernel_stats == other.kernel_stats;
  }
  bool operator!=(const ExecKnobs& other) const { return !(*this == other); }
};

/// \brief RAII installer: pins every captured knob (and the cancel token)
/// on the current thread for the lifetime of the scope. Use inside pool
/// tasks with a captured ExecKnobs.
///
/// After construction the thread's ambient knobs re-Capture() to exactly
/// the installed value — audited under VX_DCHECK, so a knob added to
/// ExecKnobs but not threaded through the scoped installers is caught the
/// first time any pool task runs in a debug-audit build.
class ScopedExecKnobs {
 public:
  explicit ScopedExecKnobs(const ExecKnobs& knobs)
      : threads_(knobs.threads),
        shards_(knobs.shards),
        encoding_(knobs.encoding),
        merge_join_(knobs.merge_join),
        frontier_(knobs.frontier),
        vectorized_(knobs.vectorized),
        cancel_(knobs.cancel),
        kernel_stats_(knobs.kernel_stats) {
    VX_DCHECK(ExecKnobs::Capture() == knobs)
        << "ScopedExecKnobs: installed knobs do not round-trip through "
           "Capture (a knob is missing from the scoped installers?)";
  }

  ScopedExecKnobs(const ScopedExecKnobs&) = delete;
  ScopedExecKnobs& operator=(const ScopedExecKnobs&) = delete;

 private:
  ScopedExecThreads threads_;
  ScopedExecShards shards_;
  ScopedEncodingMode encoding_;
  ScopedMergeJoin merge_join_;
  ScopedFrontierMode frontier_;
  ScopedVectorized vectorized_;
  ScopedCancelToken cancel_;
  ScopedKernelStats kernel_stats_;
};

}  // namespace vertexica

#endif  // VERTEXICA_EXEC_EXEC_KNOBS_H_
