/// \file data_type.h
/// \brief Logical column types supported by the relational engine.

#ifndef VERTEXICA_STORAGE_DATA_TYPE_H_
#define VERTEXICA_STORAGE_DATA_TYPE_H_

#include <string>

namespace vertexica {

/// \brief Logical data types. The engine is deliberately small: 64-bit
/// integers (ids, counts), doubles (values, ranks, distances), booleans
/// (vertex halted state) and strings (metadata).
enum class DataType : int {
  kBool = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

inline const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "?";
}

/// \brief True for the two numeric types (kInt64, kDouble).
inline bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble;
}

}  // namespace vertexica

#endif  // VERTEXICA_STORAGE_DATA_TYPE_H_
