#include "storage/value.h"

#include <sstream>

namespace vertexica {

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_bool()) return bool_value() ? "true" : "false";
  if (is_int64()) return std::to_string(int64_value());
  if (is_double()) {
    std::ostringstream os;
    os << double_value();
    return os.str();
  }
  return "'" + string_value() + "'";
}

}  // namespace vertexica
