/// \file column.h
/// \brief A typed, nullable column of values — the engine's unit of storage.
///
/// Vertexica sits on a column-oriented database (the paper uses Vertica);
/// this column vector is the corresponding storage primitive here. Hot
/// paths access the typed vectors directly (`ints()`, `doubles()`), while
/// generic code goes through `GetValue`/`AppendValue`.

#ifndef VERTEXICA_STORAGE_COLUMN_H_
#define VERTEXICA_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "storage/data_type.h"
#include "storage/value.h"

namespace vertexica {

/// \brief A single column: logical type + typed value vector + validity.
///
/// Validity is tracked lazily: while no NULL has been appended the validity
/// vector stays empty and all slots are valid, so fully-valid columns (the
/// common case for graph data) pay nothing.
class Column {
 public:
  explicit Column(DataType type = DataType::kInt64) : type_(type) {}

  /// \name Typed factories
  /// @{
  static Column FromInts(std::vector<int64_t> v);
  static Column FromDoubles(std::vector<double> v);
  static Column FromStrings(std::vector<std::string> v);
  static Column FromBools(std::vector<uint8_t> v);
  /// @}

  DataType type() const { return type_; }
  int64_t length() const { return length_; }
  int64_t null_count() const { return null_count_; }

  void Reserve(int64_t n);

  /// \name Append
  /// @{
  void AppendInt64(int64_t v) {
    VX_DCHECK(type_ == DataType::kInt64);
    ints_.push_back(v);
    NoteAppend();
  }
  void AppendDouble(double v) {
    VX_DCHECK(type_ == DataType::kDouble);
    doubles_.push_back(v);
    NoteAppend();
  }
  void AppendString(std::string v) {
    VX_DCHECK(type_ == DataType::kString);
    strings_.push_back(std::move(v));
    NoteAppend();
  }
  void AppendBool(bool v) {
    VX_DCHECK(type_ == DataType::kBool);
    bools_.push_back(v ? 1 : 0);
    NoteAppend();
  }
  void AppendNull();
  /// \brief Appends a Value; the value must match the column type or be null.
  void AppendValue(const Value& v);
  /// \brief Appends rows [0, other.length()) of `other` (same type).
  void AppendColumn(const Column& other);
  /// @}

  /// \name Element access
  /// @{
  bool IsNull(int64_t i) const {
    return !validity_.empty() && validity_[static_cast<size_t>(i)] == 0;
  }
  int64_t GetInt64(int64_t i) const {
    VX_DCHECK(type_ == DataType::kInt64);
    return ints_[static_cast<size_t>(i)];
  }
  double GetDouble(int64_t i) const {
    VX_DCHECK(type_ == DataType::kDouble);
    return doubles_[static_cast<size_t>(i)];
  }
  const std::string& GetString(int64_t i) const {
    VX_DCHECK(type_ == DataType::kString);
    return strings_[static_cast<size_t>(i)];
  }
  bool GetBool(int64_t i) const {
    VX_DCHECK(type_ == DataType::kBool);
    return bools_[static_cast<size_t>(i)] != 0;
  }
  /// \brief Numeric value widened to double (int64 or double columns).
  double GetNumeric(int64_t i) const {
    return type_ == DataType::kInt64 ? static_cast<double>(GetInt64(i))
                                     : GetDouble(i);
  }
  Value GetValue(int64_t i) const;
  /// @}

  /// \name Direct typed access for vectorized operators
  /// @{
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<uint8_t>& bools() const { return bools_; }
  std::vector<int64_t>* mutable_ints() { return &ints_; }
  std::vector<double>* mutable_doubles() { return &doubles_; }
  std::vector<std::string>* mutable_strings() { return &strings_; }
  std::vector<uint8_t>* mutable_bools() { return &bools_; }
  /// @}

  /// \brief Gather: column of `indices.size()` rows taken at the indices.
  Column Take(const std::vector<int64_t>& indices) const;

  /// \brief Contiguous sub-column [offset, offset + count).
  Column Slice(int64_t offset, int64_t count) const;

  /// \brief Deep equality including null positions.
  bool Equals(const Column& other) const;

  /// \brief Hash of row `i` (for join/group keys). NULL hashes to a fixed
  /// distinguished value.
  uint64_t HashRow(int64_t i) const;

  /// \brief Three-way comparison of row `i` with row `j` of `other` (same
  /// type). NULLs sort first.
  int CompareRows(int64_t i, const Column& other, int64_t j) const;

 private:
  void NoteAppend() {
    ++length_;
    if (!validity_.empty()) validity_.push_back(1);
  }
  void EnsureValidity();

  DataType type_;
  int64_t length_ = 0;
  int64_t null_count_ = 0;
  std::vector<uint8_t> validity_;  // empty == all valid
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> bools_;
};

}  // namespace vertexica

#endif  // VERTEXICA_STORAGE_COLUMN_H_
