/// \file column.h
/// \brief A typed, nullable column of values — the engine's unit of storage.
///
/// Vertexica sits on a column-oriented database (the paper uses Vertica);
/// this column vector is the corresponding storage primitive here. Hot
/// paths access the typed vectors directly (`ints()`, `doubles()`), while
/// generic code goes through `GetValue`/`AppendValue`.
///
/// A column may store its values *encoded* — run-length for INT64/BOOL,
/// dictionary for STRING — as an immutable `EncodedSegment` shared by all
/// copies (see storage/encoding.h). Readers see identical values either
/// way: element access and the typed-vector views decode lazily, exactly
/// once per segment, behind a `std::call_once`; dictionary columns answer
/// `GetString`/`HashRow`/`CompareRows` straight from codes without ever
/// materializing the decoded vector. Mutation (appends, `mutable_*`)
/// transparently reverts the column to the plain representation first.

#ifndef VERTEXICA_STORAGE_COLUMN_H_
#define VERTEXICA_STORAGE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "storage/data_type.h"
#include "storage/encoding.h"
#include "storage/value.h"

namespace vertexica {

/// \brief Immutable encoded payload of a column, shared by all its copies.
///
/// The decoded view and the per-dictionary-entry hashes are caches filled
/// lazily at most once (`std::call_once`), so concurrent readers — the
/// morsel-parallel executor scans one table from many threads — are safe
/// without locking on the hot path.
struct EncodedSegment {
  ColumnEncoding encoding = ColumnEncoding::kPlain;
  int64_t length = 0;
  std::vector<RleRun> runs;        ///< kRle (BOOL runs hold 0/1)
  std::vector<int64_t> run_starts; ///< start row of runs[k] (kRle), for
                                   ///< binary-searching a row range
  DictEncoded dict;                ///< kDict

  /// \name Lazy caches
  /// @{
  mutable std::once_flag decode_once;
  mutable std::vector<int64_t> decoded_ints;
  mutable std::vector<uint8_t> decoded_bools;
  mutable std::vector<std::string> decoded_strings;
  mutable std::once_flag hash_once;
  mutable std::vector<uint64_t> dict_hashes;  ///< HashString per dict entry
  /// @}
};

/// \brief A single column: logical type + typed value vector + validity.
///
/// Validity is tracked lazily: while no NULL has been appended the validity
/// vector stays empty and all slots are valid, so fully-valid columns (the
/// common case for graph data) pay nothing. Validity always stays plain,
/// even for encoded columns.
class Column {
 public:
  explicit Column(DataType type = DataType::kInt64) : type_(type) {}

  /// \name Typed factories
  /// @{
  static Column FromInts(std::vector<int64_t> v);
  static Column FromDoubles(std::vector<double> v);
  static Column FromStrings(std::vector<std::string> v);
  static Column FromBools(std::vector<uint8_t> v);
  /// \brief Fully-valid INT64 column born RLE-encoded from the given runs
  /// (adjacent runs may share a value). Lets producers that already know
  /// the run structure — e.g. the partition scatter splitting an encoded
  /// key column — build encoded output without a decode/re-encode round
  /// trip.
  static Column FromRleRuns(std::vector<RleRun> runs);
  /// @}

  DataType type() const { return type_; }
  int64_t length() const { return length_; }
  int64_t null_count() const { return null_count_; }

  void Reserve(int64_t n);

  /// \name Append
  /// Appending to an encoded column first reverts it to plain (and drops
  /// the now-stale zone map and sorted-ascending flag).
  /// @{
  void AppendInt64(int64_t v) {
    VX_DCHECK(type_ == DataType::kInt64);
    if (MutationInvalidatesState()) PrepareMutation();
    ints_.push_back(v);
    NoteAppend();
  }
  void AppendDouble(double v) {
    VX_DCHECK(type_ == DataType::kDouble);
    if (MutationInvalidatesState()) PrepareMutation();
    doubles_.push_back(v);
    NoteAppend();
  }
  void AppendString(std::string v) {
    VX_DCHECK(type_ == DataType::kString);
    if (MutationInvalidatesState()) PrepareMutation();
    strings_.push_back(std::move(v));
    NoteAppend();
  }
  void AppendBool(bool v) {
    VX_DCHECK(type_ == DataType::kBool);
    if (MutationInvalidatesState()) PrepareMutation();
    bools_.push_back(v ? 1 : 0);
    NoteAppend();
  }
  void AppendNull();
  /// \brief Appends a Value; the value must match the column type or be null.
  void AppendValue(const Value& v);
  /// \brief Appends rows [0, other.length()) of `other` (same type).
  void AppendColumn(const Column& other);
  /// @}

  /// \name Element access
  /// @{
  bool IsNull(int64_t i) const {
    return !validity_.empty() && validity_[static_cast<size_t>(i)] == 0;
  }
  int64_t GetInt64(int64_t i) const {
    VX_DCHECK(type_ == DataType::kInt64);
    return (segment_ == nullptr ? ints_ : DecodedInts())[static_cast<size_t>(i)];
  }
  double GetDouble(int64_t i) const {
    VX_DCHECK(type_ == DataType::kDouble);
    return doubles_[static_cast<size_t>(i)];
  }
  /// Dictionary-encoded columns answer from the dictionary directly, with
  /// no per-row decode.
  const std::string& GetString(int64_t i) const {
    VX_DCHECK(type_ == DataType::kString);
    if (segment_ != nullptr && segment_->encoding == ColumnEncoding::kDict) {
      return segment_->dict.dictionary[static_cast<size_t>(
          segment_->dict.codes[static_cast<size_t>(i)])];
    }
    return (segment_ == nullptr ? strings_
                                : DecodedStrings())[static_cast<size_t>(i)];
  }
  bool GetBool(int64_t i) const {
    VX_DCHECK(type_ == DataType::kBool);
    return (segment_ == nullptr ? bools_
                                : DecodedBools())[static_cast<size_t>(i)] != 0;
  }
  /// \brief Numeric value widened to double (int64 or double columns).
  double GetNumeric(int64_t i) const {
    return type_ == DataType::kInt64 ? static_cast<double>(GetInt64(i))
                                     : GetDouble(i);
  }
  Value GetValue(int64_t i) const;
  /// @}

  /// \name Direct typed access for vectorized operators
  /// The const views of an encoded column decode lazily (cached in the
  /// shared segment); the `mutable_*` accessors revert to plain first.
  /// @{
  const std::vector<int64_t>& ints() const {
    return segment_ == nullptr ? ints_ : DecodedInts();
  }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const {
    return segment_ == nullptr ? strings_ : DecodedStrings();
  }
  const std::vector<uint8_t>& bools() const {
    return segment_ == nullptr ? bools_ : DecodedBools();
  }
  std::vector<int64_t>* mutable_ints() {
    PrepareMutation();
    return &ints_;
  }
  std::vector<double>* mutable_doubles() {
    PrepareMutation();
    return &doubles_;
  }
  std::vector<std::string>* mutable_strings() {
    PrepareMutation();
    return &strings_;
  }
  std::vector<uint8_t>* mutable_bools() {
    PrepareMutation();
    return &bools_;
  }
  /// @}

  /// \name Encoding state (storage/encoding.h)
  /// @{
  ColumnEncoding encoding() const {
    return segment_ == nullptr ? ColumnEncoding::kPlain : segment_->encoding;
  }
  bool is_encoded() const { return segment_ != nullptr; }

  /// \brief Switches to an encoded representation: RLE for INT64/BOOL,
  /// dictionary for STRING (DOUBLE columns always stay plain). Under kAuto
  /// the column is encoded only when the encoded footprint is smaller than
  /// the plain one; kForce encodes every eligible type; kOff is a no-op.
  /// Builds the zone map as a side effect (one pass, while the plain
  /// vectors are still hot; skipped when one is already cached). Returns
  /// true when the column is now encoded.
  /// Value-neutral: readers see bit-identical data either way.
  bool Encode(EncodingMode mode = EncodingMode::kAuto);

  /// \brief Reverts to the plain representation (keeps the zone map, which
  /// describes values, not their encoding).
  void Decode();

  /// \brief Computes (or recomputes) the per-zone min/max/null-count
  /// statistics for this column; any type. See storage/encoding.h.
  void BuildZoneMap();

  /// \brief The cached zone map; nullptr until BuildZoneMap()/Encode().
  const std::shared_ptr<const ZoneMapIndex>& zone_map() const {
    return zone_map_;
  }

  /// \brief The RLE runs when RLE-encoded, else nullptr.
  const std::vector<RleRun>* rle_runs() const {
    return segment_ != nullptr && segment_->encoding == ColumnEncoding::kRle
               ? &segment_->runs
               : nullptr;
  }
  /// \brief Start row of each RLE run (parallel to rle_runs()), else
  /// nullptr; lets range kernels binary-search their first run instead of
  /// walking the run list from row 0.
  const std::vector<int64_t>* rle_run_starts() const {
    return segment_ != nullptr && segment_->encoding == ColumnEncoding::kRle
               ? &segment_->run_starts
               : nullptr;
  }
  /// \brief The dictionary encoding when dictionary-encoded, else nullptr.
  const DictEncoded* dict() const {
    return segment_ != nullptr && segment_->encoding == ColumnEncoding::kDict
               ? &segment_->dict
               : nullptr;
  }

  /// \brief Bytes used by the validity bitmap (0 while fully valid).
  int64_t ValidityByteSize() const {
    return static_cast<int64_t>(validity_.size());
  }
  /// @}

  /// \name Sort-order property (order-aware execution)
  ///
  /// Declares that values are nondecreasing under the CompareRows total
  /// order (NULLs first, NaN last). Set by producers that guarantee it —
  /// Table::SetSortOrder marks its leading ascending key — and dropped on
  /// any mutation together with the zone map (PrepareMutation), so the
  /// flag can never go stale. Slices inherit it; gathers do not.
  /// @{
  bool sorted_ascending() const { return sorted_ascending_; }
  void set_sorted_ascending(bool sorted) { sorted_ascending_ = sorted; }
  /// @}

  /// \brief Gather: column of `indices.size()` rows taken at the indices.
  Column Take(const std::vector<int64_t>& indices) const;

  /// \brief Contiguous sub-column [offset, offset + count).
  Column Slice(int64_t offset, int64_t count) const;

  /// \brief Deep equality including null positions.
  bool Equals(const Column& other) const;

  /// \brief Hash of row `i` (for join/group keys). NULL hashes to a fixed
  /// distinguished value. Dictionary columns hash via a per-entry cache —
  /// the hash equals HashString of the decoded value, so encoded and plain
  /// key columns hash identically.
  uint64_t HashRow(int64_t i) const;

  /// \brief Three-way comparison of row `i` with row `j` of `other` (same
  /// type). NULLs sort first. DOUBLE uses a total order — NaN sorts after
  /// every number and compares equal to itself — so sorting is a strict
  /// weak order even with NaN present (which reaches tables via the
  /// documented GetAggregate undeclared-read contract).
  int CompareRows(int64_t i, const Column& other, int64_t j) const;

  /// \brief Deep structural audit of every claim this column makes (the
  /// VX_DCHECK tier; see docs/DEVELOPING.md). Verifies size/validity/
  /// null-count consistency, that the encoded segment reproduces exactly
  /// `length()` rows (RLE runs positive and summing to the length with
  /// correct run_starts, dict codes in range), that a declared
  /// `sorted_ascending()` actually holds under the CompareRows total order,
  /// and that a cached zone map soundly bounds the data it describes.
  /// O(length); call behind VX_DCHECK_OK, not on hot paths.
  Status CheckInvariants() const;

 private:
  /// Test-only backdoor (defined by the negative invariant tests, which
  /// must corrupt internal state without the mutation hooks healing it).
  friend struct ColumnTestAccess;
  void NoteAppend() {
    ++length_;
    if (!validity_.empty()) validity_.push_back(1);
  }
  void EnsureValidity();
  /// True when some cached derived state (encoded segment, zone map,
  /// sorted flag) must be invalidated before mutating.
  bool MutationInvalidatesState() const {
    return segment_ != nullptr || zone_map_ != nullptr || sorted_ascending_;
  }
  /// Reverts to plain representation and drops the zone map and the
  /// sorted-ascending flag before any mutation (all would silently go
  /// stale otherwise).
  void PrepareMutation();

  const std::vector<int64_t>& DecodedInts() const;
  const std::vector<uint8_t>& DecodedBools() const;
  const std::vector<std::string>& DecodedStrings() const;

  DataType type_;
  int64_t length_ = 0;
  int64_t null_count_ = 0;
  std::vector<uint8_t> validity_;  // empty == all valid
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> bools_;
  /// Encoded representation; when set, the typed vectors above are empty
  /// and reads go through the segment (lazily decoded).
  std::shared_ptr<const EncodedSegment> segment_;
  std::shared_ptr<const ZoneMapIndex> zone_map_;
  /// Declared nondecreasing under CompareRows; dropped on mutation.
  bool sorted_ascending_ = false;
};

}  // namespace vertexica

#endif  // VERTEXICA_STORAGE_COLUMN_H_
