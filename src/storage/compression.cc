#include "storage/compression.h"

namespace vertexica {

int64_t UncompressedByteSize(const Column& column) {
  int64_t bytes = column.ValidityByteSize();
  switch (column.type()) {
    case DataType::kInt64:
      return bytes + column.length() * static_cast<int64_t>(sizeof(int64_t));
    case DataType::kDouble:
      return bytes + column.length() * static_cast<int64_t>(sizeof(double));
    case DataType::kBool:
      return bytes + column.length();
    case DataType::kString: {
      // Dictionary-encoded columns: per-row sizes from the dictionary, so
      // accounting never forces a decode.
      if (const auto* dict = column.dict()) {
        for (int32_t code : dict->codes) {
          bytes += static_cast<int64_t>(
              sizeof(std::string) +
              dict->dictionary[static_cast<size_t>(code)].size());
        }
        return bytes;
      }
      for (const auto& s : column.strings()) {
        bytes += static_cast<int64_t>(sizeof(std::string) + s.size());
      }
      return bytes;
    }
  }
  return 0;
}

int64_t CompressedByteSize(const Column& column) {
  const int64_t validity = column.ValidityByteSize();
  switch (column.type()) {
    case DataType::kInt64: {
      // Reuse the stored runs when the column is already RLE-encoded.
      if (const auto* runs = column.rle_runs()) {
        return validity +
               static_cast<int64_t>(runs->size() * sizeof(RleRun));
      }
      const auto runs = RleEncode(column.ints());
      return validity + static_cast<int64_t>(runs.size() * sizeof(RleRun));
    }
    case DataType::kBool: {
      if (const auto* runs = column.rle_runs()) {
        return validity +
               static_cast<int64_t>(runs->size() * sizeof(RleRun));
      }
      std::vector<int64_t> widened(column.bools().begin(),
                                   column.bools().end());
      const auto runs = RleEncode(widened);
      return validity + static_cast<int64_t>(runs.size() * sizeof(RleRun));
    }
    case DataType::kString:
      if (const auto* dict = column.dict()) {
        return validity + dict->ByteSize();
      }
      return validity + DictionaryEncode(column.strings()).ByteSize();
    case DataType::kDouble:
      return UncompressedByteSize(column);
  }
  return 0;
}

int64_t EncodedByteSize(const Column& column) {
  switch (column.encoding()) {
    case ColumnEncoding::kRle:
      return column.ValidityByteSize() +
             static_cast<int64_t>(column.rle_runs()->size() * sizeof(RleRun));
    case ColumnEncoding::kDict:
      return column.ValidityByteSize() + column.dict()->ByteSize();
    case ColumnEncoding::kPlain:
      return UncompressedByteSize(column);
  }
  return 0;
}

}  // namespace vertexica
