#include "storage/compression.h"

#include <unordered_map>

namespace vertexica {

std::vector<RleRun> RleEncode(const std::vector<int64_t>& values) {
  std::vector<RleRun> runs;
  for (int64_t v : values) {
    if (!runs.empty() && runs.back().value == v) {
      ++runs.back().length;
    } else {
      runs.push_back(RleRun{v, 1});
    }
  }
  return runs;
}

std::vector<int64_t> RleDecode(const std::vector<RleRun>& runs) {
  std::vector<int64_t> values;
  for (const auto& run : runs) {
    values.insert(values.end(), static_cast<size_t>(run.length), run.value);
  }
  return values;
}

int64_t DictEncoded::ByteSize() const {
  int64_t bytes = static_cast<int64_t>(codes.size() * sizeof(int32_t));
  for (const auto& s : dictionary) {
    bytes += static_cast<int64_t>(s.size());
  }
  return bytes;
}

DictEncoded DictionaryEncode(const std::vector<std::string>& values) {
  DictEncoded out;
  out.codes.reserve(values.size());
  std::unordered_map<std::string, int32_t> index;
  for (const auto& v : values) {
    auto [it, inserted] =
        index.emplace(v, static_cast<int32_t>(out.dictionary.size()));
    if (inserted) out.dictionary.push_back(v);
    out.codes.push_back(it->second);
  }
  return out;
}

std::vector<std::string> DictionaryDecode(const DictEncoded& encoded) {
  std::vector<std::string> values;
  values.reserve(encoded.codes.size());
  for (int32_t code : encoded.codes) {
    values.push_back(encoded.dictionary[static_cast<size_t>(code)]);
  }
  return values;
}

int64_t UncompressedByteSize(const Column& column) {
  switch (column.type()) {
    case DataType::kInt64:
      return column.length() * static_cast<int64_t>(sizeof(int64_t));
    case DataType::kDouble:
      return column.length() * static_cast<int64_t>(sizeof(double));
    case DataType::kBool:
      return column.length();
    case DataType::kString: {
      int64_t bytes = 0;
      for (const auto& s : column.strings()) {
        bytes += static_cast<int64_t>(s.size());
      }
      return bytes;
    }
  }
  return 0;
}

int64_t CompressedByteSize(const Column& column) {
  switch (column.type()) {
    case DataType::kInt64: {
      const auto runs = RleEncode(column.ints());
      return static_cast<int64_t>(runs.size() * sizeof(RleRun));
    }
    case DataType::kBool: {
      std::vector<int64_t> widened(column.bools().begin(),
                                   column.bools().end());
      const auto runs = RleEncode(widened);
      return static_cast<int64_t>(runs.size() * sizeof(RleRun));
    }
    case DataType::kString:
      return DictionaryEncode(column.strings()).ByteSize();
    case DataType::kDouble:
      return UncompressedByteSize(column);
  }
  return 0;
}

}  // namespace vertexica
