/// \file csr_index.h
/// \brief CSR-style grouped edge index: O(1) per-vertex neighbor-row
/// slices over the (src, dst)-sorted edge table.
///
/// The edge loader keeps edges sorted by (src, dst) with an RLE source
/// column, so each vertex's out-edges already sit in one contiguous row
/// range — the CSR property, just stored relationally. This index
/// materializes that property once per edge snapshot: a hash map from
/// source id to its [begin, end) row slice, built straight from the RLE
/// runs when the key column is encoded (no decode) and from one grouping
/// pass otherwise. The frontier superstep path (vertexica/coordinator.cc)
/// uses it to gather exactly the active vertices' edge rows instead of
/// scanning the whole table.
///
/// Build is strict about its precondition: if the key column is not
/// nondecreasing (so some vertex's rows could be split across ranges),
/// Build returns nullptr and callers fall back to the dense full-scan
/// path — the index can cost a fallback, never correctness.

#ifndef VERTEXICA_STORAGE_CSR_INDEX_H_
#define VERTEXICA_STORAGE_CSR_INDEX_H_

#include <cstdint>
#include <memory>

#include "common/hash.h"
#include "storage/column.h"

namespace vertexica {

/// \brief Immutable per-source-vertex row-slice index over a grouped
/// (sorted) INT64 key column; shareable across threads once built.
class CsrIndex {
 public:
  /// \brief A contiguous row range [begin, end) of the indexed table.
  struct Slice {
    int64_t begin = 0;
    int64_t end = 0;
    int64_t length() const { return end - begin; }
  };

  /// \brief Builds the index over `keys` (must be INT64). Returns nullptr
  /// when the column is not nondecreasing — adjacent-run merging handles
  /// RLE encodings that split one value across runs. NULL keys (possible
  /// in principle, never produced by the edge loader) also fail the build.
  static std::shared_ptr<const CsrIndex> Build(const Column& keys);

  /// \brief The row slice of `key`; an empty slice when absent.
  Slice NeighborSlice(int64_t key) const {
    const Slice* s = slices_.Find(key);
    return s == nullptr ? Slice{} : *s;
  }

  int64_t num_keys() const { return num_keys_; }
  int64_t num_rows() const { return num_rows_; }

  /// \brief Deep structural audit against the column this index claims to
  /// describe (the VX_DCHECK tier; see docs/DEVELOPING.md). Re-derives the
  /// grouping from `keys` and verifies the slices are contiguous, cover
  /// every row exactly once in ascending key order, and that num_keys/
  /// num_rows match — i.e. the index still describes this edge snapshot and
  /// not a stale one. O(rows); call behind VX_DCHECK_OK.
  Status CheckInvariants(const Column& keys) const;

 private:
  CsrIndex() : slices_(0) {}

  Int64HashMap<Slice> slices_;
  int64_t num_keys_ = 0;
  int64_t num_rows_ = 0;
};

}  // namespace vertexica

#endif  // VERTEXICA_STORAGE_CSR_INDEX_H_
