#include "storage/partition.h"

#include "common/logging.h"

namespace vertexica {

std::vector<Table> HashPartition(const Table& table, int key_column,
                                 int num_partitions) {
  VX_CHECK(num_partitions > 0);
  VX_CHECK(table.column(key_column).type() == DataType::kInt64)
      << "HashPartition key must be INT64";

  std::vector<std::vector<int64_t>> buckets(
      static_cast<size_t>(num_partitions));
  const auto& keys = table.column(key_column).ints();
  for (int64_t i = 0; i < table.num_rows(); ++i) {
    buckets[static_cast<size_t>(
                PartitionOf(keys[static_cast<size_t>(i)], num_partitions))]
        .push_back(i);
  }
  std::vector<Table> out;
  out.reserve(static_cast<size_t>(num_partitions));
  for (const auto& idx : buckets) out.push_back(table.Take(idx));
  return out;
}

}  // namespace vertexica
