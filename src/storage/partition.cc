#include "storage/partition.h"

#include <atomic>
#include <cstdlib>
#include <utility>

#include "common/env_knob.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "storage/encoding.h"

namespace vertexica {

namespace {

// ------------------------------------------------------------ shards knob

// 0 = unset (resolve from env); otherwise the configured default.
std::atomic<int> g_default_shards{0};
thread_local int tl_shards_override = 0;  // 0 = no override

int EnvExecShards() {
  // Strict parsing (rejects "8abc") and range-clamping live in the shared
  // env-knob helper; cached once since the environment never changes.
  static const int env =
      static_cast<int>(EnvIntKnob("VERTEXICA_SHARDS", 1, 4096, 1));
  return env;
}

// ------------------------------------------------------------ the scatter

/// Row-index buckets of one scatter, plus — on the RLE fast path — the
/// per-bucket key columns as runs, so the gather can rebuild them without
/// the source key column ever being decoded.
struct ScatterPlan {
  std::vector<std::vector<int64_t>> indices;  // per bucket, ascending
  std::vector<std::vector<RleRun>> key_runs;  // filled iff have_key_runs
  bool have_key_runs = false;
};

/// Computes the bucket of every row of `keys` under `bucket_of` (a non-NULL
/// int64 -> bucket id map). This is the single implementation of the
/// scatter contract in partition.h: NULL keys to bucket 0 via the validity
/// bitmap, RLE keys decided run-at-a-time, input order preserved.
template <typename BucketOf>
ScatterPlan ScatterByKey(const Column& keys, int num_buckets,
                         const BucketOf& bucket_of) {
  ScatterPlan plan;
  plan.indices.resize(static_cast<size_t>(num_buckets));
  if (const auto* runs = keys.rle_runs()) {
    if (keys.null_count() == 0) {
      // Fully-valid RLE key: one bucket decision per run, and whole runs
      // append to the bucket's rebuilt key column.
      plan.key_runs.resize(static_cast<size_t>(num_buckets));
      plan.have_key_runs = true;
      int64_t row = 0;
      for (const RleRun& run : *runs) {
        const auto b = static_cast<size_t>(bucket_of(run.value));
        auto& idx = plan.indices[b];
        for (int64_t i = 0; i < run.length; ++i) idx.push_back(row + i);
        auto& out_runs = plan.key_runs[b];
        if (!out_runs.empty() && out_runs.back().value == run.value) {
          out_runs.back().length += run.length;
        } else {
          out_runs.push_back({run.value, run.length});
        }
        row += run.length;
      }
      return plan;
    }
    // Null-bearing RLE key: values still come from the runs (no decode);
    // validity is consulted per row.
    int64_t row = 0;
    for (const RleRun& run : *runs) {
      const auto vb = static_cast<size_t>(bucket_of(run.value));
      for (int64_t i = 0; i < run.length; ++i) {
        plan.indices[keys.IsNull(row + i) ? 0 : vb].push_back(row + i);
      }
      row += run.length;
    }
    return plan;
  }
  const auto& values = keys.ints();
  for (int64_t i = 0; i < keys.length(); ++i) {
    const auto b = keys.IsNull(i)
                       ? size_t{0}
                       : static_cast<size_t>(
                             bucket_of(values[static_cast<size_t>(i)]));
    plan.indices[b].push_back(i);
  }
  return plan;
}

/// Materializes bucket `b` of the plan. With rebuilt key runs available the
/// key column is constructed straight from them (already RLE-encoded, never
/// decoded); every other column gathers normally. Consumes the bucket's
/// run vector — each bucket is gathered exactly once.
Table GatherBucket(const Table& table, int key_column, ScatterPlan& plan,
                   size_t b) {
  const auto& idx = plan.indices[b];
  if (!plan.have_key_runs) return table.Take(idx);
  std::vector<Column> columns;
  columns.reserve(static_cast<size_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c == key_column) {
      columns.push_back(Column::FromRleRuns(std::move(plan.key_runs[b])));
    } else {
      columns.push_back(table.column(c).Take(idx));
    }
  }
  auto made = Table::Make(table.schema(), std::move(columns));
  VX_CHECK(made.ok()) << made.status().ToString();
  return std::move(made).MoveValueUnsafe();
}

Status ValidateKeyColumn(const Table& table, int key_column) {
  if (key_column < 0 || key_column >= table.num_columns()) {
    return Status::InvalidArgument("partition key column out of range");
  }
  if (table.column(key_column).type() != DataType::kInt64) {
    return Status::InvalidArgument("partition key must be INT64");
  }
  return Status::OK();
}

}  // namespace

int ExecShards() {
  if (tl_shards_override > 0) return tl_shards_override;
  const int configured = g_default_shards.load(std::memory_order_relaxed);
  if (configured > 0) return configured;
  return EnvExecShards();
}

void SetDefaultExecShards(int n) {
  g_default_shards.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

ScopedExecShards::ScopedExecShards(int n) : prev_(tl_shards_override) {
  if (n > 0) tl_shards_override = n;
}

ScopedExecShards::~ScopedExecShards() { tl_shards_override = prev_; }

std::vector<Table> HashPartition(const Table& table, int key_column,
                                 int num_partitions) {
  VX_CHECK(num_partitions > 0);
  VX_CHECK_OK(ValidateKeyColumn(table, key_column));
  const Column& keys = table.column(key_column);
  ScatterPlan plan =
      ScatterByKey(keys, num_partitions, [num_partitions](int64_t key) {
        return PartitionOf(key, num_partitions);
      });
  std::vector<Table> out;
  out.reserve(static_cast<size_t>(num_partitions));
  for (size_t b = 0; b < plan.indices.size(); ++b) {
    out.push_back(GatherBucket(table, key_column, plan, b));
  }
  return out;
}

Result<std::vector<Table>> ShardScatter(const Table& table, int key_column,
                                        const ShardingSpec& spec) {
  if (spec.num_shards < 1 || spec.base_partitions < 1 ||
      spec.num_shards > spec.base_partitions) {
    return Status::InvalidArgument("malformed ShardingSpec");
  }
  VX_RETURN_NOT_OK(ValidateKeyColumn(table, key_column));
  const Column& keys = table.column(key_column);
  ScatterPlan plan = ScatterByKey(
      keys, spec.num_shards,
      [&spec](int64_t key) { return spec.ShardOfKey(key); });
  std::vector<Table> out;
  out.reserve(static_cast<size_t>(spec.num_shards));
  for (size_t b = 0; b < plan.indices.size(); ++b) {
    Table shard = GatherBucket(table, key_column, plan, b);
    // A stable scatter keeps every shard a subsequence of the input, so
    // the input's declared order holds shard-locally — re-declare it
    // (Take/Make conservatively dropped it).
    if (!table.sort_order().empty()) {
      shard.SetSortOrder(table.sort_order());
    }
    out.push_back(std::move(shard));
  }
  return out;
}

Result<PartitionSet> PartitionSet::Build(const Table& table, int key_column,
                                         const ShardingSpec& spec) {
  VX_ASSIGN_OR_RETURN(std::vector<Table> shards,
                      ShardScatter(table, key_column, spec));
  PartitionSet set;
  set.spec_ = spec;
  set.key_column_ = key_column;
  set.shards_.reserve(shards.size());
  const EncodingMode mode = AmbientEncodingMode();
  for (Table& shard : shards) {
    // Retain the physical design per shard: the scatter already carried
    // the sort-order declaration over; encoding adds segments + zone maps
    // for the columns it encodes (a key column rebuilt from runs is
    // already RLE and keeps its segment).
    if (mode != EncodingMode::kOff) shard.EncodeColumns(mode);
    set.shards_.push_back(std::make_shared<const Table>(std::move(shard)));
  }
  // Self-audit the freshly built set (placement, per-shard structure): a
  // scatter bug caught here aborts at the source instead of surfacing as a
  // wrong answer supersteps later.
  VX_DCHECK_OK(set.CheckInvariants());
  return set;
}

int64_t PartitionSet::total_rows() const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->num_rows();
  return total;
}

void PartitionSet::ReplaceShard(int s, Table t) {
  shards_[static_cast<size_t>(s)] =
      std::make_shared<const Table>(std::move(t));
}

Status ShardingSpec::Validate() const {
  if (num_shards < 1 || base_partitions < 1 ||
      num_shards > base_partitions) {
    return Status::Internal(StringFormat(
        "ShardingSpec invariant violated: %d shards over %d base partitions",
        num_shards, base_partitions));
  }
  // ShardOfPartition must walk 0..num_shards-1 without skipping or going
  // backwards — contiguous monotone blocks, every shard non-empty.
  int prev = -1;
  for (int p = 0; p < base_partitions; ++p) {
    const int s = ShardOfPartition(p);
    if (s < prev || s > prev + 1 || s < 0 || s >= num_shards) {
      return Status::Internal(StringFormat(
          "ShardingSpec invariant violated: partition %d maps to shard %d "
          "after partition %d mapped to shard %d (not contiguous monotone "
          "blocks)",
          p, s, p - 1, prev));
    }
    prev = s;
  }
  if (prev != num_shards - 1) {
    return Status::Internal(StringFormat(
        "ShardingSpec invariant violated: last base partition maps to shard "
        "%d, leaving shards up to %d empty",
        prev, num_shards - 1));
  }
  return Status::OK();
}

Status PartitionSet::CheckInvariants() const {
  VX_RETURN_NOT_OK(spec_.Validate());
  if (static_cast<int>(shards_.size()) != spec_.num_shards) {
    return Status::Internal(StringFormat(
        "PartitionSet invariant violated: %zu resident shards for a %d-shard "
        "spec",
        shards_.size(), spec_.num_shards));
  }
  for (int s = 0; s < num_shards(); ++s) {
    const TablePtr& shard = shards_[static_cast<size_t>(s)];
    if (shard == nullptr) {
      return Status::Internal(StringFormat(
          "PartitionSet invariant violated: shard %d is null", s));
    }
    if (key_column_ < 0 || key_column_ >= shard->num_columns() ||
        shard->column(key_column_).type() != DataType::kInt64) {
      return Status::Internal(StringFormat(
          "PartitionSet invariant violated: key column %d invalid for shard "
          "%d",
          key_column_, s));
    }
    VX_RETURN_NOT_OK(shard->CheckInvariants());
    // Placement: every row must hash to the shard holding it (NULL keys to
    // shard 0) — the obligation ReplaceShard callers take on.
    const Column& keys = shard->column(key_column_);
    for (int64_t r = 0; r < keys.length(); ++r) {
      const int want =
          keys.IsNull(r) ? spec_.ShardOfNull() : spec_.ShardOfKey(keys.GetInt64(r));
      if (want != s) {
        return Status::Internal(StringFormat(
            "PartitionSet invariant violated: row %lld of shard %d carries a "
            "key owned by shard %d",
            static_cast<long long>(r), s, want));
      }
    }
  }
  return Status::OK();
}

}  // namespace vertexica
