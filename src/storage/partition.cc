#include "storage/partition.h"

#include <atomic>
#include <cstdlib>
#include <utility>

#include "common/env_knob.h"
#include "common/logging.h"
#include "storage/encoding.h"

namespace vertexica {

namespace {

// ------------------------------------------------------------ shards knob

// 0 = unset (resolve from env); otherwise the configured default.
std::atomic<int> g_default_shards{0};
thread_local int tl_shards_override = 0;  // 0 = no override

int EnvExecShards() {
  // Strict parsing (rejects "8abc") and range-clamping live in the shared
  // env-knob helper; cached once since the environment never changes.
  static const int env =
      static_cast<int>(EnvIntKnob("VERTEXICA_SHARDS", 1, 4096, 1));
  return env;
}

// ------------------------------------------------------------ the scatter

/// Row-index buckets of one scatter, plus — on the RLE fast path — the
/// per-bucket key columns as runs, so the gather can rebuild them without
/// the source key column ever being decoded.
struct ScatterPlan {
  std::vector<std::vector<int64_t>> indices;  // per bucket, ascending
  std::vector<std::vector<RleRun>> key_runs;  // filled iff have_key_runs
  bool have_key_runs = false;
};

/// Computes the bucket of every row of `keys` under `bucket_of` (a non-NULL
/// int64 -> bucket id map). This is the single implementation of the
/// scatter contract in partition.h: NULL keys to bucket 0 via the validity
/// bitmap, RLE keys decided run-at-a-time, input order preserved.
template <typename BucketOf>
ScatterPlan ScatterByKey(const Column& keys, int num_buckets,
                         const BucketOf& bucket_of) {
  ScatterPlan plan;
  plan.indices.resize(static_cast<size_t>(num_buckets));
  if (const auto* runs = keys.rle_runs()) {
    if (keys.null_count() == 0) {
      // Fully-valid RLE key: one bucket decision per run, and whole runs
      // append to the bucket's rebuilt key column.
      plan.key_runs.resize(static_cast<size_t>(num_buckets));
      plan.have_key_runs = true;
      int64_t row = 0;
      for (const RleRun& run : *runs) {
        const auto b = static_cast<size_t>(bucket_of(run.value));
        auto& idx = plan.indices[b];
        for (int64_t i = 0; i < run.length; ++i) idx.push_back(row + i);
        auto& out_runs = plan.key_runs[b];
        if (!out_runs.empty() && out_runs.back().value == run.value) {
          out_runs.back().length += run.length;
        } else {
          out_runs.push_back({run.value, run.length});
        }
        row += run.length;
      }
      return plan;
    }
    // Null-bearing RLE key: values still come from the runs (no decode);
    // validity is consulted per row.
    int64_t row = 0;
    for (const RleRun& run : *runs) {
      const auto vb = static_cast<size_t>(bucket_of(run.value));
      for (int64_t i = 0; i < run.length; ++i) {
        plan.indices[keys.IsNull(row + i) ? 0 : vb].push_back(row + i);
      }
      row += run.length;
    }
    return plan;
  }
  const auto& values = keys.ints();
  for (int64_t i = 0; i < keys.length(); ++i) {
    const auto b = keys.IsNull(i)
                       ? size_t{0}
                       : static_cast<size_t>(
                             bucket_of(values[static_cast<size_t>(i)]));
    plan.indices[b].push_back(i);
  }
  return plan;
}

/// Materializes bucket `b` of the plan. With rebuilt key runs available the
/// key column is constructed straight from them (already RLE-encoded, never
/// decoded); every other column gathers normally. Consumes the bucket's
/// run vector — each bucket is gathered exactly once.
Table GatherBucket(const Table& table, int key_column, ScatterPlan& plan,
                   size_t b) {
  const auto& idx = plan.indices[b];
  if (!plan.have_key_runs) return table.Take(idx);
  std::vector<Column> columns;
  columns.reserve(static_cast<size_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c == key_column) {
      columns.push_back(Column::FromRleRuns(std::move(plan.key_runs[b])));
    } else {
      columns.push_back(table.column(c).Take(idx));
    }
  }
  auto made = Table::Make(table.schema(), std::move(columns));
  VX_CHECK(made.ok()) << made.status().ToString();
  return std::move(made).MoveValueUnsafe();
}

Status ValidateKeyColumn(const Table& table, int key_column) {
  if (key_column < 0 || key_column >= table.num_columns()) {
    return Status::InvalidArgument("partition key column out of range");
  }
  if (table.column(key_column).type() != DataType::kInt64) {
    return Status::InvalidArgument("partition key must be INT64");
  }
  return Status::OK();
}

}  // namespace

int ExecShards() {
  if (tl_shards_override > 0) return tl_shards_override;
  const int configured = g_default_shards.load(std::memory_order_relaxed);
  if (configured > 0) return configured;
  return EnvExecShards();
}

void SetDefaultExecShards(int n) {
  g_default_shards.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

ScopedExecShards::ScopedExecShards(int n) : prev_(tl_shards_override) {
  if (n > 0) tl_shards_override = n;
}

ScopedExecShards::~ScopedExecShards() { tl_shards_override = prev_; }

std::vector<Table> HashPartition(const Table& table, int key_column,
                                 int num_partitions) {
  VX_CHECK(num_partitions > 0);
  VX_CHECK_OK(ValidateKeyColumn(table, key_column));
  const Column& keys = table.column(key_column);
  ScatterPlan plan =
      ScatterByKey(keys, num_partitions, [num_partitions](int64_t key) {
        return PartitionOf(key, num_partitions);
      });
  std::vector<Table> out;
  out.reserve(static_cast<size_t>(num_partitions));
  for (size_t b = 0; b < plan.indices.size(); ++b) {
    out.push_back(GatherBucket(table, key_column, plan, b));
  }
  return out;
}

Result<std::vector<Table>> ShardScatter(const Table& table, int key_column,
                                        const ShardingSpec& spec) {
  if (spec.num_shards < 1 || spec.base_partitions < 1 ||
      spec.num_shards > spec.base_partitions) {
    return Status::InvalidArgument("malformed ShardingSpec");
  }
  VX_RETURN_NOT_OK(ValidateKeyColumn(table, key_column));
  const Column& keys = table.column(key_column);
  ScatterPlan plan = ScatterByKey(
      keys, spec.num_shards,
      [&spec](int64_t key) { return spec.ShardOfKey(key); });
  std::vector<Table> out;
  out.reserve(static_cast<size_t>(spec.num_shards));
  for (size_t b = 0; b < plan.indices.size(); ++b) {
    Table shard = GatherBucket(table, key_column, plan, b);
    // A stable scatter keeps every shard a subsequence of the input, so
    // the input's declared order holds shard-locally — re-declare it
    // (Take/Make conservatively dropped it).
    if (!table.sort_order().empty()) {
      shard.SetSortOrder(table.sort_order());
    }
    out.push_back(std::move(shard));
  }
  return out;
}

Result<PartitionSet> PartitionSet::Build(const Table& table, int key_column,
                                         const ShardingSpec& spec) {
  VX_ASSIGN_OR_RETURN(std::vector<Table> shards,
                      ShardScatter(table, key_column, spec));
  PartitionSet set;
  set.spec_ = spec;
  set.key_column_ = key_column;
  set.shards_.reserve(shards.size());
  const EncodingMode mode = AmbientEncodingMode();
  for (Table& shard : shards) {
    // Retain the physical design per shard: the scatter already carried
    // the sort-order declaration over; encoding adds segments + zone maps
    // for the columns it encodes (a key column rebuilt from runs is
    // already RLE and keeps its segment).
    if (mode != EncodingMode::kOff) shard.EncodeColumns(mode);
    set.shards_.push_back(std::make_shared<const Table>(std::move(shard)));
  }
  return set;
}

int64_t PartitionSet::total_rows() const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->num_rows();
  return total;
}

void PartitionSet::ReplaceShard(int s, Table t) {
  shards_[static_cast<size_t>(s)] =
      std::make_shared<const Table>(std::move(t));
}

}  // namespace vertexica
