#include "storage/table.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace vertexica {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(static_cast<size_t>(schema_.num_fields()));
  for (int i = 0; i < schema_.num_fields(); ++i) {
    columns_.emplace_back(schema_.field(i).type);
  }
}

Result<Table> Table::Make(Schema schema, std::vector<Column> columns) {
  if (static_cast<int>(columns.size()) != schema.num_fields()) {
    return Status::InvalidArgument(StringFormat(
        "Table::Make: %d columns for schema with %d fields",
        static_cast<int>(columns.size()), schema.num_fields()));
  }
  int64_t rows = columns.empty() ? 0 : columns[0].length();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].type() != schema.field(static_cast<int>(i)).type) {
      return Status::TypeError(StringFormat(
          "Table::Make: column %zu is %s but schema says %s", i,
          DataTypeName(columns[i].type()),
          DataTypeName(schema.field(static_cast<int>(i)).type)));
    }
    if (columns[i].length() != rows) {
      return Status::InvalidArgument("Table::Make: ragged column lengths");
    }
  }
  Table t;
  t.schema_ = std::move(schema);
  t.columns_ = std::move(columns);
  t.num_rows_ = rows;
  return t;
}

const Column* Table::ColumnByName(const std::string& name) const {
  const int idx = schema_.FieldIndex(name);
  return idx < 0 ? nullptr : &columns_[static_cast<size_t>(idx)];
}

Result<int> Table::ColumnIndex(const std::string& name) const {
  const int idx = schema_.FieldIndex(name);
  if (idx < 0) {
    return Status::InvalidArgument("No column named '" + name + "' in " +
                                   schema_.ToString());
  }
  return idx;
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (static_cast<int>(row.size()) != num_columns()) {
    return Status::InvalidArgument(
        StringFormat("AppendRow: %d values for %d columns",
                     static_cast<int>(row.size()), num_columns()));
  }
  sort_order_.clear();  // an appended row may land out of order
  for (size_t i = 0; i < row.size(); ++i) {
    columns_[i].AppendValue(row[i]);
  }
  ++num_rows_;
  return Status::OK();
}

Status Table::Append(const Table& other) {
  if (!schema_.EqualTypes(other.schema_)) {
    return Status::TypeError("Append: incompatible schemas " +
                             schema_.ToString() + " vs " +
                             other.schema_.ToString());
  }
  if (other.num_rows_ > 0) sort_order_.clear();  // concatenation reorders
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].AppendColumn(other.columns_[i]);
  }
  num_rows_ += other.num_rows_;
  return Status::OK();
}

Table Table::Take(const std::vector<int64_t>& indices) const {
  Table out;
  out.schema_ = schema_;
  out.columns_.reserve(columns_.size());
  for (const auto& c : columns_) out.columns_.push_back(c.Take(indices));
  out.num_rows_ = static_cast<int64_t>(indices.size());
  return out;
}

Table Table::Slice(int64_t offset, int64_t count) const {
  Table out;
  out.schema_ = schema_;
  out.columns_.reserve(columns_.size());
  for (const auto& c : columns_) out.columns_.push_back(c.Slice(offset, count));
  out.num_rows_ = count;
  out.sort_order_ = sort_order_;  // a contiguous range of sorted is sorted
  return out;
}

Table Table::SelectColumns(const std::vector<int>& col_indices) const {
  Table out;
  for (int idx : col_indices) {
    out.schema_.AddField(schema_.field(idx));
    out.columns_.push_back(columns_[static_cast<size_t>(idx)]);
  }
  out.num_rows_ = num_rows_;
  // The longest prefix of the declared order whose columns survive the
  // projection still describes the row order (rows themselves are
  // untouched); the first dropped key ends what we can claim.
  for (const SortKey& k : sort_order_) {
    auto it = std::find(col_indices.begin(), col_indices.end(), k.column);
    if (it == col_indices.end()) break;
    out.sort_order_.push_back(
        SortKey{static_cast<int>(it - col_indices.begin()), k.ascending});
  }
  return out;
}

Table Table::RenameColumns(const std::vector<std::string>& names) const {
  Table out = *this;
  out.schema_ = schema_.WithNames(names);
  return out;
}

int Table::EncodeColumns(EncodingMode mode) {
  int encoded = 0;
  for (auto& c : columns_) {
    if (c.Encode(mode)) ++encoded;
  }
  return encoded;
}

void Table::DecodeColumns() {
  for (auto& c : columns_) c.Decode();
}

void Table::BuildZoneMaps() {
  for (auto& c : columns_) c.BuildZoneMap();
}

void Table::SetSortOrder(std::vector<SortKey> keys) {
  for (const SortKey& k : keys) {
    VX_CHECK(k.column >= 0 && k.column < num_columns())
        << "SetSortOrder: key column " << k.column << " outside schema "
        << schema_.ToString();
  }
  sort_order_ = std::move(keys);
  if (!sort_order_.empty() && sort_order_[0].ascending) {
    // The leading ascending key's column is itself globally nondecreasing.
    columns_[static_cast<size_t>(sort_order_[0].column)].set_sorted_ascending(
        true);
  }
}

bool Table::OrderCoversKeys(const std::vector<int>& key_cols) const {
  if (key_cols.empty() || key_cols.size() > sort_order_.size()) return false;
  for (size_t i = 0; i < key_cols.size(); ++i) {
    if (sort_order_[i].column != key_cols[i] || !sort_order_[i].ascending) {
      return false;
    }
  }
  return true;
}

std::vector<Value> Table::GetRow(int64_t i) const {
  std::vector<Value> row;
  row.reserve(columns_.size());
  for (const auto& c : columns_) row.push_back(c.GetValue(i));
  return row;
}

bool Table::Equals(const Table& other) const {
  if (!schema_.Equals(other.schema_) || num_rows_ != other.num_rows_) {
    return false;
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!columns_[i].Equals(other.columns_[i])) return false;
  }
  return true;
}

std::string Table::ToString(int64_t max_rows) const {
  std::ostringstream os;
  os << schema_.ToString() << " rows=" << num_rows_ << "\n";
  const int64_t n = std::min(num_rows_, max_rows);
  for (int64_t r = 0; r < n; ++r) {
    for (int c = 0; c < num_columns(); ++c) {
      if (c > 0) os << " | ";
      os << columns_[static_cast<size_t>(c)].GetValue(r).ToString();
    }
    os << "\n";
  }
  if (n < num_rows_) os << "... (" << (num_rows_ - n) << " more)\n";
  return os.str();
}

bool Table::IsConsistent() const {
  for (const auto& c : columns_) {
    if (c.length() != num_rows_) return false;
  }
  return true;
}

Status Table::CheckInvariants() const {
  if (static_cast<int>(columns_.size()) != schema_.num_fields()) {
    return Status::Internal(StringFormat(
        "Table invariant violated: %zu columns for schema with %d fields",
        columns_.size(), schema_.num_fields()));
  }
  for (int i = 0; i < num_columns(); ++i) {
    const Column& col = columns_[static_cast<size_t>(i)];
    if (col.type() != schema_.field(i).type) {
      return Status::Internal(StringFormat(
          "Table invariant violated: column %d (%s) is %s but the schema "
          "declares %s",
          i, schema_.field(i).name.c_str(), DataTypeName(col.type()),
          DataTypeName(schema_.field(i).type)));
    }
    if (col.length() != num_rows_) {
      return Status::Internal(StringFormat(
          "Table invariant violated: column %d (%s) has %lld rows but the "
          "table has %lld",
          i, schema_.field(i).name.c_str(),
          static_cast<long long>(col.length()),
          static_cast<long long>(num_rows_)));
    }
    VX_RETURN_NOT_OK(col.CheckInvariants());
  }
  for (const SortKey& k : sort_order_) {
    if (k.column < 0 || k.column >= num_columns()) {
      return Status::Internal(StringFormat(
          "Table invariant violated: sort key names column %d outside the "
          "%d-field schema",
          k.column, num_columns()));
    }
  }
  if (!sort_order_.empty()) {
    // Verify the declared lexicographic order row-by-row: rows must be
    // nondecreasing by keys[0], ties broken by keys[1], and so on.
    for (int64_t r = 1; r < num_rows_; ++r) {
      for (const SortKey& k : sort_order_) {
        const Column& col = columns_[static_cast<size_t>(k.column)];
        int cmp = col.CompareRows(r - 1, col, r);
        if (!k.ascending) cmp = -cmp;
        if (cmp < 0) break;  // strictly ordered on this key; later keys free
        if (cmp > 0) {
          return Status::Internal(StringFormat(
              "Table invariant violated: declared sort order broken between "
              "rows %lld and %lld on key column %d (%s)",
              static_cast<long long>(r - 1), static_cast<long long>(r),
              k.column, schema_.field(k.column).name.c_str()));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace vertexica
