/// \file csv.h
/// \brief CSV import/export for tables.
///
/// §3.4 stresses that "in many cases, the graphs may be implicit in the
/// relational data and need to be extracted in the first place" — raw data
/// arrives as relational files. This module loads such files into engine
/// tables (with header + type inference or an explicit schema) and writes
/// results back out.

#ifndef VERTEXICA_STORAGE_CSV_H_
#define VERTEXICA_STORAGE_CSV_H_

#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace vertexica {

/// \brief CSV parsing options.
struct CsvOptions {
  char delimiter = ',';
  /// First non-empty line is a header of column names.
  bool has_header = true;
  /// Literal text representing SQL NULL (empty fields are also NULL).
  std::string null_token = "";
};

/// \brief Parses CSV text into a table.
///
/// Column types are inferred from the data: a column is INT64 if every
/// non-null field parses as an integer, else DOUBLE if every field parses
/// as a number, else BOOL if every field is true/false, else STRING.
/// Without a header, columns are named c0, c1, ....
Result<Table> ParseCsv(const std::string& text, const CsvOptions& options = {});

/// \brief Like ParseCsv but coerces fields to `schema` (and validates the
/// column count; header names override schema names when present).
Result<Table> ParseCsvWithSchema(const std::string& text, const Schema& schema,
                                 const CsvOptions& options = {});

/// \brief Reads a CSV file.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = {});

/// \brief Renders a table as CSV text (header + rows; NULL as empty field;
/// strings quoted only when they contain the delimiter, a quote or a
/// newline).
std::string ToCsv(const Table& table, const CsvOptions& options = {});

/// \brief Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace vertexica

#endif  // VERTEXICA_STORAGE_CSV_H_
