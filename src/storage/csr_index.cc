#include "storage/csr_index.h"

#include <vector>

namespace vertexica {

std::shared_ptr<const CsrIndex> CsrIndex::Build(const Column& keys) {
  if (keys.type() != DataType::kInt64 || keys.null_count() > 0) {
    return nullptr;
  }
  auto index = std::shared_ptr<CsrIndex>(new CsrIndex());
  index->num_rows_ = keys.length();

  if (const std::vector<RleRun>* runs = keys.rle_runs()) {
    // Straight from the encoded representation — no decode. Adjacent runs
    // may legally share a value (Column::FromRleRuns), so merge them into
    // one slice; any later run with a smaller-or-equal value means the
    // column is not grouped into contiguous ranges.
    int64_t row = 0;
    bool have_prev = false;
    int64_t prev_key = 0;
    int64_t slice_begin = 0;
    for (const RleRun& run : *runs) {
      if (have_prev && run.value < prev_key) return nullptr;
      if (!have_prev || run.value != prev_key) {
        if (have_prev) {
          index->slices_.GetOrInsert(prev_key, {slice_begin, row});
          ++index->num_keys_;
        }
        prev_key = run.value;
        slice_begin = row;
        have_prev = true;
      }
      row += run.length;
    }
    if (have_prev) {
      index->slices_.GetOrInsert(prev_key, {slice_begin, row});
      ++index->num_keys_;
    }
    return index;
  }

  const std::vector<int64_t>& values = keys.ints();
  const int64_t n = static_cast<int64_t>(values.size());
  int64_t slice_begin = 0;
  for (int64_t i = 1; i <= n; ++i) {
    if (i == n || values[static_cast<size_t>(i)] !=
                      values[static_cast<size_t>(i - 1)]) {
      if (i < n && values[static_cast<size_t>(i)] <
                       values[static_cast<size_t>(i - 1)]) {
        return nullptr;  // not nondecreasing: groups may be split
      }
      index->slices_.GetOrInsert(values[static_cast<size_t>(i - 1)],
                                 {slice_begin, i});
      ++index->num_keys_;
      slice_begin = i;
    }
  }
  return index;
}

}  // namespace vertexica
