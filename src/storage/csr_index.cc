#include "storage/csr_index.h"

#include <string>
#include <vector>

#include "common/string_util.h"

namespace vertexica {

std::shared_ptr<const CsrIndex> CsrIndex::Build(const Column& keys) {
  if (keys.type() != DataType::kInt64 || keys.null_count() > 0) {
    return nullptr;
  }
  auto index = std::shared_ptr<CsrIndex>(new CsrIndex());
  index->num_rows_ = keys.length();

  if (const std::vector<RleRun>* runs = keys.rle_runs()) {
    // Straight from the encoded representation — no decode. Adjacent runs
    // may legally share a value (Column::FromRleRuns), so merge them into
    // one slice; any later run with a smaller-or-equal value means the
    // column is not grouped into contiguous ranges.
    int64_t row = 0;
    bool have_prev = false;
    int64_t prev_key = 0;
    int64_t slice_begin = 0;
    for (const RleRun& run : *runs) {
      if (have_prev && run.value < prev_key) return nullptr;
      if (!have_prev || run.value != prev_key) {
        if (have_prev) {
          index->slices_.GetOrInsert(prev_key, {slice_begin, row});
          ++index->num_keys_;
        }
        prev_key = run.value;
        slice_begin = row;
        have_prev = true;
      }
      row += run.length;
    }
    if (have_prev) {
      index->slices_.GetOrInsert(prev_key, {slice_begin, row});
      ++index->num_keys_;
    }
    return index;
  }

  const std::vector<int64_t>& values = keys.ints();
  const int64_t n = static_cast<int64_t>(values.size());
  int64_t slice_begin = 0;
  for (int64_t i = 1; i <= n; ++i) {
    if (i == n || values[static_cast<size_t>(i)] !=
                      values[static_cast<size_t>(i - 1)]) {
      if (i < n && values[static_cast<size_t>(i)] <
                       values[static_cast<size_t>(i - 1)]) {
        return nullptr;  // not nondecreasing: groups may be split
      }
      index->slices_.GetOrInsert(values[static_cast<size_t>(i - 1)],
                                 {slice_begin, i});
      ++index->num_keys_;
      slice_begin = i;
    }
  }
  return index;
}

Status CsrIndex::CheckInvariants(const Column& keys) const {
  const auto fail = [](std::string msg) {
    return Status::Internal("CsrIndex invariant violated: " + std::move(msg));
  };
  if (keys.type() != DataType::kInt64) {
    return fail(StringFormat("audited against a %s key column",
                             DataTypeName(keys.type())));
  }
  if (keys.null_count() > 0) {
    return fail("key column holds NULLs (Build would have refused it)");
  }
  if (num_rows_ != keys.length()) {
    return fail(StringFormat(
        "index covers %lld rows but the key column has %lld (stale index?)",
        static_cast<long long>(num_rows_),
        static_cast<long long>(keys.length())));
  }
  if (num_keys_ != static_cast<int64_t>(slices_.size())) {
    return fail(StringFormat(
        "num_keys says %lld but the map holds %zu slices",
        static_cast<long long>(num_keys_), slices_.size()));
  }
  // Re-derive the grouping: walk the (required nondecreasing) key column
  // and demand the index maps each distinct key to exactly its row range.
  int64_t derived_keys = 0;
  int64_t slice_begin = 0;
  for (int64_t i = 1; i <= num_rows_; ++i) {
    if (i < num_rows_ && keys.GetInt64(i) == keys.GetInt64(i - 1)) continue;
    const int64_t key = keys.GetInt64(i - 1);
    if (i < num_rows_ && keys.GetInt64(i) < key) {
      return fail(StringFormat(
          "key column decreases at row %lld (not grouped; Build would have "
          "refused it)",
          static_cast<long long>(i)));
    }
    const Slice got = NeighborSlice(key);
    if (got.begin != slice_begin || got.end != i) {
      return fail(StringFormat(
          "key %lld maps to slice [%lld, %lld) but its rows span "
          "[%lld, %lld)",
          static_cast<long long>(key), static_cast<long long>(got.begin),
          static_cast<long long>(got.end),
          static_cast<long long>(slice_begin), static_cast<long long>(i)));
    }
    ++derived_keys;
    slice_begin = i;
  }
  if (derived_keys != num_keys_) {
    return fail(StringFormat(
        "column holds %lld distinct keys but the index maps %lld",
        static_cast<long long>(derived_keys),
        static_cast<long long>(num_keys_)));
  }
  return Status::OK();
}

}  // namespace vertexica
