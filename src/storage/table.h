/// \file table.h
/// \brief In-memory columnar table: the engine's relation representation.

#ifndef VERTEXICA_STORAGE_TABLE_H_
#define VERTEXICA_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/column.h"
#include "storage/schema.h"

namespace vertexica {

/// \brief One sort key: a column index and a direction. The unit of both
/// table sorting (storage/sort.h) and the declared sort-order property
/// below.
struct SortKey {
  int column;
  bool ascending = true;
};

/// \brief A columnar relation: a schema plus one column per field.
///
/// Tables are value types (copyable, movable); operators produce new tables
/// rather than mutating inputs, matching the paper's "replace instead of
/// update" philosophy (§2.3). All columns always have identical length.
class Table {
 public:
  Table() = default;

  /// \brief Empty table with the given schema.
  explicit Table(Schema schema);

  /// \brief Assembles a table; fails if column count/types/lengths disagree
  /// with the schema.
  static Result<Table> Make(Schema schema, std::vector<Column> columns);

  const Schema& schema() const { return schema_; }
  int num_columns() const { return schema_.num_fields(); }
  int64_t num_rows() const { return num_rows_; }

  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  Column* mutable_column(int i) {
    // The caller may mutate arbitrarily, so the declared sort order cannot
    // be assumed to survive; callers that preserve it re-declare it.
    sort_order_.clear();
    return &columns_[static_cast<size_t>(i)];
  }

  /// \brief Column by field name; nullptr when absent.
  const Column* ColumnByName(const std::string& name) const;

  /// \brief Index of field `name`, or InvalidArgument.
  Result<int> ColumnIndex(const std::string& name) const;

  /// \brief Appends one row given as per-field values.
  Status AppendRow(const std::vector<Value>& row);

  /// \brief Appends all rows of `other`; schemas must have equal types.
  Status Append(const Table& other);

  /// \brief Gather rows at `indices` (any order, duplicates allowed).
  Table Take(const std::vector<int64_t>& indices) const;

  /// \brief Contiguous row range [offset, offset+count).
  Table Slice(int64_t offset, int64_t count) const;

  /// \brief Projection onto the given column indices (relational π).
  Table SelectColumns(const std::vector<int>& col_indices) const;

  /// \brief Same data, renamed columns (used to build union common schemas).
  Table RenameColumns(const std::vector<std::string>& names) const;

  /// \name Segment encoding (storage/encoding.h)
  /// Value-neutral physical-representation switches; readers see identical
  /// data before and after.
  /// @{
  /// \brief Encodes every eligible column under `mode` (RLE for INT64/BOOL,
  /// dictionary for STRING; kAuto only when smaller). Builds zone maps as a
  /// side effect. Returns the number of columns now encoded.
  int EncodeColumns(EncodingMode mode = EncodingMode::kAuto);
  /// \brief Reverts every column to the plain representation.
  void DecodeColumns();
  /// \brief Builds zone maps on every column (without encoding anything),
  /// enabling zone-map scan pruning on this table.
  void BuildZoneMaps();
  /// @}

  /// \name Sort-order property (order-aware execution)
  ///
  /// A non-empty order declares that rows are lexicographically
  /// nondecreasing by `keys[0]`, then `keys[1]`, ... under the
  /// Column::CompareRows total order (NULLs first, NaN last). Producers
  /// that guarantee the order declare it (SortTable, the sorted edge
  /// loader, merge-join outputs); any mutation drops it conservatively,
  /// exactly like the zone map. Consumers (the order-aware join path,
  /// exec/merge_join.h) treat the declaration as trusted physical-design
  /// metadata — the same contract as zone maps — so a false declaration
  /// is a producer bug, not a consumer hazard.
  /// @{
  const std::vector<SortKey>& sort_order() const { return sort_order_; }
  /// \brief Declares the order. Also marks the leading key's column
  /// sorted-ascending (Column::sorted_ascending) when applicable.
  /// Key indices must be valid for this schema.
  void SetSortOrder(std::vector<SortKey> keys);
  void ClearSortOrder() { sort_order_.clear(); }
  /// \brief True when sort_order() covers `key_cols`, in sequence and all
  /// ascending — the precondition for merge-joining on those columns.
  bool OrderCoversKeys(const std::vector<int>& key_cols) const;
  /// @}

  /// \brief One row as Values.
  std::vector<Value> GetRow(int64_t i) const;

  /// \brief Deep equality: schema + data.
  bool Equals(const Table& other) const;

  /// \brief Debug/console rendering of up to `max_rows` rows.
  std::string ToString(int64_t max_rows = 20) const;

  /// \brief Sum of rows across columns — used by tests as a sanity invariant.
  bool IsConsistent() const;

  /// \brief Deep structural audit (the VX_DCHECK tier; see
  /// docs/DEVELOPING.md). Verifies that the schema and the column vector
  /// agree in count and type, that every column has `num_rows()` rows and
  /// itself passes Column::CheckInvariants, that every declared sort key
  /// names a valid column, and that the declared lexicographic order
  /// actually holds row-by-row under the Column::CompareRows total order —
  /// the "trusted physical-design metadata" contract that merge joins and
  /// zone-map pruning lean on. O(rows × columns); call behind VX_DCHECK_OK.
  Status CheckInvariants() const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  int64_t num_rows_ = 0;
  /// Declared sort order; empty = unknown/none. Dropped on mutation.
  std::vector<SortKey> sort_order_;
};

}  // namespace vertexica

#endif  // VERTEXICA_STORAGE_TABLE_H_
