/// \file encoding.h
/// \brief Column segment encodings (RLE, dictionary), the ambient encoding
/// policy knob, and per-segment zone maps.
///
/// Vertexica "sits on top of an industry strength column-oriented database
/// system"; RLE and dictionary encoding are the two workhorse encodings of
/// such systems (the sorted edge table's source ids RLE-compress; the §4
/// metadata's low-cardinality and zipfian attributes dictionary-compress).
/// This header holds the storage-layer primitives shared by `Column` (which
/// stores encoded segments), `compression.{h,cc}` (footprint accounting)
/// and the exec layer (zone-map scan pruning). It deliberately depends only
/// on Value/DataType so Column can include it without cycles.

#ifndef VERTEXICA_STORAGE_ENCODING_H_
#define VERTEXICA_STORAGE_ENCODING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/data_type.h"
#include "storage/value.h"

namespace vertexica {

/// \brief One RLE run: `length` repetitions of `value`.
struct RleRun {
  int64_t value;
  int64_t length;
};

/// \brief Run-length encodes an int64 sequence.
std::vector<RleRun> RleEncode(const std::vector<int64_t>& values);

/// \brief Inverse of RleEncode.
std::vector<int64_t> RleDecode(const std::vector<RleRun>& runs);

/// \brief Dictionary-encoded string vector: distinct values (in first-
/// appearance order) plus one code per row.
struct DictEncoded {
  std::vector<std::string> dictionary;
  std::vector<int32_t> codes;

  /// \brief Approximate encoded footprint in bytes: codes, dictionary
  /// characters, and a `sizeof(std::string)` header per dictionary entry.
  int64_t ByteSize() const;
};

/// \brief Dictionary-encodes a string sequence.
DictEncoded DictionaryEncode(const std::vector<std::string>& values);

/// \brief Inverse of DictionaryEncode.
std::vector<std::string> DictionaryDecode(const DictEncoded& encoded);

/// \brief Physical representation of a column's value vector.
enum class ColumnEncoding {
  kPlain,  ///< decoded typed vector
  kRle,    ///< run-length (INT64, BOOL)
  kDict,   ///< dictionary (STRING)
};

const char* ColumnEncodingName(ColumnEncoding e);

/// \name The ambient encoding policy knob
///
/// Mirrors the `threads` knob (exec/parallel.h): a thread-local scoped
/// override, else a process default, else the VERTEXICA_ENCODING
/// environment variable ("off", "auto"/"on"=auto, "force"), else kAuto.
/// The storage-owning layers (graph_tables, coordinator, Engine requests)
/// consult it before encoding; encode/decode never changes query results,
/// only the physical representation.
/// @{

enum class EncodingMode {
  kAuto,   ///< encode a column only when the encoded footprint is smaller
  kOff,    ///< never encode (columns stay plain)
  kForce,  ///< encode every eligible column regardless of footprint
};

const char* EncodingModeName(EncodingMode m);

/// \brief Effective mode for the calling thread (innermost scoped override,
/// else process default, else VERTEXICA_ENCODING env, else kAuto).
EncodingMode AmbientEncodingMode();

/// \brief Sets the process-wide default; kAuto is the unset sentinel and
/// restores automatic resolution from the environment (use
/// ScopedEncodingMode to pin kAuto over a non-auto environment).
void SetDefaultEncodingMode(EncodingMode m);

/// \brief RAII thread-local override (how RunRequest::encoding reaches the
/// storage layer).
class ScopedEncodingMode {
 public:
  explicit ScopedEncodingMode(EncodingMode m);
  ~ScopedEncodingMode();
  ScopedEncodingMode(const ScopedEncodingMode&) = delete;
  ScopedEncodingMode& operator=(const ScopedEncodingMode&) = delete;

 private:
  bool active_;
  EncodingMode prev_;
  bool prev_active_;
};

/// \brief Parses "off"/"auto"/"on"/"force" (case-insensitive); defaults to
/// kAuto for anything unrecognized.
EncodingMode ParseEncodingMode(const std::string& text);
/// @}

/// \name Zone maps
///
/// Per-column min/max/null-count statistics over fixed-size row ranges
/// ("zones"). A scan consults them to prove that no row of a morsel can
/// satisfy a pushed-down comparison predicate and skips the morsel without
/// touching (or decoding) its values. The may-match logic is deliberately
/// conservative and mirrors `Column::CompareRows` semantics exactly —
/// including the double total order in which NaN sorts after every number
/// and compares equal to itself — so pruning can never change results.
/// @{

/// \brief Rows per zone. Fixed (not derived from morsel size or thread
/// count) so zone boundaries are reproducible; a morsel check combines the
/// zones overlapping its row range.
inline constexpr int64_t kZoneRows = 4096;

/// \brief Comparison operators a zone map understands (the pushdown subset
/// of BinaryOp, restated here so storage does not depend on expr/).
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

/// \brief Statistics of one zone (rows [row_begin, row_end)).
struct ZoneStats {
  int64_t row_begin = 0;
  int64_t row_end = 0;
  int64_t null_count = 0;
  bool has_value = false;  ///< any non-null row
  /// kDouble only: any non-null NaN (NaN is excluded from min_d/max_d and
  /// sorts after every number in the CompareRows total order).
  bool has_nan = false;
  bool has_finite = false;  ///< kDouble: any non-null non-NaN row
  int64_t min_i = 0;        ///< kInt64 / kBool (0 or 1)
  int64_t max_i = 0;
  double min_d = 0.0;  ///< kDouble, over non-NaN values
  double max_d = 0.0;
  std::string min_s;  ///< kString
  std::string max_s;
};

/// \brief A column's zone map: one ZoneStats per kZoneRows rows.
class ZoneMapIndex {
 public:
  ZoneMapIndex(DataType type, std::vector<ZoneStats> zones)
      : type_(type), zones_(std::move(zones)) {}

  DataType type() const { return type_; }
  const std::vector<ZoneStats>& zones() const { return zones_; }

  /// \brief Could any row of `zone` satisfy `value_at_row <op> literal`?
  /// NULL rows never satisfy a comparison (SQL), so an all-null zone is
  /// always prunable. Returns true (may match) whenever the literal's type
  /// does not exactly match the column type — mixed-type comparisons are
  /// not pruned.
  bool ZoneMayMatch(const ZoneStats& zone, CompareOp op,
                    const Value& literal) const;

  /// \brief Conservative check over rows [row_begin, row_end): false only
  /// when *no* zone overlapping the range may match.
  bool RangeMayMatch(CompareOp op, const Value& literal, int64_t row_begin,
                     int64_t row_end) const;

 private:
  DataType type_;
  std::vector<ZoneStats> zones_;
};

/// \brief One pushed-down comparison `column <op> literal`, the unit the
/// scan layer prunes with (extracted from expression trees by
/// `ExtractPushdownPredicates` in exec/filter.h).
struct ColumnPredicate {
  std::string column;
  CompareOp op;
  Value literal;
};
/// @}

/// \brief The storage total order for doubles: NaN sorts after every number
/// and compares equal to itself (a strict weak order, unlike raw `<`).
/// The single definition shared by Column::CompareRows, the filter kernels
/// and the zone-map logic — these three must agree exactly or pruning
/// could change results.
int TotalOrderCompareDoubles(double a, double b);

}  // namespace vertexica

#endif  // VERTEXICA_STORAGE_ENCODING_H_
