/// \file bitvector.h
/// \brief Word-packed bitvector: the frontier representation of the
/// active-vertex superstep path (vertexica/coordinator.cc).
///
/// One bit per vertex row, 64 rows per machine word, so deriving and
/// holding the active set costs V/8 bytes — negligible next to the vertex
/// table it indexes. Supports the operations the frontier path needs: set/
/// test, popcount, ascending set-bit iteration (the frontier gather order),
/// and word-wise AND/OR for combining activity sources.

#ifndef VERTEXICA_STORAGE_BITVECTOR_H_
#define VERTEXICA_STORAGE_BITVECTOR_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/status.h"

namespace vertexica {

/// \brief A fixed-size bitvector packed into 64-bit words, all bits
/// initially zero. Bits past `size()` in the last word stay zero (every
/// mutator preserves this), so the word-wise operations never need a tail
/// special case.
class Bitvector {
 public:
  Bitvector() = default;
  explicit Bitvector(int64_t size)
      : size_(size), words_(static_cast<size_t>((size + 63) / 64), 0) {}

  int64_t size() const { return size_; }

  void Set(int64_t i) {
    VX_DCHECK(i >= 0 && i < size_);
    words_[static_cast<size_t>(i >> 6)] |= uint64_t{1} << (i & 63);
  }

  void Clear(int64_t i) {
    VX_DCHECK(i >= 0 && i < size_);
    words_[static_cast<size_t>(i >> 6)] &= ~(uint64_t{1} << (i & 63));
  }

  bool Test(int64_t i) const {
    VX_DCHECK(i >= 0 && i < size_);
    return (words_[static_cast<size_t>(i >> 6)] >> (i & 63)) & 1;
  }

  /// \brief Number of set bits.
  int64_t CountOnes() const;

  /// \brief Word-wise intersection with `other` (sizes must match).
  void And(const Bitvector& other);

  /// \brief Word-wise union with `other` (sizes must match).
  void Or(const Bitvector& other);

  /// \brief Calls `fn(index)` for every set bit, in ascending index order —
  /// the order the frontier gathers restrict tables in, so restricted row
  /// sequences keep the source table's relative row order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(static_cast<int64_t>(w * 64 + static_cast<size_t>(bit)));
        word &= word - 1;  // clear lowest set bit
      }
    }
  }

  /// \brief The set-bit indices as a vector, ascending.
  std::vector<int64_t> SetIndices() const;

  /// \brief Deep structural audit (the VX_DCHECK tier; see
  /// docs/DEVELOPING.md): the word vector holds exactly ceil(size/64)
  /// words and every bit past `size()` in the last word is zero — the
  /// tail-hygiene contract the word-wise operations (And/Or/CountOnes)
  /// rely on to skip tail special-casing.
  Status CheckInvariants() const;

 private:
  /// Test-only backdoor for the negative invariant tests.
  friend struct BitvectorTestAccess;
  int64_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace vertexica

#endif  // VERTEXICA_STORAGE_BITVECTOR_H_
