/// \file schema.h
/// \brief Field and Schema descriptions of relational tables.

#ifndef VERTEXICA_STORAGE_SCHEMA_H_
#define VERTEXICA_STORAGE_SCHEMA_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "storage/data_type.h"

namespace vertexica {

/// \brief A named, typed column slot in a schema.
struct Field {
  std::string name;
  DataType type;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief Ordered list of fields describing a table's columns.
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<Field> fields) : fields_(fields) {}
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }

  void AddField(Field f) { fields_.push_back(std::move(f)); }

  /// \brief Index of the field named `name`, or -1 if absent.
  int FieldIndex(const std::string& name) const;

  bool HasField(const std::string& name) const {
    return FieldIndex(name) >= 0;
  }

  /// \brief Structural equality (names and types, in order).
  bool Equals(const Schema& other) const { return fields_ == other.fields_; }

  /// \brief Type-only equality; used to validate UNION ALL inputs, which may
  /// rename columns to a common schema (§2.3 "Table Unions").
  bool EqualTypes(const Schema& other) const;

  /// \brief Schema with the same types but the given names.
  Schema WithNames(const std::vector<std::string>& names) const;

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace vertexica

#endif  // VERTEXICA_STORAGE_SCHEMA_H_
