/// \file compression.h
/// \brief Column-store compression primitives: run-length and dictionary
/// encoding.
///
/// Vertexica "sits on top of an industry strength column-oriented database
/// system"; RLE and dictionary encoding are the two workhorse encodings of
/// such systems (sorted vertex ids RLE-compress; the §4 metadata's
/// low-cardinality and zipfian attributes dictionary-compress). These
/// utilities are used for storage-footprint accounting and exercised by
/// property tests.

#ifndef VERTEXICA_STORAGE_COMPRESSION_H_
#define VERTEXICA_STORAGE_COMPRESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/column.h"

namespace vertexica {

/// \brief One RLE run: `length` repetitions of `value`.
struct RleRun {
  int64_t value;
  int64_t length;
};

/// \brief Run-length encodes an int64 sequence.
std::vector<RleRun> RleEncode(const std::vector<int64_t>& values);

/// \brief Inverse of RleEncode.
std::vector<int64_t> RleDecode(const std::vector<RleRun>& runs);

/// \brief Dictionary-encoded string vector: distinct values (in first-
/// appearance order) plus one code per row.
struct DictEncoded {
  std::vector<std::string> dictionary;
  std::vector<int32_t> codes;

  /// \brief Approximate encoded footprint in bytes.
  int64_t ByteSize() const;
};

/// \brief Dictionary-encodes a string sequence.
DictEncoded DictionaryEncode(const std::vector<std::string>& values);

/// \brief Inverse of DictionaryEncode.
std::vector<std::string> DictionaryDecode(const DictEncoded& encoded);

/// \brief Uncompressed footprint of a column in bytes (values + strings;
/// validity ignored).
int64_t UncompressedByteSize(const Column& column);

/// \brief Best-effort compressed footprint: RLE for INT64/BOOL columns,
/// dictionary for STRING columns, raw for DOUBLE.
int64_t CompressedByteSize(const Column& column);

}  // namespace vertexica

#endif  // VERTEXICA_STORAGE_COMPRESSION_H_
