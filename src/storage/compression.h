/// \file compression.h
/// \brief Column footprint accounting over the segment encodings.
///
/// The encodings themselves (RleRun, DictEncoded, ColumnEncoding, the
/// ambient EncodingMode knob, zone maps) live in storage/encoding.h and are
/// first-class column representations via `Column::Encode()`. This header
/// keeps the byte-accounting helpers used by the coordinator's
/// SuperstepStats counters, benches and tests. All sizes include the
/// validity bitmap when one is materialized and a `sizeof(std::string)`
/// header per string — omitting those systematically underreported
/// footprints.

#ifndef VERTEXICA_STORAGE_COMPRESSION_H_
#define VERTEXICA_STORAGE_COMPRESSION_H_

#include <cstdint>

#include "storage/column.h"
#include "storage/encoding.h"

namespace vertexica {

/// \brief Plain (decoded) footprint of a column in bytes: typed values,
/// string headers + characters, and the validity bitmap when present.
int64_t UncompressedByteSize(const Column& column);

/// \brief Best-effort compressed footprint: RLE for INT64/BOOL columns,
/// dictionary for STRING columns, raw for DOUBLE; plus validity. This is
/// the hypothetical "what would encoding save" number and does not depend
/// on the column's current representation.
int64_t CompressedByteSize(const Column& column);

/// \brief Actual footprint of the column's *current* representation:
/// encoded bytes (runs / dictionary + codes) when encoded, plain bytes
/// otherwise; plus validity either way.
int64_t EncodedByteSize(const Column& column);

}  // namespace vertexica

#endif  // VERTEXICA_STORAGE_COMPRESSION_H_
