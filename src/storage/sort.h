/// \file sort.h
/// \brief Multi-key table sorting.
///
/// Vertex batching (§2.3) sorts every hash partition of the union table on
/// vertex id so a worker sees each vertex's tuples contiguously; this module
/// provides that primitive for arbitrary key lists.

#ifndef VERTEXICA_STORAGE_SORT_H_
#define VERTEXICA_STORAGE_SORT_H_

#include <vector>

#include "storage/table.h"

namespace vertexica {

// SortKey (column index + direction) lives in storage/table.h, next to the
// Table sort-order property it also describes.

/// \brief Returns the row permutation that sorts `table` by `keys`
/// (stable; NULLs first within ascending order).
std::vector<int64_t> SortIndices(const Table& table,
                                 const std::vector<SortKey>& keys);

/// \brief Returns a new table sorted by `keys`, with its sort-order
/// property (Table::sort_order) declared accordingly.
Table SortTable(const Table& table, const std::vector<SortKey>& keys);

}  // namespace vertexica

#endif  // VERTEXICA_STORAGE_SORT_H_
