#include "storage/sort.h"

#include <algorithm>
#include <numeric>

namespace vertexica {

std::vector<int64_t> SortIndices(const Table& table,
                                 const std::vector<SortKey>& keys) {
  std::vector<int64_t> indices(static_cast<size_t>(table.num_rows()));
  std::iota(indices.begin(), indices.end(), 0);

  // Fast path: single ascending int64 key with no nulls (the vertex-batching
  // case: sort partition on vertex id).
  if (keys.size() == 1 && keys[0].ascending &&
      table.column(keys[0].column).type() == DataType::kInt64 &&
      table.column(keys[0].column).null_count() == 0) {
    // RLE fast path: stable-sort the runs and expand each run's row range.
    // Equal-valued runs keep their original order and every run expands in
    // ascending row order, which is exactly the stable row sort — without
    // decoding the key column. O(runs log runs + n) instead of O(n log n).
    if (const auto* runs = table.column(keys[0].column).rle_runs()) {
      struct RunRange {
        int64_t value;
        int64_t start;
        int64_t length;
      };
      std::vector<RunRange> ranges;
      ranges.reserve(runs->size());
      int64_t start = 0;
      for (const RleRun& run : *runs) {
        ranges.push_back(RunRange{run.value, start, run.length});
        start += run.length;
      }
      std::stable_sort(ranges.begin(), ranges.end(),
                       [](const RunRange& a, const RunRange& b) {
                         return a.value < b.value;
                       });
      size_t out = 0;
      for (const RunRange& r : ranges) {
        for (int64_t i = 0; i < r.length; ++i) {
          indices[out++] = r.start + i;
        }
      }
      return indices;
    }
    const auto& v = table.column(keys[0].column).ints();
    std::stable_sort(indices.begin(), indices.end(),
                     [&v](int64_t a, int64_t b) {
                       return v[static_cast<size_t>(a)] <
                              v[static_cast<size_t>(b)];
                     });
    return indices;
  }

  std::stable_sort(indices.begin(), indices.end(),
                   [&table, &keys](int64_t a, int64_t b) {
                     for (const SortKey& k : keys) {
                       const Column& col = table.column(k.column);
                       int cmp = col.CompareRows(a, col, b);
                       if (!k.ascending) cmp = -cmp;
                       if (cmp != 0) return cmp < 0;
                     }
                     return false;
                   });
  return indices;
}

Table SortTable(const Table& table, const std::vector<SortKey>& keys) {
  Table out = table.Take(SortIndices(table, keys));
  out.SetSortOrder(keys);  // the one producer that guarantees it by doing it
  return out;
}

}  // namespace vertexica
