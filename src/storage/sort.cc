#include "storage/sort.h"

#include <algorithm>
#include <numeric>

namespace vertexica {

std::vector<int64_t> SortIndices(const Table& table,
                                 const std::vector<SortKey>& keys) {
  std::vector<int64_t> indices(static_cast<size_t>(table.num_rows()));
  std::iota(indices.begin(), indices.end(), 0);

  // Fast path: single ascending int64 key with no nulls (the vertex-batching
  // case: sort partition on vertex id).
  if (keys.size() == 1 && keys[0].ascending &&
      table.column(keys[0].column).type() == DataType::kInt64 &&
      table.column(keys[0].column).null_count() == 0) {
    const auto& v = table.column(keys[0].column).ints();
    std::stable_sort(indices.begin(), indices.end(),
                     [&v](int64_t a, int64_t b) {
                       return v[static_cast<size_t>(a)] <
                              v[static_cast<size_t>(b)];
                     });
    return indices;
  }

  std::stable_sort(indices.begin(), indices.end(),
                   [&table, &keys](int64_t a, int64_t b) {
                     for (const SortKey& k : keys) {
                       const Column& col = table.column(k.column);
                       int cmp = col.CompareRows(a, col, b);
                       if (!k.ascending) cmp = -cmp;
                       if (cmp != 0) return cmp < 0;
                     }
                     return false;
                   });
  return indices;
}

Table SortTable(const Table& table, const std::vector<SortKey>& keys) {
  return table.Take(SortIndices(table, keys));
}

}  // namespace vertexica
