#include "storage/bitvector.h"

#include "common/string_util.h"

namespace vertexica {

int64_t Bitvector::CountOnes() const {
  int64_t count = 0;
  for (uint64_t word : words_) {
    count += __builtin_popcountll(word);
  }
  return count;
}

void Bitvector::And(const Bitvector& other) {
  VX_CHECK(size_ == other.size_) << "Bitvector::And size mismatch";
  for (size_t w = 0; w < words_.size(); ++w) {
    words_[w] &= other.words_[w];
  }
}

void Bitvector::Or(const Bitvector& other) {
  VX_CHECK(size_ == other.size_) << "Bitvector::Or size mismatch";
  for (size_t w = 0; w < words_.size(); ++w) {
    words_[w] |= other.words_[w];
  }
}

std::vector<int64_t> Bitvector::SetIndices() const {
  std::vector<int64_t> indices;
  indices.reserve(static_cast<size_t>(CountOnes()));
  ForEachSetBit([&indices](int64_t i) { indices.push_back(i); });
  return indices;
}

Status Bitvector::CheckInvariants() const {
  if (size_ < 0) {
    return Status::Internal(StringFormat(
        "Bitvector invariant violated: negative size %lld",
        static_cast<long long>(size_)));
  }
  const auto want_words = static_cast<size_t>((size_ + 63) / 64);
  if (words_.size() != want_words) {
    return Status::Internal(StringFormat(
        "Bitvector invariant violated: %zu words for %lld bits (want %zu)",
        words_.size(), static_cast<long long>(size_), want_words));
  }
  if (size_ % 64 != 0 && !words_.empty()) {
    const uint64_t tail_mask = ~uint64_t{0} << (size_ % 64);
    if ((words_.back() & tail_mask) != 0) {
      return Status::Internal(StringFormat(
          "Bitvector invariant violated: bits set past size %lld in the "
          "last word (tail hygiene)",
          static_cast<long long>(size_)));
    }
  }
  return Status::OK();
}

}  // namespace vertexica
