#include "storage/bitvector.h"

namespace vertexica {

int64_t Bitvector::CountOnes() const {
  int64_t count = 0;
  for (uint64_t word : words_) {
    count += __builtin_popcountll(word);
  }
  return count;
}

void Bitvector::And(const Bitvector& other) {
  VX_CHECK(size_ == other.size_) << "Bitvector::And size mismatch";
  for (size_t w = 0; w < words_.size(); ++w) {
    words_[w] &= other.words_[w];
  }
}

void Bitvector::Or(const Bitvector& other) {
  VX_CHECK(size_ == other.size_) << "Bitvector::Or size mismatch";
  for (size_t w = 0; w < words_.size(); ++w) {
    words_[w] |= other.words_[w];
  }
}

std::vector<int64_t> Bitvector::SetIndices() const {
  std::vector<int64_t> indices;
  indices.reserve(static_cast<size_t>(CountOnes()));
  ForEachSetBit([&indices](int64_t i) { indices.push_back(i); });
  return indices;
}

}  // namespace vertexica
