#include "storage/encoding.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <unordered_map>

#include "common/env_knob.h"

namespace vertexica {

std::vector<RleRun> RleEncode(const std::vector<int64_t>& values) {
  std::vector<RleRun> runs;
  for (int64_t v : values) {
    if (!runs.empty() && runs.back().value == v) {
      ++runs.back().length;
    } else {
      runs.push_back(RleRun{v, 1});
    }
  }
  return runs;
}

std::vector<int64_t> RleDecode(const std::vector<RleRun>& runs) {
  std::vector<int64_t> values;
  for (const auto& run : runs) {
    values.insert(values.end(), static_cast<size_t>(run.length), run.value);
  }
  return values;
}

int64_t DictEncoded::ByteSize() const {
  // Codes plus the dictionary: per-entry string header (the std::string
  // object itself) and the character payload. Omitting the headers made
  // wide dictionaries look free and systematically underreported the
  // footprint counters built on top of this.
  int64_t bytes = static_cast<int64_t>(codes.size() * sizeof(int32_t));
  for (const auto& s : dictionary) {
    bytes += static_cast<int64_t>(sizeof(std::string) + s.size());
  }
  return bytes;
}

DictEncoded DictionaryEncode(const std::vector<std::string>& values) {
  DictEncoded out;
  out.codes.reserve(values.size());
  // order-insensitive: keyed lookups only; dictionary entries land in
  // first-appearance order, never in map-iteration order.
  std::unordered_map<std::string, int32_t> index;
  for (const auto& v : values) {
    auto [it, inserted] =
        index.emplace(v, static_cast<int32_t>(out.dictionary.size()));
    if (inserted) out.dictionary.push_back(v);
    out.codes.push_back(it->second);
  }
  return out;
}

std::vector<std::string> DictionaryDecode(const DictEncoded& encoded) {
  std::vector<std::string> values;
  values.reserve(encoded.codes.size());
  for (int32_t code : encoded.codes) {
    values.push_back(encoded.dictionary[static_cast<size_t>(code)]);
  }
  return values;
}

const char* ColumnEncodingName(ColumnEncoding e) {
  switch (e) {
    case ColumnEncoding::kPlain:
      return "PLAIN";
    case ColumnEncoding::kRle:
      return "RLE";
    case ColumnEncoding::kDict:
      return "DICT";
  }
  return "?";
}

const char* EncodingModeName(EncodingMode m) {
  switch (m) {
    case EncodingMode::kAuto:
      return "auto";
    case EncodingMode::kOff:
      return "off";
    case EncodingMode::kForce:
      return "force";
  }
  return "?";
}

EncodingMode ParseEncodingMode(const std::string& text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "off" || lower == "0" || lower == "false" || lower == "none") {
    return EncodingMode::kOff;
  }
  if (lower == "force") return EncodingMode::kForce;
  // "auto", "on", "1", "true" and anything unrecognized.
  return EncodingMode::kAuto;
}

namespace {

// -1 = unset (resolve from env); otherwise a cast EncodingMode.
std::atomic<int> g_default_mode{-1};
thread_local bool tl_mode_active = false;
thread_local EncodingMode tl_mode_override = EncodingMode::kAuto;

EncodingMode EnvEncodingMode() {
  // Validated through the shared env-knob helper so a typoed value warns
  // once instead of silently resolving to kAuto inside ParseEncodingMode.
  static const EncodingMode env = ParseEncodingMode(
      EnvTokenKnob("VERTEXICA_ENCODING",
                   {"off", "auto", "on", "1", "true", "force"}, "auto"));
  return env;
}

}  // namespace

EncodingMode AmbientEncodingMode() {
  if (tl_mode_active) return tl_mode_override;
  const int configured = g_default_mode.load(std::memory_order_relaxed);
  if (configured >= 0) return static_cast<EncodingMode>(configured);
  return EnvEncodingMode();
}

void SetDefaultEncodingMode(EncodingMode m) {
  // kAuto is the unset sentinel (like 0 for SetDefaultExecThreads): it
  // restores resolution from the VERTEXICA_ENCODING environment variable,
  // whose own default is kAuto anyway. Use ScopedEncodingMode to pin kAuto
  // over a non-auto environment.
  g_default_mode.store(m == EncodingMode::kAuto ? -1 : static_cast<int>(m),
                       std::memory_order_relaxed);
}

ScopedEncodingMode::ScopedEncodingMode(EncodingMode m)
    : active_(true),
      prev_(tl_mode_override),
      prev_active_(tl_mode_active) {
  tl_mode_override = m;
  tl_mode_active = true;
}

ScopedEncodingMode::~ScopedEncodingMode() {
  if (active_) {
    tl_mode_override = prev_;
    tl_mode_active = prev_active_;
  }
}

int TotalOrderCompareDoubles(double a, double b) {
  const bool an = std::isnan(a);
  const bool bn = std::isnan(b);
  if (an || bn) return an == bn ? 0 : (an ? 1 : -1);
  return a < b ? -1 : (a > b ? 1 : 0);
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

/// Interval may-match for a totally ordered domain: could any value in
/// [min, max] (with `only` = min==max==the single value case handled by the
/// caller through min/max themselves) satisfy `x <op> lit`?
template <typename T>
bool OrderedMayMatch(CompareOp op, const T& min_v, const T& max_v,
                     const T& lit) {
  switch (op) {
    case CompareOp::kEq:
      return !(lit < min_v) && !(max_v < lit);
    case CompareOp::kNe:
      // Only prunable when every row holds exactly `lit`.
      return min_v < lit || lit < min_v || min_v < max_v || max_v < min_v;
    case CompareOp::kLt:
      return min_v < lit;
    case CompareOp::kLe:
      return !(lit < min_v);
    case CompareOp::kGt:
      return lit < max_v;
    case CompareOp::kGe:
      return !(max_v < lit);
  }
  return true;
}

}  // namespace

bool ZoneMapIndex::ZoneMayMatch(const ZoneStats& zone, CompareOp op,
                                const Value& literal) const {
  // A NULL literal never matches anything; an all-null zone has no row that
  // can satisfy any comparison (SQL: NULL <op> x is NULL, dropped by σ).
  if (literal.is_null()) return false;
  if (!zone.has_value) return false;

  switch (type_) {
    case DataType::kInt64:
      if (!literal.is_int64()) return true;  // mixed-type: not pruned
      return OrderedMayMatch(op, zone.min_i, zone.max_i,
                             literal.int64_value());
    case DataType::kBool: {
      if (!literal.is_bool()) return true;
      const int64_t lit = literal.bool_value() ? 1 : 0;
      return OrderedMayMatch(op, zone.min_i, zone.max_i, lit);
    }
    case DataType::kString:
      if (!literal.is_string()) return true;
      return OrderedMayMatch(op, zone.min_s, zone.max_s,
                             literal.string_value());
    case DataType::kDouble: {
      if (!literal.is_double()) return true;
      const double lit = literal.double_value();
      // CompareRows total order: NaN sorts after every number and compares
      // equal to itself. min_d/max_d cover the non-NaN ("finite" here
      // includes infinities) values; has_nan extends the zone's upper end.
      if (std::isnan(lit)) {
        switch (op) {
          case CompareOp::kEq:
            return zone.has_nan;
          case CompareOp::kNe:
            return zone.has_finite;
          case CompareOp::kLt:  // x < NaN ⇔ x is a number
            return zone.has_finite;
          case CompareOp::kLe:  // x <= NaN holds for every non-null x
            return zone.has_value;
          case CompareOp::kGt:  // nothing sorts after NaN
            return false;
          case CompareOp::kGe:  // x >= NaN ⇔ x is NaN
            return zone.has_nan;
        }
        return true;
      }
      switch (op) {
        case CompareOp::kEq:
          return zone.has_finite && zone.min_d <= lit && lit <= zone.max_d;
        case CompareOp::kNe:
          // Prunable only when every non-null row equals `lit` exactly.
          return zone.has_nan ||
                 (zone.has_finite &&
                  !(zone.min_d == lit && zone.max_d == lit));
        case CompareOp::kLt:
          return zone.has_finite && zone.min_d < lit;
        case CompareOp::kLe:
          return zone.has_finite && zone.min_d <= lit;
        case CompareOp::kGt:
          return zone.has_nan || (zone.has_finite && zone.max_d > lit);
        case CompareOp::kGe:
          return zone.has_nan || (zone.has_finite && zone.max_d >= lit);
      }
      return true;
    }
  }
  return true;
}

bool ZoneMapIndex::RangeMayMatch(CompareOp op, const Value& literal,
                                 int64_t row_begin, int64_t row_end) const {
  if (row_begin >= row_end) return false;
  const auto first = static_cast<size_t>(row_begin / kZoneRows);
  const auto last = static_cast<size_t>((row_end - 1) / kZoneRows);
  for (size_t z = first; z <= last && z < zones_.size(); ++z) {
    if (ZoneMayMatch(zones_[z], op, literal)) return true;
  }
  return false;
}

}  // namespace vertexica
