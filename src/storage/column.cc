#include "storage/column.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/string_util.h"

namespace vertexica {

Column Column::FromInts(std::vector<int64_t> v) {
  Column c(DataType::kInt64);
  c.length_ = static_cast<int64_t>(v.size());
  c.ints_ = std::move(v);
  return c;
}

Column Column::FromDoubles(std::vector<double> v) {
  Column c(DataType::kDouble);
  c.length_ = static_cast<int64_t>(v.size());
  c.doubles_ = std::move(v);
  return c;
}

Column Column::FromStrings(std::vector<std::string> v) {
  Column c(DataType::kString);
  c.length_ = static_cast<int64_t>(v.size());
  c.strings_ = std::move(v);
  return c;
}

Column Column::FromBools(std::vector<uint8_t> v) {
  Column c(DataType::kBool);
  c.length_ = static_cast<int64_t>(v.size());
  c.bools_ = std::move(v);
  return c;
}

namespace {

std::vector<int64_t> RunStartOffsets(const std::vector<RleRun>& runs) {
  std::vector<int64_t> starts;
  starts.reserve(runs.size());
  int64_t row = 0;
  for (const RleRun& run : runs) {
    starts.push_back(row);
    row += run.length;
  }
  return starts;
}

}  // namespace

Column Column::FromRleRuns(std::vector<RleRun> runs) {
  auto segment = std::make_shared<EncodedSegment>();
  segment->encoding = ColumnEncoding::kRle;
  segment->runs = std::move(runs);
  segment->run_starts = RunStartOffsets(segment->runs);
  int64_t length = 0;
  for (const RleRun& run : segment->runs) {
    VX_CHECK(run.length > 0) << "FromRleRuns: non-positive run length";
    length += run.length;
  }
  segment->length = length;
  Column c(DataType::kInt64);
  c.length_ = length;
  // Zone map straight from the runs — Encode() would skip an
  // already-encoded column before reaching its BuildZoneMap, and the
  // generic builder would decode; one pass over the runs gives the same
  // statistics with no decode (the column is fully valid by contract).
  if (length > 0) {
    std::vector<ZoneStats> zones(
        static_cast<size_t>((length + kZoneRows - 1) / kZoneRows));
    for (size_t z = 0; z < zones.size(); ++z) {
      zones[z].row_begin = static_cast<int64_t>(z) * kZoneRows;
      zones[z].row_end = std::min(zones[z].row_begin + kZoneRows, length);
    }
    int64_t row = 0;
    for (const RleRun& run : segment->runs) {
      int64_t remaining = run.length;
      while (remaining > 0) {
        ZoneStats& zone = zones[static_cast<size_t>(row / kZoneRows)];
        const int64_t take = std::min(remaining, zone.row_end - row);
        if (!zone.has_value || run.value < zone.min_i) zone.min_i = run.value;
        if (!zone.has_value || run.value > zone.max_i) zone.max_i = run.value;
        zone.has_value = true;
        row += take;
        remaining -= take;
      }
    }
    c.zone_map_ =
        std::make_shared<const ZoneMapIndex>(DataType::kInt64,
                                             std::move(zones));
  }
  c.segment_ = std::move(segment);
  return c;
}

void Column::Reserve(int64_t n) {
  const auto sn = static_cast<size_t>(n);
  switch (type_) {
    case DataType::kInt64:
      ints_.reserve(sn);
      break;
    case DataType::kDouble:
      doubles_.reserve(sn);
      break;
    case DataType::kString:
      strings_.reserve(sn);
      break;
    case DataType::kBool:
      bools_.reserve(sn);
      break;
  }
}

void Column::EnsureValidity() {
  if (validity_.empty()) {
    validity_.assign(static_cast<size_t>(length_), 1);
  }
}

// ------------------------------------------------------------ encoding state

const std::vector<int64_t>& Column::DecodedInts() const {
  const EncodedSegment& seg = *segment_;
  std::call_once(seg.decode_once,
                 [&seg] { seg.decoded_ints = RleDecode(seg.runs); });
  return seg.decoded_ints;
}

const std::vector<uint8_t>& Column::DecodedBools() const {
  const EncodedSegment& seg = *segment_;
  std::call_once(seg.decode_once, [&seg] {
    seg.decoded_bools.reserve(static_cast<size_t>(seg.length));
    for (const RleRun& run : seg.runs) {
      seg.decoded_bools.insert(seg.decoded_bools.end(),
                               static_cast<size_t>(run.length),
                               run.value != 0 ? 1 : 0);
    }
  });
  return seg.decoded_bools;
}

const std::vector<std::string>& Column::DecodedStrings() const {
  const EncodedSegment& seg = *segment_;
  std::call_once(seg.decode_once,
                 [&seg] { seg.decoded_strings = DictionaryDecode(seg.dict); });
  return seg.decoded_strings;
}

void Column::PrepareMutation() {
  if (segment_ != nullptr) Decode();
  zone_map_.reset();
  sorted_ascending_ = false;
}

bool Column::Encode(EncodingMode mode) {
  if (mode == EncodingMode::kOff) return false;
  if (segment_ != nullptr) return true;  // already encoded
  // One pass over the still-plain vectors: the zone map rides along for
  // free whatever the encoding decision. A cached zone map is still
  // current (mutation drops it), so don't rebuild one.
  if (zone_map_ == nullptr) BuildZoneMap();
  switch (type_) {
    case DataType::kInt64: {
      auto runs = RleEncode(ints_);
      const auto encoded_bytes =
          static_cast<int64_t>(runs.size() * sizeof(RleRun));
      const auto plain_bytes =
          static_cast<int64_t>(ints_.size() * sizeof(int64_t));
      if (mode == EncodingMode::kAuto && encoded_bytes >= plain_bytes) {
        return false;
      }
      auto segment = std::make_shared<EncodedSegment>();
      segment->encoding = ColumnEncoding::kRle;
      segment->length = length_;
      segment->runs = std::move(runs);
      segment->run_starts = RunStartOffsets(segment->runs);
      segment_ = std::move(segment);
      ints_.clear();
      ints_.shrink_to_fit();
      return true;
    }
    case DataType::kBool: {
      std::vector<int64_t> widened(bools_.begin(), bools_.end());
      auto runs = RleEncode(widened);
      const auto encoded_bytes =
          static_cast<int64_t>(runs.size() * sizeof(RleRun));
      const auto plain_bytes = static_cast<int64_t>(bools_.size());
      if (mode == EncodingMode::kAuto && encoded_bytes >= plain_bytes) {
        return false;
      }
      auto segment = std::make_shared<EncodedSegment>();
      segment->encoding = ColumnEncoding::kRle;
      segment->length = length_;
      segment->runs = std::move(runs);
      segment->run_starts = RunStartOffsets(segment->runs);
      segment_ = std::move(segment);
      bools_.clear();
      bools_.shrink_to_fit();
      return true;
    }
    case DataType::kString: {
      auto dict = DictionaryEncode(strings_);
      int64_t plain_bytes = 0;
      for (const auto& s : strings_) {
        plain_bytes += static_cast<int64_t>(sizeof(std::string) + s.size());
      }
      if (mode == EncodingMode::kAuto && dict.ByteSize() >= plain_bytes) {
        return false;
      }
      auto segment = std::make_shared<EncodedSegment>();
      segment->encoding = ColumnEncoding::kDict;
      segment->length = length_;
      segment->dict = std::move(dict);
      segment_ = std::move(segment);
      strings_.clear();
      strings_.shrink_to_fit();
      return true;
    }
    case DataType::kDouble:
      return false;  // doubles always stay plain
  }
  return false;
}

void Column::Decode() {
  if (segment_ == nullptr) return;
  switch (type_) {
    case DataType::kInt64:
      ints_ = DecodedInts();
      break;
    case DataType::kBool:
      bools_ = DecodedBools();
      break;
    case DataType::kString:
      strings_ = DecodedStrings();
      break;
    case DataType::kDouble:
      break;
  }
  segment_.reset();
}

void Column::BuildZoneMap() {
  std::vector<ZoneStats> zones;
  const auto num_zones =
      static_cast<size_t>((length_ + kZoneRows - 1) / kZoneRows);
  zones.reserve(num_zones);
  for (size_t z = 0; z < num_zones; ++z) {
    ZoneStats stats;
    stats.row_begin = static_cast<int64_t>(z) * kZoneRows;
    stats.row_end = std::min(stats.row_begin + kZoneRows, length_);
    for (int64_t i = stats.row_begin; i < stats.row_end; ++i) {
      if (IsNull(i)) {
        ++stats.null_count;
        continue;
      }
      switch (type_) {
        case DataType::kInt64: {
          const int64_t v = GetInt64(i);
          if (!stats.has_value || v < stats.min_i) stats.min_i = v;
          if (!stats.has_value || v > stats.max_i) stats.max_i = v;
          break;
        }
        case DataType::kBool: {
          const int64_t v = GetBool(i) ? 1 : 0;
          if (!stats.has_value || v < stats.min_i) stats.min_i = v;
          if (!stats.has_value || v > stats.max_i) stats.max_i = v;
          break;
        }
        case DataType::kDouble: {
          const double v = GetDouble(i);
          if (std::isnan(v)) {
            stats.has_nan = true;
          } else {
            if (!stats.has_finite || v < stats.min_d) stats.min_d = v;
            if (!stats.has_finite || v > stats.max_d) stats.max_d = v;
            stats.has_finite = true;
          }
          break;
        }
        case DataType::kString: {
          const std::string& v = GetString(i);
          if (!stats.has_value || v < stats.min_s) stats.min_s = v;
          if (!stats.has_value || v > stats.max_s) stats.max_s = v;
          break;
        }
      }
      stats.has_value = true;
    }
    zones.push_back(std::move(stats));
  }
  zone_map_ = std::make_shared<const ZoneMapIndex>(type_, std::move(zones));
}

// ------------------------------------------------------------------- appends

void Column::AppendNull() {
  if (MutationInvalidatesState()) PrepareMutation();
  EnsureValidity();
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
    case DataType::kBool:
      bools_.push_back(0);
      break;
  }
  validity_.push_back(0);
  ++length_;
  ++null_count_;
}

void Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
      AppendInt64(v.int64_value());
      break;
    case DataType::kDouble:
      // Allow int literals in double columns for ergonomic row building.
      AppendDouble(v.is_int64() ? static_cast<double>(v.int64_value())
                                : v.double_value());
      break;
    case DataType::kString:
      AppendString(v.string_value());
      break;
    case DataType::kBool:
      AppendBool(v.bool_value());
      break;
  }
}

void Column::AppendColumn(const Column& other) {
  VX_CHECK(type_ == other.type_)
      << "AppendColumn type mismatch: " << DataTypeName(type_) << " vs "
      << DataTypeName(other.type_);
  if (MutationInvalidatesState()) PrepareMutation();
  if (!other.validity_.empty() || !validity_.empty()) {
    EnsureValidity();
    if (other.validity_.empty()) {
      validity_.insert(validity_.end(), static_cast<size_t>(other.length_), 1);
    } else {
      validity_.insert(validity_.end(), other.validity_.begin(),
                       other.validity_.end());
    }
  }
  switch (type_) {
    case DataType::kInt64: {
      const auto& src = other.ints();
      ints_.insert(ints_.end(), src.begin(), src.end());
      break;
    }
    case DataType::kDouble:
      doubles_.insert(doubles_.end(), other.doubles_.begin(),
                      other.doubles_.end());
      break;
    case DataType::kString: {
      const auto& src = other.strings();
      strings_.insert(strings_.end(), src.begin(), src.end());
      break;
    }
    case DataType::kBool: {
      const auto& src = other.bools();
      bools_.insert(bools_.end(), src.begin(), src.end());
      break;
    }
  }
  length_ += other.length_;
  null_count_ += other.null_count_;
}

Value Column::GetValue(int64_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value(GetInt64(i));
    case DataType::kDouble:
      return Value(GetDouble(i));
    case DataType::kString:
      return Value(GetString(i));
    case DataType::kBool:
      return Value(GetBool(i));
  }
  return Value::Null();
}

Column Column::Take(const std::vector<int64_t>& indices) const {
  Column out(type_);
  out.Reserve(static_cast<int64_t>(indices.size()));
  if (null_count_ == 0) {
    switch (type_) {
      case DataType::kInt64: {
        const auto& src = ints();
        for (int64_t i : indices)
          out.ints_.push_back(src[static_cast<size_t>(i)]);
        break;
      }
      case DataType::kDouble:
        for (int64_t i : indices)
          out.doubles_.push_back(doubles_[static_cast<size_t>(i)]);
        break;
      case DataType::kString:
        // GetString reads straight from the dictionary for encoded
        // columns, so a gather never forces a full decode.
        for (int64_t i : indices) out.strings_.push_back(GetString(i));
        break;
      case DataType::kBool: {
        const auto& src = bools();
        for (int64_t i : indices)
          out.bools_.push_back(src[static_cast<size_t>(i)]);
        break;
      }
    }
    out.length_ = static_cast<int64_t>(indices.size());
    return out;
  }
  for (int64_t i : indices) out.AppendValue(GetValue(i));
  return out;
}

Column Column::Slice(int64_t offset, int64_t count) const {
  VX_CHECK(offset >= 0 && offset + count <= length_);
  Column out(type_);
  const auto b = static_cast<size_t>(offset);
  const auto e = static_cast<size_t>(offset + count);
  switch (type_) {
    case DataType::kInt64: {
      const auto& src = ints();
      out.ints_.assign(src.begin() + b, src.begin() + e);
      break;
    }
    case DataType::kDouble:
      out.doubles_.assign(doubles_.begin() + b, doubles_.begin() + e);
      break;
    case DataType::kString:
      out.strings_.reserve(static_cast<size_t>(count));
      for (int64_t i = offset; i < offset + count; ++i) {
        out.strings_.push_back(GetString(i));
      }
      break;
    case DataType::kBool: {
      const auto& src = bools();
      out.bools_.assign(src.begin() + b, src.begin() + e);
      break;
    }
  }
  out.length_ = count;
  out.sorted_ascending_ = sorted_ascending_;  // a range of sorted is sorted
  if (!validity_.empty()) {
    out.validity_.assign(validity_.begin() + b, validity_.begin() + e);
    out.null_count_ =
        count - std::count(out.validity_.begin(), out.validity_.end(), 1);
    if (out.null_count_ == 0) out.validity_.clear();
  }
  return out;
}

bool Column::Equals(const Column& other) const {
  if (type_ != other.type_ || length_ != other.length_ ||
      null_count_ != other.null_count_) {
    return false;
  }
  for (int64_t i = 0; i < length_; ++i) {
    if (IsNull(i) != other.IsNull(i)) return false;
    if (IsNull(i)) continue;
    // CompareRows, not Value equality: deep equality must agree with the
    // storage total order, under which NaN equals itself (a column always
    // equals its own copy, encoded or not).
    if (CompareRows(i, other, i) != 0) return false;
  }
  return true;
}

uint64_t Column::HashRow(int64_t i) const {
  if (IsNull(i)) return 0x6e756c6cULL;  // "null"
  switch (type_) {
    case DataType::kInt64:
      return HashInt64(static_cast<uint64_t>(GetInt64(i)));
    case DataType::kDouble: {
      const double d = GetDouble(i);
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return HashInt64(bits);
    }
    case DataType::kString: {
      if (segment_ != nullptr &&
          segment_->encoding == ColumnEncoding::kDict) {
        // Per-dictionary-entry hash cache: |dictionary| HashString calls
        // total instead of one per probed row. The cached hashes are
        // exactly HashString of the decoded value, so encoded and plain
        // key columns stay hash-compatible in joins and aggregations.
        const EncodedSegment& seg = *segment_;
        std::call_once(seg.hash_once, [&seg] {
          seg.dict_hashes.reserve(seg.dict.dictionary.size());
          for (const auto& s : seg.dict.dictionary) {
            seg.dict_hashes.push_back(HashString(s));
          }
        });
        return seg.dict_hashes[static_cast<size_t>(
            seg.dict.codes[static_cast<size_t>(i)])];
      }
      return HashString(GetString(i));
    }
    case DataType::kBool:
      return HashInt64(GetBool(i) ? 1 : 2);
  }
  return 0;
}

// ---------------------------------------------------------- invariant audit

namespace {

/// Audit failure: every message leads with the violated structure so a
/// VX_DCHECK_OK abort names the broken claim, not just "check failed".
Status AuditError(std::string msg) {
  return Status::Internal("Column invariant violated: " + std::move(msg));
}

}  // namespace

Status Column::CheckInvariants() const {
  // --- Counters and validity bitmap. ---------------------------------
  if (length_ < 0) {
    return AuditError(StringFormat("negative length %lld",
                                   static_cast<long long>(length_)));
  }
  if (null_count_ < 0 || null_count_ > length_) {
    return AuditError(StringFormat(
        "null_count %lld outside [0, %lld]",
        static_cast<long long>(null_count_), static_cast<long long>(length_)));
  }
  if (validity_.empty()) {
    if (null_count_ != 0) {
      return AuditError(StringFormat(
          "null_count is %lld but the validity bitmap is empty (= all valid)",
          static_cast<long long>(null_count_)));
    }
  } else {
    if (static_cast<int64_t>(validity_.size()) != length_) {
      return AuditError(StringFormat(
          "validity bitmap has %lld slots for %lld rows",
          static_cast<long long>(validity_.size()),
          static_cast<long long>(length_)));
    }
    const int64_t zeros =
        length_ - std::count(validity_.begin(), validity_.end(), 1);
    if (zeros != null_count_) {
      return AuditError(StringFormat(
          "validity bitmap holds %lld NULLs but null_count says %lld",
          static_cast<long long>(zeros),
          static_cast<long long>(null_count_)));
    }
  }

  // --- Physical representation: plain vectors vs. encoded segment. ----
  const auto plain_size = [this]() -> int64_t {
    switch (type_) {
      case DataType::kInt64:
        return static_cast<int64_t>(ints_.size());
      case DataType::kDouble:
        return static_cast<int64_t>(doubles_.size());
      case DataType::kString:
        return static_cast<int64_t>(strings_.size());
      case DataType::kBool:
        return static_cast<int64_t>(bools_.size());
    }
    return 0;
  };
  if (segment_ == nullptr) {
    if (plain_size() != length_) {
      return AuditError(StringFormat(
          "plain %s vector has %lld values for %lld rows",
          DataTypeName(type_), static_cast<long long>(plain_size()),
          static_cast<long long>(length_)));
    }
  } else {
    if (plain_size() != 0) {
      return AuditError(
          "encoded column still carries a non-empty plain vector");
    }
    if (segment_->length != length_) {
      return AuditError(StringFormat(
          "encoded segment claims %lld rows but the column has %lld",
          static_cast<long long>(segment_->length),
          static_cast<long long>(length_)));
    }
    switch (segment_->encoding) {
      case ColumnEncoding::kPlain:
        return AuditError("segment present but encoding is kPlain");
      case ColumnEncoding::kRle: {
        if (type_ != DataType::kInt64 && type_ != DataType::kBool) {
          return AuditError(StringFormat("RLE segment on a %s column",
                                         DataTypeName(type_)));
        }
        if (segment_->run_starts.size() != segment_->runs.size()) {
          return AuditError(StringFormat(
              "%zu run_starts for %zu RLE runs", segment_->run_starts.size(),
              segment_->runs.size()));
        }
        int64_t row = 0;
        for (size_t k = 0; k < segment_->runs.size(); ++k) {
          const RleRun& run = segment_->runs[k];
          if (run.length <= 0) {
            return AuditError(StringFormat(
                "RLE run %zu has non-positive length %lld", k,
                static_cast<long long>(run.length)));
          }
          if (type_ == DataType::kBool && run.value != 0 && run.value != 1) {
            return AuditError(StringFormat(
                "BOOL RLE run %zu holds non-0/1 value %lld", k,
                static_cast<long long>(run.value)));
          }
          if (segment_->run_starts[k] != row) {
            return AuditError(StringFormat(
                "run_starts[%zu] is %lld but runs before it sum to %lld", k,
                static_cast<long long>(segment_->run_starts[k]),
                static_cast<long long>(row)));
          }
          row += run.length;
        }
        if (row != length_) {
          return AuditError(StringFormat(
              "RLE runs sum to %lld rows but the column has %lld",
              static_cast<long long>(row), static_cast<long long>(length_)));
        }
        break;
      }
      case ColumnEncoding::kDict: {
        if (type_ != DataType::kString) {
          return AuditError(StringFormat("dictionary segment on a %s column",
                                         DataTypeName(type_)));
        }
        const DictEncoded& dict = segment_->dict;
        if (static_cast<int64_t>(dict.codes.size()) != length_) {
          return AuditError(StringFormat(
              "%zu dict codes for %lld rows", dict.codes.size(),
              static_cast<long long>(length_)));
        }
        const auto dict_size = static_cast<int32_t>(dict.dictionary.size());
        for (size_t i = 0; i < dict.codes.size(); ++i) {
          if (dict.codes[i] < 0 || dict.codes[i] >= dict_size) {
            return AuditError(StringFormat(
                "dict code %d at row %zu outside dictionary of %d entries",
                dict.codes[i], i, dict_size));
          }
        }
        break;
      }
    }
  }

  // --- Declared sort order (CompareRows total order, NULLs first). -----
  if (sorted_ascending_) {
    for (int64_t i = 1; i < length_; ++i) {
      if (CompareRows(i - 1, *this, i) > 0) {
        return AuditError(StringFormat(
            "declared sorted_ascending but row %lld > row %lld",
            static_cast<long long>(i - 1), static_cast<long long>(i)));
      }
    }
  }

  // --- Zone map soundness: stored statistics must bound the data. ------
  if (zone_map_ != nullptr) {
    if (zone_map_->type() != type_) {
      return AuditError(StringFormat(
          "zone map typed %s on a %s column",
          DataTypeName(zone_map_->type()), DataTypeName(type_)));
    }
    const auto& zones = zone_map_->zones();
    const auto want_zones =
        static_cast<size_t>((length_ + kZoneRows - 1) / kZoneRows);
    if (zones.size() != want_zones) {
      return AuditError(StringFormat("%zu zones for %lld rows (want %zu)",
                                     zones.size(),
                                     static_cast<long long>(length_),
                                     want_zones));
    }
    for (size_t z = 0; z < zones.size(); ++z) {
      const ZoneStats& zone = zones[z];
      const int64_t want_begin = static_cast<int64_t>(z) * kZoneRows;
      const int64_t want_end = std::min(want_begin + kZoneRows, length_);
      if (zone.row_begin != want_begin || zone.row_end != want_end) {
        return AuditError(StringFormat(
            "zone %zu spans [%lld, %lld) but should span [%lld, %lld)", z,
            static_cast<long long>(zone.row_begin),
            static_cast<long long>(zone.row_end),
            static_cast<long long>(want_begin),
            static_cast<long long>(want_end)));
      }
      int64_t nulls = 0;
      for (int64_t i = zone.row_begin; i < zone.row_end; ++i) {
        if (IsNull(i)) {
          ++nulls;
          continue;
        }
        bool in_bounds = true;
        switch (type_) {
          case DataType::kInt64:
            in_bounds = zone.has_value && GetInt64(i) >= zone.min_i &&
                        GetInt64(i) <= zone.max_i;
            break;
          case DataType::kBool: {
            const int64_t v = GetBool(i) ? 1 : 0;
            in_bounds = zone.has_value && v >= zone.min_i && v <= zone.max_i;
            break;
          }
          case DataType::kDouble: {
            const double v = GetDouble(i);
            // NaN is tracked by has_nan and excluded from min_d/max_d.
            in_bounds = zone.has_value &&
                        (std::isnan(v)
                             ? zone.has_nan
                             : zone.has_finite && v >= zone.min_d &&
                                   v <= zone.max_d);
            break;
          }
          case DataType::kString:
            in_bounds = zone.has_value && GetString(i) >= zone.min_s &&
                        GetString(i) <= zone.max_s;
            break;
        }
        if (!in_bounds) {
          return AuditError(StringFormat(
              "zone %zu bounds do not cover the value at row %lld "
              "(stale zone map?)",
              z, static_cast<long long>(i)));
        }
      }
      if (nulls != zone.null_count) {
        return AuditError(StringFormat(
            "zone %zu claims %lld NULLs but rows hold %lld", z,
            static_cast<long long>(zone.null_count),
            static_cast<long long>(nulls)));
      }
    }
  }
  return Status::OK();
}

int Column::CompareRows(int64_t i, const Column& other, int64_t j) const {
  VX_DCHECK(type_ == other.type_);
  const bool ln = IsNull(i);
  const bool rn = other.IsNull(j);
  if (ln || rn) return ln == rn ? 0 : (ln ? -1 : 1);
  switch (type_) {
    case DataType::kInt64: {
      const int64_t a = GetInt64(i);
      const int64_t b = other.GetInt64(j);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case DataType::kDouble:
      // Total order: NaN sorts after every number and equals itself.
      // (`a < b ? … : a > b ? …` alone returns 0 whenever either side is
      // NaN, which breaks strict weak ordering — UB in std::stable_sort
      // and nondeterministic SortOp/TopNOp output.)
      return TotalOrderCompareDoubles(GetDouble(i), other.GetDouble(j));
    case DataType::kString: {
      // Same dictionary ⇒ equal codes are equal strings; unequal codes
      // still compare by value (first-appearance codes are unordered).
      if (segment_ != nullptr && segment_ == other.segment_ &&
          segment_->encoding == ColumnEncoding::kDict &&
          segment_->dict.codes[static_cast<size_t>(i)] ==
              segment_->dict.codes[static_cast<size_t>(j)]) {
        return 0;
      }
      const int cmp = GetString(i).compare(other.GetString(j));
      return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
    case DataType::kBool: {
      const int a = GetBool(i) ? 1 : 0;
      const int b = other.GetBool(j) ? 1 : 0;
      return a - b;
    }
  }
  return 0;
}

}  // namespace vertexica
