#include "storage/column.h"

#include <algorithm>

#include "common/hash.h"

namespace vertexica {

Column Column::FromInts(std::vector<int64_t> v) {
  Column c(DataType::kInt64);
  c.length_ = static_cast<int64_t>(v.size());
  c.ints_ = std::move(v);
  return c;
}

Column Column::FromDoubles(std::vector<double> v) {
  Column c(DataType::kDouble);
  c.length_ = static_cast<int64_t>(v.size());
  c.doubles_ = std::move(v);
  return c;
}

Column Column::FromStrings(std::vector<std::string> v) {
  Column c(DataType::kString);
  c.length_ = static_cast<int64_t>(v.size());
  c.strings_ = std::move(v);
  return c;
}

Column Column::FromBools(std::vector<uint8_t> v) {
  Column c(DataType::kBool);
  c.length_ = static_cast<int64_t>(v.size());
  c.bools_ = std::move(v);
  return c;
}

void Column::Reserve(int64_t n) {
  const auto sn = static_cast<size_t>(n);
  switch (type_) {
    case DataType::kInt64:
      ints_.reserve(sn);
      break;
    case DataType::kDouble:
      doubles_.reserve(sn);
      break;
    case DataType::kString:
      strings_.reserve(sn);
      break;
    case DataType::kBool:
      bools_.reserve(sn);
      break;
  }
}

void Column::EnsureValidity() {
  if (validity_.empty()) {
    validity_.assign(static_cast<size_t>(length_), 1);
  }
}

void Column::AppendNull() {
  EnsureValidity();
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
    case DataType::kBool:
      bools_.push_back(0);
      break;
  }
  validity_.push_back(0);
  ++length_;
  ++null_count_;
}

void Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
      AppendInt64(v.int64_value());
      break;
    case DataType::kDouble:
      // Allow int literals in double columns for ergonomic row building.
      AppendDouble(v.is_int64() ? static_cast<double>(v.int64_value())
                                : v.double_value());
      break;
    case DataType::kString:
      AppendString(v.string_value());
      break;
    case DataType::kBool:
      AppendBool(v.bool_value());
      break;
  }
}

void Column::AppendColumn(const Column& other) {
  VX_CHECK(type_ == other.type_)
      << "AppendColumn type mismatch: " << DataTypeName(type_) << " vs "
      << DataTypeName(other.type_);
  if (!other.validity_.empty() || !validity_.empty()) {
    EnsureValidity();
    if (other.validity_.empty()) {
      validity_.insert(validity_.end(), static_cast<size_t>(other.length_), 1);
    } else {
      validity_.insert(validity_.end(), other.validity_.begin(),
                       other.validity_.end());
    }
  }
  switch (type_) {
    case DataType::kInt64:
      ints_.insert(ints_.end(), other.ints_.begin(), other.ints_.end());
      break;
    case DataType::kDouble:
      doubles_.insert(doubles_.end(), other.doubles_.begin(),
                      other.doubles_.end());
      break;
    case DataType::kString:
      strings_.insert(strings_.end(), other.strings_.begin(),
                      other.strings_.end());
      break;
    case DataType::kBool:
      bools_.insert(bools_.end(), other.bools_.begin(), other.bools_.end());
      break;
  }
  length_ += other.length_;
  null_count_ += other.null_count_;
}

Value Column::GetValue(int64_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value(GetInt64(i));
    case DataType::kDouble:
      return Value(GetDouble(i));
    case DataType::kString:
      return Value(GetString(i));
    case DataType::kBool:
      return Value(GetBool(i));
  }
  return Value::Null();
}

Column Column::Take(const std::vector<int64_t>& indices) const {
  Column out(type_);
  out.Reserve(static_cast<int64_t>(indices.size()));
  if (null_count_ == 0) {
    switch (type_) {
      case DataType::kInt64:
        for (int64_t i : indices) out.ints_.push_back(ints_[static_cast<size_t>(i)]);
        break;
      case DataType::kDouble:
        for (int64_t i : indices)
          out.doubles_.push_back(doubles_[static_cast<size_t>(i)]);
        break;
      case DataType::kString:
        for (int64_t i : indices)
          out.strings_.push_back(strings_[static_cast<size_t>(i)]);
        break;
      case DataType::kBool:
        for (int64_t i : indices)
          out.bools_.push_back(bools_[static_cast<size_t>(i)]);
        break;
    }
    out.length_ = static_cast<int64_t>(indices.size());
    return out;
  }
  for (int64_t i : indices) out.AppendValue(GetValue(i));
  return out;
}

Column Column::Slice(int64_t offset, int64_t count) const {
  VX_CHECK(offset >= 0 && offset + count <= length_);
  Column out(type_);
  const auto b = static_cast<size_t>(offset);
  const auto e = static_cast<size_t>(offset + count);
  switch (type_) {
    case DataType::kInt64:
      out.ints_.assign(ints_.begin() + b, ints_.begin() + e);
      break;
    case DataType::kDouble:
      out.doubles_.assign(doubles_.begin() + b, doubles_.begin() + e);
      break;
    case DataType::kString:
      out.strings_.assign(strings_.begin() + b, strings_.begin() + e);
      break;
    case DataType::kBool:
      out.bools_.assign(bools_.begin() + b, bools_.begin() + e);
      break;
  }
  out.length_ = count;
  if (!validity_.empty()) {
    out.validity_.assign(validity_.begin() + b, validity_.begin() + e);
    out.null_count_ =
        count - std::count(out.validity_.begin(), out.validity_.end(), 1);
    if (out.null_count_ == 0) out.validity_.clear();
  }
  return out;
}

bool Column::Equals(const Column& other) const {
  if (type_ != other.type_ || length_ != other.length_ ||
      null_count_ != other.null_count_) {
    return false;
  }
  for (int64_t i = 0; i < length_; ++i) {
    if (IsNull(i) != other.IsNull(i)) return false;
    if (IsNull(i)) continue;
    if (GetValue(i) != other.GetValue(i)) return false;
  }
  return true;
}

uint64_t Column::HashRow(int64_t i) const {
  if (IsNull(i)) return 0x6e756c6cULL;  // "null"
  switch (type_) {
    case DataType::kInt64:
      return HashInt64(static_cast<uint64_t>(GetInt64(i)));
    case DataType::kDouble: {
      const double d = GetDouble(i);
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return HashInt64(bits);
    }
    case DataType::kString:
      return HashString(GetString(i));
    case DataType::kBool:
      return HashInt64(GetBool(i) ? 1 : 2);
  }
  return 0;
}

int Column::CompareRows(int64_t i, const Column& other, int64_t j) const {
  VX_DCHECK(type_ == other.type_);
  const bool ln = IsNull(i);
  const bool rn = other.IsNull(j);
  if (ln || rn) return ln == rn ? 0 : (ln ? -1 : 1);
  switch (type_) {
    case DataType::kInt64: {
      const int64_t a = GetInt64(i);
      const int64_t b = other.GetInt64(j);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case DataType::kDouble: {
      const double a = GetDouble(i);
      const double b = other.GetDouble(j);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case DataType::kString:
      return GetString(i).compare(other.GetString(j)) < 0
                 ? -1
                 : (GetString(i) == other.GetString(j) ? 0 : 1);
    case DataType::kBool: {
      const int a = GetBool(i) ? 1 : 0;
      const int b = other.GetBool(j) ? 1 : 0;
      return a - b;
    }
  }
  return 0;
}

}  // namespace vertexica
