#include "storage/schema.h"

#include "common/logging.h"

namespace vertexica {

int Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool Schema::EqualTypes(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].type != other.fields_[i].type) return false;
  }
  return true;
}

Schema Schema::WithNames(const std::vector<std::string>& names) const {
  VX_CHECK(names.size() == fields_.size());
  Schema out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    out.AddField(Field{names[i], fields_[i].type});
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += DataTypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace vertexica
