/// \file partition.h
/// \brief Hash partitioning and persistent sharding of tables.
///
/// §2.3 "Vertex Batching": Vertexica hash-partitions the vertex/edge/message
/// union on vertex id into a fixed number of partitions, each processed
/// serially by one worker. This module provides that scatter primitive
/// (HashPartition) plus the persistent form the sharded superstep dataflow
/// is built on: a ShardingSpec that coarsens the same hash partitioning into
/// contiguous shard blocks, and a PartitionSet of resident, metadata-bearing
/// shard tables partitioned once per run.
///
/// Scatter contract (shared by HashPartition, ShardScatter, PartitionSet):
///  - NULL keys deterministically land in partition/shard 0. The key
///    column's validity bitmap is consulted; the value slot of a NULL row
///    (which holds an unspecified placeholder) never reaches the hash.
///  - Row order within a partition preserves input order (the scatter is
///    stable), so any declared sort order of the input holds within each
///    output partition.
///  - An RLE-encoded key column scatters run-at-a-time: one bucket decision
///    per run, and — when the key column is fully valid — the
///    per-partition key columns are rebuilt directly from the assigned
///    runs, so the key column is never decoded. A null-bearing RLE key
///    still reads values run-at-a-time but gathers through the generic
///    (decoding) path, producing plain outputs.

#ifndef VERTEXICA_STORAGE_PARTITION_H_
#define VERTEXICA_STORAGE_PARTITION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/cache_sizing.h"
#include "common/hash.h"
#include "common/result.h"
#include "storage/table.h"

namespace vertexica {

/// \brief Partition id of an int64 key for `num_partitions` buckets.
inline int PartitionOf(int64_t key, int num_partitions) {
  return static_cast<int>(HashInt64(static_cast<uint64_t>(key)) %
                          static_cast<uint64_t>(num_partitions));
}

/// \brief Splits `table` into `num_partitions` tables by hashing the int64
/// column `key_column`. Row order within a partition preserves input order;
/// NULL keys go to partition 0 (see the scatter contract above).
std::vector<Table> HashPartition(const Table& table, int key_column,
                                 int num_partitions);

/// \name The ambient `shards` knob
///
/// Mirrors the `threads` and `encoding` knobs (exec/parallel.h,
/// storage/encoding.h): innermost ScopedExecShards override, else the
/// process default (SetDefaultExecShards), else the VERTEXICA_SHARDS
/// environment variable, else 1 (unsharded). RunRequest::shards installs a
/// scoped override around the backend dispatch; the Vertexica coordinator
/// resolves its shard count through ExecShards().
/// @{

/// \brief Effective shard count for the calling thread. Always >= 1.
int ExecShards();

/// \brief Sets the process-wide default shard count; 0 restores automatic
/// resolution (VERTEXICA_SHARDS env, else 1).
void SetDefaultExecShards(int n);

/// \brief RAII shard-count override for the current thread (how
/// RunRequest::shards reaches the coordinator). n <= 0 is a no-op scope.
class ScopedExecShards {
 public:
  explicit ScopedExecShards(int n);
  ~ScopedExecShards();
  ScopedExecShards(const ScopedExecShards&) = delete;
  ScopedExecShards& operator=(const ScopedExecShards&) = delete;

 private:
  int prev_;
};
/// @}

/// \brief How keys map to shards: keys hash into `base_partitions` buckets
/// (PartitionOf — the same function vertex batching uses) and contiguous
/// runs of buckets form the `num_shards` shards.
///
/// Coarsening the *same* base partitioning is what makes shard placement
/// compose with vertex batching: a shard's rows hash into a contiguous
/// block of the base partitions, so a per-shard batching pass (with the
/// same base count) reproduces exactly the partitions of an unsharded pass,
/// in order — the property behind the sharded dataflow being bit-identical
/// at any shard count. `num_shards` must not exceed `base_partitions`.
struct ShardingSpec {
  int num_shards = 1;
  /// Keep equal to the vertex-batching count (the shared order-defining
  /// constant in common/cache_sizing.h; audited in vertexica/coordinator.cc).
  int base_partitions = kVertexBatchPartitions;

  /// \brief Shard owning base partition `p`: contiguous monotone blocks.
  int ShardOfPartition(int p) const {
    return static_cast<int>(static_cast<int64_t>(p) * num_shards /
                            base_partitions);
  }
  /// \brief Shard owning `key` (non-NULL).
  int ShardOfKey(int64_t key) const {
    return ShardOfPartition(PartitionOf(key, base_partitions));
  }
  /// \brief NULL keys deterministically own shard 0 (scatter contract).
  int ShardOfNull() const { return 0; }

  /// \brief Structural audit (the VX_DCHECK tier; see docs/DEVELOPING.md):
  /// shard count in [1, base_partitions], and ShardOfPartition a monotone
  /// surjection onto [0, num_shards) — every shard owns at least one
  /// contiguous block of base partitions, the coarsening property the
  /// sharded dataflow's bit-identical-at-any-shard-count claim rests on.
  Status Validate() const;
};

/// \brief Order-preserving scatter of `table` into `spec.num_shards` tables
/// by the shard of the int64 column `key_column`. Any declared sort order
/// of the input is re-declared on every shard (a stable scatter keeps each
/// shard a subsequence of the input). NULL keys go to shard 0.
Result<std::vector<Table>> ShardScatter(const Table& table, int key_column,
                                        const ShardingSpec& spec);

/// \brief A resident shard set: one table per shard, partitioned once and
/// kept across uses (the superstep dataflow re-reads shards every superstep
/// instead of re-partitioning its input).
///
/// Build retains per-shard physical-design metadata: inherited sort-order
/// declarations from the scatter, and — when the ambient encoding mode is
/// not off — per-shard segment encodings and zone maps (Table::EncodeColumns
/// over each shard). Shards are exposed as shared snapshots so the
/// morsel-parallel executor can range-scan them without copying.
class PartitionSet {
 public:
  using TablePtr = std::shared_ptr<const Table>;

  PartitionSet() = default;

  /// \brief Partitions `table` on `key_column` per `spec`. Fails when the
  /// key column is not INT64 or the spec is malformed
  /// (num_shards < 1 or num_shards > base_partitions).
  static Result<PartitionSet> Build(const Table& table, int key_column,
                                    const ShardingSpec& spec);

  const ShardingSpec& spec() const { return spec_; }
  int key_column() const { return key_column_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  const TablePtr& shard(int s) const {
    return shards_[static_cast<size_t>(s)];
  }

  /// \brief Sum of rows across shards.
  int64_t total_rows() const;

  /// \brief Swaps in a new table for shard `s` (the vertex-update path; the
  /// caller is responsible for the rows still belonging to the shard).
  void ReplaceShard(int s, Table t);

  /// \brief Deep structural audit (the VX_DCHECK tier; see
  /// docs/DEVELOPING.md). Verifies the spec itself (ShardingSpec::Validate),
  /// that the set holds exactly `spec().num_shards` non-null shard tables
  /// each passing Table::CheckInvariants, and — the placement contract —
  /// that every row of every shard actually hashes to that shard (NULL keys
  /// to shard 0). Catches ReplaceShard callers that break the "rows still
  /// belong to the shard" obligation. O(total rows); call behind
  /// VX_DCHECK_OK.
  Status CheckInvariants() const;

 private:
  ShardingSpec spec_;
  int key_column_ = 0;
  std::vector<TablePtr> shards_;
};

}  // namespace vertexica

#endif  // VERTEXICA_STORAGE_PARTITION_H_
