/// \file partition.h
/// \brief Hash partitioning of tables.
///
/// §2.3 "Vertex Batching": Vertexica hash-partitions the vertex/edge/message
/// union on vertex id into a fixed number of partitions, each processed
/// serially by one worker.

#ifndef VERTEXICA_STORAGE_PARTITION_H_
#define VERTEXICA_STORAGE_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "storage/table.h"

namespace vertexica {

/// \brief Partition id of an int64 key for `num_partitions` buckets.
inline int PartitionOf(int64_t key, int num_partitions) {
  return static_cast<int>(HashInt64(static_cast<uint64_t>(key)) %
                          static_cast<uint64_t>(num_partitions));
}

/// \brief Splits `table` into `num_partitions` tables by hashing the int64
/// column `key_column`. Row order within a partition preserves input order.
std::vector<Table> HashPartition(const Table& table, int key_column,
                                 int num_partitions);

}  // namespace vertexica

#endif  // VERTEXICA_STORAGE_PARTITION_H_
