#include "storage/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace vertexica {

namespace {

/// Splits one CSV record honouring double-quoted fields ("" escapes a
/// quote inside a quoted field).
std::vector<std::string> SplitRecord(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"' && current.empty()) {
      quoted = true;
    } else if (c == delim) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

bool ParsesAsInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParsesAsDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParsesAsBool(const std::string& s, bool* out) {
  if (s == "true" || s == "TRUE" || s == "True") {
    *out = true;
    return true;
  }
  if (s == "false" || s == "FALSE" || s == "False") {
    *out = false;
    return true;
  }
  return false;
}

struct RawCsv {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

Result<RawCsv> Tokenize(const std::string& text, const CsvOptions& options) {
  RawCsv raw;
  std::istringstream in(text);
  std::string line;
  bool saw_header = !options.has_header;
  size_t width = 0;
  int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto fields = SplitRecord(line, options.delimiter);
    if (!saw_header) {
      raw.header = std::move(fields);
      width = raw.header.size();
      saw_header = true;
      continue;
    }
    if (width == 0) width = fields.size();
    if (fields.size() != width) {
      return Status::IoError(StringFormat(
          "csv: line %lld has %zu fields, expected %zu",
          static_cast<long long>(lineno), fields.size(), width));
    }
    raw.rows.push_back(std::move(fields));
  }
  if (raw.header.empty()) {
    for (size_t c = 0; c < width; ++c) {
      raw.header.push_back(StringFormat("c%zu", c));
    }
  }
  return raw;
}

bool IsNull(const std::string& field, const CsvOptions& options) {
  return field.empty() || field == options.null_token;
}

}  // namespace

Result<Table> ParseCsv(const std::string& text, const CsvOptions& options) {
  VX_ASSIGN_OR_RETURN(RawCsv raw, Tokenize(text, options));
  const size_t width = raw.header.size();

  // Infer each column's type from the most specific type all rows admit.
  Schema schema;
  for (size_t c = 0; c < width; ++c) {
    bool all_int = true;
    bool all_double = true;
    bool all_bool = true;
    bool any_value = false;
    for (const auto& row : raw.rows) {
      const std::string& f = row[c];
      if (IsNull(f, options)) continue;
      any_value = true;
      int64_t i;
      double d;
      bool b;
      if (!ParsesAsInt(f, &i)) all_int = false;
      if (!ParsesAsDouble(f, &d)) all_double = false;
      if (!ParsesAsBool(f, &b)) all_bool = false;
    }
    DataType type = DataType::kString;
    if (any_value) {
      if (all_int) {
        type = DataType::kInt64;
      } else if (all_double) {
        type = DataType::kDouble;
      } else if (all_bool) {
        type = DataType::kBool;
      }
    }
    schema.AddField({raw.header[c], type});
  }

  Table table(schema);
  for (const auto& row : raw.rows) {
    std::vector<Value> values;
    values.reserve(width);
    for (size_t c = 0; c < width; ++c) {
      const std::string& f = row[c];
      if (IsNull(f, options)) {
        values.push_back(Value::Null());
        continue;
      }
      switch (schema.field(static_cast<int>(c)).type) {
        case DataType::kInt64: {
          int64_t v = 0;
          ParsesAsInt(f, &v);
          values.push_back(Value(v));
          break;
        }
        case DataType::kDouble: {
          double v = 0;
          ParsesAsDouble(f, &v);
          values.push_back(Value(v));
          break;
        }
        case DataType::kBool: {
          bool v = false;
          ParsesAsBool(f, &v);
          values.push_back(Value(v));
          break;
        }
        case DataType::kString:
          values.push_back(Value(f));
          break;
      }
    }
    VX_RETURN_NOT_OK(table.AppendRow(values));
  }
  return table;
}

Result<Table> ParseCsvWithSchema(const std::string& text, const Schema& schema,
                                 const CsvOptions& options) {
  VX_ASSIGN_OR_RETURN(RawCsv raw, Tokenize(text, options));
  if (static_cast<int>(raw.header.size()) != schema.num_fields()) {
    return Status::InvalidArgument(StringFormat(
        "csv: %zu columns, schema expects %d", raw.header.size(),
        schema.num_fields()));
  }
  Schema named = schema;
  if (options.has_header) {
    named = schema.WithNames(raw.header);
  }
  Table table(named);
  for (const auto& row : raw.rows) {
    std::vector<Value> values;
    for (int c = 0; c < named.num_fields(); ++c) {
      const std::string& f = row[static_cast<size_t>(c)];
      if (IsNull(f, options)) {
        values.push_back(Value::Null());
        continue;
      }
      switch (named.field(c).type) {
        case DataType::kInt64: {
          int64_t v = 0;
          if (!ParsesAsInt(f, &v)) {
            return Status::TypeError("csv: '" + f + "' is not an INT64");
          }
          values.push_back(Value(v));
          break;
        }
        case DataType::kDouble: {
          double v = 0;
          if (!ParsesAsDouble(f, &v)) {
            return Status::TypeError("csv: '" + f + "' is not a DOUBLE");
          }
          values.push_back(Value(v));
          break;
        }
        case DataType::kBool: {
          bool v = false;
          if (!ParsesAsBool(f, &v)) {
            return Status::TypeError("csv: '" + f + "' is not a BOOL");
          }
          values.push_back(Value(v));
          break;
        }
        case DataType::kString:
          values.push_back(Value(f));
          break;
      }
    }
    VX_RETURN_NOT_OK(table.AppendRow(values));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), options);
}

std::string ToCsv(const Table& table, const CsvOptions& options) {
  std::ostringstream out;
  auto WriteField = [&](const std::string& s) {
    const bool needs_quotes =
        s.find(options.delimiter) != std::string::npos ||
        s.find('"') != std::string::npos || s.find('\n') != std::string::npos;
    if (!needs_quotes) {
      out << s;
      return;
    }
    out << '"';
    for (char c : s) {
      if (c == '"') out << '"';
      out << c;
    }
    out << '"';
  };
  if (options.has_header) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      WriteField(table.schema().field(c).name);
    }
    out << '\n';
  }
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      const Column& col = table.column(c);
      if (col.IsNull(r)) {
        out << options.null_token;
        continue;
      }
      if (col.type() == DataType::kDouble) {
        // Round-trippable formatting (checkpoint/recovery must be
        // lossless; Value::ToString renders at display precision).
        out << StringFormat("%.17g", col.GetDouble(r));
        continue;
      }
      Value v = col.GetValue(r);
      WriteField(v.is_string() ? v.string_value() : v.ToString());
    }
    out << '\n';
  }
  return out.str();
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out << ToCsv(table, options);
  if (!out.good()) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace vertexica
