#include "storage/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace vertexica {

namespace {

bool ParsesAsInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParsesAsDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParsesAsBool(const std::string& s, bool* out) {
  if (s == "true" || s == "TRUE" || s == "True") {
    *out = true;
    return true;
  }
  if (s == "false" || s == "FALSE" || s == "False") {
    *out = false;
    return true;
  }
  return false;
}

struct RawCsv {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Tokenizes the whole text in one pass with RFC-4180 quoting: a quoted
/// field may contain the delimiter, escaped quotes ("") and *newlines*, so
/// records are assembled across lines rather than split by std::getline
/// first (which manufactured spurious "line N has K fields" errors — or
/// silently corrupt rows — for any quoted field with an embedded newline).
/// Malformed quoting is an IoError instead of being accepted as literal
/// text: a bare quote inside an unquoted field (`a"b`), characters after a
/// closing quote (`"ab"x`), and a quote left unterminated at end of input.
Result<RawCsv> Tokenize(const std::string& text, const CsvOptions& options) {
  RawCsv raw;
  bool saw_header = !options.has_header;
  size_t width = 0;

  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  bool after_quote = false;    // just consumed a closing quote
  bool record_has_data = false;
  int64_t lineno = 1;          // current physical line (for errors)
  int64_t record_line = 1;     // line the current record started on
  int64_t quote_line = 1;      // line of the last opening quote

  auto end_field = [&] {
    fields.push_back(std::move(current));
    current.clear();
    after_quote = false;
  };
  auto end_record = [&]() -> Status {
    if (!record_has_data) return Status::OK();  // blank line
    end_field();
    std::vector<std::string> record = std::move(fields);
    fields.clear();
    record_has_data = false;
    if (!saw_header) {
      raw.header = std::move(record);
      width = raw.header.size();
      saw_header = true;
      return Status::OK();
    }
    if (width == 0) width = record.size();
    if (record.size() != width) {
      return Status::IoError(StringFormat(
          "csv: line %lld has %zu fields, expected %zu",
          static_cast<long long>(record_line), record.size(), width));
    }
    raw.rows.push_back(std::move(record));
    return Status::OK();
  };

  for (size_t pos = 0; pos < text.size(); ++pos) {
    const char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          current += '"';  // "" escapes a quote
          ++pos;
        } else {
          in_quotes = false;
          after_quote = true;
        }
      } else {
        if (c == '\n') ++lineno;
        current += c;  // delimiters and newlines are literal when quoted
      }
      continue;
    }
    if (c == '"') {
      if (current.empty() && !after_quote) {
        in_quotes = true;
        quote_line = lineno;
        record_has_data = true;
      } else {
        return Status::IoError(StringFormat(
            "csv: line %lld: unexpected '\"' inside an unquoted field "
            "(quote the whole field and escape quotes as \"\")",
            static_cast<long long>(lineno)));
      }
    } else if (c == options.delimiter) {
      end_field();
      record_has_data = true;
    } else if (c == '\n' || (c == '\r' && (pos + 1 >= text.size() ||
                                           text[pos + 1] == '\n'))) {
      if (c == '\r' && pos + 1 < text.size()) ++pos;  // CRLF
      VX_RETURN_NOT_OK(end_record());
      ++lineno;
      record_line = lineno;
    } else if (after_quote) {
      return Status::IoError(StringFormat(
          "csv: line %lld: unexpected character after closing quote",
          static_cast<long long>(lineno)));
    } else {
      current += c;
      record_has_data = true;
    }
  }
  if (in_quotes) {
    return Status::IoError(StringFormat(
        "csv: unterminated quoted field starting at line %lld",
        static_cast<long long>(quote_line)));
  }
  VX_RETURN_NOT_OK(end_record());  // final record without trailing newline

  if (raw.header.empty()) {
    for (size_t c = 0; c < width; ++c) {
      raw.header.push_back(StringFormat("c%zu", c));
    }
  }
  return raw;
}

bool IsNull(const std::string& field, const CsvOptions& options) {
  return field.empty() || field == options.null_token;
}

}  // namespace

Result<Table> ParseCsv(const std::string& text, const CsvOptions& options) {
  VX_ASSIGN_OR_RETURN(RawCsv raw, Tokenize(text, options));
  const size_t width = raw.header.size();

  // Infer each column's type from the most specific type all rows admit.
  Schema schema;
  for (size_t c = 0; c < width; ++c) {
    bool all_int = true;
    bool all_double = true;
    bool all_bool = true;
    bool any_value = false;
    for (const auto& row : raw.rows) {
      const std::string& f = row[c];
      if (IsNull(f, options)) continue;
      any_value = true;
      int64_t i;
      double d;
      bool b;
      if (!ParsesAsInt(f, &i)) all_int = false;
      if (!ParsesAsDouble(f, &d)) all_double = false;
      if (!ParsesAsBool(f, &b)) all_bool = false;
    }
    DataType type = DataType::kString;
    if (any_value) {
      if (all_int) {
        type = DataType::kInt64;
      } else if (all_double) {
        type = DataType::kDouble;
      } else if (all_bool) {
        type = DataType::kBool;
      }
    }
    schema.AddField({raw.header[c], type});
  }

  Table table(schema);
  for (const auto& row : raw.rows) {
    std::vector<Value> values;
    values.reserve(width);
    for (size_t c = 0; c < width; ++c) {
      const std::string& f = row[c];
      if (IsNull(f, options)) {
        values.push_back(Value::Null());
        continue;
      }
      switch (schema.field(static_cast<int>(c)).type) {
        case DataType::kInt64: {
          int64_t v = 0;
          ParsesAsInt(f, &v);
          values.push_back(Value(v));
          break;
        }
        case DataType::kDouble: {
          double v = 0;
          ParsesAsDouble(f, &v);
          values.push_back(Value(v));
          break;
        }
        case DataType::kBool: {
          bool v = false;
          ParsesAsBool(f, &v);
          values.push_back(Value(v));
          break;
        }
        case DataType::kString:
          values.push_back(Value(f));
          break;
      }
    }
    VX_RETURN_NOT_OK(table.AppendRow(values));
  }
  return table;
}

Result<Table> ParseCsvWithSchema(const std::string& text, const Schema& schema,
                                 const CsvOptions& options) {
  VX_ASSIGN_OR_RETURN(RawCsv raw, Tokenize(text, options));
  if (static_cast<int>(raw.header.size()) != schema.num_fields()) {
    return Status::InvalidArgument(StringFormat(
        "csv: %zu columns, schema expects %d", raw.header.size(),
        schema.num_fields()));
  }
  Schema named = schema;
  if (options.has_header) {
    named = schema.WithNames(raw.header);
  }
  Table table(named);
  for (const auto& row : raw.rows) {
    std::vector<Value> values;
    for (int c = 0; c < named.num_fields(); ++c) {
      const std::string& f = row[static_cast<size_t>(c)];
      if (IsNull(f, options)) {
        values.push_back(Value::Null());
        continue;
      }
      switch (named.field(c).type) {
        case DataType::kInt64: {
          int64_t v = 0;
          if (!ParsesAsInt(f, &v)) {
            return Status::TypeError("csv: '" + f + "' is not an INT64");
          }
          values.push_back(Value(v));
          break;
        }
        case DataType::kDouble: {
          double v = 0;
          if (!ParsesAsDouble(f, &v)) {
            return Status::TypeError("csv: '" + f + "' is not a DOUBLE");
          }
          values.push_back(Value(v));
          break;
        }
        case DataType::kBool: {
          bool v = false;
          if (!ParsesAsBool(f, &v)) {
            return Status::TypeError("csv: '" + f + "' is not a BOOL");
          }
          values.push_back(Value(v));
          break;
        }
        case DataType::kString:
          values.push_back(Value(f));
          break;
      }
    }
    VX_RETURN_NOT_OK(table.AppendRow(values));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), options);
}

std::string ToCsv(const Table& table, const CsvOptions& options) {
  std::ostringstream out;
  auto WriteField = [&](const std::string& s) {
    const bool needs_quotes =
        s.find(options.delimiter) != std::string::npos ||
        s.find('"') != std::string::npos || s.find('\n') != std::string::npos;
    if (!needs_quotes) {
      out << s;
      return;
    }
    out << '"';
    for (char c : s) {
      if (c == '"') out << '"';
      out << c;
    }
    out << '"';
  };
  if (options.has_header) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      WriteField(table.schema().field(c).name);
    }
    out << '\n';
  }
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      const Column& col = table.column(c);
      if (col.IsNull(r)) {
        out << options.null_token;
        continue;
      }
      if (col.type() == DataType::kDouble) {
        // Round-trippable formatting (checkpoint/recovery must be
        // lossless; Value::ToString renders at display precision).
        out << StringFormat("%.17g", col.GetDouble(r));
        continue;
      }
      Value v = col.GetValue(r);
      WriteField(v.is_string() ? v.string_value() : v.ToString());
    }
    out << '\n';
  }
  return out.str();
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out << ToCsv(table, options);
  if (!out.good()) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace vertexica
