/// \file value.h
/// \brief A single dynamically-typed SQL value (used at row granularity).

#ifndef VERTEXICA_STORAGE_VALUE_H_
#define VERTEXICA_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "storage/data_type.h"

namespace vertexica {

/// \brief A nullable, dynamically typed scalar.
///
/// `Value` is the row-oriented escape hatch of the engine: bulk operators
/// work directly on typed column vectors, while row construction, literals
/// and test assertions use `Value`.
class Value {
 public:
  /// Constructs a NULL value.
  Value() = default;

  Value(bool v) : data_(v) {}                     // NOLINT(runtime/explicit)
  Value(int64_t v) : data_(v) {}                  // NOLINT(runtime/explicit)
  Value(int v) : data_(static_cast<int64_t>(v)) {}  // NOLINT
  Value(double v) : data_(v) {}                   // NOLINT(runtime/explicit)
  Value(std::string v) : data_(std::move(v)) {}   // NOLINT(runtime/explicit)
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }

  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }

  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int64_value() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  const std::string& string_value() const { return std::get<std::string>(data_); }

  /// \brief Numeric coercion: int64 or double widened to double.
  /// Requires a numeric value.
  double AsDouble() const {
    return is_int64() ? static_cast<double>(int64_value()) : double_value();
  }

  /// \brief Deep equality: null == null, numerics compare by exact state
  /// (no int/double coercion).
  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// \brief Rendering for debugging and the console output display.
  std::string ToString() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

}  // namespace vertexica

#endif  // VERTEXICA_STORAGE_VALUE_H_
