/// \file graph.h
/// \brief Plain in-memory graph: the interchange format between generators,
/// the Vertexica loader, and the comparator systems (Giraph, GraphDB).

#ifndef VERTEXICA_GRAPHGEN_GRAPH_H_
#define VERTEXICA_GRAPHGEN_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vertexica {

/// \brief Edge-list graph with optional weights.
///
/// Vertices are dense ids [0, num_vertices). Parallel arrays `src`/`dst`/
/// `weight` hold the edges. `directed == false` means each stored edge
/// represents both directions (consumers expand as needed).
struct Graph {
  int64_t num_vertices = 0;
  std::vector<int64_t> src;
  std::vector<int64_t> dst;
  std::vector<double> weight;  // empty => all weights 1.0
  bool directed = true;

  int64_t num_edges() const { return static_cast<int64_t>(src.size()); }

  double EdgeWeight(int64_t e) const {
    return weight.empty() ? 1.0 : weight[static_cast<size_t>(e)];
  }

  /// \brief Appends an edge.
  void AddEdge(int64_t s, int64_t d, double w = 1.0);

  /// \brief Returns a directed version: for undirected inputs every edge is
  /// emitted in both directions; directed inputs are returned unchanged.
  Graph AsDirected() const;

  /// \brief Returns a graph with all reverse edges added (used to make
  /// message flow bidirectional for connected components / CF).
  Graph WithReverseEdges() const;

  /// \brief Out-degree of every vertex (on the directed view).
  std::vector<int64_t> OutDegrees() const;
};

/// \brief Compressed sparse row adjacency built from a Graph; the in-memory
/// comparators (Giraph engine) iterate this.
struct Csr {
  std::vector<int64_t> offsets;  // size num_vertices + 1
  std::vector<int64_t> neighbors;
  std::vector<double> weights;

  int64_t num_vertices() const {
    return static_cast<int64_t>(offsets.size()) - 1;
  }
  int64_t degree(int64_t v) const {
    return offsets[static_cast<size_t>(v) + 1] - offsets[static_cast<size_t>(v)];
  }

  static Csr Build(const Graph& g);
};

}  // namespace vertexica

#endif  // VERTEXICA_GRAPHGEN_GRAPH_H_
