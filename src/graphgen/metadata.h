/// \file metadata.h
/// \brief Synthetic node/edge metadata exactly as specified in §4 "Metadata".
///
/// Per node: 24 uniformly distributed integer attributes with cardinality
/// varying from 2 to 1e9, 8 zipfian integer attributes with varying skew,
/// 18 floating point attributes with varying value ranges, and 10 string
/// attributes with varying size and cardinality. Per edge: weight, creation
/// timestamp, and an edge type in {friend, family, classmate} chosen
/// uniformly at random.

#ifndef VERTEXICA_GRAPHGEN_METADATA_H_
#define VERTEXICA_GRAPHGEN_METADATA_H_

#include <cstdint>

#include "storage/table.h"
#include "graphgen/graph.h"

namespace vertexica {

/// \brief Counts from the paper's demo setup.
struct MetadataSpec {
  int num_uniform_ints = 24;
  int num_zipf_ints = 8;
  int num_floats = 18;
  int num_strings = 10;
};

/// \brief Table (id, u0..u23, z0..z7, f0..f17, s0..s9) with one row per
/// vertex. Columns follow the distribution spec above; deterministic per
/// seed.
Table GenerateNodeMetadata(int64_t num_vertices, uint64_t seed,
                           const MetadataSpec& spec = {});

/// \brief The paper's edge types.
inline constexpr const char* kEdgeTypes[] = {"friend", "family", "classmate"};
inline constexpr int kNumEdgeTypes = 3;

/// \brief Table (src, dst, weight, created, type) with one row per edge.
/// `created` is a unix-style timestamp spread over ~5 years so the temporal
/// demo scenarios (§4.2.3, "last one year") have signal.
Table GenerateEdgeMetadata(const Graph& g, uint64_t seed);

}  // namespace vertexica

#endif  // VERTEXICA_GRAPHGEN_METADATA_H_
