#include "graphgen/metadata.h"

#include <cmath>

#include "common/random.h"
#include "common/string_util.h"

namespace vertexica {

Table GenerateNodeMetadata(int64_t num_vertices, uint64_t seed,
                           const MetadataSpec& spec) {
  Schema schema;
  schema.AddField({"id", DataType::kInt64});
  for (int i = 0; i < spec.num_uniform_ints; ++i) {
    schema.AddField({StringFormat("u%d", i), DataType::kInt64});
  }
  for (int i = 0; i < spec.num_zipf_ints; ++i) {
    schema.AddField({StringFormat("z%d", i), DataType::kInt64});
  }
  for (int i = 0; i < spec.num_floats; ++i) {
    schema.AddField({StringFormat("f%d", i), DataType::kDouble});
  }
  for (int i = 0; i < spec.num_strings; ++i) {
    schema.AddField({StringFormat("s%d", i), DataType::kString});
  }

  Rng rng(seed);

  // Cardinalities for the uniform ints span 2 .. 1e9 geometrically (§4).
  std::vector<uint64_t> uniform_card(static_cast<size_t>(spec.num_uniform_ints));
  for (int i = 0; i < spec.num_uniform_ints; ++i) {
    const double t = spec.num_uniform_ints == 1
                         ? 0.0
                         : static_cast<double>(i) /
                               static_cast<double>(spec.num_uniform_ints - 1);
    uniform_card[static_cast<size_t>(i)] =
        static_cast<uint64_t>(std::pow(10.0, 0.30103 + t * (9.0 - 0.30103)));
  }
  // Zipf attributes with skew 0.5 .. 1.9 over a fixed domain.
  std::vector<ZipfDistribution> zipfs;
  zipfs.reserve(static_cast<size_t>(spec.num_zipf_ints));
  for (int i = 0; i < spec.num_zipf_ints; ++i) {
    const double s =
        0.5 + 1.4 * (spec.num_zipf_ints == 1
                         ? 0.0
                         : static_cast<double>(i) /
                               static_cast<double>(spec.num_zipf_ints - 1));
    zipfs.emplace_back(10000, s);
  }
  // Float ranges grow geometrically; string lengths/cardinalities vary.
  std::vector<std::vector<std::string>> string_pools(
      static_cast<size_t>(spec.num_strings));
  for (int i = 0; i < spec.num_strings; ++i) {
    const size_t pool = static_cast<size_t>(1) << (2 + i);  // 4 .. 2048
    const size_t len = 4 + 2 * static_cast<size_t>(i);
    auto& p = string_pools[static_cast<size_t>(i)];
    p.reserve(pool);
    for (size_t k = 0; k < pool; ++k) p.push_back(rng.NextString(len));
  }

  Table t(schema);
  for (int c = 0; c < t.num_columns(); ++c) {
    t.mutable_column(c)->Reserve(num_vertices);
  }
  for (int64_t v = 0; v < num_vertices; ++v) {
    int c = 0;
    t.mutable_column(c++)->AppendInt64(v);
    for (int i = 0; i < spec.num_uniform_ints; ++i) {
      t.mutable_column(c++)->AppendInt64(static_cast<int64_t>(
          rng.Uniform(uniform_card[static_cast<size_t>(i)])));
    }
    for (int i = 0; i < spec.num_zipf_ints; ++i) {
      t.mutable_column(c++)->AppendInt64(
          static_cast<int64_t>(zipfs[static_cast<size_t>(i)].Sample(&rng)));
    }
    for (int i = 0; i < spec.num_floats; ++i) {
      const double range = std::pow(10.0, i % 6);
      t.mutable_column(c++)->AppendDouble(rng.NextDouble() * range);
    }
    for (int i = 0; i < spec.num_strings; ++i) {
      const auto& pool = string_pools[static_cast<size_t>(i)];
      t.mutable_column(c++)->AppendString(pool[rng.Uniform(pool.size())]);
    }
  }
  // Fix up row count bookkeeping: we appended column-wise.
  Table out(schema);
  std::vector<Column> cols;
  cols.reserve(static_cast<size_t>(t.num_columns()));
  for (int c = 0; c < t.num_columns(); ++c) cols.push_back(t.column(c));
  auto made = Table::Make(schema, std::move(cols));
  VX_CHECK(made.ok());
  return std::move(made).MoveValueUnsafe();
}

Table GenerateEdgeMetadata(const Graph& g, uint64_t seed) {
  Rng rng(seed);
  Schema schema({{"src", DataType::kInt64},
                 {"dst", DataType::kInt64},
                 {"weight", DataType::kDouble},
                 {"created", DataType::kInt64},
                 {"type", DataType::kString}});
  // ~5 years of seconds ending at a fixed "now" so tests are deterministic.
  constexpr int64_t kNow = 1700000000;
  constexpr int64_t kFiveYears = 5LL * 365 * 24 * 3600;

  std::vector<Column> cols;
  cols.emplace_back(Column::FromInts(g.src));
  cols.emplace_back(Column::FromInts(g.dst));
  Column weight(DataType::kDouble);
  Column created(DataType::kInt64);
  Column type(DataType::kString);
  weight.Reserve(g.num_edges());
  created.Reserve(g.num_edges());
  type.Reserve(g.num_edges());
  for (int64_t e = 0; e < g.num_edges(); ++e) {
    weight.AppendDouble(g.EdgeWeight(e));
    created.AppendInt64(kNow - static_cast<int64_t>(rng.Uniform(kFiveYears)));
    type.AppendString(kEdgeTypes[rng.Uniform(kNumEdgeTypes)]);
  }
  cols.push_back(std::move(weight));
  cols.push_back(std::move(created));
  cols.push_back(std::move(type));
  auto made = Table::Make(schema, std::move(cols));
  VX_CHECK(made.ok());
  return std::move(made).MoveValueUnsafe();
}

}  // namespace vertexica
