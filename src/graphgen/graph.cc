#include "graphgen/graph.h"

#include <numeric>

#include "common/logging.h"

namespace vertexica {

void Graph::AddEdge(int64_t s, int64_t d, double w) {
  src.push_back(s);
  dst.push_back(d);
  const bool weighted = (w != 1.0) || !weight.empty();
  if (weighted && weight.empty()) {
    // First non-unit weight: back-fill earlier edges with the default.
    weight.assign(src.size() - 1, 1.0);
  }
  if (weighted) weight.push_back(w);
}

Graph Graph::AsDirected() const {
  if (directed) return *this;
  Graph out;
  out.num_vertices = num_vertices;
  out.directed = true;
  const int64_t m = num_edges();
  out.src.reserve(static_cast<size_t>(2 * m));
  out.dst.reserve(static_cast<size_t>(2 * m));
  if (!weight.empty()) out.weight.reserve(static_cast<size_t>(2 * m));
  for (int64_t e = 0; e < m; ++e) {
    const auto se = static_cast<size_t>(e);
    out.src.push_back(src[se]);
    out.dst.push_back(dst[se]);
    out.src.push_back(dst[se]);
    out.dst.push_back(src[se]);
    if (!weight.empty()) {
      out.weight.push_back(weight[se]);
      out.weight.push_back(weight[se]);
    }
  }
  return out;
}

Graph Graph::WithReverseEdges() const {
  Graph out = AsDirected();
  if (!directed) return out;  // undirected already expanded symmetrically
  const int64_t m = num_edges();
  for (int64_t e = 0; e < m; ++e) {
    const auto se = static_cast<size_t>(e);
    out.AddEdge(dst[se], src[se], EdgeWeight(e));
  }
  return out;
}

std::vector<int64_t> Graph::OutDegrees() const {
  const Graph g = AsDirected();
  std::vector<int64_t> deg(static_cast<size_t>(g.num_vertices), 0);
  for (int64_t s : g.src) deg[static_cast<size_t>(s)]++;
  return deg;
}

Csr Csr::Build(const Graph& graph) {
  const Graph g = graph.AsDirected();
  Csr csr;
  const auto n = static_cast<size_t>(g.num_vertices);
  csr.offsets.assign(n + 1, 0);
  for (int64_t s : g.src) {
    VX_DCHECK(s >= 0 && s < g.num_vertices);
    csr.offsets[static_cast<size_t>(s) + 1]++;
  }
  std::partial_sum(csr.offsets.begin(), csr.offsets.end(),
                   csr.offsets.begin());
  csr.neighbors.resize(g.src.size());
  csr.weights.resize(g.src.size());
  std::vector<int64_t> cursor(csr.offsets.begin(), csr.offsets.end() - 1);
  for (int64_t e = 0; e < g.num_edges(); ++e) {
    const auto s = static_cast<size_t>(g.src[static_cast<size_t>(e)]);
    const auto pos = static_cast<size_t>(cursor[s]++);
    csr.neighbors[pos] = g.dst[static_cast<size_t>(e)];
    csr.weights[pos] = g.EdgeWeight(e);
  }
  return csr;
}

}  // namespace vertexica
