/// \file datasets.h
/// \brief Named dataset presets matching the paper's evaluation graphs.
///
/// §2.3/Figure 2 uses Twitter (81K vertices, 1.7M edges), GPlus (107K,
/// 13.6M) and LiveJournal (4.8M, 68M) from SNAP. Presets generate RMAT
/// graphs with those dimensions, scaled by an optional factor so the full
/// benchmark suite completes quickly by default (see EXPERIMENTS.md).

#ifndef VERTEXICA_GRAPHGEN_DATASETS_H_
#define VERTEXICA_GRAPHGEN_DATASETS_H_

#include <string>
#include <vector>

#include "graphgen/graph.h"

namespace vertexica {

/// \brief The evaluation datasets of Figure 2.
enum class DatasetId { kTwitter, kGPlus, kLiveJournal };

/// \brief Human-readable name as printed in the paper's figures.
const char* DatasetName(DatasetId id);

/// \brief Paper-reported size of the dataset.
struct DatasetDims {
  int64_t num_vertices;
  int64_t num_edges;
};
DatasetDims DatasetDimensions(DatasetId id);

/// \brief Generates the preset at the given scale (1.0 = paper size).
/// Determinstic per (id, scale).
Graph MakeDataset(DatasetId id, double scale = 1.0);

/// \brief Reads the scale factor from VERTEXICA_BENCH_SCALE (default 0.05).
double BenchScaleFromEnv();

/// \brief All Figure-2 datasets in paper order.
std::vector<DatasetId> AllDatasets();

}  // namespace vertexica

#endif  // VERTEXICA_GRAPHGEN_DATASETS_H_
