/// \file generators.h
/// \brief Deterministic synthetic graph generators.
///
/// The paper evaluates on SNAP social graphs (Twitter, GPlus, LiveJournal),
/// which cannot be shipped here; these generators produce graphs with the
/// same |V|/|E| and a power-law degree profile so that every code path the
/// paper exercises (skewed fan-out, heavy message traffic, multi-superstep
/// propagation) is exercised identically. See DESIGN.md §2.

#ifndef VERTEXICA_GRAPHGEN_GENERATORS_H_
#define VERTEXICA_GRAPHGEN_GENERATORS_H_

#include <cstdint>

#include "common/random.h"
#include "graphgen/graph.h"

namespace vertexica {

/// \brief Erdős–Rényi G(n, m): m uniformly random directed edges.
Graph GenerateErdosRenyi(int64_t num_vertices, int64_t num_edges,
                         uint64_t seed);

/// \brief R-MAT recursive-matrix generator (Chakrabarti et al.), the
/// standard stand-in for social-network graphs. Defaults to the canonical
/// (a,b,c,d) = (0.57,0.19,0.19,0.05) parameters.
Graph GenerateRmat(int64_t num_vertices, int64_t num_edges, uint64_t seed,
                   double a = 0.57, double b = 0.19, double c = 0.19);

/// \brief Barabási–Albert preferential attachment with `edges_per_vertex`
/// out-edges per newcomer; yields a power-law in-degree distribution.
Graph GenerateBarabasiAlbert(int64_t num_vertices, int64_t edges_per_vertex,
                             uint64_t seed);

/// \brief Watts–Strogatz small-world ring (k nearest neighbours, rewiring
/// probability beta). Undirected.
Graph GenerateWattsStrogatz(int64_t num_vertices, int64_t k, double beta,
                            uint64_t seed);

/// \brief Random bipartite "users × items" rating graph for collaborative
/// filtering: edges carry ratings in [1, 5]. Users are ids
/// [0, num_users), items are [num_users, num_users + num_items).
Graph GenerateBipartite(int64_t num_users, int64_t num_items,
                        int64_t num_ratings, uint64_t seed);

/// \brief Assigns uniform random weights in [lo, hi] to all edges.
void AssignRandomWeights(Graph* g, double lo, double hi, uint64_t seed);

}  // namespace vertexica

#endif  // VERTEXICA_GRAPHGEN_GENERATORS_H_
