#include "graphgen/datasets.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "graphgen/generators.h"

namespace vertexica {

const char* DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kTwitter:
      return "Twitter";
    case DatasetId::kGPlus:
      return "GPlus";
    case DatasetId::kLiveJournal:
      return "LiveJournal";
  }
  return "?";
}

DatasetDims DatasetDimensions(DatasetId id) {
  // Sizes as stated in the paper (§2.3): Twitter (81K, 1.7M),
  // GPlus (107K, 13.6M), LiveJournal (4.8M, 68M).
  switch (id) {
    case DatasetId::kTwitter:
      return {81306, 1768149};
    case DatasetId::kGPlus:
      return {107614, 13673453};
    case DatasetId::kLiveJournal:
      return {4847571, 68993773};
  }
  return {0, 0};
}

Graph MakeDataset(DatasetId id, double scale) {
  VX_CHECK(scale > 0.0 && scale <= 1.0);
  const DatasetDims dims = DatasetDimensions(id);
  const int64_t n = std::max<int64_t>(
      64, static_cast<int64_t>(static_cast<double>(dims.num_vertices) * scale));
  const int64_t m = std::max<int64_t>(
      256, static_cast<int64_t>(static_cast<double>(dims.num_edges) * scale));
  const uint64_t seed = 0x5eed0000ULL + static_cast<uint64_t>(id);
  Graph g = GenerateRmat(n, m, seed);
  AssignRandomWeights(&g, 1.0, 10.0, seed ^ 0xabcdULL);
  return g;
}

double BenchScaleFromEnv() {
  const char* env = std::getenv("VERTEXICA_BENCH_SCALE");
  if (env == nullptr) return 0.05;
  const double v = std::atof(env);
  return (v > 0.0 && v <= 1.0) ? v : 0.05;
}

std::vector<DatasetId> AllDatasets() {
  return {DatasetId::kTwitter, DatasetId::kGPlus, DatasetId::kLiveJournal};
}

}  // namespace vertexica
