#include "graphgen/snap_io.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/string_util.h"

namespace vertexica {

namespace {

Result<Graph> ParseStream(std::istream& in) {
  Graph g;
  g.directed = true;
  // order-insensitive: keyed lookups only; dense ids are assigned in
  // first-appearance (file) order, never in map-iteration order.
  std::unordered_map<int64_t, int64_t> remap;
  auto Dense = [&](int64_t raw) {
    auto [it, inserted] = remap.emplace(raw, g.num_vertices);
    if (inserted) ++g.num_vertices;
    return it->second;
  };
  std::string line;
  int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream ls(trimmed);
    int64_t s = 0;
    int64_t d = 0;
    if (!(ls >> s >> d)) {
      return Status::IoError(
          StringFormat("snap parse error at line %lld: '%s'",
                       static_cast<long long>(lineno), trimmed.c_str()));
    }
    double w = 1.0;
    const bool has_weight = static_cast<bool>(ls >> w);
    // Sequence the remapping explicitly: argument evaluation order is
    // unspecified and ids must be densified in appearance order.
    const int64_t dense_src = Dense(s);
    const int64_t dense_dst = Dense(d);
    g.AddEdge(dense_src, dense_dst, has_weight ? w : 1.0);
  }
  return g;
}

}  // namespace

Result<Graph> ReadSnapEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open '" + path + "'");
  }
  return ParseStream(in);
}

Result<Graph> ParseSnapEdgeList(const std::string& text) {
  std::istringstream in(text);
  return ParseStream(in);
}

Status WriteSnapEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out << "# Vertexica edge list: " << g.num_vertices << " vertices, "
      << g.num_edges() << " edges\n";
  const bool weighted = !g.weight.empty();
  for (int64_t e = 0; e < g.num_edges(); ++e) {
    const auto se = static_cast<size_t>(e);
    out << g.src[se] << '\t' << g.dst[se];
    if (weighted) out << '\t' << g.weight[se];
    out << '\n';
  }
  if (!out.good()) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace vertexica
