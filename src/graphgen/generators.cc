#include "graphgen/generators.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vertexica {

Graph GenerateErdosRenyi(int64_t num_vertices, int64_t num_edges,
                         uint64_t seed) {
  VX_CHECK(num_vertices > 1);
  Rng rng(seed);
  Graph g;
  g.num_vertices = num_vertices;
  g.directed = true;
  g.src.reserve(static_cast<size_t>(num_edges));
  g.dst.reserve(static_cast<size_t>(num_edges));
  for (int64_t e = 0; e < num_edges; ++e) {
    const auto s =
        static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(num_vertices)));
    int64_t d =
        static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(num_vertices)));
    if (d == s) d = (d + 1) % num_vertices;  // no self loops
    g.src.push_back(s);
    g.dst.push_back(d);
  }
  return g;
}

Graph GenerateRmat(int64_t num_vertices, int64_t num_edges, uint64_t seed,
                   double a, double b, double c) {
  VX_CHECK(num_vertices > 1);
  VX_CHECK(a + b + c < 1.0);
  Rng rng(seed);
  int levels = 0;
  while ((int64_t{1} << levels) < num_vertices) ++levels;
  const int64_t n_pow2 = int64_t{1} << levels;

  Graph g;
  g.num_vertices = num_vertices;
  g.directed = true;
  g.src.reserve(static_cast<size_t>(num_edges));
  g.dst.reserve(static_cast<size_t>(num_edges));
  while (g.num_edges() < num_edges) {
    int64_t row = 0;
    int64_t col = 0;
    int64_t span = n_pow2;
    for (int l = 0; l < levels; ++l) {
      span >>= 1;
      // Add a little per-level noise, as recommended to avoid degenerate
      // staircases in the degree distribution.
      const double u = rng.NextDouble();
      if (u < a) {
        // top-left: nothing to add
      } else if (u < a + b) {
        col += span;
      } else if (u < a + b + c) {
        row += span;
      } else {
        row += span;
        col += span;
      }
    }
    if (row >= num_vertices || col >= num_vertices || row == col) continue;
    g.src.push_back(row);
    g.dst.push_back(col);
  }
  return g;
}

Graph GenerateBarabasiAlbert(int64_t num_vertices, int64_t edges_per_vertex,
                             uint64_t seed) {
  VX_CHECK(num_vertices > edges_per_vertex);
  Rng rng(seed);
  Graph g;
  g.num_vertices = num_vertices;
  g.directed = true;
  // `targets` holds one entry per edge endpoint; sampling uniformly from it
  // realizes preferential attachment.
  std::vector<int64_t> targets;
  // Seed clique over the first (m+1) vertices.
  for (int64_t v = 0; v <= edges_per_vertex; ++v) {
    for (int64_t u = 0; u < v; ++u) {
      g.src.push_back(v);
      g.dst.push_back(u);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  for (int64_t v = edges_per_vertex + 1; v < num_vertices; ++v) {
    std::vector<int64_t> chosen;
    while (static_cast<int64_t>(chosen.size()) < edges_per_vertex) {
      const int64_t t = targets[rng.Uniform(targets.size())];
      if (t != v &&
          std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
        chosen.push_back(t);
      }
    }
    for (int64_t t : chosen) {
      g.src.push_back(v);
      g.dst.push_back(t);
      targets.push_back(t);
      targets.push_back(v);
    }
  }
  return g;
}

Graph GenerateWattsStrogatz(int64_t num_vertices, int64_t k, double beta,
                            uint64_t seed) {
  VX_CHECK(k % 2 == 0 && k < num_vertices);
  Rng rng(seed);
  Graph g;
  g.num_vertices = num_vertices;
  g.directed = false;
  for (int64_t v = 0; v < num_vertices; ++v) {
    for (int64_t j = 1; j <= k / 2; ++j) {
      int64_t target = (v + j) % num_vertices;
      if (rng.NextDouble() < beta) {
        // Rewire to a uniformly random non-self target.
        target = static_cast<int64_t>(
            rng.Uniform(static_cast<uint64_t>(num_vertices)));
        if (target == v) target = (target + 1) % num_vertices;
      }
      g.src.push_back(v);
      g.dst.push_back(target);
    }
  }
  return g;
}

Graph GenerateBipartite(int64_t num_users, int64_t num_items,
                        int64_t num_ratings, uint64_t seed) {
  Rng rng(seed);
  Graph g;
  g.num_vertices = num_users + num_items;
  g.directed = true;
  // Skewed popularity on both sides (zipf over users and items).
  ZipfDistribution user_dist(static_cast<uint64_t>(num_users), 0.8);
  ZipfDistribution item_dist(static_cast<uint64_t>(num_items), 1.0);
  g.weight.reserve(static_cast<size_t>(num_ratings));
  for (int64_t e = 0; e < num_ratings; ++e) {
    const auto u = static_cast<int64_t>(user_dist.Sample(&rng) - 1);
    const auto i =
        num_users + static_cast<int64_t>(item_dist.Sample(&rng) - 1);
    const double rating = 1.0 + std::floor(rng.NextDouble() * 5.0);
    g.src.push_back(u);
    g.dst.push_back(i);
    g.weight.push_back(std::min(rating, 5.0));
  }
  return g;
}

void AssignRandomWeights(Graph* g, double lo, double hi, uint64_t seed) {
  Rng rng(seed);
  g->weight.resize(g->src.size());
  for (auto& w : g->weight) w = lo + (hi - lo) * rng.NextDouble();
}

}  // namespace vertexica
