/// \file snap_io.h
/// \brief SNAP edge-list text I/O.
///
/// The paper loads its datasets from http://snap.stanford.edu/data/ in the
/// standard "src<TAB>dst" text format; this reader/writer supports the same
/// format (with '#' comment lines) so users can drop in real SNAP files.

#ifndef VERTEXICA_GRAPHGEN_SNAP_IO_H_
#define VERTEXICA_GRAPHGEN_SNAP_IO_H_

#include <string>

#include "common/result.h"
#include "graphgen/graph.h"

namespace vertexica {

/// \brief Parses a SNAP edge list. Vertex ids are remapped to a dense
/// [0, n) range in first-appearance order. An optional third column is read
/// as the edge weight.
Result<Graph> ReadSnapEdgeList(const std::string& path);

/// \brief Parses SNAP-format text from memory (same syntax as the file
/// reader; useful for tests).
Result<Graph> ParseSnapEdgeList(const std::string& text);

/// \brief Writes "src\tdst[\tweight]" lines with a header comment.
Status WriteSnapEdgeList(const Graph& g, const std::string& path);

}  // namespace vertexica

#endif  // VERTEXICA_GRAPHGEN_SNAP_IO_H_
