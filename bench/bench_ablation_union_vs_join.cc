/// \file bench_ablation_union_vs_join.cc
/// \brief §2.3 "Table Unions" ablation: the union-input plan versus the
/// traditional 3-way-join plan for assembling worker input. The paper
/// argues the join "could be very expensive and kill the performance";
/// this bench quantifies that on PageRank (dense messages — worst case for
/// the join fan-out) and SSSP (sparse messages).

#include "bench_common.h"

#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"

namespace vertexica {
namespace bench {
namespace {

FigureTable& TableUj() {
  static FigureTable table("Ablation (Sec 2.3): table unions vs 3-way join");
  return table;
}

void RunPr(benchmark::State& state, DatasetId id, bool use_union) {
  const Graph& g = GetDataset(id);
  VertexicaOptions opts;
  opts.use_union_input = use_union;
  double seconds = 0;
  for (auto _ : state) {
    Catalog cat;
    RunStats stats;
    VX_CHECK(RunPageRank(&cat, g, 5, 0.85, opts, &stats).ok());
    seconds = stats.total_seconds;
    state.SetIterationTime(seconds);
    // Phase breakdown shows *where* the join plan loses: input assembly
    // (the 3-way join fan-out) and worker input size.
    double input_s = 0;
    double worker_s = 0;
    int64_t input_rows = 0;
    for (const auto& s : stats.supersteps) {
      input_s += s.input_seconds;
      worker_s += s.worker_seconds;
      input_rows += s.input_rows;
    }
    state.counters["input_assembly_s"] = input_s;
    state.counters["worker_s"] = worker_s;
    state.counters["input_rows"] = static_cast<double>(input_rows);
  }
  TableUj().Record(std::string(DatasetName(id)) + " PR",
                   use_union ? "union" : "join", seconds);
}

void RunSssp(benchmark::State& state, DatasetId id, bool use_union) {
  const Graph& g = GetDataset(id);
  VertexicaOptions opts;
  opts.use_union_input = use_union;
  double seconds = 0;
  for (auto _ : state) {
    Catalog cat;
    RunStats stats;
    VX_CHECK(RunShortestPaths(&cat, g, 0, opts, &stats).ok());
    seconds = stats.total_seconds;
    state.SetIterationTime(seconds);
  }
  TableUj().Record(std::string(DatasetName(id)) + " SSSP",
                   use_union ? "union" : "join", seconds);
}

void BM_PrUnion(benchmark::State& s) { RunPr(s, DatasetId::kTwitter, true); }
void BM_PrJoin(benchmark::State& s) { RunPr(s, DatasetId::kTwitter, false); }
void BM_SsspUnion(benchmark::State& s) {
  RunSssp(s, DatasetId::kTwitter, true);
}
void BM_SsspJoin(benchmark::State& s) {
  RunSssp(s, DatasetId::kTwitter, false);
}

BENCHMARK(BM_PrUnion)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PrJoin)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SsspUnion)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SsspJoin)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace vertexica

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::vertexica::bench::TableUj().Print();
  return 0;
}
