/// \file bench_ablation_workers.cc
/// \brief §2.3 "Parallel Workers" ablation, driven end-to-end through the
/// Engine facade: PageRank runtime as the `RunRequest::threads` knob grows
/// ("in practice, we have as many workers as the number of cores"). The
/// knob controls the whole stack — morsel-parallel relational operators,
/// worker-UDF instances, and the superstep split phases — so this is the
/// ablation for the morsel executor, not just the UDF pool.

#include <thread>

#include "bench_common.h"

namespace vertexica {
namespace bench {
namespace {

FigureTable& TableW() {
  static FigureTable table("Ablation (Sec 2.3): parallel workers (threads)");
  return table;
}

std::string ThreadsLabel(int threads) {
  return std::to_string(threads) + " threads";
}

void BM_Threads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  Engine& engine = EngineFor(DatasetId::kGPlus);
  RunRequest request = MakeFigureRequest(kPageRank);
  request.backend = kVertexicaBackendId;
  request.iterations = 5;
  request.threads = threads;
  // Fix the partition count so only parallelism varies, not batching.
  request.vertexica.num_partitions =
      2 * static_cast<int>(std::thread::hardware_concurrency());
  double seconds = 0;
  for (auto _ : state) {
    auto result = engine.Run(request);
    VX_CHECK(result.ok()) << result.status().ToString();
    seconds = result->stats.total_seconds;
    state.SetIterationTime(seconds);
    MaybeDumpStatsJson("workers_pr_t" + std::to_string(threads),
                       result->stats);
  }
  TableW().Record("GPlus PR", ThreadsLabel(threads), seconds);
}
BENCHMARK(BM_Threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

/// Also sweep the hand-written SQL backend: the §2.3 claim is that *table
/// operators* scale, so the join/aggregate-heavy SQL PageRank must speed up
/// too, not just the worker UDFs.
void BM_ThreadsSql(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  Engine& engine = EngineFor(DatasetId::kGPlus);
  RunRequest request = MakeFigureRequest(kPageRank);
  request.backend = kSqlGraphBackendId;
  request.iterations = 5;
  request.threads = threads;
  double seconds = 0;
  for (auto _ : state) {
    auto result = engine.Run(request);
    VX_CHECK(result.ok()) << result.status().ToString();
    seconds = result->stats.total_seconds;
    state.SetIterationTime(seconds);
  }
  TableW().Record("GPlus PR(SQL)", ThreadsLabel(threads), seconds);
}
BENCHMARK(BM_ThreadsSql)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

void PrintSpeedups() {
  const double base_vx = TableW().Lookup("GPlus PR", ThreadsLabel(1));
  const double base_sql = TableW().Lookup("GPlus PR(SQL)", ThreadsLabel(1));
  std::printf("Speedup vs 1 thread:\n");
  for (int threads : {2, 4, 8, 16}) {
    const double vx = TableW().Lookup("GPlus PR", ThreadsLabel(threads));
    const double sql = TableW().Lookup("GPlus PR(SQL)", ThreadsLabel(threads));
    std::printf("  %2d threads: vertexica %s  sql %s\n", threads,
                vx > 0 && base_vx > 0
                    ? (std::to_string(base_vx / vx) + "x").c_str()
                    : "n/a",
                sql > 0 && base_sql > 0
                    ? (std::to_string(base_sql / sql) + "x").c_str()
                    : "n/a");
  }
}

}  // namespace
}  // namespace bench
}  // namespace vertexica

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::vertexica::bench::TableW().Print();
  ::vertexica::bench::PrintSpeedups();
  ::vertexica::bench::TableW().WriteJson("BENCH_ablation_workers.json");
  return 0;
}
