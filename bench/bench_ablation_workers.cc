/// \file bench_ablation_workers.cc
/// \brief §2.3 "Parallel Workers" ablation: PageRank runtime as the number
/// of parallel worker UDF instances grows ("in practice, we have as many
/// workers as the number of cores").

#include <thread>

#include "bench_common.h"

#include "algorithms/pagerank.h"

namespace vertexica {
namespace bench {
namespace {

FigureTable& TableW() {
  static FigureTable table("Ablation (Sec 2.3): parallel workers");
  return table;
}

void BM_Workers(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const Graph& g = GetDataset(DatasetId::kGPlus);
  VertexicaOptions opts;
  opts.num_workers = workers;
  // Fix the partition count so only parallelism varies, not batching.
  opts.num_partitions =
      2 * static_cast<int>(std::thread::hardware_concurrency());
  double seconds = 0;
  for (auto _ : state) {
    Catalog cat;
    RunStats stats;
    VX_CHECK(RunPageRank(&cat, g, 5, 0.85, opts, &stats).ok());
    seconds = stats.total_seconds;
    state.SetIterationTime(seconds);
  }
  TableW().Record("GPlus PR", std::to_string(workers) + " workers",
                  seconds);
}
BENCHMARK(BM_Workers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace vertexica

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::vertexica::bench::TableW().Print();
  return 0;
}
