/// \file bench_fig2b_shortest_paths.cc
/// \brief Reproduces Figure 2(b): single-source shortest paths runtime on
/// Twitter / GPlus / LiveJournal for the four systems.
///
/// Expected shape (paper numbers at scale 1.0): GraphDB 395.6 s on Twitter
/// (and absent on larger graphs); Giraph 43.7 s on Twitter vs Vertexica
/// 10.4 s (>4x); Vertexica (SQL) fastest everywhere (2.96 s Twitter,
/// 54.4 s LiveJournal).

#include "bench_common.h"

#include "algorithms/sssp.h"
#include "common/timer.h"
#include "giraph/bsp_engine.h"
#include "graphdb/gdb_algorithms.h"
#include "sqlgraph/sql_shortest_paths.h"

namespace vertexica {
namespace bench {
namespace {

constexpr int64_t kSource = 0;

FigureTable& Table2b() {
  static FigureTable table("Figure 2(b): Shortest Paths");
  return table;
}

void BM_GraphDatabase(benchmark::State& state, DatasetId id) {
  const Graph& g = GetDataset(id);
  graphdb::GraphDb db;
  VX_CHECK_OK(db.LoadGraph(g));
  double seconds = 0;
  for (auto _ : state) {
    graphdb::GdbRunStats stats;
    stats.access_latency_ns = GdbAccessLatencyNs();
    auto dist = graphdb::GdbShortestPaths(&db, kSource, &stats);
    VX_CHECK(dist.ok()) << dist.status().ToString();
    benchmark::DoNotOptimize(dist->data());
    seconds = stats.total_seconds;  // measured + modeled record I/O
    state.SetIterationTime(seconds);
  }
  Table2b().Record(DatasetName(id), "GraphDatabase", seconds);
}

void BM_Giraph(benchmark::State& state, DatasetId id) {
  const Graph& g = GetDataset(id);
  double seconds = 0;
  for (auto _ : state) {
    ShortestPathProgram program(kSource);
    GiraphOptions opts;
    opts.startup_overhead_ms = GiraphStartupMs();
    opts.per_message_overhead_ns = GiraphPerMessageNs();
    BspEngine engine(g, &program, opts);
    GiraphStats stats;
    VX_CHECK_OK(engine.Run(&stats));
    seconds = stats.total_seconds;
    state.SetIterationTime(seconds);
  }
  Table2b().Record(DatasetName(id), "Giraph", seconds);
}

void BM_VertexicaVertex(benchmark::State& state, DatasetId id) {
  const Graph& g = GetDataset(id);
  double seconds = 0;
  for (auto _ : state) {
    Catalog catalog;
    RunStats stats;
    auto dist = RunShortestPaths(&catalog, g, kSource, {}, &stats);
    VX_CHECK(dist.ok()) << dist.status().ToString();
    benchmark::DoNotOptimize(dist->data());
    seconds = stats.total_seconds;
    state.SetIterationTime(seconds);
  }
  Table2b().Record(DatasetName(id), "Vertexica", seconds);
}

void BM_VertexicaSql(benchmark::State& state, DatasetId id) {
  const Graph& g = GetDataset(id);
  double seconds = 0;
  for (auto _ : state) {
    WallTimer timer;
    auto dist = SqlShortestPaths(g, kSource);
    VX_CHECK(dist.ok()) << dist.status().ToString();
    benchmark::DoNotOptimize(dist->data());
    seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  Table2b().Record(DatasetName(id), "Vertexica(SQL)", seconds);
}

BENCHMARK_CAPTURE(BM_GraphDatabase, Twitter, DatasetId::kTwitter)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_CAPTURE(BM_Giraph, Twitter, DatasetId::kTwitter)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Giraph, GPlus, DatasetId::kGPlus)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Giraph, LiveJournal, DatasetId::kLiveJournal)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_CAPTURE(BM_VertexicaVertex, Twitter, DatasetId::kTwitter)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_VertexicaVertex, GPlus, DatasetId::kGPlus)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_VertexicaVertex, LiveJournal, DatasetId::kLiveJournal)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_CAPTURE(BM_VertexicaSql, Twitter, DatasetId::kTwitter)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_VertexicaSql, GPlus, DatasetId::kGPlus)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_VertexicaSql, LiveJournal, DatasetId::kLiveJournal)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace vertexica

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::vertexica::bench::Table2b().Print();
  return 0;
}
