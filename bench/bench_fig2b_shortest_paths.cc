/// \file bench_fig2b_shortest_paths.cc
/// \brief Reproduces Figure 2(b): single-source shortest paths runtime on
/// Twitter / GPlus / LiveJournal for the four systems, dispatched through
/// the `vertexica::Engine` facade with one shared `RunRequest`.
///
/// Expected shape (paper numbers at scale 1.0): GraphDB 395.6 s on Twitter
/// (and absent on larger graphs); Giraph 43.7 s on Twitter vs Vertexica
/// 10.4 s (>4x); Vertexica (SQL) fastest everywhere (2.96 s Twitter,
/// 54.4 s LiveJournal).
///
/// Timing semantics: one-time backend preparation (Engine::Prepare) is
/// outside the measured window for every backend; see bench_fig2a's note.

#include "bench_common.h"

namespace vertexica {
namespace bench {
namespace {

constexpr int64_t kSource = 0;

FigureTable& Table2b() {
  static FigureTable table("Figure 2(b): Shortest Paths");
  return table;
}

void BM_ShortestPaths(benchmark::State& state, DatasetId id,
                      const std::string& backend) {
  Engine& engine = EngineFor(id);
  RunRequest request = MakeFigureRequest(kSssp);
  request.backend = backend;
  request.source = kSource;
  double seconds = 0;
  for (auto _ : state) {
    auto result = engine.Run(request);
    VX_CHECK(result.ok()) << backend << ": " << result.status().ToString();
    benchmark::DoNotOptimize(result->values.data());
    seconds = result->stats.total_seconds;
    state.SetIterationTime(seconds);
    MaybeDumpStatsJson(std::string(DatasetName(id)) + "/" + backend,
                       result->stats);
  }
  Table2b().Record(DatasetName(id), FigureLabel(backend), seconds);
}

}  // namespace
}  // namespace bench
}  // namespace vertexica

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  vertexica::bench::RegisterFigureBenchmarks(
      "ShortestPaths", vertexica::bench::BM_ShortestPaths);
  ::benchmark::RunSpecifiedBenchmarks();
  ::vertexica::bench::Table2b().Print();
  return 0;
}
