/// \file bench_fig2a_pagerank.cc
/// \brief Reproduces Figure 2(a): PageRank runtime on Twitter / GPlus /
/// LiveJournal for the four systems — Graph Database (Neo4j-style record
/// store), Apache Giraph (BSP engine + modeled job launch), Vertexica
/// (vertex-centric on the relational engine), and Vertexica (SQL).
///
/// Expected shape (paper numbers at scale 1.0 for reference): GraphDB
/// slowest and only runs the smallest graph (589 s on Twitter); Giraph pays
/// a fixed launch cost (~47 s) that dominates small graphs; Vertexica is
/// >4x faster than Giraph on Twitter (10.9 s) and comparable on
/// LiveJournal; Vertexica (SQL) is fastest everywhere (3.3 s Twitter).

#include "bench_common.h"

#include "algorithms/pagerank.h"
#include "common/timer.h"
#include "giraph/bsp_engine.h"
#include "graphdb/gdb_algorithms.h"
#include "sqlgraph/sql_pagerank.h"

namespace vertexica {
namespace bench {
namespace {

constexpr int kIterations = 10;
constexpr double kDamping = 0.85;

FigureTable& Table2a() {
  static FigureTable table("Figure 2(a): PageRank");
  return table;
}

void BM_GraphDatabase(benchmark::State& state, DatasetId id) {
  const Graph& g = GetDataset(id);
  graphdb::GraphDb db;
  VX_CHECK_OK(db.LoadGraph(g));
  double seconds = 0;
  for (auto _ : state) {
    graphdb::GdbRunStats stats;
    stats.access_latency_ns = GdbAccessLatencyNs();
    auto ranks = graphdb::GdbPageRank(&db, kIterations, kDamping, &stats);
    VX_CHECK(ranks.ok()) << ranks.status().ToString();
    benchmark::DoNotOptimize(ranks->data());
    seconds = stats.total_seconds;  // measured + modeled record I/O
    state.SetIterationTime(seconds);
  }
  Table2a().Record(DatasetName(id), "GraphDatabase", seconds);
}

void BM_Giraph(benchmark::State& state, DatasetId id) {
  const Graph& g = GetDataset(id);
  double seconds = 0;
  for (auto _ : state) {
    PageRankProgram program(kIterations, kDamping);
    GiraphOptions opts;
    opts.startup_overhead_ms = GiraphStartupMs();
    opts.per_message_overhead_ns = GiraphPerMessageNs();
    BspEngine engine(g, &program, opts);
    GiraphStats stats;
    VX_CHECK_OK(engine.Run(&stats));
    seconds = stats.total_seconds;  // compute + modeled launch & messages
    state.SetIterationTime(seconds);
  }
  Table2a().Record(DatasetName(id), "Giraph", seconds);
}

void BM_VertexicaVertex(benchmark::State& state, DatasetId id) {
  const Graph& g = GetDataset(id);
  double seconds = 0;
  for (auto _ : state) {
    Catalog catalog;
    RunStats stats;
    auto ranks = RunPageRank(&catalog, g, kIterations, kDamping, {}, &stats);
    VX_CHECK(ranks.ok()) << ranks.status().ToString();
    benchmark::DoNotOptimize(ranks->data());
    seconds = stats.total_seconds;  // superstep loop, excluding bulk load
    state.SetIterationTime(seconds);
  }
  Table2a().Record(DatasetName(id), "Vertexica", seconds);
}

void BM_VertexicaSql(benchmark::State& state, DatasetId id) {
  const Graph& g = GetDataset(id);
  double seconds = 0;
  for (auto _ : state) {
    WallTimer timer;
    auto ranks = SqlPageRank(g, kIterations, kDamping);
    VX_CHECK(ranks.ok()) << ranks.status().ToString();
    benchmark::DoNotOptimize(ranks->data());
    seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  Table2a().Record(DatasetName(id), "Vertexica(SQL)", seconds);
}

// The paper: "the graph database runs only for the smallest graph" — so
// GraphDB is benchmarked on Twitter only.
BENCHMARK_CAPTURE(BM_GraphDatabase, Twitter, DatasetId::kTwitter)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_CAPTURE(BM_Giraph, Twitter, DatasetId::kTwitter)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Giraph, GPlus, DatasetId::kGPlus)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Giraph, LiveJournal, DatasetId::kLiveJournal)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_CAPTURE(BM_VertexicaVertex, Twitter, DatasetId::kTwitter)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_VertexicaVertex, GPlus, DatasetId::kGPlus)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_VertexicaVertex, LiveJournal, DatasetId::kLiveJournal)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_CAPTURE(BM_VertexicaSql, Twitter, DatasetId::kTwitter)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_VertexicaSql, GPlus, DatasetId::kGPlus)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_VertexicaSql, LiveJournal, DatasetId::kLiveJournal)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace vertexica

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::vertexica::bench::Table2a().Print();
  return 0;
}
