/// \file bench_fig2a_pagerank.cc
/// \brief Reproduces Figure 2(a): PageRank runtime on Twitter / GPlus /
/// LiveJournal for the four systems — all dispatched through the
/// `vertexica::Engine` facade, so "compare the systems" is literally one
/// loop over `Engine::backends()` with the same `RunRequest`.
///
/// Expected shape (paper numbers at scale 1.0 for reference): GraphDB
/// slowest and only runs the smallest graph (589 s on Twitter); Giraph pays
/// a fixed launch cost (~47 s) that dominates small graphs; Vertexica is
/// >4x faster than Giraph on Twitter (10.9 s) and comparable on
/// LiveJournal; Vertexica (SQL) is fastest everywhere (3.3 s Twitter).
///
/// Timing semantics: every backend's one-time graph load (Engine::Prepare —
/// table materialization, record-store bulk load) happens outside the
/// measured window; reported seconds are algorithm time only, uniformly.
/// Earlier revisions of this bench included the vertex/edge table build in
/// the "Vertexica(SQL)" column, so its numbers here are slightly lower.

#include "bench_common.h"

namespace vertexica {
namespace bench {
namespace {

constexpr int kIterations = 10;
constexpr double kDamping = 0.85;

FigureTable& Table2a() {
  static FigureTable table("Figure 2(a): PageRank");
  return table;
}

void BM_PageRank(benchmark::State& state, DatasetId id,
                 const std::string& backend) {
  Engine& engine = EngineFor(id);
  RunRequest request = MakeFigureRequest(kPageRank);
  request.backend = backend;
  request.iterations = kIterations;
  request.damping = kDamping;
  double seconds = 0;
  for (auto _ : state) {
    auto result = engine.Run(request);
    VX_CHECK(result.ok()) << backend << ": " << result.status().ToString();
    benchmark::DoNotOptimize(result->values.data());
    // Unified stats: superstep loop for vertexica, wall clock for sqlgraph,
    // compute + modeled launch/message costs for giraph, measured + modeled
    // record I/O for graphdb.
    seconds = result->stats.total_seconds;
    state.SetIterationTime(seconds);
    MaybeDumpStatsJson(std::string(DatasetName(id)) + "/" + backend,
                       result->stats);
  }
  Table2a().Record(DatasetName(id), FigureLabel(backend), seconds);
}

}  // namespace
}  // namespace bench
}  // namespace vertexica

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  vertexica::bench::RegisterFigureBenchmarks(
      "PageRank", vertexica::bench::BM_PageRank);
  ::benchmark::RunSpecifiedBenchmarks();
  ::vertexica::bench::Table2a().Print();
  ::vertexica::bench::Table2a().WriteJson("BENCH_fig2a_pagerank.json");
  return 0;
}
