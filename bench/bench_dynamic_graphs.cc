/// \file bench_dynamic_graphs.cc
/// \brief §3.3 / §4.2.3: dynamic graph analysis — mutation cost (add /
/// remove / update edges with full version retention), temporal diff
/// queries (ΔPageRank, shortest-path decrease), and continuous
/// re-evaluation ticks.

#include "bench_common.h"

#include "common/random.h"
#include "common/timer.h"
#include "sqlgraph/sql_common.h"
#include "sqlgraph/triangle_count.h"
#include "temporal/continuous.h"
#include "temporal/versioned_graph.h"

namespace vertexica {
namespace bench {
namespace {

FigureTable& Table33() {
  static FigureTable table("Sec 3.3: dynamic graph analysis");
  return table;
}

Table RandomEdgeBatch(int64_t n, int64_t count, uint64_t seed) {
  Rng rng(seed);
  Table t(Schema({{"src", DataType::kInt64},
                  {"dst", DataType::kInt64},
                  {"weight", DataType::kDouble}}));
  for (int64_t e = 0; e < count; ++e) {
    VX_CHECK_OK(t.AppendRow(
        {Value(static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(n)))),
         Value(static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(n)))),
         Value(1.0 + rng.NextDouble())}));
  }
  return t;
}

void BM_AddEdgesVersioned(benchmark::State& state) {
  const Graph& g = GetDataset(DatasetId::kTwitter);
  double seconds = 0;
  for (auto _ : state) {
    Catalog cat;
    VersionedGraphStore store(&cat);
    VX_CHECK_OK(store.CommitVersion(MakeEdgeListTable(g)).status());
    WallTimer timer;
    for (int batch = 0; batch < 10; ++batch) {
      VX_CHECK_OK(store
                      .AddEdges(RandomEdgeBatch(g.num_vertices, 1000,
                                                static_cast<uint64_t>(batch)))
                      .status());
    }
    seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  state.counters["versions"] = 10;
  state.counters["edges_per_batch"] = 1000;
  Table33().Record("Twitter", "AddEdges x10", seconds);
}
BENCHMARK(BM_AddEdgesVersioned)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_RemoveEdgesVersioned(benchmark::State& state) {
  const Graph& g = GetDataset(DatasetId::kTwitter);
  double seconds = 0;
  for (auto _ : state) {
    Catalog cat;
    VersionedGraphStore store(&cat);
    Table edges = MakeEdgeListTable(g);
    VX_CHECK_OK(store.CommitVersion(edges).status());
    const Table victims = edges.Slice(0, 1000);
    WallTimer timer;
    VX_CHECK_OK(store.RemoveEdges(victims).status());
    seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  Table33().Record("Twitter", "RemoveEdges", seconds);
}
BENCHMARK(BM_RemoveEdgesVersioned)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_UpdateEdgeWeights(benchmark::State& state) {
  const Graph& g = GetDataset(DatasetId::kTwitter);
  double seconds = 0;
  for (auto _ : state) {
    Catalog cat;
    VersionedGraphStore store(&cat);
    Table edges = MakeEdgeListTable(g);
    VX_CHECK_OK(store.CommitVersion(edges).status());
    Table updates = edges.Slice(0, 1000);
    WallTimer timer;
    VX_CHECK_OK(store.UpdateEdgeColumn(updates, "weight").status());
    seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  Table33().Record("Twitter", "UpdateWeights", seconds);
}
BENCHMARK(BM_UpdateEdgeWeights)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_PageRankDelta(benchmark::State& state) {
  const Graph& g = GetDataset(DatasetId::kTwitter);
  Catalog cat;
  VersionedGraphStore store(&cat);
  VX_CHECK_OK(store.CommitVersion(MakeEdgeListTable(g)).status());
  VX_CHECK_OK(
      store.AddEdges(RandomEdgeBatch(g.num_vertices, 5000, 77)).status());
  double seconds = 0;
  for (auto _ : state) {
    WallTimer timer;
    auto delta = PageRankDelta(store, 1, 2, 5);
    VX_CHECK(delta.ok()) << delta.status().ToString();
    benchmark::DoNotOptimize(delta->num_rows());
    seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  Table33().Record("Twitter", "PageRankDelta", seconds);
}
BENCHMARK(BM_PageRankDelta)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ShortestPathDecrease(benchmark::State& state) {
  const Graph& g = GetDataset(DatasetId::kTwitter);
  Catalog cat;
  VersionedGraphStore store(&cat);
  VX_CHECK_OK(store.CommitVersion(MakeEdgeListTable(g)).status());
  VX_CHECK_OK(
      store.AddEdges(RandomEdgeBatch(g.num_vertices, 5000, 78)).status());
  double seconds = 0;
  for (auto _ : state) {
    WallTimer timer;
    auto closer = ShortestPathDecrease(store, 1, 2, 0, 0.5);
    VX_CHECK(closer.ok()) << closer.status().ToString();
    benchmark::DoNotOptimize(closer->num_rows());
    seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  Table33().Record("Twitter", "PathDecrease", seconds);
}
BENCHMARK(BM_ShortestPathDecrease)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ContinuousTriangles(benchmark::State& state) {
  const Graph& g = GetDataset(DatasetId::kTwitter);
  double seconds = 0;
  for (auto _ : state) {
    Catalog cat;
    VersionedGraphStore store(&cat);
    VX_CHECK_OK(store.CommitVersion(MakeEdgeListTable(g)).status());
    ContinuousRunner runner(&store, "triangle count",
                            [](const Table& edges) -> Result<Table> {
                              VX_ASSIGN_OR_RETURN(int64_t n,
                                                  SqlTriangleCount(edges));
                              Table t(Schema({{"triangles",
                                               DataType::kInt64}}));
                              VX_RETURN_NOT_OK(t.AppendRow({Value(n)}));
                              return t;
                            });
    WallTimer timer;
    VX_CHECK_OK(runner.Poll().status());  // initial version
    for (int tick = 0; tick < 4; ++tick) {
      VX_CHECK_OK(store
                      .AddEdges(RandomEdgeBatch(g.num_vertices, 500,
                                                static_cast<uint64_t>(tick)))
                      .status());
      VX_CHECK_OK(runner.Poll().status());
    }
    seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  Table33().Record("Twitter", "Continuous x5", seconds);
}
BENCHMARK(BM_ContinuousTriangles)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace vertexica

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::vertexica::bench::Table33().Print();
  return 0;
}
