/// \file bench_hybrid_queries.cc
/// \brief §3.2: the 1-hop SQL algorithms (triangle counting, strong
/// overlap, weak ties, clustering coefficients) and the composed hybrid
/// queries (important bridges, SSSP from the most clustered node) —
/// queries "very difficult or even not possible on traditional graph
/// processing systems".

#include "bench_common.h"

#include "common/timer.h"
#include "exec/plan_builder.h"
#include "pipeline/dataflow.h"
#include "pipeline/nodes.h"
#include "sqlgraph/clustering_coefficient.h"
#include "sqlgraph/sql_common.h"
#include "sqlgraph/strong_overlap.h"
#include "sqlgraph/weak_ties.h"

namespace vertexica {
namespace bench {
namespace {

FigureTable& Table32() {
  static FigureTable table("Sec 3.2: hybrid 1-hop queries");
  return table;
}

// The pairwise 1-hop queries are quadratic in neighbourhood size; run them
// on a sub-sampled Twitter preset so the whole suite stays fast.
const Graph& HybridGraph() {
  static const Graph g = [] {
    const Graph& tw = GetDataset(DatasetId::kTwitter);
    Graph out;
    out.num_vertices = tw.num_vertices;
    // Keep every 4th edge.
    for (int64_t e = 0; e < tw.num_edges(); e += 4) {
      out.AddEdge(tw.src[static_cast<size_t>(e)],
                  tw.dst[static_cast<size_t>(e)], tw.EdgeWeight(e));
    }
    return out;
  }();
  return g;
}

/// The facade instance all registry-dispatched hybrid benches share. The
/// sqlgraph backend is prepared eagerly so wall-timed benches never fold
/// its one-time table materialization into a measured window (lazy Prepare
/// would land in whichever bench happens to run first).
Engine& HybridEngine() {
  static Engine& engine = []() -> Engine& {
    static Engine e;
    VX_CHECK_OK(e.LoadGraph(HybridGraph()));
    VX_CHECK_OK(e.PrepareBackend(kSqlGraphBackendId));
    return e;
  }();
  return engine;
}

// Triangle counting runs on every backend the AlgorithmRegistry lists for
// it (registered dynamically in main), quantifying §3.2's point: the 1-hop
// query is natural in SQL and a quadratic message blow-up vertex-centric.
void BM_TriangleCounting(benchmark::State& state,
                         const std::string& backend) {
  double seconds = 0;
  for (auto _ : state) {
    auto result = HybridEngine().Run(kTriangleCount, backend);
    VX_CHECK(result.ok()) << backend << ": " << result.status().ToString();
    benchmark::DoNotOptimize(result->aggregates.at("triangles"));
    seconds = result->stats.total_seconds;
    state.SetIterationTime(seconds);
  }
  Table32().Record("Twitter/4", "Tri:" + FigureLabel(backend), seconds);
}

void BM_StrongOverlap(benchmark::State& state) {
  Table edges = MakeEdgeListTable(HybridGraph());
  double seconds = 0;
  for (auto _ : state) {
    WallTimer timer;
    auto pairs = SqlStrongOverlap(edges, /*min_common=*/5);
    VX_CHECK(pairs.ok()) << pairs.status().ToString();
    benchmark::DoNotOptimize(pairs->num_rows());
    seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  Table32().Record("Twitter/4", "StrongOverlap", seconds);
}
BENCHMARK(BM_StrongOverlap)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_WeakTies(benchmark::State& state) {
  Table edges = MakeEdgeListTable(HybridGraph());
  double seconds = 0;
  for (auto _ : state) {
    WallTimer timer;
    auto ties = SqlWeakTies(edges, /*min_pairs=*/10);
    VX_CHECK(ties.ok()) << ties.status().ToString();
    benchmark::DoNotOptimize(ties->num_rows());
    seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  Table32().Record("Twitter/4", "WeakTies", seconds);
}
BENCHMARK(BM_WeakTies)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ClusteringCoefficients(benchmark::State& state) {
  Table edges = MakeEdgeListTable(HybridGraph());
  double seconds = 0;
  for (auto _ : state) {
    WallTimer timer;
    auto cc = SqlClusteringCoefficients(edges);
    VX_CHECK(cc.ok()) << cc.status().ToString();
    benchmark::DoNotOptimize(cc->num_rows());
    seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  Table32().Record("Twitter/4", "ClusterCoeff", seconds);
}
BENCHMARK(BM_ClusteringCoefficients)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ImportantBridges(benchmark::State& state) {
  // Composed hybrid query: weak ties ⋈ PageRank, filter on both.
  Table edges = MakeEdgeListTable(HybridGraph());
  double seconds = 0;
  for (auto _ : state) {
    WallTimer timer;
    Pipeline p;
    const int src = p.AddNode(MakeSourceNode("edges", edges));
    const int ties = p.AddNode(MakeWeakTiesNode(10), {src});
    const int pr = p.AddNode(MakePageRankNode(5), {src});
    const int joined = p.AddNode(MakeJoinNode({"id"}, {"id"}), {ties, pr});
    const int out = p.AddNode(
        MakeSelectionNode(Gt(Col("rank"),
                             Lit(1.0 / HybridGraph().num_vertices))),
        {joined});
    auto result = p.Run(out);
    VX_CHECK(result.ok()) << result.status().ToString();
    benchmark::DoNotOptimize(result->num_rows());
    seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  Table32().Record("Twitter/4", "Bridges+PR", seconds);
}
BENCHMARK(BM_ImportantBridges)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Composed hybrid query: a 1-hop SQL analysis (max clustering coefficient)
// seeds a multi-hop traversal dispatched through the facade.
void BM_SsspFromMostClustered(benchmark::State& state) {
  Table edges = MakeEdgeListTable(HybridGraph());
  VX_CHECK(AlgorithmRegistry::Global()->Supports(kSssp, kSqlGraphBackendId));
  double seconds = 0;
  for (auto _ : state) {
    WallTimer timer;
    auto seed = SqlMaxClusteringVertex(edges);
    VX_CHECK(seed.ok()) << seed.status().ToString();
    RunRequest request;
    request.algorithm = kSssp;
    request.backend = kSqlGraphBackendId;
    request.source = *seed;
    auto dist = HybridEngine().Run(request);
    VX_CHECK(dist.ok()) << dist.status().ToString();
    benchmark::DoNotOptimize(dist->values.data());
    seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  Table32().Record("Twitter/4", "SSSP@maxCC", seconds);
}
BENCHMARK(BM_SsspFromMostClustered)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace vertexica

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  // Build the shared engine (graph load + eager sqlgraph Prepare) before
  // any benchmark runs, so no wall-timed window pays the one-time setup.
  vertexica::bench::HybridEngine();
  // Triangle counting: one bench per backend the registry lists, instead of
  // a hard-coded SQL call.
  vertexica::EnsureBuiltinAlgorithms();
  for (const std::string& backend :
       vertexica::AlgorithmRegistry::Global()->BackendsFor(
           vertexica::kTriangleCount)) {
    const std::string name = "TriangleCounting/" + backend;
    ::benchmark::RegisterBenchmark(
        name.c_str(),
        [backend](benchmark::State& state) {
          vertexica::bench::BM_TriangleCounting(state, backend);
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::vertexica::bench::Table32().Print();
  return 0;
}
