/// \file bench_ablation_combiner.cc
/// \brief Combiner ablation (Pregel heritage): collapsing messages per
/// receiver between supersteps shrinks the message table (and the next
/// superstep's union) at the cost of one aggregation.

#include "bench_common.h"

#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"

namespace vertexica {
namespace bench {
namespace {

FigureTable& TableC() {
  static FigureTable table("Ablation: message combiner");
  return table;
}

void RunCombiner(benchmark::State& state, const char* row, bool sssp,
                 bool combine) {
  const Graph& g = GetDataset(DatasetId::kTwitter);
  VertexicaOptions opts;
  opts.use_combiner = combine;
  double seconds = 0;
  int64_t messages = 0;
  for (auto _ : state) {
    Catalog cat;
    RunStats stats;
    if (sssp) {
      VX_CHECK(RunShortestPaths(&cat, g, 0, opts, &stats).ok());
    } else {
      VX_CHECK(RunPageRank(&cat, g, 5, 0.85, opts, &stats).ok());
    }
    seconds = stats.total_seconds;
    messages = stats.total_messages;
    state.SetIterationTime(seconds);
  }
  state.counters["messages"] = static_cast<double>(messages);
  TableC().Record(row, combine ? "combiner on" : "combiner off", seconds);
}

void BM_PrOn(benchmark::State& s) { RunCombiner(s, "Twitter PR", false, true); }
void BM_PrOff(benchmark::State& s) {
  RunCombiner(s, "Twitter PR", false, false);
}
void BM_SsspOn(benchmark::State& s) {
  RunCombiner(s, "Twitter SSSP", true, true);
}
void BM_SsspOff(benchmark::State& s) {
  RunCombiner(s, "Twitter SSSP", true, false);
}

BENCHMARK(BM_PrOn)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PrOff)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SsspOn)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SsspOff)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace vertexica

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::vertexica::bench::TableC().Print();
  return 0;
}
