/// \file bench_ablation_update_replace.cc
/// \brief §2.3 "Update Vs Replace" ablation: in-place vertex updates versus
/// left-join table rebuilds, across the update-fraction spectrum.
/// PageRank updates every vertex every superstep (replace should win);
/// late SSSP supersteps touch only a frontier (in-place should win).

#include "bench_common.h"

#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"

namespace vertexica {
namespace bench {
namespace {

FigureTable& TableUr() {
  static FigureTable table("Ablation (Sec 2.3): update vs replace");
  return table;
}

void RunWithThreshold(benchmark::State& state, const char* row, bool sssp,
                      double threshold, const char* column) {
  const Graph& g = GetDataset(DatasetId::kTwitter);
  VertexicaOptions opts;
  opts.update_threshold = threshold;
  double seconds = 0;
  for (auto _ : state) {
    Catalog cat;
    RunStats stats;
    if (sssp) {
      VX_CHECK(RunShortestPaths(&cat, g, 0, opts, &stats).ok());
    } else {
      VX_CHECK(RunPageRank(&cat, g, 5, 0.85, opts, &stats).ok());
    }
    seconds = stats.total_seconds;
    state.SetIterationTime(seconds);
  }
  TableUr().Record(row, column, seconds);
}

void BM_PrAlwaysUpdate(benchmark::State& s) {
  RunWithThreshold(s, "Twitter PR", false, 1.1, "always update");
}
void BM_PrAlwaysReplace(benchmark::State& s) {
  RunWithThreshold(s, "Twitter PR", false, 0.0, "always replace");
}
void BM_PrAdaptive(benchmark::State& s) {
  RunWithThreshold(s, "Twitter PR", false, 0.1, "adaptive(0.1)");
}
void BM_SsspAlwaysUpdate(benchmark::State& s) {
  RunWithThreshold(s, "Twitter SSSP", true, 1.1, "always update");
}
void BM_SsspAlwaysReplace(benchmark::State& s) {
  RunWithThreshold(s, "Twitter SSSP", true, 0.0, "always replace");
}
void BM_SsspAdaptive(benchmark::State& s) {
  RunWithThreshold(s, "Twitter SSSP", true, 0.1, "adaptive(0.1)");
}

BENCHMARK(BM_PrAlwaysUpdate)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PrAlwaysReplace)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PrAdaptive)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SsspAlwaysUpdate)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SsspAlwaysReplace)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SsspAdaptive)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace vertexica

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::vertexica::bench::TableUr().Print();
  return 0;
}
