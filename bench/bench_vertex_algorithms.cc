/// \file bench_vertex_algorithms.cc
/// \brief §3.1: runtime of the four vertex-centric algorithms shipped with
/// Vertexica (PageRank, SSSP, connected components, collaborative
/// filtering) on the Twitter preset, plus random walk with restart.

#include "bench_common.h"

#include "algorithms/collaborative_filtering.h"
#include "algorithms/connected_components.h"
#include "algorithms/pagerank.h"
#include "algorithms/random_walk.h"
#include "algorithms/sssp.h"

namespace vertexica {
namespace bench {
namespace {

FigureTable& Table31() {
  static FigureTable table("Sec 3.1: vertex-centric algorithm suite");
  return table;
}

void BM_PageRank(benchmark::State& state) {
  const Graph& g = GetDataset(DatasetId::kTwitter);
  double seconds = 0;
  for (auto _ : state) {
    Catalog cat;
    RunStats stats;
    VX_CHECK(RunPageRank(&cat, g, 10, 0.85, {}, &stats).ok());
    seconds = stats.total_seconds;
    state.SetIterationTime(seconds);
  }
  Table31().Record("Twitter", "PageRank", seconds);
}
BENCHMARK(BM_PageRank)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ShortestPaths(benchmark::State& state) {
  const Graph& g = GetDataset(DatasetId::kTwitter);
  double seconds = 0;
  for (auto _ : state) {
    Catalog cat;
    RunStats stats;
    VX_CHECK(RunShortestPaths(&cat, g, 0, {}, &stats).ok());
    seconds = stats.total_seconds;
    state.SetIterationTime(seconds);
  }
  Table31().Record("Twitter", "SSSP", seconds);
}
BENCHMARK(BM_ShortestPaths)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ConnectedComponents(benchmark::State& state) {
  const Graph& g = GetDataset(DatasetId::kTwitter);
  double seconds = 0;
  for (auto _ : state) {
    Catalog cat;
    RunStats stats;
    ConnectedComponentsProgram program;
    const Graph bidir = g.WithReverseEdges();
    VX_CHECK_OK(RunVertexProgram(&cat, bidir, &program, {}, {}, &stats));
    seconds = stats.total_seconds;
    state.SetIterationTime(seconds);
  }
  Table31().Record("Twitter", "ConnComp", seconds);
}
BENCHMARK(BM_ConnectedComponents)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_CollaborativeFiltering(benchmark::State& state) {
  // Bipartite ratings sized like the Twitter preset's vertex count.
  const Graph& twitter = GetDataset(DatasetId::kTwitter);
  const int64_t users = twitter.num_vertices / 2;
  const int64_t items = twitter.num_vertices / 8;
  Graph ratings = GenerateBipartite(users, std::max<int64_t>(8, items),
                                    twitter.num_edges() / 4, 1234);
  double seconds = 0;
  for (auto _ : state) {
    Catalog cat;
    RunStats stats;
    VX_CHECK(RunCollaborativeFiltering(&cat, ratings, 8, 5, {}, &stats).ok());
    seconds = stats.total_seconds;
    state.SetIterationTime(seconds);
  }
  Table31().Record("Twitter", "CollabFilter", seconds);
}
BENCHMARK(BM_CollaborativeFiltering)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_RandomWalkWithRestart(benchmark::State& state) {
  const Graph& g = GetDataset(DatasetId::kTwitter);
  double seconds = 0;
  for (auto _ : state) {
    Catalog cat;
    RunStats stats;
    VX_CHECK(RunRandomWalkWithRestart(&cat, g, 0, 10, 0.15, {}, &stats).ok());
    seconds = stats.total_seconds;
    state.SetIterationTime(seconds);
  }
  Table31().Record("Twitter", "RWR", seconds);
}
BENCHMARK(BM_RandomWalkWithRestart)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace vertexica

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::vertexica::bench::Table31().Print();
  return 0;
}
