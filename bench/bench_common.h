/// \file bench_common.h
/// \brief Shared infrastructure for the paper-reproduction benches: dataset
/// cache, scale handling, the modeled Giraph startup constant, and a
/// paper-style results table printed after each bench binary.

#ifndef VERTEXICA_BENCH_BENCH_COMMON_H_
#define VERTEXICA_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "api/engine.h"
#include "common/logging.h"
#include "graphgen/datasets.h"
#include "graphgen/generators.h"

namespace vertexica {
namespace bench {

/// \brief Benchmark scale factor (fraction of the paper's dataset sizes).
/// Controlled by VERTEXICA_BENCH_SCALE; default 0.05 keeps the whole suite
/// in the minutes range. Use 1.0 to run paper-size graphs.
inline double Scale() {
  static const double scale = BenchScaleFromEnv();
  return scale;
}

/// \brief The paper reports ~44-47s Giraph runs on the small Twitter graph,
/// dominated by Hadoop job launch + JVM start; we model that fixed cost as
/// 45 s at scale 1.0, scaled linearly with the bench scale so its magnitude
/// relative to the (also scaled) compute stays faithful. See DESIGN.md §2.
inline double GiraphStartupMs() { return 45000.0 * Scale(); }

/// \brief Modeled per-message JVM cost of real Giraph (object allocation,
/// Writable serialization, netty RPC). Calibrated from the paper's
/// LiveJournal PageRank number: (321s - 45s startup) over 10 iterations of
/// 68.9M messages ≈ 0.4 µs per message, of which our native engine
/// measures ~0.03 µs — the modeled remainder is ~300 ns. Applied uniformly
/// (not scaled: it is a per-message constant).
inline double GiraphPerMessageNs() { return 300.0; }

/// \brief Modeled record-access latency of the 2014-era disk-backed graph
/// database (page-cache misses on random node/relationship/property
/// records). Calibrated so the Twitter PageRank ratio GraphDB/Vertexica
/// lands near the paper's 589s/10.9s ≈ 54x and GraphDB stays the slowest
/// system on both figures. One logical access ≈ 2 µs amortized
/// (mostly-warm page cache with periodic misses on spinning disks).
inline double GdbAccessLatencyNs() { return 2000.0; }

/// \brief Cached scaled dataset instances (generation is deterministic).
/// Shared pointers so the Engine facade references the cached instance
/// instead of copying LiveJournal-scale edge lists.
inline std::shared_ptr<const Graph> GetDatasetShared(DatasetId id) {
  static std::mutex mutex;
  static std::map<DatasetId, std::shared_ptr<const Graph>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(id);
  if (it == cache.end()) {
    it = cache
             .emplace(id,
                      std::make_shared<const Graph>(MakeDataset(id, Scale())))
             .first;
  }
  return it->second;
}

inline const Graph& GetDataset(DatasetId id) { return *GetDatasetShared(id); }

/// \brief Engine with dataset `id` loaded. Backends prepare lazily, so
/// e.g. the record-store bulk load is only paid by benches that actually
/// target graphdb. Only the most recent dataset's engine is kept: figure
/// benches run grouped by dataset, and retaining every prepared engine
/// (catalog tables, record stores) would accumulate across datasets. The
/// returned reference is valid until the next EngineFor with another id.
inline Engine& EngineFor(DatasetId id) {
  static std::mutex mutex;
  static std::map<DatasetId, Engine> engines;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = engines.find(id);
  if (it == engines.end()) {
    engines.clear();
    it = engines.try_emplace(id).first;
    VX_CHECK_OK(it->second.LoadGraph(GetDatasetShared(id)));
  }
  return it->second;
}

/// \brief Request preloaded with the modeled-cost constants above, so every
/// figure bench states its workload once and loops over backends.
inline RunRequest MakeFigureRequest(std::string algorithm) {
  RunRequest request;
  request.algorithm = std::move(algorithm);
  request.giraph.startup_overhead_ms = GiraphStartupMs();
  request.giraph.per_message_overhead_ns = GiraphPerMessageNs();
  request.gdb_access_latency_ns = GdbAccessLatencyNs();
  return request;
}

/// \brief Series label used in the paper's figures for a backend id.
inline std::string FigureLabel(const std::string& backend) {
  if (backend == kVertexicaBackendId) return "Vertexica";
  if (backend == kSqlGraphBackendId) return "Vertexica(SQL)";
  if (backend == kGiraphBackendId) return "Giraph";
  if (backend == kGraphDbBackendId) return "GraphDatabase";
  return backend;
}

/// \brief Registers one dataset × backend benchmark grid for a Figure-2
/// style comparison, encoding the paper's policy that the graph database
/// runs only the smallest graph. Shared by bench_fig2a / bench_fig2b.
inline void RegisterFigureBenchmarks(
    const std::string& prefix,
    void (*fn)(benchmark::State&, DatasetId, const std::string&)) {
  Engine probe;
  for (DatasetId id : AllDatasets()) {
    for (const std::string& backend : probe.backends()) {
      // The paper: "the graph database runs only for the smallest graph".
      if (backend == kGraphDbBackendId && id != DatasetId::kTwitter) {
        continue;
      }
      const std::string name =
          prefix + "/" + DatasetName(id) + "/" + backend;
      ::benchmark::RegisterBenchmark(
          name.c_str(),
          [fn, id, backend](benchmark::State& state) {
            fn(state, id, backend);
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

/// \brief Prints the unified per-superstep phase breakdown as one JSON line
/// when VERTEXICA_BENCH_JSON is set (machine-readable bench output).
inline void MaybeDumpStatsJson(const std::string& label,
                               const RunStats& stats) {
  const char* env = std::getenv("VERTEXICA_BENCH_JSON");
  if (env == nullptr || env[0] == '\0' || env[0] == '0') return;
  std::printf("STATS_JSON %s %s\n", label.c_str(), stats.ToJson().c_str());
}

/// \brief Collects (row, column) -> seconds results and renders the same
/// table the paper's figure reports.
class FigureTable {
 public:
  explicit FigureTable(std::string title) : title_(std::move(title)) {}

  void Record(const std::string& row, const std::string& column,
              double seconds) {
    std::lock_guard<std::mutex> lock(mutex_);
    cells_[row][column] = seconds;
    if (std::find(columns_.begin(), columns_.end(), column) ==
        columns_.end()) {
      columns_.push_back(column);
    }
    if (std::find(rows_.begin(), rows_.end(), row) == rows_.end()) {
      rows_.push_back(row);
    }
  }

  /// \brief Minimal JSON string escaping for labels (quotes, backslashes,
  /// control characters).
  static std::string JsonEscape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
      if (ch == '"' || ch == '\\') {
        out += '\\';
        out += ch;
      } else if (static_cast<unsigned char>(ch) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
        out += buf;
      } else {
        out += ch;
      }
    }
    return out;
  }

  /// \brief Writes the collected cells as a BENCH_*.json file (one object
  /// with a flat results array), so figure data is machine-readable
  /// alongside the printed table. Returns false on I/O failure.
  bool WriteJson(const std::string& path) const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::ofstream out(path);
    if (!out) return false;
    out << "{\"title\":\"" << JsonEscape(title_) << "\",\"scale\":" << Scale()
        << ",\"results\":[";
    bool first = true;
    for (const auto& r : rows_) {
      auto row_it = cells_.find(r);
      for (const auto& c : columns_) {
        auto cell_it = row_it->second.find(c);
        if (cell_it == row_it->second.end()) continue;
        if (!first) out << ",";
        first = false;
        out << "{\"row\":\"" << JsonEscape(r) << "\",\"column\":\""
            << JsonEscape(c) << "\",\"seconds\":" << cell_it->second << "}";
      }
    }
    out << "]}\n";
    return static_cast<bool>(out);
  }

  /// \brief Seconds recorded for (row, column), or a negative sentinel.
  double Lookup(const std::string& row, const std::string& column) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto row_it = cells_.find(row);
    if (row_it == cells_.end()) return -1.0;
    auto cell_it = row_it->second.find(column);
    return cell_it == row_it->second.end() ? -1.0 : cell_it->second;
  }

  void Print() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::printf("\n=== %s (scale=%.3f; seconds) ===\n", title_.c_str(),
                Scale());
    std::printf("%-14s", "Dataset");
    for (const auto& c : columns_) std::printf(" %16s", c.c_str());
    std::printf("\n");
    for (const auto& r : rows_) {
      std::printf("%-14s", r.c_str());
      for (const auto& c : columns_) {
        auto row_it = cells_.find(r);
        auto cell_it = row_it->second.find(c);
        if (cell_it == row_it->second.end()) {
          std::printf(" %16s", "n/a");
        } else {
          std::printf(" %16.3f", cell_it->second);
        }
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

 private:
  std::string title_;
  mutable std::mutex mutex_;
  std::vector<std::string> rows_;
  std::vector<std::string> columns_;
  std::map<std::string, std::map<std::string, double>> cells_;
};

}  // namespace bench
}  // namespace vertexica

#endif  // VERTEXICA_BENCH_BENCH_COMMON_H_
