/// \file bench_relational_pipeline.cc
/// \brief §3.4: end-to-end pipelines mixing relational pre/post-processing
/// with graph algorithms — selection → algorithm → aggregation, PageRank
/// histograms, and metadata joins ("end-to-end data processing, starting
/// from raw data and right up to deriving meaningful insights").

#include "bench_common.h"

#include "common/timer.h"
#include "graphgen/metadata.h"
#include "pipeline/dataflow.h"
#include "pipeline/nodes.h"
#include "sqlgraph/sql_common.h"

namespace vertexica {
namespace bench {
namespace {

FigureTable& Table34() {
  static FigureTable table("Sec 3.4: relational pipelines");
  return table;
}

const Table& TwitterEdgesWithMetadata() {
  static const Table edges =
      GenerateEdgeMetadata(GetDataset(DatasetId::kTwitter), 4242);
  return edges;
}

void BM_SelectThenPageRankThenAggregate(benchmark::State& state) {
  const Table& edges = TwitterEdgesWithMetadata();
  double seconds = 0;
  for (auto _ : state) {
    WallTimer timer;
    Pipeline p;
    const int src = p.AddNode(MakeSourceNode("edges", edges));
    const int family = p.AddNode(
        MakeSelectionNode(Eq(Col("type"), Lit(std::string("family")))),
        {src});
    const int pr = p.AddNode(MakePageRankNode(5), {family});
    const int agg = p.AddNode(
        MakeAggregationNode({}, {{AggOp::kMax, "rank", "max_rank"},
                                 {AggOp::kAvg, "rank", "avg_rank"},
                                 {AggOp::kCountStar, "", "nodes"}}),
        {pr});
    auto out = p.Run(agg);
    VX_CHECK(out.ok()) << out.status().ToString();
    benchmark::DoNotOptimize(out->num_rows());
    seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  Table34().Record("Twitter", "Select>PR>Agg", seconds);
}
BENCHMARK(BM_SelectThenPageRankThenAggregate)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_PageRankHistogram(benchmark::State& state) {
  const Table& edges = TwitterEdgesWithMetadata();
  double seconds = 0;
  for (auto _ : state) {
    WallTimer timer;
    Pipeline p;
    const int src = p.AddNode(MakeSourceNode("edges", edges));
    const int pr = p.AddNode(MakePageRankNode(5), {src});
    const int hist = p.AddNode(MakeHistogramNode("rank", 20), {pr});
    auto out = p.Run(hist);
    VX_CHECK(out.ok()) << out.status().ToString();
    benchmark::DoNotOptimize(out->num_rows());
    seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  Table34().Record("Twitter", "PR histogram", seconds);
}
BENCHMARK(BM_PageRankHistogram)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_MetadataJoinAggregate(benchmark::State& state) {
  const Graph& g = GetDataset(DatasetId::kTwitter);
  const Table& edges = TwitterEdgesWithMetadata();
  Table metadata = GenerateNodeMetadata(g.num_vertices, 4243);
  double seconds = 0;
  for (auto _ : state) {
    WallTimer timer;
    Pipeline p;
    const int src = p.AddNode(MakeSourceNode("edges", edges));
    const int pr = p.AddNode(MakePageRankNode(5), {src});
    const int meta = p.AddNode(MakeSourceNode("metadata", metadata));
    const int joined = p.AddNode(MakeJoinNode({"id"}, {"id"}), {pr, meta});
    // Average rank per value of the low-cardinality attribute u0.
    const int agg = p.AddNode(
        MakeAggregationNode({"u0"}, {{AggOp::kAvg, "rank", "avg_rank"}}),
        {joined});
    auto out = p.Run(agg);
    VX_CHECK(out.ok()) << out.status().ToString();
    benchmark::DoNotOptimize(out->num_rows());
    seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  Table34().Record("Twitter", "PR join meta", seconds);
}
BENCHMARK(BM_MetadataJoinAggregate)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_TimestampWindowAnalysis(benchmark::State& state) {
  // "last one year" style temporal filter on the edge creation timestamp,
  // then triangle counting on the recent subgraph.
  const Table& edges = TwitterEdgesWithMetadata();
  constexpr int64_t kNow = 1700000000;
  constexpr int64_t kYear = 365LL * 24 * 3600;
  double seconds = 0;
  for (auto _ : state) {
    WallTimer timer;
    Pipeline p;
    const int src = p.AddNode(MakeSourceNode("edges", edges));
    const int recent = p.AddNode(
        MakeSelectionNode(Ge(Col("created"), Lit(kNow - kYear))), {src});
    const int tri = p.AddNode(MakeTriangleCountingNode(), {recent});
    auto out = p.Run(tri);
    VX_CHECK(out.ok()) << out.status().ToString();
    benchmark::DoNotOptimize(out->num_rows());
    seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
  }
  Table34().Record("Twitter", "LastYear tri", seconds);
}
BENCHMARK(BM_TimestampWindowAnalysis)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace vertexica

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::vertexica::bench::Table34().Print();
  return 0;
}
